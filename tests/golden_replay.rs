//! Golden-corpus integration: every recipe records, round-trips through
//! its serialized `trace.json` / `golden.json` pair, and replays clean
//! from the trace alone; any tamper — in the trace or in a golden
//! digest — is caught and named by stage.

use conncar_replay::{corpus, replay_run, verify_and_replay, GoldenRun, RecipeKind, RunTrace};
use std::path::Path;

/// The corpus's first study-kind recipe (tamper tests want a full run).
fn study_recipe() -> conncar_replay::Recipe {
    corpus()
        .into_iter()
        .find(|r| r.kind == RecipeKind::Study)
        .expect("corpus has study recipes")
}

#[test]
fn every_corpus_recipe_replays_clean_through_serialization() {
    for recipe in corpus() {
        let rec = recipe.record().expect(recipe.name);
        let trace =
            RunTrace::from_envelope_json(&rec.trace.to_envelope_json()).expect(recipe.name);
        let golden = GoldenRun::from_json(&rec.golden.to_json()).expect(recipe.name);
        let report = replay_run(&trace, &golden);
        assert!(report.is_clean(), "{}:\n{}", recipe.name, report.render());
    }
}

#[test]
fn recording_is_deterministic_byte_for_byte() {
    let recipe = study_recipe();
    let a = recipe.record().expect("first recording");
    let b = recipe.record().expect("second recording");
    assert_eq!(a.trace.to_envelope_json(), b.trace.to_envelope_json());
    assert_eq!(a.golden.to_json(), b.golden.to_json());
}

#[test]
fn a_corrupted_trace_fails_at_the_trace_stage() {
    let recipe = study_recipe();
    let rec = recipe.record().expect(recipe.name);
    let envelope = rec.trace.to_envelope_json();
    let tampered = envelope.replace("\"kind\":\"study\"", "\"kind\":\"sturdy\"");
    assert_ne!(tampered, envelope, "tamper target not found in the envelope");
    let report = verify_and_replay(recipe.name, &tampered, &rec.golden.to_json());
    let first = report.first_divergence().expect("must diverge");
    assert_eq!(first.stage, "trace", "{}", report.render());
}

#[test]
fn a_tampered_golden_digest_names_its_stage() {
    let recipe = study_recipe();
    let rec = recipe.record().expect(recipe.name);
    let tampers: [(&str, fn(&mut GoldenRun)); 3] = [
        ("world", |g| g.world = "0000000000000bad".into()),
        ("store", |g| g.store = "0000000000000bad".into()),
        ("report", |g| g.report = "0000000000000bad".into()),
    ];
    for (stage, tamper) in tampers {
        let mut golden = rec.golden.clone();
        tamper(&mut golden);
        let report = replay_run(&rec.trace, &golden);
        let first = report.first_divergence().expect("must diverge");
        assert_eq!(first.stage, stage, "{}", report.render());
    }
}

#[test]
fn committed_fixtures_match_their_recipes_and_replay_clean() {
    // Fixtures are optional in a fresh checkout (regenerate them with
    // `cargo run --release --example regen_golden`); when present they
    // must match their recipes byte-for-byte and replay clean.
    let root = Path::new(option_env!("CARGO_MANIFEST_DIR").unwrap_or(".")).join("tests/golden");
    for recipe in corpus() {
        let dir = root.join(recipe.name);
        if !dir.is_dir() {
            continue;
        }
        let trace_json = std::fs::read_to_string(dir.join("trace.json")).expect(recipe.name);
        let golden_json = std::fs::read_to_string(dir.join("golden.json")).expect(recipe.name);
        let rec = recipe.record().expect(recipe.name);
        assert_eq!(
            trace_json,
            rec.trace.to_envelope_json(),
            "{}: committed trace drifted from its recipe — rerun regen_golden",
            recipe.name
        );
        assert_eq!(
            golden_json,
            rec.golden.to_json(),
            "{}: committed golden drifted from its recipe — rerun regen_golden",
            recipe.name
        );
        let report = verify_and_replay(recipe.name, &trace_json, &golden_json);
        assert!(report.is_clean(), "{}:\n{}", recipe.name, report.render());
    }
}

//! Shape validation: every regenerated table and figure must exhibit
//! the qualitative structure the paper reports — who is bigger than
//! whom, where the mass sits — even at test scale.

use conncar::{experiments, Experiment, StudyAnalyses, StudyConfig, StudyData};
use conncar_types::id::HandoverKind;
use conncar_types::{Carrier, DayOfWeek};
use std::sync::OnceLock;

/// One shared small study for the whole file (generation dominates
/// test time).
fn fixture() -> &'static (StudyData, StudyAnalyses) {
    static FIXTURE: OnceLock<(StudyData, StudyAnalyses)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = StudyConfig::small();
        cfg.fleet.cars = 300;
        let study = StudyData::generate(&cfg).expect("study");
        let analyses = StudyAnalyses::run(&study).expect("analyses");
        (study, analyses)
    })
}

#[test]
fn fig2_weekdays_beat_sundays_and_trendlines_exist() {
    let (_, a) = fixture();
    let fracs = a.presence.car_fractions();
    let mean_of = |target: DayOfWeek| -> f64 {
        let days: Vec<f64> = a
            .presence
            .days
            .iter()
            .filter(|d| d.weekday == target)
            .map(|d| fracs[d.day as usize])
            .collect();
        days.iter().sum::<f64>() / days.len() as f64
    };
    assert!(mean_of(DayOfWeek::Wednesday) > mean_of(DayOfWeek::Sunday));
    assert!(a.presence.cars_trend.is_some());
    assert!(a.presence.cells_trend.is_some());
    // Majority of fleet on the network on a typical weekday.
    assert!(mean_of(DayOfWeek::Tuesday) > 0.5);
}

#[test]
fn tab1_weekend_variance_exceeds_midweek() {
    let (_, a) = fixture();
    let row = |d: DayOfWeek| {
        a.weekday_table
            .iter()
            .find(|r| r.weekday == Some(d))
            .expect("row")
    };
    // Paper: Saturday has by far the largest car-presence stdev.
    assert!(row(DayOfWeek::Saturday).cars_stdev > row(DayOfWeek::Tuesday).cars_stdev);
    // Overall row exists and means are plausible fractions.
    let overall = a.weekday_table.last().expect("overall");
    assert!(overall.weekday.is_none());
    assert!((0.3..0.95).contains(&overall.cars_mean));
}

#[test]
fn fig3_truncation_orders_and_small_time_on_network() {
    let (_, a) = fixture();
    let (full, trunc) = a.connected_time.means();
    assert!(trunc <= full);
    // "Cars spend much less time connected than smartphones": single-
    // digit percent of the study period.
    assert!(full < 0.25, "full mean {full}");
    assert!(trunc < 0.10, "truncated mean {trunc}");
    // CDFs are monotone by construction; p99.5 ≥ mean.
    let (p995, _) = a.connected_time.p995();
    assert!(p995.unwrap() >= full);
}

#[test]
fn fig5_commuter_mass_sits_in_commute_hours() {
    let (study, a) = fixture();
    let refs = conncar_analysis::matrix::reference_matrices();
    // The first sample car is a regular commuter: its weekday commute +
    // network-peak mass should dominate the weekend mass.
    let (car, m) = &a.sample_cars[0];
    let _ = car;
    let commute_like =
        m.mass_within(&refs.commute_peaks) + m.mass_within(&refs.network_peaks);
    let weekend = m.mass_within(&refs.weekend);
    assert!(
        commute_like > weekend,
        "commuter: commute-ish {commute_like:.2} vs weekend {weekend:.2}"
    );
    let _ = study;
}

#[test]
fn fig6_common_cars_dominate() {
    let (study, a) = fixture();
    let hist = &a.days_histogram;
    let days = study.config.period.days() as usize;
    // Mass in the top half of the day-count range exceeds the bottom
    // tenth — the paper's "most cars are common" shape.
    let rare: u64 = hist[..=days / 9].iter().sum();
    let common: u64 = hist[days / 2..].iter().sum();
    assert!(
        common > rare,
        "common {common} should outnumber rare {rare}"
    );
}

#[test]
fn tab2_partitions_and_orders() {
    let (_, a) = fixture();
    for row in &a.segmentation {
        assert!((row.rare_total() + row.common_total() - 1.0).abs() < 1e-9);
        // Non-busy dominates busy in every synthetic run (most cells are
        // not busy most of the time).
        assert!(row.common[1] > row.common[0]);
    }
    assert!(a.segmentation[1].rare_total() >= a.segmentation[0].rare_total());
}

#[test]
fn fig7_busy_tail_is_small() {
    let (_, a) = fixture();
    // Paper: ~2.4% of cars spend >50% of connected time on busy radios.
    // Shape check: a small minority, not zero everywhere and not a
    // majority.
    assert!(a.busy_time.over_half < 0.25);
    assert!(a.busy_time.always_busy <= a.busy_time.over_half);
    let deciles = a.busy_time.ecdf.deciles().expect("non-empty");
    for w in deciles.windows(2) {
        assert!(w[1] >= w[0]);
    }
}

#[test]
fn fig8_busiest_cell_has_concurrency() {
    let (study, a) = fixture();
    let (cell, day, distinct) = a
        .concurrency
        .busiest_cell_day(&study.clean)
        .expect("non-empty");
    let g = conncar_analysis::concurrency::cell_day_gantt(&study.clean, cell, day);
    assert_eq!(g.distinct_cars, distinct);
    assert!(g.distinct_cars >= 5, "{} cars", g.distinct_cars);
    assert!(g.peak.1 >= 2, "peak concurrency {}", g.peak.1);
    assert!(g.peak.1 as usize <= g.distinct_cars);
}

#[test]
fn fig9_short_sessions_with_heavy_tail() {
    let (_, a) = fixture();
    let median = a.durations.median_secs().expect("records");
    // Short connections: tens-to-hundreds of seconds, not hours.
    assert!((20.0..400.0).contains(&median), "median {median}");
    // Meaningful mass beyond the 600 s truncation point (sticky modems
    // + stationary streaming), as in the paper's 27%.
    let at_cap = a.durations.percentile_at_cap();
    assert!((0.5..0.99).contains(&at_cap), "P(≤cap) {at_cap}");
    let (mf, mt) = a.durations.means();
    assert!(mf > mt, "truncation must reduce the mean");
    assert!(mf / mt > 1.5, "full/truncated ratio {:.2}", mf / mt);
}

#[test]
fn fig11_two_clusters_with_concurrency_gap() {
    let (_, a) = fixture();
    let c = a.clustering.as_ref().expect("busy cells exist");
    assert_eq!(c.clusters.len(), 2);
    let lo = &c.clusters[0];
    let hi = &c.clusters[1];
    assert!(hi.peak_cars >= lo.peak_cars);
    // Paper: the high-concurrency cluster is much hotter and much
    // smaller than the low one.
    if lo.peak_cars > 0.0 {
        assert!(
            hi.peak_cars / lo.peak_cars > 2.0,
            "concurrency ratio {:.1}",
            hi.peak_cars / lo.peak_cars
        );
    }
    assert!(lo.cells.len() >= hi.cells.len());
}

#[test]
fn sec45_handover_shape() {
    let (_, a) = fixture();
    let r = &a.handovers;
    let median = r.median().expect("sessions");
    let (p70, p90) = r.p70_p90();
    // Paper: median 2, p70 4, p90 9. Shape: small median, ordered
    // percentiles, single-digit-ish median.
    assert!((0.0..=6.0).contains(&median), "median {median}");
    assert!(p70.unwrap() >= median);
    assert!(p90.unwrap() >= p70.unwrap());
    // Inter-base-station dominates; inter-RAT is negligible.
    assert!(r.kind_fraction(HandoverKind::InterBaseStation) > 0.5);
    assert!(r.kind_fraction(HandoverKind::InterRat) < 0.05);
}

#[test]
fn tab3_carrier_mix_shape() {
    let (_, a) = fixture();
    let u = &a.carriers;
    // C3 carries the most time; C3 + C4 the majority (paper: ~75%).
    let c3 = u.time_frac[Carrier::C3.index()];
    let c4 = u.time_frac[Carrier::C4.index()];
    assert!(c3 > u.time_frac[Carrier::C1.index()]);
    assert!(c3 + c4 > 0.5, "C3+C4 {:.2}", c3 + c4);
    // C5 is essentially unused; C2 is a small slice.
    assert!(u.time_frac[Carrier::C5.index()] < 0.01);
    assert!(u.time_frac[Carrier::C2.index()] < 0.2);
    // Nearly every car touched C1 and C3; C4 reach is partial.
    assert!(u.cars_frac[Carrier::C1.index()] > 0.85);
    assert!(u.cars_frac[Carrier::C3.index()] > 0.95);
    assert!(u.cars_frac[Carrier::C4.index()] < 0.95);
    // Time shares sum to 1.
    assert!((u.time_frac.iter().sum::<f64>() - 1.0).abs() < 1e-9);
}

#[test]
fn fig1_greedy_download_saturates() {
    let (study, a) = fixture();
    let out = Experiment::Fig1.run(study, a).expect("fig1");
    let means = out.data["test_window_means"].as_array().expect("array");
    for m in means {
        assert!(m.as_f64().unwrap() > 0.95, "saturation {m}");
    }
    let baselines = out.data["baseline_window_means"].as_array().expect("array");
    for (t, b) in means.iter().zip(baselines) {
        assert!(t.as_f64().unwrap() > b.as_f64().unwrap());
    }
}

#[test]
fn every_experiment_runs_and_renders() {
    let (study, a) = fixture();
    let outputs = experiments::run_all(study, a).expect("all experiments");
    assert_eq!(outputs.len(), Experiment::ALL.len());
    for o in outputs {
        assert!(o.text.len() > 20, "{} text too short", o.experiment.id());
        assert!(
            o.text.contains(o.experiment.id().get(..3).unwrap_or("Fig"))
                || o.text.to_lowercase().contains("figure")
                || o.text.contains("Table")
                || o.text.contains("§4.5"),
            "{} text lacks a caption",
            o.experiment.id()
        );
    }
}

//! End-to-end determinism: the whole pipeline — region, fleet, faults,
//! cleaning, analyses — must be a pure function of the study seed.

use conncar::{StudyAnalyses, StudyConfig, StudyData};

fn tiny(seed: u64) -> StudyData {
    let mut cfg = StudyConfig::tiny();
    cfg.seed = seed;
    StudyData::generate(&cfg).expect("valid config")
}

#[test]
fn same_seed_identical_trace_and_analyses() {
    let a = tiny(77);
    let b = tiny(77);
    assert_eq!(a.dirty.records(), b.dirty.records());
    assert_eq!(a.clean.records(), b.clean.records());
    assert_eq!(a.fault_report, b.fault_report);
    assert_eq!(a.clean_report, b.clean_report);

    let aa = StudyAnalyses::run(&a).expect("analyses");
    let ab = StudyAnalyses::run(&b).expect("analyses");
    assert_eq!(aa.days_histogram, ab.days_histogram);
    assert_eq!(aa.carriers.time_frac, ab.carriers.time_frac);
    assert_eq!(
        aa.durations.full.values(),
        ab.durations.full.values()
    );
    assert_eq!(aa.handovers.by_kind, ab.handovers.by_kind);
}

#[test]
fn different_seed_different_trace_same_shape() {
    let a = tiny(101);
    let b = tiny(102);
    assert_ne!(a.clean.records(), b.clean.records());
    // But the macroscopic shape is stable: car counts within 15%.
    let ca = a.clean.car_count() as f64;
    let cb = b.clean.car_count() as f64;
    assert!((ca - cb).abs() / ca.max(cb) < 0.15, "{ca} vs {cb}");
}

#[test]
fn thread_count_does_not_change_the_study() {
    let mut cfg1 = StudyConfig::tiny();
    cfg1.fleet.threads = 1;
    let mut cfg4 = StudyConfig::tiny();
    cfg4.fleet.threads = 4;
    let a = StudyData::generate(&cfg1).expect("cfg1");
    let b = StudyData::generate(&cfg4).expect("cfg4");
    assert_eq!(a.clean.records(), b.clean.records());
}

#[test]
fn personas_are_stable_identities() {
    let a = tiny(5);
    let b = tiny(5);
    for (pa, pb) in a.personas.iter().zip(&b.personas) {
        assert_eq!(pa.car, pb.car);
        assert_eq!(pa.archetype, pb.archetype);
        assert_eq!(pa.home, pb.home);
        assert_eq!(pa.capability, pb.capability);
    }
}

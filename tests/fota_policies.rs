//! FOTA campaign policy comparison: the management trade-offs §4.3
//! motivates must hold on the synthetic fleet.

use conncar::{StudyAnalyses, StudyConfig, StudyData};
use conncar_analysis::predict::CarPredictor;
use conncar_fota::policy::PolicyInputs;
use conncar_fota::{CampaignConfig, CampaignPolicy, CampaignSimulator};
use std::sync::OnceLock;

struct Fixture {
    study: StudyData,
    inputs: PolicyInputs,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let mut cfg = StudyConfig::small();
        cfg.fleet.cars = 250;
        let study = StudyData::generate(&cfg).expect("study");
        let analyses = StudyAnalyses::run(&study).expect("analyses");
        let mut inputs = PolicyInputs::default();
        for p in &analyses.profiles {
            inputs.profiles.insert(p.car, *p);
        }
        for (car, records) in study.clean.by_car() {
            inputs.predictors.insert(
                car,
                CarPredictor::train(records, study.config.period, study.region.timezone(), 1),
            );
        }
        Fixture { study, inputs }
    })
}

fn run(policy: CampaignPolicy, image_mb: f64) -> conncar_fota::CampaignResult {
    let f = fixture();
    let load = f.study.load_model();
    let sim = CampaignSimulator::new(&f.study.clean, &load, &f.inputs);
    sim.run(&CampaignConfig::new(image_mb, policy)).expect("campaign")
}

#[test]
fn immediate_is_fastest_but_dirtiest() {
    let immediate = run(CampaignPolicy::Immediate, 400.0);
    let off_peak = run(
        CampaignPolicy::OffPeak {
            max_utilization: 0.8,
        },
        400.0,
    );
    // Immediate completes at least as many cars, at least as fast.
    assert!(immediate.completed >= off_peak.completed);
    // Off-peak never pushes bytes through busy cells; immediate
    // generally does (if any busy overlap exists at all).
    assert_eq!(off_peak.busy_mb, 0.0);
    assert!(immediate.busy_byte_fraction() >= off_peak.busy_byte_fraction());
    // Both deliver substantial bytes.
    assert!(immediate.total_mb > 0.0);
    assert!(off_peak.total_mb > 0.0);
}

#[test]
fn most_of_the_fleet_completes_a_realistic_image() {
    let r = run(CampaignPolicy::Immediate, 400.0);
    assert!(
        r.completion_rate() > 0.8,
        "completion {:.2}",
        r.completion_rate()
    );
    // Completion takes days across the fleet (rare cars appear late).
    let med = r.median_days().expect("completions");
    assert!((0.0..14.0).contains(&med));
}

#[test]
fn rare_first_never_underperforms_off_peak_on_rare_cars() {
    let f = fixture();
    let rare_cutoff = 3; // small study: ≤3 active days is rare
    let rare_first = run(
        CampaignPolicy::RareFirst {
            rare_cutoff_days: rare_cutoff,
            max_utilization: 0.8,
        },
        400.0,
    );
    let off_peak = run(
        CampaignPolicy::OffPeak {
            max_utilization: 0.8,
        },
        400.0,
    );
    // Rare-first is a strict relaxation for rare cars, so fleet-wide
    // completion can only improve.
    assert!(rare_first.completed >= off_peak.completed);
    let _ = f;
}

#[test]
fn predictive_policy_limits_busy_bytes() {
    let predictive = run(
        CampaignPolicy::Predictive {
            min_probability: 0.5,
            max_utilization: 0.8,
        },
        400.0,
    );
    let immediate = run(CampaignPolicy::Immediate, 400.0);
    assert!(predictive.busy_byte_fraction() <= immediate.busy_byte_fraction() + 1e-12);
    // And still completes a solid share of the fleet.
    assert!(
        predictive.completion_rate() > 0.5,
        "predictive completion {:.2}",
        predictive.completion_rate()
    );
}

#[test]
fn gigabyte_images_strand_part_of_the_fleet() {
    let small = run(CampaignPolicy::Immediate, 100.0);
    let huge = run(CampaignPolicy::Immediate, 30_000.0);
    assert!(huge.completed <= small.completed);
    if let (Some(s), Some(h)) = (small.median_days(), huge.median_days()) {
        assert!(h >= s);
    }
}

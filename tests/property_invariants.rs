//! Cross-crate property tests: codec round trips, sessionizer
//! invariants and truncation laws over arbitrary record sets.

use conncar_cdr::{
    truncate_records, BinaryCodec, CdrDataset, CdrRecord, CsvCodec, SessionConfig, Sessionizer,
};
use conncar_types::{
    BaseStationId, CarId, Carrier, CellId, DayOfWeek, Duration, StudyPeriod, Timestamp,
};
use proptest::prelude::*;

/// Strategy: an arbitrary valid CDR record inside a 90-day window.
fn arb_record() -> impl Strategy<Value = CdrRecord> {
    (
        0u32..50,          // car
        0u32..200,         // station
        0u8..3,            // sector
        0usize..5,         // carrier index
        0u64..89 * 86_400, // start
        1u64..7_200,       // duration
    )
        .prop_map(|(car, station, sector, carrier, start, dur)| CdrRecord {
            car: CarId(car),
            cell: CellId::new(
                BaseStationId(station),
                sector,
                Carrier::from_index(carrier).expect("index < 5"),
            ),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        })
}

fn period() -> StudyPeriod {
    StudyPeriod::new(DayOfWeek::Monday, 90).expect("nonzero")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn binary_codec_round_trips(records in proptest::collection::vec(arb_record(), 0..200)) {
        let encoded = BinaryCodec::encode(&records);
        let decoded = BinaryCodec::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn csv_codec_round_trips(records in proptest::collection::vec(arb_record(), 0..100)) {
        let encoded = CsvCodec::encode(&records);
        let decoded = CsvCodec::decode(&encoded).expect("own encoding decodes");
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn binary_decode_never_panics_on_corruption(
        records in proptest::collection::vec(arb_record(), 1..30),
        flip_at in 0usize..1_000,
        flip_to in 0u8..=255,
    ) {
        let mut bytes = BinaryCodec::encode(&records).to_vec();
        let idx = flip_at % bytes.len();
        bytes[idx] = flip_to;
        // Must return Ok or Err — never panic, never loop.
        let _ = BinaryCodec::decode(&bytes);
    }

    #[test]
    fn sessionizer_conserves_connected_time(
        records in proptest::collection::vec(arb_record(), 0..300),
        gap_secs in 1u64..3_600,
    ) {
        let ds = CdrDataset::new(period(), records);
        let total: u64 = ds.records().iter().map(|r| r.duration().as_secs()).sum();
        let sessions = Sessionizer::new(SessionConfig {
            max_gap: Duration::from_secs(gap_secs),
        })
        .sessions(&ds);
        let session_total: u64 = sessions.iter().map(|s| s.connected.as_secs()).sum();
        // Connected time is conserved exactly (gaps excluded, overlaps
        // double-count in both views).
        prop_assert_eq!(session_total, total);
        // Record counts conserved.
        let n: usize = sessions.iter().map(|s| s.record_count).sum();
        prop_assert_eq!(n, ds.len());
        // Sessions are per-car, time-ordered, and respect the gap.
        for s in &sessions {
            prop_assert!(s.end >= s.start);
            prop_assert!(!s.cells.is_empty());
        }
    }

    #[test]
    fn sessionizer_gap_monotonicity(
        records in proptest::collection::vec(arb_record(), 0..200),
    ) {
        // A larger gap can only merge sessions, never split them.
        let ds = CdrDataset::new(period(), records);
        let count = |gap: u64| {
            Sessionizer::new(SessionConfig {
                max_gap: Duration::from_secs(gap),
            })
            .sessions(&ds)
            .len()
        };
        let c30 = count(30);
        let c600 = count(600);
        let c3600 = count(3_600);
        prop_assert!(c600 <= c30);
        prop_assert!(c3600 <= c600);
    }

    #[test]
    fn truncation_laws(
        records in proptest::collection::vec(arb_record(), 0..200),
        cap_secs in 1u64..7_200,
    ) {
        let cap = Duration::from_secs(cap_secs);
        let truncated = truncate_records(&records, cap);
        prop_assert_eq!(truncated.len(), records.len());
        for (t, r) in truncated.iter().zip(&records) {
            prop_assert!(t.duration() <= cap);
            prop_assert!(t.duration() <= r.duration());
            prop_assert_eq!(t.start, r.start);
            prop_assert_eq!(t.car, r.car);
            prop_assert_eq!(t.cell, r.cell);
            // Idempotent.
        }
        let twice = truncate_records(&truncated, cap);
        prop_assert_eq!(twice, truncated);
    }

    #[test]
    fn dataset_canonical_order_is_stable(
        records in proptest::collection::vec(arb_record(), 0..200),
    ) {
        let ds = CdrDataset::new(period(), records.clone());
        let mut expected = records;
        expected.sort_by_key(|r| (r.car, r.start, r.cell));
        prop_assert_eq!(ds.records(), &expected[..]);
        // by_car covers every record exactly once, grouped.
        let total: usize = ds.by_car().map(|(_, rs)| rs.len()).sum();
        prop_assert_eq!(total, ds.len());
        let mut last_car = None;
        for (car, rs) in ds.by_car() {
            prop_assert!(!rs.is_empty());
            prop_assert!(rs.iter().all(|r| r.car == car));
            if let Some(lc) = last_car {
                prop_assert!(car > lc);
            }
            last_car = Some(car);
        }
    }
}

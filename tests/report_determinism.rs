//! Double-run determinism of the full report surface.
//!
//! `store_equivalence.rs` proves the store path reports the same thing
//! as the legacy path; this test proves the whole pipeline reports the
//! same thing as *itself*: regenerating the study and re-running every
//! analysis — twice, from the same config — must render byte-identical
//! reports, and so must runs whose only difference is the store's shard
//! count. This is the property the conncar-lint rules (L1 ordered
//! iteration, L2 seeded randomness) exist to protect; the gate catches
//! the hazard class statically, this test catches it behaviorally.

use conncar::report::render_full_report;
use conncar::telemetry::{run_instrumented, run_instrumented_captured, run_instrumented_replayed};
use conncar::{StudyAnalyses, StudyConfig, StudyData};
use conncar_obs::NullClock;
use conncar_store::CdrStore;
use proptest::prelude::*;
use std::sync::Arc;

#[test]
fn small_study_double_run_is_byte_identical_across_shard_counts() {
    let cfg = StudyConfig::small();

    let run = |shards: usize| -> String {
        let study = StudyData::generate(&cfg).expect("study generates");
        let store = CdrStore::build(&study.clean, shards);
        let analyses = StudyAnalyses::run_with_store(&study, &store).expect("analyses run");
        render_full_report(&analyses)
    };

    // Same config, same shard count, fresh end-to-end run: the report
    // must not depend on anything but the config.
    let first_2 = run(2);
    let second_2 = run(2);
    assert_eq!(first_2, second_2, "shards=2: double run diverged");

    // A co-prime shard count changes every scan partition; the report
    // must not notice.
    let first_7 = run(7);
    let second_7 = run(7);
    assert_eq!(first_7, second_7, "shards=7: double run diverged");
    assert_eq!(first_2, first_7, "shards=2 vs 7: report depends on sharding");

    // Paranoia: the report is non-trivial (a bug that renders nothing
    // would pass every equality above).
    assert!(first_2.len() > 1_000, "report suspiciously short");
}

/// The telemetry artifact obeys the same law as the report: under the
/// `NullClock` (every wall reading zero) `RUN_OBS.json` must be a pure
/// function of the study config and the shard count. Unlike the
/// report, the artifact is *allowed* to vary with the shard count —
/// the `store_build` subtree has one child per shard, and scan
/// accounting (rows scanned, shards pruned) follows the partition —
/// but two runs with identical inputs must produce identical bytes.
#[test]
fn run_obs_json_double_run_is_byte_identical_under_null_clock() {
    let cfg = StudyConfig::tiny();

    let run = |shards: usize| -> String {
        let (_, _, _, telemetry) = run_instrumented(&cfg, Arc::new(NullClock), Some(shards))
            .expect("instrumented run");
        telemetry.to_json()
    };

    for shards in [2usize, 7] {
        let first = run(shards);
        let second = run(shards);
        assert_eq!(first, second, "shards={shards}: RUN_OBS.json diverged");
        // Non-trivial artifact, fully untimed: every span serializes a
        // zero wall reading and a zero derived rate.
        assert!(first.len() > 1_000, "RUN_OBS.json suspiciously short");
        assert!(first.contains("\"clock\": \"null\""));
        assert!(!first.contains("\"wall_ns\": 1"));
        for stage in ["\"name\": \"salvage\"", "\"name\": \"clean\"", "store_build"] {
            assert!(first.contains(stage), "shards={shards}: missing {stage}");
        }
    }
}

proptest! {
    // Each case runs the pipeline twice (capture + replay), so keep the
    // case count small; the fault-space coverage comes from the ranges,
    // not the volume.
    #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

    /// Record → replay is lossless for *arbitrary* fault schedules and
    /// seeds, not just the golden corpus: a captured run replayed from
    /// its damaged stream and applied fault report reproduces the run
    /// ledger and `RUN_OBS.json` byte for byte, and regenerates the
    /// same ground truth.
    #[test]
    fn record_then_replay_reproduces_report_and_obs_bytes(
        seed in any::<u64>(),
        shards in 1usize..=7,
        duplicate_p in 0.0f64..0.1,
        overlap_p in 0.0f64..0.05,
        skew_car_p in 0.0f64..0.3,
        skew_record_p in 0.0f64..0.6,
        reorder_chunk_p in 0.0f64..0.5,
        corrupt_chunk_p in 0.0f64..0.3,
        truncate_tail_p in 0.0f64..1.0,
    ) {
        let mut cfg = StudyConfig::tiny();
        cfg.seed = seed;
        cfg.fleet.cars = 40;
        cfg.faults.duplicate_p = duplicate_p;
        cfg.faults.overlap_p = overlap_p;
        cfg.faults.skew_car_p = skew_car_p;
        cfg.faults.skew_record_p = skew_record_p;
        cfg.faults.reorder_chunk_p = reorder_chunk_p;
        cfg.faults.corrupt_chunk_p = corrupt_chunk_p;
        cfg.faults.truncate_tail_p = truncate_tail_p;
        cfg.faults.chunk_records = 64;

        let (study, _, _, telemetry, capture) =
            run_instrumented_captured(&cfg, Arc::new(NullClock), Some(shards))
                .expect("captured run");
        let (replayed, _, _, replayed_telemetry, truth_digest) = run_instrumented_replayed(
            &cfg,
            Arc::new(NullClock),
            shards,
            &capture.damaged_stream,
            study.fault_report.clone(),
            capture.records_collected,
        )
        .expect("replayed run");

        let recorded_report =
            serde_json::to_string(&study.run_report).expect("run report serializes");
        let replayed_report =
            serde_json::to_string(&replayed.run_report).expect("run report serializes");
        prop_assert_eq!(recorded_report, replayed_report);
        prop_assert_eq!(telemetry.to_json(), replayed_telemetry.to_json());
        prop_assert_eq!(truth_digest, capture.truth_digest);
    }
}

//! Double-run determinism of the full report surface.
//!
//! `store_equivalence.rs` proves the store path reports the same thing
//! as the legacy path; this test proves the whole pipeline reports the
//! same thing as *itself*: regenerating the study and re-running every
//! analysis — twice, from the same config — must render byte-identical
//! reports, and so must runs whose only difference is the store's shard
//! count. This is the property the conncar-lint rules (L1 ordered
//! iteration, L2 seeded randomness) exist to protect; the gate catches
//! the hazard class statically, this test catches it behaviorally.

use conncar::report::render_full_report;
use conncar::{StudyAnalyses, StudyConfig, StudyData};
use conncar_store::CdrStore;

#[test]
fn small_study_double_run_is_byte_identical_across_shard_counts() {
    let cfg = StudyConfig::small();

    let run = |shards: usize| -> String {
        let study = StudyData::generate(&cfg).expect("study generates");
        let store = CdrStore::build(&study.clean, shards);
        let analyses = StudyAnalyses::run_with_store(&study, &store).expect("analyses run");
        render_full_report(&analyses)
    };

    // Same config, same shard count, fresh end-to-end run: the report
    // must not depend on anything but the config.
    let first_2 = run(2);
    let second_2 = run(2);
    assert_eq!(first_2, second_2, "shards=2: double run diverged");

    // A co-prime shard count changes every scan partition; the report
    // must not notice.
    let first_7 = run(7);
    let second_7 = run(7);
    assert_eq!(first_7, second_7, "shards=7: double run diverged");
    assert_eq!(first_2, first_7, "shards=2 vs 7: report depends on sharding");

    // Paranoia: the report is non-trivial (a bug that renders nothing
    // would pass every equality above).
    assert!(first_2.len() > 1_000, "report suspiciously short");
}

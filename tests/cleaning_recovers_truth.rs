//! Methodology validation: the §3 pre-processing pipeline against
//! ground truth only a synthetic study can provide.

use conncar::{StudyConfig, StudyData};
use conncar_analysis::temporal::daily_presence;
use conncar_cdr::truncate_records;
use conncar_types::Duration;

fn study() -> StudyData {
    StudyData::generate(&StudyConfig::tiny()).expect("valid config")
}

#[test]
fn cleaning_drops_every_injected_hour_glitch() {
    let s = study();
    // No exact-1-hour record survives.
    assert!(s
        .clean
        .records()
        .iter()
        .all(|r| r.duration().as_secs() != 3_600));
    // Everything cleaning dropped is accounted for.
    assert_eq!(s.dirty.len(), s.clean.len() + s.clean_report.dropped_total());
    // Legacy-only faults: the newer stages must not fire at all, so the
    // staged pipeline's counts coincide with the old single-pass ones.
    assert_eq!(s.clean_report.dropped_duplicates, 0);
    assert_eq!(s.clean_report.dropped_overlaps, 0);
    assert!(s.clean_report.dropped_glitches >= s.fault_report.hour_glitches);
}

#[test]
fn loss_days_show_the_figure2_dip() {
    let s = study();
    let presence = daily_presence(&s.clean, s.total_cars());
    let fracs = presence.car_fractions();
    // Day 4 is the injected loss day in the tiny config. Compare to the
    // same-weekday neighbourhood (here: the mean of other weekdays).
    let loss = fracs[4];
    let others: Vec<f64> = (0..fracs.len() as u64)
        .filter(|d| *d != 4 && presence.days[*d as usize].weekday.is_weekday())
        .map(|d| fracs[d as usize])
        .collect();
    let mean_others = others.iter().sum::<f64>() / others.len() as f64;
    assert!(
        loss < mean_others,
        "loss day {loss:.3} should dip below weekday mean {mean_others:.3}"
    );
}

#[test]
fn truncation_bounds_sticky_damage() {
    let s = study();
    // The sticky artifacts inflate total connected time; truncation at
    // 600 s caps each record, so the truncated total must be well below
    // the dirty full total and every truncated duration ≤ 600 s.
    let cap = Duration::from_secs(600);
    let truncated = truncate_records(s.clean.records(), cap);
    assert!(truncated.iter().all(|r| r.duration() <= cap));
    let full: u64 = s
        .clean
        .records()
        .iter()
        .map(|r| r.duration().as_secs())
        .sum();
    let trunc: u64 = truncated.iter().map(|r| r.duration().as_secs()).sum();
    assert!(trunc < full);
    // Sticky injection is several percent of records with multi-hundred
    // second tails: expect a visible gap.
    assert!(
        (full - trunc) as f64 / full as f64 > 0.10,
        "truncation removed only {:.1}%",
        (full - trunc) as f64 / full as f64 * 100.0
    );
}

#[test]
fn lost_records_are_gone_for_good() {
    let s = study();
    // The dirty dataset is smaller than ground truth by exactly the
    // lost count (glitch/sticky rewrite but do not remove).
    // Ground truth size = dirty + lost.
    let truth_len = s.dirty.len() + s.fault_report.lost;
    assert!(s.fault_report.lost > 0, "tiny config injects a loss day");
    assert!(truth_len > s.dirty.len());
}

/// Tiny config with every record-level fault disabled, so each test
/// below can enable exactly the class it exercises.
fn quiet_cfg() -> StudyConfig {
    let mut cfg = StudyConfig::tiny();
    cfg.faults.hour_glitch_p = 0.0;
    cfg.faults.loss_days = vec![];
    cfg.faults.loss_fraction = 0.0;
    cfg.faults.sticky_p = 0.0;
    cfg
}

#[test]
fn duplicates_are_removed_exactly() {
    let mut cfg = quiet_cfg();
    cfg.faults.duplicate_p = 0.05;
    let s = StudyData::generate(&cfg).expect("valid config");
    assert!(s.fault_report.duplicated > 0);
    // Every injected extra copy — and nothing else — is dropped, so the
    // clean dataset is the ground truth, record for record.
    assert_eq!(s.clean_report.dropped_duplicates, s.fault_report.duplicated);
    assert_eq!(s.clean_report.dropped_total(), s.fault_report.duplicated);
    assert_eq!(s.run_report.truth_missing_from_clean, 0);
    assert_eq!(s.run_report.clean_not_in_truth, 0);
    assert_eq!(s.run_report.fidelity(), 1.0);
    assert!(s.run_report.reconciles());
}

#[test]
fn skewed_records_are_quarantined_as_malformed() {
    use conncar_cdr::RejectReason;
    let mut cfg = quiet_cfg();
    cfg.faults.skew_car_p = 0.2;
    cfg.faults.skew_record_p = 0.5;
    let s = StudyData::generate(&cfg).expect("valid config");
    assert!(s.fault_report.skewed > 0);
    // Every clock-skewed record lands in quarantine as malformed; no
    // other stage fires.
    assert_eq!(s.clean_report.dropped_malformed, s.fault_report.skewed);
    assert_eq!(
        s.quarantine.count(RejectReason::Malformed),
        s.fault_report.skewed
    );
    assert_eq!(s.quarantine.len(), s.clean_report.dropped_total());
    assert!(s.quarantine.entries().iter().all(|q| !q.record.is_valid()));
    assert!(s.run_report.reconciles());
}

#[test]
fn overlap_resolution_recovers_truth_and_is_idempotent() {
    use conncar_cdr::{CleanConfig, Cleaner};
    let mut cfg = quiet_cfg();
    cfg.faults.overlap_p = 0.05;
    cfg.clean.resolve_overlaps = true;
    let s = StudyData::generate(&cfg).expect("valid config");
    assert!(s.fault_report.overlaps > 0);
    // Each ghost nests strictly inside its host, so resolution removes
    // exactly the ghosts and the clean dataset equals ground truth.
    assert_eq!(s.clean_report.dropped_overlaps, s.fault_report.overlaps);
    assert_eq!(s.run_report.fidelity(), 1.0);
    assert_eq!(s.run_report.clean_not_in_truth, 0);
    // Idempotent: a second pass over the cleaned data drops nothing.
    let cleaner = Cleaner::new(CleanConfig {
        resolve_overlaps: true,
        ..CleanConfig::default()
    });
    let (again, report) = cleaner.clean(&s.clean);
    assert_eq!(report.dropped_total(), 0);
    assert_eq!(again.records(), s.clean.records());
}

#[test]
fn corrupted_stream_round_trip_reconciles_per_class() {
    let mut cfg = StudyConfig::tiny();
    cfg.faults.corrupt_chunk_p = 0.2;
    cfg.faults.truncate_tail_p = 1.0;
    cfg.faults.chunk_records = 128;
    let s = StudyData::generate(&cfg).expect("valid config");
    assert!(s.fault_report.corrupted_chunks > 0, "wire damage happened");
    // The reader's ledger matches the injector's, class by class …
    assert_eq!(
        s.ingest_report.records_lost_corrupt,
        s.fault_report.corrupted_records as u64
    );
    assert_eq!(
        s.ingest_report.records_lost_truncated,
        s.fault_report.truncated_records as u64
    );
    // … and records yielded + records lost = records written.
    assert_eq!(
        s.ingest_report.records_accounted(),
        s.run_report.records_collected as u64
    );
    assert!(s.run_report.reconciles());
}

//! Methodology validation: the §3 pre-processing pipeline against
//! ground truth only a synthetic study can provide.

use conncar::{StudyConfig, StudyData};
use conncar_analysis::temporal::daily_presence;
use conncar_cdr::truncate_records;
use conncar_types::Duration;

fn study() -> StudyData {
    StudyData::generate(&StudyConfig::tiny()).expect("valid config")
}

#[test]
fn cleaning_drops_every_injected_hour_glitch() {
    let s = study();
    // No exact-1-hour record survives.
    assert!(s
        .clean
        .records()
        .iter()
        .all(|r| r.duration().as_secs() != 3_600));
    // Everything cleaning dropped is accounted for.
    assert_eq!(
        s.dirty.len(),
        s.clean.len() + s.clean_report.dropped_glitches + s.clean_report.dropped_malformed
    );
    assert!(s.clean_report.dropped_glitches >= s.fault_report.hour_glitches);
}

#[test]
fn loss_days_show_the_figure2_dip() {
    let s = study();
    let presence = daily_presence(&s.clean, s.total_cars());
    let fracs = presence.car_fractions();
    // Day 4 is the injected loss day in the tiny config. Compare to the
    // same-weekday neighbourhood (here: the mean of other weekdays).
    let loss = fracs[4];
    let others: Vec<f64> = (0..fracs.len() as u64)
        .filter(|d| *d != 4 && presence.days[*d as usize].weekday.is_weekday())
        .map(|d| fracs[d as usize])
        .collect();
    let mean_others = others.iter().sum::<f64>() / others.len() as f64;
    assert!(
        loss < mean_others,
        "loss day {loss:.3} should dip below weekday mean {mean_others:.3}"
    );
}

#[test]
fn truncation_bounds_sticky_damage() {
    let s = study();
    // The sticky artifacts inflate total connected time; truncation at
    // 600 s caps each record, so the truncated total must be well below
    // the dirty full total and every truncated duration ≤ 600 s.
    let cap = Duration::from_secs(600);
    let truncated = truncate_records(s.clean.records(), cap);
    assert!(truncated.iter().all(|r| r.duration() <= cap));
    let full: u64 = s
        .clean
        .records()
        .iter()
        .map(|r| r.duration().as_secs())
        .sum();
    let trunc: u64 = truncated.iter().map(|r| r.duration().as_secs()).sum();
    assert!(trunc < full);
    // Sticky injection is several percent of records with multi-hundred
    // second tails: expect a visible gap.
    assert!(
        (full - trunc) as f64 / full as f64 > 0.10,
        "truncation removed only {:.1}%",
        (full - trunc) as f64 / full as f64 * 100.0
    );
}

#[test]
fn lost_records_are_gone_for_good() {
    let s = study();
    // The dirty dataset is smaller than ground truth by exactly the
    // lost count (glitch/sticky rewrite but do not remove).
    // Ground truth size = dirty + lost.
    let truth_len = s.dirty.len() + s.fault_report.lost;
    assert!(s.fault_report.lost > 0, "tiny config injects a loss day");
    assert!(truth_len > s.dirty.len());
}

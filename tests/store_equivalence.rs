//! Store-path ≡ legacy-path equivalence.
//!
//! The tentpole contract of the conncar-store subsystem: rewiring the
//! analyses through the sharded columnar store changes *how* records are
//! scanned, never *what* any analysis reports. Every structured result
//! must be equal field-for-field and the rendered study report must be
//! byte-identical, on both the tiny and small study configurations, for
//! any shard count.

use conncar::report::render_full_report;
use conncar::{build_streamed, BuildConfig, StudyAnalyses, StudyConfig, StudyData};
use conncar_store::{CdrStore, Filter};

/// Field-for-field equality of two analysis runs (`query_stats` is
/// excluded by design: it reports cost, not results).
fn assert_same_results(a: &StudyAnalyses, b: &StudyAnalyses, ctx: &str) {
    assert_eq!(a.presence, b.presence, "{ctx}: presence");
    assert_eq!(a.weekday_table, b.weekday_table, "{ctx}: weekday_table");
    assert_eq!(a.connected_time, b.connected_time, "{ctx}: connected_time");
    assert_eq!(a.profiles, b.profiles, "{ctx}: profiles");
    assert_eq!(a.days_histogram, b.days_histogram, "{ctx}: days_histogram");
    assert_eq!(a.segmentation, b.segmentation, "{ctx}: segmentation");
    assert_eq!(a.busy_time, b.busy_time, "{ctx}: busy_time");
    assert_eq!(a.durations, b.durations, "{ctx}: durations");
    assert_eq!(a.concurrency, b.concurrency, "{ctx}: concurrency");
    assert_eq!(a.clustering, b.clustering, "{ctx}: clustering");
    assert_eq!(a.handovers, b.handovers, "{ctx}: handovers");
    assert_eq!(a.carriers, b.carriers, "{ctx}: carriers");
    assert_eq!(a.sample_cars, b.sample_cars, "{ctx}: sample_cars");
}

fn check_config(cfg: StudyConfig, shard_counts: &[usize], label: &str) {
    let study = StudyData::generate(&cfg).expect("study generates");
    let legacy = StudyAnalyses::run_legacy(&study).expect("legacy path");
    let legacy_report = render_full_report(&legacy);

    // The default path (auto-sized store).
    let auto = StudyAnalyses::run(&study).expect("store path");
    assert_same_results(&auto, &legacy, &format!("{label}/auto"));
    assert_eq!(
        render_full_report(&auto),
        legacy_report,
        "{label}/auto: report bytes"
    );
    // The store path actually went through the store.
    assert!(auto.query_stats.rows_scanned >= study.clean.len() as u64);
    assert!(auto.query_stats.shards_scanned > 0);

    // Explicit shard counts, including degenerate single-shard.
    for &shards in shard_counts {
        let store = CdrStore::build(&study.clean, shards);
        let got = StudyAnalyses::run_with_store(&study, &store).expect("store path");
        assert_same_results(&got, &legacy, &format!("{label}/shards={shards}"));
        assert_eq!(
            render_full_report(&got),
            legacy_report,
            "{label}/shards={shards}: report bytes"
        );
    }
}

#[test]
fn tiny_study_store_path_is_byte_identical() {
    check_config(StudyConfig::tiny(), &[1, 2, 7, 64], "tiny");
}

#[test]
fn small_study_store_path_is_byte_identical() {
    check_config(StudyConfig::small(), &[1, 7], "small");
}

/// The out-of-core streaming build must land the *same study* as the
/// batch path: identical store contents record-for-record, identical
/// structured analyses, and a byte-identical rendered report — for
/// every pinned shard count, with a chunk size small enough that the
/// fixture streams in several uneven chunks.
fn check_streamed(cfg: StudyConfig, shard_counts: &[usize], label: &str) {
    let batch = StudyData::generate(&cfg).expect("batch build");
    let legacy = StudyAnalyses::run_legacy(&batch).expect("legacy path");
    let legacy_report = render_full_report(&legacy);

    for &shards in shard_counts {
        let mut scfg = cfg.clone();
        // A chunk size that slices the fleet unevenly, so chunking
        // actually happens (never a single whole-fleet chunk).
        scfg.build = Some(BuildConfig {
            chunk_cars: (cfg.fleet.cars / 3).max(1),
            segment_hours: 6,
        });
        let streamed = build_streamed(&scfg, shards).expect("streamed build");
        assert!(
            streamed.chunks.len() >= 3,
            "{label}/shards={shards}: expected >=3 chunks, got {}",
            streamed.chunks.len()
        );
        assert_eq!(streamed.store.shard_count(), shards, "{label}: shard count");

        // Store contents: the streamed segments hold exactly the batch
        // clean dataset (collect() + re-sort == batch clean).
        let batch_store = CdrStore::build(&batch.clean, shards);
        let (mut streamed_rows, _) = streamed.store.collect(&Filter::all());
        let (mut batch_rows, _) = batch_store.collect(&Filter::all());
        let key = |r: &conncar_cdr::CdrRecord| {
            (r.car.0, r.start.as_secs(), r.end.as_secs(), r.cell.station.0)
        };
        streamed_rows.sort_unstable_by_key(key);
        batch_rows.sort_unstable_by_key(key);
        assert_eq!(
            streamed_rows, batch_rows,
            "{label}/shards={shards}: stored records"
        );

        // Analyses and report, served straight off the streamed store.
        let (study, store) = streamed.into_study();
        assert_eq!(study.clean, batch.clean, "{label}/shards={shards}: clean");
        assert_eq!(
            study.run_report, batch.run_report,
            "{label}/shards={shards}: run report"
        );
        let got = StudyAnalyses::run_with_store(&study, &store).expect("streamed store path");
        assert_same_results(&got, &legacy, &format!("{label}/streamed/shards={shards}"));
        assert_eq!(
            render_full_report(&got),
            legacy_report,
            "{label}/streamed/shards={shards}: report bytes"
        );
    }
}

#[test]
fn tiny_streamed_build_is_byte_identical_to_legacy() {
    check_streamed(StudyConfig::tiny(), &[1, 2, 7], "tiny");
}

#[test]
fn small_streamed_build_is_byte_identical_to_legacy() {
    check_streamed(StudyConfig::small(), &[1, 2, 7], "small");
}

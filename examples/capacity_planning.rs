//! Capacity planning from the measurement study — §4.7 and §5 in
//! action.
//!
//! 1. Cluster the fleet by *observable* behaviour (days active, busy
//!    affinity, regularity, commute/weekend mass, hours per day) and
//!    check against the hidden ground-truth archetypes — the paper's
//!    closing claim that "it is possible to classify cars".
//! 2. Cluster the busy radios by concurrent-car profiles (Figure 11) to
//!    find where campaign traffic would hurt.
//! 3. Run a staged (canary) FOTA rollout and print its day-by-day
//!    progress curve next to an all-at-once blast.
//!
//! ```sh
//! cargo run --release --example capacity_planning -- [--cars N] [--days N]
//! ```

use conncar::{StudyAnalyses, StudyConfig, StudyData};
use conncar_analysis::carclusters::{behavior_vectors, cluster_cars, purity};
use conncar_fota::policy::PolicyInputs;
use conncar_fota::{CampaignConfig, CampaignPolicy, CampaignSimulator, RolloutPlan};
use conncar_types::{DayOfWeek, StudyPeriod};

fn main() {
    let (cars, days) = parse_args();
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = cars;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, days).expect("days >= 1");
    eprintln!("generating study: {cars} cars x {days} days ...");
    let study = StudyData::generate(&cfg).expect("valid config");
    let analyses = StudyAnalyses::run(&study).expect("analyses");

    // --- 1. behaviour clustering of the fleet -------------------------
    let vectors = behavior_vectors(
        &study.clean,
        &analyses.profiles,
        study.config.period,
        study.region.timezone(),
    );
    let clustering = cluster_cars(&vectors, 0, cfg.seed).expect("cars exist");
    println!(
        "== fleet behaviour clusters (k = {} chosen by silhouette) ==",
        clustering.k
    );
    println!(
        "{:<8} {:>6} {:>10} {:>8} {:>10} {:>10} {:>10}",
        "cluster", "cars", "days-act", "busy%", "regular", "commute", "weekend"
    );
    for (i, centroid) in clustering.centroids.iter().enumerate() {
        println!(
            "{:<8} {:>6} {:>9.0}% {:>7.1}% {:>10.2} {:>9.0}% {:>9.0}%",
            i,
            clustering.sizes[i],
            centroid[0] * 100.0,
            centroid[1] * 100.0,
            centroid[2],
            centroid[3] * 100.0,
            centroid[4] * 100.0,
        );
    }
    // Purity against the hidden archetypes (unknowable to the paper's
    // authors; our synthetic ground truth makes the claim testable).
    let archetype_of: std::collections::HashMap<_, _> = study
        .personas
        .iter()
        .map(|p| (p.car, p.archetype))
        .collect();
    let labels: Vec<_> = vectors.iter().map(|v| archetype_of[&v.car]).collect();
    println!(
        "cluster purity vs hidden archetypes: {:.1}% (chance ≈ largest archetype share, 36%)\n",
        purity(&clustering.assignments, &labels, clustering.k) * 100.0
    );

    // --- 2. busy-radio clusters (Figure 11) ---------------------------
    if let Some(c) = &analyses.clustering {
        println!("{}", conncar::report::render_fig11(c));
    }

    // --- 3. staged vs all-at-once FOTA rollout ------------------------
    let mut inputs = PolicyInputs::default();
    for p in &analyses.profiles {
        inputs.profiles.insert(p.car, *p);
    }
    let load = study.load_model();
    let sim = CampaignSimulator::new(&study.clean, &load, &inputs);
    let image_mb = 900.0;
    let blast = sim
        .run(&CampaignConfig::new(image_mb, CampaignPolicy::Immediate))
        .expect("campaign");
    let staged = sim
        .run(
            &CampaignConfig::new(
                image_mb,
                CampaignPolicy::OffPeak {
                    max_utilization: 0.8,
                },
            )
            .with_rollout(RolloutPlan::canary(days as f64 * 0.15, days as f64 * 0.4)),
        )
        .expect("campaign");
    println!("== {image_mb} MB FOTA rollout: all-at-once blast vs canary+off-peak ==");
    println!(
        "{:<22} {:>10} {:>12} {:>12}",
        "plan", "completed", "median days", "busy bytes%"
    );
    for (label, r) in [("immediate blast", &blast), ("canary + off-peak", &staged)] {
        println!(
            "{:<22} {:>10} {:>12.2} {:>11.1}%",
            label,
            r.completed,
            r.median_days().unwrap_or(f64::NAN),
            r.busy_byte_fraction() * 100.0
        );
    }
    println!("\nper-day completions (canary plan):");
    let max = staged
        .completions_per_day
        .iter()
        .copied()
        .max()
        .unwrap_or(1)
        .max(1);
    for (day, n) in staged.completions_per_day.iter().enumerate() {
        let bar_len = (*n as f64 / max as f64 * 40.0).round() as usize;
        println!("day {day:>3} {n:>6}  {}", "█".repeat(bar_len));
    }
}

fn parse_args() -> (u32, u32) {
    let mut cars = 600u32;
    let mut days = 14u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next().and_then(|s| s.parse::<u32>().ok());
        match flag.as_str() {
            "--cars" => cars = val.expect("--cars N"),
            "--days" => days = val.expect("--days N"),
            _ => {
                eprintln!("usage: capacity_planning [--cars N] [--days N]");
                std::process::exit(2);
            }
        }
    }
    (cars, days)
}

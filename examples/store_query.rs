//! Ad-hoc queries against the sharded columnar CDR store.
//!
//! Builds a small study, lays the cleaned dataset into a [`CdrStore`],
//! and runs the kinds of queries the analyses are built from: indexed
//! point lookups, time-window counts, and a parallel fold.
//!
//! ```text
//! cargo run --example store_query
//! ```

use conncar::{StudyConfig, StudyData};
use conncar_store::{CdrStore, Filter, RecordKind};
use conncar_types::{Duration, Timestamp};

fn main() {
    let cfg = StudyConfig::tiny();
    let study = StudyData::generate(&cfg).expect("study generates");

    // One-time layout: records are hashed by car into columnar shards,
    // each with car/cell/time indexes.
    let store = CdrStore::build_auto(&study.clean);
    println!(
        "store: {} records in {} shards over {} days",
        store.len(),
        store.shard_count(),
        cfg.period.days()
    );

    // Indexed lookup: one car's full connection history. The car
    // directory routes this to a single shard and a contiguous row span.
    let car = study.clean.records()[0].car;
    let (history, stats) = store.collect(&Filter::all().car(car));
    println!(
        "car {car}: {} connections (scanned {} rows in {} of {} shards)",
        history.len(),
        stats.rows_scanned,
        stats.shards_scanned,
        store.shard_count()
    );

    // Time-window count: Wednesday's short connections (< 5 min), via
    // the per-shard time index.
    let wed = Filter::all()
        .window(Timestamp::from_day_and_secs(2, 0), Timestamp::from_day_and_secs(3, 0))
        .kind(RecordKind::ShorterThan(Duration::from_secs(300)));
    let (short, stats) = store.count(&wed);
    println!(
        "short connections on day 2: {short} ({} rows scanned, {} shards pruned)",
        stats.rows_scanned, stats.shards_pruned
    );

    // Parallel fold: total connected seconds per carrier, one scan.
    let (per_carrier, stats) = store.scan_fold(
        &Filter::all(),
        || [0u64; 5],
        |acc, r| acc[r.cell.carrier.index()] += r.duration().as_secs(),
        |mut a, b| {
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    );
    println!(
        "connected seconds by carrier: {per_carrier:?} ({:.0}k rows/s)",
        stats.rows_per_sec() / 1e3
    );
}

//! The data-plane pipeline, end to end: generate a ground-truth trace,
//! push it through the "collection system" (anonymization + binary
//! encoding + the real-world faults of §3), then play the researcher:
//! decode, clean, sessionize, and verify what survived.
//!
//! ```sh
//! cargo run --release --example trace_pipeline -- [--cars N] [--days N]
//! ```

use conncar::{StudyConfig, StudyData};
use conncar_cdr::{
    AggregateSession, Anonymizer, BinaryCodec, CsvCodec, SessionConfig, Sessionizer,
};
use conncar_types::{DayOfWeek, StudyPeriod};

fn main() {
    let (cars, days) = parse_args();
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = cars;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, days).expect("days >= 1");
    let study = StudyData::generate(&cfg).expect("valid config");

    println!("== collection side ==");
    println!(
        "ground truth: {} records ({} after fault injection)",
        study.dirty.len() + study.fault_report.lost,
        study.dirty.len()
    );

    // Anonymization boundary: verify injectivity over the fleet.
    let anon = Anonymizer::new(cfg.seed ^ 0x5A17);
    let table = anon
        .build_table(cfg.fleet.cars)
        .expect("no pseudonym collisions");
    println!(
        "anonymizer: {} pseudonyms, e.g. car 0 -> {}",
        table.len(),
        anon.anonymize(conncar_types::CarId(0))
    );

    // Wire format round trips.
    let encoded = BinaryCodec::encode(study.dirty.records());
    println!(
        "binary stream: {} bytes ({:.1} B/record)",
        encoded.len(),
        encoded.len() as f64 / study.dirty.len().max(1) as f64
    );
    let decoded = BinaryCodec::decode(&encoded).expect("own stream decodes");
    assert_eq!(decoded.len(), study.dirty.len());
    let csv = CsvCodec::encode(&decoded[..100.min(decoded.len())]);
    println!("csv preview:\n{}", csv.lines().take(4).collect::<Vec<_>>().join("\n"));

    println!("\n== researcher side ==");
    println!(
        "cleaning dropped {} exact-1-hour glitches and {} malformed records",
        study.clean_report.dropped_glitches, study.clean_report.dropped_malformed
    );

    // §3 session aggregation at both gap settings.
    for (label, gap) in [
        ("aggregate (30 s gap)", SessionConfig::AGGREGATE),
        ("mobility (10 min gap)", SessionConfig::MOBILITY),
    ] {
        let sessions: Vec<AggregateSession> = Sessionizer::new(gap).sessions(&study.clean);
        let records: usize = sessions.iter().map(|s| s.record_count).sum();
        let mean_span: f64 = sessions
            .iter()
            .map(|s| s.span().as_secs() as f64)
            .sum::<f64>()
            / sessions.len().max(1) as f64;
        let mean_handovers: f64 = sessions
            .iter()
            .map(|s| s.handover_count() as f64)
            .sum::<f64>()
            / sessions.len().max(1) as f64;
        println!(
            "{label}: {} sessions from {records} records; mean span {:.0} s, \
             mean handovers {:.1}",
            sessions.len(),
            mean_span,
            mean_handovers
        );
    }
}

fn parse_args() -> (u32, u32) {
    let mut cars = 400u32;
    let mut days = 7u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next().and_then(|s| s.parse::<u32>().ok());
        match flag.as_str() {
            "--cars" => cars = val.expect("--cars N"),
            "--days" => days = val.expect("--days N"),
            _ => {
                eprintln!("usage: trace_pipeline [--cars N] [--days N]");
                std::process::exit(2);
            }
        }
    }
    (cars, days)
}

//! The data-plane pipeline, end to end: generate a ground-truth trace,
//! push it through the "collection system" (anonymization + binary
//! encoding + the real-world faults of §3), then play the researcher:
//! decode, clean, sessionize, and verify what survived.
//!
//! ```sh
//! cargo run --release --example trace_pipeline -- [--cars N] [--days N]
//! ```

use conncar::{StudyConfig, StudyData};
use conncar_cdr::{
    AggregateSession, Anonymizer, BinaryCodec, CsvCodec, SessionConfig, Sessionizer,
};
use conncar_types::{DayOfWeek, StudyPeriod};

fn main() {
    let (cars, days) = parse_args();
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = cars;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, days).expect("days >= 1");
    let study = StudyData::generate(&cfg).expect("valid config");

    println!("== collection side ==");
    println!(
        "ground truth: {} records ({} after fault injection)",
        study.dirty.len() + study.fault_report.lost,
        study.dirty.len()
    );

    // Anonymization boundary: verify injectivity over the fleet.
    let anon = Anonymizer::new(cfg.seed ^ 0x5A17);
    let table = anon
        .build_table(cfg.fleet.cars)
        .expect("no pseudonym collisions");
    println!(
        "anonymizer: {} pseudonyms, e.g. car 0 -> {}",
        table.len(),
        anon.anonymize(conncar_types::CarId(0))
    );

    // Wire format round trips.
    let encoded = BinaryCodec::encode(study.dirty.records());
    println!(
        "binary stream: {} bytes ({:.1} B/record)",
        encoded.len(),
        encoded.len() as f64 / study.dirty.len().max(1) as f64
    );
    let decoded = BinaryCodec::decode(&encoded).expect("own stream decodes");
    assert_eq!(decoded.len(), study.dirty.len());
    let csv = CsvCodec::encode(&decoded[..100.min(decoded.len())]);
    println!("csv preview:\n{}", csv.lines().take(4).collect::<Vec<_>>().join("\n"));

    println!("\n== researcher side ==");
    println!(
        "cleaning dropped {} exact-1-hour glitches and {} malformed records",
        study.clean_report.dropped_glitches, study.clean_report.dropped_malformed
    );
    println!(
        "run ledger reconciles: {} (fidelity {:.3})",
        study.run_report.reconciles(),
        study.run_report.fidelity()
    );

    // §3 session aggregation at both gap settings.
    for (label, gap) in [
        ("aggregate (30 s gap)", SessionConfig::AGGREGATE),
        ("mobility (10 min gap)", SessionConfig::MOBILITY),
    ] {
        let sessions: Vec<AggregateSession> = Sessionizer::new(gap).sessions(&study.clean);
        let records: usize = sessions.iter().map(|s| s.record_count).sum();
        let mean_span: f64 = sessions
            .iter()
            .map(|s| s.span().as_secs() as f64)
            .sum::<f64>()
            / sessions.len().max(1) as f64;
        let mean_handovers: f64 = sessions
            .iter()
            .map(|s| s.handover_count() as f64)
            .sum::<f64>()
            / sessions.len().max(1) as f64;
        println!(
            "{label}: {} sessions from {records} records; mean span {:.0} s, \
             mean handovers {:.1}",
            sessions.len(),
            mean_span,
            mean_handovers
        );
    }

    // Re-run a smaller study with a hostile collection plane: duplicate
    // and clock-skewed records, plus on-the-wire chunk corruption and a
    // truncated tail. The tolerant reader salvages what it can and the
    // staged cleaner quarantines the rest — every record accounted for.
    println!("\n== hostile collection plane ==");
    let mut hostile = StudyConfig::tiny();
    hostile.faults.duplicate_p = 0.02;
    hostile.faults.skew_car_p = 0.05;
    hostile.faults.skew_record_p = 0.3;
    hostile.faults.corrupt_chunk_p = 0.1;
    hostile.faults.truncate_tail_p = 1.0;
    hostile.faults.chunk_records = 512;
    hostile.clean.resolve_overlaps = true;
    let damaged = StudyData::generate(&hostile).expect("valid config");
    let rr = &damaged.run_report;
    println!(
        "wire: {} chunks skipped ({} records corrupt, {} truncated), \
         {} bytes skipped",
        rr.ingest.chunks_skipped,
        rr.ingest.records_lost_corrupt,
        rr.ingest.records_lost_truncated,
        rr.ingest.bytes_skipped
    );
    println!(
        "cleaner: {} duplicates, {} malformed, {} glitches dropped; \
         quarantine holds {}",
        rr.clean.dropped_duplicates,
        rr.clean.dropped_malformed,
        rr.clean.dropped_glitches,
        damaged.quarantine.len()
    );
    println!(
        "ledger: {} truth -> {} collected -> {} delivered -> {} clean \
         (reconciles: {}, fidelity {:.3})",
        rr.records_truth,
        rr.records_collected,
        rr.records_delivered,
        rr.records_clean,
        rr.reconciles(),
        rr.fidelity()
    );
    assert!(rr.reconciles(), "every record must be accounted for");
}

fn parse_args() -> (u32, u32) {
    let mut cars = 400u32;
    let mut days = 7u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next().and_then(|s| s.parse::<u32>().ok());
        match flag.as_str() {
            "--cars" => cars = val.expect("--cars N"),
            "--days" => days = val.expect("--days N"),
            _ => {
                eprintln!("usage: trace_pipeline [--cars N] [--days N]");
                std::process::exit(2);
            }
        }
    }
    (cars, days)
}

//! Regenerate (or verify) the golden-trace corpus under `tests/golden/`.
//!
//! ```sh
//! cargo run --release --example regen_golden            # rewrite fixtures
//! cargo run --release --example regen_golden -- --check # verify, no writes
//! ```
//!
//! Every fixture is produced by a deterministic recipe in
//! `conncar_replay::corpus`, so this example is the corpus's single
//! source of truth: run it after any intentional pipeline change and
//! commit the rewritten `trace.json` / `golden.json` pairs. `--check`
//! regenerates in memory and compares byte-for-byte against the files
//! on disk — CI uses it to catch fixtures that drifted from their
//! recipes (exit 1 lists each stale or missing file).

use conncar_replay::corpus;
use std::path::PathBuf;

fn main() {
    let mut check = false;
    let mut out_dir = PathBuf::from("tests/golden");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => check = true,
            "--out" => out_dir = PathBuf::from(it.next().expect("--out needs a value")),
            other => {
                eprintln!("unknown flag {other}; usage: regen_golden [--check] [--out DIR]");
                std::process::exit(2);
            }
        }
    }

    let mut stale: Vec<String> = Vec::new();
    for recipe in corpus() {
        let rec = recipe.record().expect(recipe.name);
        let dir = out_dir.join(recipe.name);
        let files = [
            (dir.join("trace.json"), rec.trace.to_envelope_json()),
            (dir.join("golden.json"), rec.golden.to_json()),
        ];
        if check {
            // A fixture that was never materialized is not stale — the
            // corpus is recipe-defined and regenerable on demand. Only
            // present-but-drifted (or half-present) fixtures fail.
            if !dir.is_dir() {
                eprintln!("skipped {} (not materialized)", recipe.name);
                continue;
            }
            for (path, expected) in &files {
                match std::fs::read_to_string(path) {
                    Ok(on_disk) if &on_disk == expected => {}
                    Ok(_) => stale.push(format!("{} differs from its recipe", path.display())),
                    Err(_) => stale.push(format!("{} is missing", path.display())),
                }
            }
            eprintln!("checked {}", recipe.name);
        } else {
            std::fs::create_dir_all(&dir).expect("create fixture dir");
            for (path, bytes) in &files {
                std::fs::write(path, bytes).expect("write fixture");
            }
            eprintln!("wrote {} (trace id {})", recipe.name, rec.golden.trace_id);
        }
    }

    if check {
        if stale.is_empty() {
            eprintln!("golden corpus matches its recipes");
        } else {
            for s in &stale {
                eprintln!("stale: {s}");
            }
            eprintln!(
                "{} fixture file(s) out of date — rerun `cargo run --release --example \
                 regen_golden` and commit the result",
                stale.len()
            );
            std::process::exit(1);
        }
    }
}

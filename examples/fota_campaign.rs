//! FOTA campaign planning: the application §4.3 motivates.
//!
//! Generates a study, then runs the same firmware rollout under four
//! scheduling policies and compares completion speed against busy-cell
//! impact — the exact trade-off the paper's segmentation is meant to
//! inform. Also reproduces the Figure 1 saturation experiment on the
//! study's two hottest cells.
//!
//! ```sh
//! cargo run --release --example fota_campaign -- [--cars N] [--days N] [--image-mb MB]
//! ```

use conncar::{Experiment, StudyAnalyses, StudyConfig, StudyData};
use conncar_analysis::predict::CarPredictor;
use conncar_fota::policy::PolicyInputs;
use conncar_fota::{CampaignConfig, CampaignPolicy, CampaignSimulator};
use conncar_types::{DayOfWeek, StudyPeriod};

fn main() {
    let (cars, days, image_mb) = parse_args();
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = cars;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, days).expect("days >= 1");

    eprintln!("generating study: {cars} cars x {days} days ...");
    let study = StudyData::generate(&cfg).expect("valid config");
    let analyses = StudyAnalyses::run(&study).expect("analyses");

    // Policy inputs: the measurement study's own outputs.
    let mut inputs = PolicyInputs::default();
    for p in &analyses.profiles {
        inputs.profiles.insert(p.car, *p);
    }
    let train_weeks = (study.config.period.days() / 7 / 2).max(1);
    for (car, records) in study.clean.by_car() {
        inputs.predictors.insert(
            car,
            CarPredictor::train(
                records,
                study.config.period,
                study.region.timezone(),
                train_weeks,
            ),
        );
    }

    let load = study.load_model();
    let sim = CampaignSimulator::new(&study.clean, &load, &inputs);
    let policies = [
        CampaignPolicy::Immediate,
        CampaignPolicy::OffPeak {
            max_utilization: 0.8,
        },
        CampaignPolicy::RareFirst {
            rare_cutoff_days: (days * 10).div_ceil(90),
            max_utilization: 0.8,
        },
        CampaignPolicy::Predictive {
            min_probability: 0.5,
            max_utilization: 0.8,
        },
    ];

    println!("FOTA campaign: {image_mb} MB image to every connected car\n");
    println!(
        "{:<12} {:>10} {:>12} {:>14} {:>12}",
        "policy", "completed", "completion%", "median days", "busy bytes%"
    );
    for policy in policies {
        let r = sim
            .run(&CampaignConfig::new(image_mb, policy))
            .expect("campaign");
        println!(
            "{:<12} {:>10} {:>11.1}% {:>14.2} {:>11.1}%",
            r.policy,
            r.completed,
            r.completion_rate() * 100.0,
            r.median_days().unwrap_or(f64::NAN),
            r.busy_byte_fraction() * 100.0
        );
    }

    println!();
    let fig1 = Experiment::Fig1.run(&study, &analyses).expect("fig1");
    println!("{}", fig1.text);
}

fn parse_args() -> (u32, u32, f64) {
    let mut cars = 600u32;
    let mut days = 14u32;
    let mut image_mb = 900.0f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next();
        let num = |v: &Option<String>| v.as_deref().and_then(|s| s.parse::<f64>().ok());
        match flag.as_str() {
            "--cars" => cars = num(&val).expect("--cars N") as u32,
            "--days" => days = num(&val).expect("--days N") as u32,
            "--image-mb" => image_mb = num(&val).expect("--image-mb MB"),
            _ => {
                eprintln!("usage: fota_campaign [--cars N] [--days N] [--image-mb MB]");
                std::process::exit(2);
            }
        }
    }
    (cars, days, image_mb)
}

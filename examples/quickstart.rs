//! Quickstart: generate a synthetic connected-car study and print the
//! paper's tables and figures.
//!
//! ```sh
//! cargo run --release --example quickstart -- [--cars N] [--days N] [--seed S]
//! ```
//!
//! Defaults are laptop-friendly (800 cars × 14 days). The full paper
//! shape needs `--cars 10000 --days 90` and a few minutes.

use conncar::{experiments, StudyAnalyses, StudyConfig, StudyData};
use conncar_obs::{Clock, MonotonicClock};
use conncar_types::{DayOfWeek, StudyPeriod};

fn main() {
    let args = Args::parse();
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = args.cars;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, args.days).expect("days >= 1");
    cfg.seed = args.seed;
    // Keep the injected loss days inside short windows.
    cfg.faults.loss_days = vec![
        (args.days as u64 * 6) / 10,
        (args.days as u64 * 65) / 100,
        (args.days as u64 * 8) / 10,
    ];

    eprintln!(
        "generating study: {} cars x {} days (seed {}) ...",
        args.cars, args.days, args.seed
    );
    let clock = MonotonicClock::new();
    let study = StudyData::generate(&cfg).expect("valid config");
    eprintln!(
        "generated {} radio connections from {} cars across {} cells in {:.1}s",
        study.dirty.len(),
        study.clean.car_count(),
        study.clean.cell_count(),
        clock.now_nanos() as f64 / 1e9
    );
    eprintln!(
        "fault injection: {} exact-1h glitches, {} records lost on loss days, {} sticky; \
         cleaning dropped {}",
        study.fault_report.hour_glitches,
        study.fault_report.lost,
        study.fault_report.sticky,
        study.clean_report.dropped_glitches + study.clean_report.dropped_malformed,
    );

    let analyses = StudyAnalyses::run(&study).expect("analyses");
    let outputs = experiments::run_all(&study, &analyses).expect("experiments");
    for output in &outputs {
        println!("{}", output.text);
    }
    if let Some(dir) = args.out {
        let n = conncar::export::export_all(std::path::Path::new(&dir), &study, &outputs)
            .expect("export");
        eprintln!("wrote {n} artifact files to {dir}");
    }
}

struct Args {
    cars: u32,
    days: u32,
    seed: u64,
    out: Option<String>,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            cars: 800,
            days: 14,
            seed: 20_170_501,
            out: None,
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut grab = |name: &str| -> u64 {
                it.next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("{name} needs a numeric value"))
            };
            match flag.as_str() {
                "--cars" => args.cars = grab("--cars") as u32,
                "--days" => args.days = grab("--days") as u32,
                "--seed" => args.seed = grab("--seed"),
                "--out" => args.out = it.next(),
                "--help" | "-h" => {
                    eprintln!(
                        "usage: quickstart [--cars N] [--days N] [--seed S] [--out DIR]"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

//! Telemetry view: run an instrumented study and print the span tree.
//!
//! ```sh
//! cargo run --release --example obs_report -- [--null-clock] [--shards N] [--out PATH]
//! ```
//!
//! Runs the tiny study through [`conncar::telemetry::run_instrumented`],
//! writes the deterministic `RUN_OBS.json` artifact (default
//! `target/RUN_OBS.json`), and prints the rendered stage tree with wall
//! times, item counts and derived rates. With `--null-clock` every wall
//! reading is zero and the artifact is a pure function of the config —
//! the mode CI uses to diff runs.
//!
//! Exits non-zero when any registered stage reports zero items
//! processed: a wired-up stage that consumed nothing means the pipeline
//! or the fixture broke, and CI treats that as a failure.

use conncar::study::StudyConfig;
use conncar::telemetry::run_instrumented;
use conncar_obs::{MonotonicClock, NullClock, SharedClock};
use std::sync::Arc;

fn main() {
    let args = Args::parse();
    let clock: SharedClock = if args.null_clock {
        Arc::new(NullClock)
    } else {
        Arc::new(MonotonicClock::new())
    };

    let cfg = StudyConfig::tiny();
    let (study, store, _analyses, telemetry) =
        run_instrumented(&cfg, clock, args.shards).expect("tiny study runs");

    eprintln!(
        "instrumented run: {} clean records, {} cars, {} shards",
        study.clean.len(),
        study.clean.car_count(),
        store.shard_count(),
    );

    let path = std::path::Path::new(&args.out);
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create output dir");
    }
    telemetry.write_json(path).expect("write RUN_OBS.json");
    println!("{}", telemetry.render_tree());
    eprintln!("wrote {}", args.out);

    let dead = telemetry.zero_item_stages();
    if !dead.is_empty() {
        eprintln!("zero-item stages: {}", dead.join(", "));
        std::process::exit(1);
    }
}

struct Args {
    null_clock: bool,
    shards: Option<usize>,
    out: String,
}

impl Args {
    fn parse() -> Args {
        let mut args = Args {
            null_clock: false,
            shards: None,
            out: "target/RUN_OBS.json".into(),
        };
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            match flag.as_str() {
                "--null-clock" => args.null_clock = true,
                "--shards" => {
                    args.shards = Some(
                        it.next()
                            .and_then(|v| v.parse().ok())
                            .expect("--shards needs a numeric value"),
                    );
                }
                "--out" => args.out = it.next().expect("--out needs a path"),
                "--help" | "-h" => {
                    eprintln!("usage: obs_report [--null-clock] [--shards N] [--out PATH]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }
}

//! Per-car predictability — quantifying §4.7's "cars can be clustered
//! according to predictability in their behavior".
//!
//! Trains each car's hour-of-week appearance predictor on the first half
//! of the study and scores it on the second half, then breaks the scores
//! down by ground-truth archetype (which the paper's authors could not
//! see, but we can: the fleet is synthetic). Regular commuters should be
//! far more predictable than errand or rare drivers — that gap is what
//! makes predictive FOTA scheduling viable for part of the fleet.
//!
//! ```sh
//! cargo run --release --example predictability -- [--cars N] [--days N]
//! ```

use conncar::{StudyConfig, StudyData};
use conncar_analysis::predict::{Baseline, BlendedPredictor, CarPredictor, PredictionScore};
use conncar_fleet::Archetype;
use conncar_types::{DayOfWeek, StudyPeriod};
use std::collections::HashMap;

fn main() {
    let (cars, days) = parse_args();
    assert!(days >= 14, "need at least two weeks to train and test");
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = cars;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, days).expect("days >= 1");
    let study = StudyData::generate(&cfg).expect("valid config");

    let split_week = days / 7 / 2;
    let threshold = 0.6;
    let tz = study.region.timezone();

    // Fit the fleet prior once, then score every connected car with
    // both the pure per-car predictor and the population-blended one.
    let blender = BlendedPredictor::fit_population(
        study.clean.by_car().map(|(_, r)| r),
        study.config.period,
        tz,
        split_week,
    );
    let mut by_archetype: HashMap<Archetype, Vec<PredictionScore>> = HashMap::new();
    let archetype_of: HashMap<_, _> = study
        .personas
        .iter()
        .map(|p| (p.car, p.archetype))
        .collect();
    let sweep = [0.15, 0.25, 0.35, 0.5, 0.65];
    let mut personal_sweep = vec![PredictionScore::default(); sweep.len()];
    let mut blended_sweep = vec![PredictionScore::default(); sweep.len()];
    let add = |acc: &mut PredictionScore, s: PredictionScore| {
        acc.true_positives += s.true_positives;
        acc.false_positives += s.false_positives;
        acc.false_negatives += s.false_negatives;
        acc.true_negatives += s.true_negatives;
    };
    for (car, records) in study.clean.by_car() {
        let predictor = CarPredictor::train(records, study.config.period, tz, split_week);
        let blended = blender.for_car(records, study.config.period, tz, split_week, 4.0);
        for (i, thr) in sweep.iter().enumerate() {
            add(
                &mut personal_sweep[i],
                predictor.evaluate(records, study.config.period, tz, split_week, *thr),
            );
            add(
                &mut blended_sweep[i],
                blended.evaluate(records, study.config.period, tz, split_week, *thr),
            );
        }
        let score = predictor.evaluate(records, study.config.period, tz, split_week, threshold);
        if let Some(a) = archetype_of.get(&car) {
            by_archetype.entry(*a).or_default().push(score);
        }
    }
    let best = |scores: &[PredictionScore]| -> (f64, f64) {
        scores
            .iter()
            .zip(&sweep)
            .map(|(s, t)| (s.f1().unwrap_or(0.0), *t))
            .max_by(|a, b| a.0.total_cmp(&b.0))
            .unwrap_or((0.0, 0.0))
    };
    let (pf1, pt) = best(&personal_sweep);
    let (bf1, bt) = best(&blended_sweep);
    println!("fleet-level predictors (best F1 over threshold sweep):");
    println!("  per-car matrix     f1 {:>5.1}% (thr {pt})", pf1 * 100.0);
    println!("  blended (+prior)   f1 {:>5.1}% (thr {bt})", bf1 * 100.0);

    // Baseline comparison over the whole fleet.
    let mut baseline_scores: Vec<(&str, PredictionScore)> = vec![
        ("always-present", PredictionScore::default()),
        ("weekday-commute", PredictionScore::default()),
    ];
    for (_car, records) in study.clean.by_car() {
        for (label, acc) in baseline_scores.iter_mut() {
            let b = match *label {
                "always-present" => Baseline::AlwaysPresent,
                _ => Baseline::WeekdayCommute,
            };
            let s = b.evaluate(records, study.config.period, tz, split_week);
            acc.true_positives += s.true_positives;
            acc.false_positives += s.false_positives;
            acc.false_negatives += s.false_negatives;
            acc.true_negatives += s.true_negatives;
        }
    }
    println!("fleet-level baselines (for context):");
    for (label, s) in &baseline_scores {
        println!(
            "  {:<18} precision {:>5.1}%  recall {:>5.1}%  f1 {:>5.1}%",
            label,
            s.precision().unwrap_or(0.0) * 100.0,
            s.recall().unwrap_or(0.0) * 100.0,
            s.f1().unwrap_or(0.0) * 100.0,
        );
    }
    println!();
    println!(
        "hour-of-week presence prediction, trained on weeks 0..{split_week}, \
         threshold {threshold}\n"
    );
    println!(
        "{:<18} {:>6} {:>10} {:>10} {:>10} {:>10}",
        "archetype", "cars", "precision", "recall", "f1", "accuracy"
    );
    let mut rows: Vec<(Archetype, Vec<PredictionScore>)> = by_archetype.into_iter().collect();
    rows.sort_by_key(|(a, _)| a.label());
    for (archetype, scores) in rows {
        let mean = |f: &dyn Fn(&PredictionScore) -> Option<f64>| -> f64 {
            let vals: Vec<f64> = scores.iter().filter_map(f).collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        println!(
            "{:<18} {:>6} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
            archetype.label(),
            scores.len(),
            mean(&|s| s.precision()) * 100.0,
            mean(&|s| s.recall()) * 100.0,
            mean(&|s| s.f1()) * 100.0,
            mean(&|s| Some(s.accuracy())) * 100.0,
        );
    }
}

fn parse_args() -> (u32, u32) {
    let mut cars = 500u32;
    let mut days = 28u32;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let val = it.next().and_then(|s| s.parse::<u32>().ok());
        match flag.as_str() {
            "--cars" => cars = val.expect("--cars N"),
            "--days" => days = val.expect("--days N"),
            _ => {
                eprintln!("usage: predictability [--cars N] [--days N]");
                std::process::exit(2);
            }
        }
    }
    (cars, days)
}

//! Per-car personas.
//!
//! A persona is everything time-invariant about one car: its archetype,
//! where it lives and works, its habitual departure times, how noisy its
//! habits are, what its head unit does with the network, and what its
//! modem hardware supports. Personas are derived deterministically from
//! the study seed and the car index, so car `k` is the same car in every
//! run.

use crate::archetype::{Archetype, ArchetypeMix};
use conncar_geo::{NodeId, Region};
use conncar_types::{CarId, ModemCapability, SeedSplitter};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Time-invariant description of one car.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Persona {
    /// The car's id.
    pub car: CarId,
    /// Behavioural class.
    pub archetype: Archetype,
    /// Home road node.
    pub home: NodeId,
    /// Work / depot road node.
    pub work: NodeId,
    /// Habitual morning departure, seconds after local midnight.
    pub commute_out_secs: u32,
    /// Habitual evening return departure, seconds after local midnight.
    pub commute_back_secs: u32,
    /// Day-to-day departure jitter σ, seconds.
    pub jitter_secs: f64,
    /// For `RareDriver`: per-car daily activity probability. Zero for
    /// other archetypes (they use the archetype table).
    pub rare_propensity: f64,
    /// Whether this car streams infotainment while driving.
    pub infotainment: bool,
    /// Per-trip probability of a passenger hotspot session.
    pub hotspot_p: f64,
    /// Modem hardware capability.
    pub capability: ModemCapability,
}

impl Persona {
    /// Daily activity probability for a given weekday.
    pub fn activity_probability(&self, day: conncar_types::DayOfWeek) -> f64 {
        if self.archetype == Archetype::RareDriver {
            self.rare_propensity
        } else {
            self.archetype.activity_probability(day)
        }
    }
}

/// Deterministic persona generator.
#[derive(Debug, Clone)]
pub struct PersonaFactory {
    mix: ArchetypeMix,
    seeds: SeedSplitter,
    /// Fraction of cars with the newer C5-capable modem revision.
    full_modem_share: f64,
    /// Fraction of cars still on the earliest 3G-only modem.
    umts_only_share: f64,
    /// Fraction of cars on the older LTE modem revision that lacks the
    /// C4 band (Table 3: only ~81% of cars ever used C4).
    no_c4_share: f64,
}

impl PersonaFactory {
    /// Paper-calibrated modem shares: C5-capable cars are vanishingly
    /// rare (0.006% of the population ever used C5, Table 3); a sliver
    /// of first-generation 3G-only units persists.
    pub fn new(mix: ArchetypeMix, study_seed: u64) -> PersonaFactory {
        PersonaFactory {
            mix,
            seeds: SeedSplitter::new(study_seed).child("personas"),
            full_modem_share: 0.000_2,
            umts_only_share: 0.003,
            no_c4_share: 0.18,
        }
    }

    /// Override modem shares (testing / ablations).
    pub fn with_modem_shares(mut self, full: f64, umts_only: f64) -> PersonaFactory {
        self.full_modem_share = full;
        self.umts_only_share = umts_only;
        self
    }

    /// Build the persona of car `index` living in `region`.
    pub fn create(&self, index: u32, region: &Region) -> Persona {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seeds.domain_indexed("car", index as u64));
        let archetype = self.mix.pick(rng.gen::<f64>());

        let home_seed = self.seeds.domain_indexed("home", index as u64);
        let home = region.random_home(home_seed);
        let work = match archetype {
            // Errand/weekend/rare cars still *have* a frequent
            // destination (school, gym, relatives) — drawn like an
            // errand spot rather than a downtown office.
            Archetype::ErrandDriver | Archetype::WeekendDriver | Archetype::RareDriver => {
                region.random_errand(self.seeds.domain_indexed("work", index as u64))
            }
            _ => region.random_work(self.seeds.domain_indexed("work", index as u64)),
        };

        // Morning anchor: 6:00–9:30, biased toward 7–8.
        let out_h = 6.0 + 3.5 * beta_ish(&mut rng);
        // Evening anchor: 8–11 h after the morning departure.
        let back_h = out_h + rng.gen_range(8.0..11.0);
        let jitter_secs = archetype.departure_jitter_min() * 60.0;

        let rare_propensity = if archetype == Archetype::RareDriver {
            // Most rare cars show up well under 30 days / 90; a few land
            // in the 10–30 day band (Table 2's two rarity cuts).
            rng.gen_range(0.03..0.32)
        } else {
            0.0
        };

        let infotainment = rng.gen_bool(archetype.infotainment_propensity());
        let hotspot_p = archetype.hotspot_propensity();

        let cap_draw: f64 = rng.gen();
        let capability = if cap_draw < self.full_modem_share {
            ModemCapability::FULL
        } else if cap_draw < self.full_modem_share + self.umts_only_share {
            ModemCapability::UMTS_ONLY
        } else if cap_draw < self.full_modem_share + self.umts_only_share + self.no_c4_share {
            // Older LTE revision: C1–C3 only.
            ModemCapability::from_carriers([
                conncar_types::Carrier::C1,
                conncar_types::Carrier::C2,
                conncar_types::Carrier::C3,
            ])
        } else {
            ModemCapability::STANDARD
        };

        Persona {
            car: CarId(index),
            archetype,
            home,
            work,
            commute_out_secs: conncar_types::secs_from_hours_f64(out_h),
            commute_back_secs: conncar_types::secs_from_hours_f64(back_h).min(24 * 3_600 - 1),
            jitter_secs,
            rare_propensity,
            infotainment,
            hotspot_p,
            capability,
        }
    }
}

/// A cheap bell-ish variate in [0,1): mean of two uniforms.
fn beta_ish(rng: &mut impl Rng) -> f64 {
    (rng.gen::<f64>() + rng.gen::<f64>()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_geo::RegionConfig;

    fn region() -> Region {
        Region::generate(&RegionConfig::small(), 42)
    }

    fn factory() -> PersonaFactory {
        PersonaFactory::new(ArchetypeMix::default(), 42)
    }

    #[test]
    fn personas_are_deterministic() {
        let r = region();
        let f = factory();
        let a = f.create(17, &r);
        let b = f.create(17, &r);
        assert_eq!(a.archetype, b.archetype);
        assert_eq!(a.home, b.home);
        assert_eq!(a.commute_out_secs, b.commute_out_secs);
        assert_eq!(a.capability, b.capability);
    }

    #[test]
    fn cars_differ() {
        let r = region();
        let f = factory();
        let a = f.create(1, &r);
        let b = f.create(2, &r);
        // Two cars agreeing on *everything* would indicate a broken
        // seed-split.
        assert!(
            a.home != b.home
                || a.commute_out_secs != b.commute_out_secs
                || a.archetype != b.archetype
        );
    }

    #[test]
    fn commute_anchors_plausible() {
        let r = region();
        let f = factory();
        for i in 0..200 {
            let p = f.create(i, &r);
            let out_h = p.commute_out_secs as f64 / 3_600.0;
            let back_h = p.commute_back_secs as f64 / 3_600.0;
            assert!((6.0..=9.5).contains(&out_h), "out {out_h}");
            assert!(back_h > out_h + 7.9, "back {back_h} out {out_h}");
            assert!(back_h < 24.0);
        }
    }

    #[test]
    fn rare_propensity_only_for_rare_drivers() {
        let r = region();
        let f = factory();
        for i in 0..300 {
            let p = f.create(i, &r);
            if p.archetype == Archetype::RareDriver {
                assert!((0.03..0.32).contains(&p.rare_propensity));
                assert!(p.activity_probability(conncar_types::DayOfWeek::Monday) < 0.35);
            } else {
                assert_eq!(p.rare_propensity, 0.0);
            }
        }
    }

    #[test]
    fn modem_shares_respected() {
        let r = region();
        // Exaggerated shares so a small sample shows all three kinds.
        let f = factory().with_modem_shares(0.10, 0.10);
        let mut full = 0;
        let mut umts = 0;
        let n = 2_000;
        for i in 0..n {
            match f.create(i, &r).capability {
                ModemCapability::FULL => full += 1,
                ModemCapability::UMTS_ONLY => umts += 1,
                _ => {}
            }
        }
        let ff = full as f64 / n as f64;
        let uf = umts as f64 / n as f64;
        assert!((ff - 0.10).abs() < 0.03, "full share {ff}");
        assert!((uf - 0.10).abs() < 0.03, "umts share {uf}");
    }

    #[test]
    fn archetype_shares_roughly_match_mix() {
        let r = region();
        let f = factory();
        let n = 3_000;
        let mut heavy = 0;
        for i in 0..n {
            if f.create(i, &r).archetype == Archetype::HeavyFleet {
                heavy += 1;
            }
        }
        let frac = heavy as f64 / n as f64;
        assert!((frac - 0.13).abs() < 0.03, "heavy share {frac}");
    }
}

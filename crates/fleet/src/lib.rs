//! # conncar-fleet
//!
//! The synthetic fleet standing in for the paper's one million real
//! connected cars.
//!
//! A car is a **persona** drawn from an **archetype** mixture (regular
//! commuters, flexible commuters, errand drivers, weekend drivers, rare
//! drivers, heavy commercial users). A persona fixes where the car
//! lives and works, when it tends to depart, how regular it is, and
//! what traffic its head unit generates. Each study day the persona
//! produces a **day plan** of trips; each trip routes over the region's
//! roads and carries a **demand profile** of data transfers; the radio
//! crate's RRC machine turns that into per-cell connection records and
//! PRB load.
//!
//! The archetype mixture is the calibration surface for the paper's
//! population-level statistics: % of cars on the network per day
//! (Figure 2/Table 1), the days-active histogram (Figure 6), total
//! connected time (Figure 3) and per-car 24×7 regularity (Figure 5).
//!
//! Generation is embarrassingly parallel across cars (crossbeam scoped
//! threads); every car derives its own RNG stream from the study seed,
//! so the trace is bit-identical regardless of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod demand;
pub mod generator;
pub mod persona;
pub mod schedule;

pub use archetype::{Archetype, ArchetypeMix};
pub use demand::DemandProfile;
pub use generator::{FleetChunk, FleetConfig, FleetData, FleetGenerator};
pub use persona::{Persona, PersonaFactory};
pub use schedule::{DayPlan, PlannedTrip, TripPurpose};

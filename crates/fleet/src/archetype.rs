//! Driver archetypes and the fleet mixture.
//!
//! §4.2's three sample cars — a strict busy-hour commuter, a heavy
//! all-week user, and a predictable off-peak commuter — plus the
//! segmentation of Table 2 (rare vs common cars) imply a population made
//! of behaviorally distinct groups. We model six:
//!
//! | archetype | share | behaviour |
//! |---|---|---|
//! | `RegularCommuter` | 36% | strict M–F commute in rush hours |
//! | `FlexCommuter` | 15% | commutes most weekdays, loose timing |
//! | `ErrandDriver` | 18% | daily short trips, mostly off-peak |
//! | `WeekendDriver` | 10% | quiet weekdays, busy weekends |
//! | `RareDriver` | 8% | appears a handful of days over the study |
//! | `HeavyFleet` | 13% | commercial/rideshare, on the road all day |
//!
//! The share vector and each archetype's activity probabilities are the
//! *calibration knobs* for Figures 2, 3, 5, 6 and Tables 1–2; they are
//! plain data, so ablation benches can sweep them.

use conncar_types::DayOfWeek;
use serde::{Deserialize, Serialize};

/// One behavioural class of connected car.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// Strict Monday–Friday rush-hour commuter.
    RegularCommuter,
    /// Weekday commuter with loose, variable timing.
    FlexCommuter,
    /// Short daily errands, spread across the day.
    ErrandDriver,
    /// Mostly parked on weekdays, active on weekends.
    WeekendDriver,
    /// On the network only a handful of days over the study.
    RareDriver,
    /// Commercial / rideshare duty cycle: many trips, long hours.
    HeavyFleet,
}

impl Archetype {
    /// All archetypes in mixture order.
    pub const ALL: [Archetype; 6] = [
        Archetype::RegularCommuter,
        Archetype::FlexCommuter,
        Archetype::ErrandDriver,
        Archetype::WeekendDriver,
        Archetype::RareDriver,
        Archetype::HeavyFleet,
    ];

    /// Short label for reports.
    pub const fn label(self) -> &'static str {
        match self {
            Archetype::RegularCommuter => "regular-commuter",
            Archetype::FlexCommuter => "flex-commuter",
            Archetype::ErrandDriver => "errand-driver",
            Archetype::WeekendDriver => "weekend-driver",
            Archetype::RareDriver => "rare-driver",
            Archetype::HeavyFleet => "heavy-fleet",
        }
    }

    /// Probability the car is used at all on a day of the given weekday.
    ///
    /// `RareDriver` ignores this table and uses its per-car propensity.
    pub fn activity_probability(self, day: DayOfWeek) -> f64 {
        use DayOfWeek::*;
        match self {
            Archetype::RegularCommuter => match day {
                Saturday => 0.62,
                Sunday => 0.58,
                _ => 0.97,
            },
            Archetype::FlexCommuter => match day {
                Saturday => 0.60,
                Sunday => 0.55,
                _ => 0.80,
            },
            Archetype::ErrandDriver => match day {
                Saturday => 0.76,
                Sunday => 0.72,
                _ => 0.72,
            },
            Archetype::WeekendDriver => match day {
                Saturday => 0.92,
                Sunday => 0.88,
                _ => 0.32,
            },
            Archetype::RareDriver => 0.20, // placeholder; persona overrides
            Archetype::HeavyFleet => match day {
                Saturday => 0.95,
                Sunday => 0.92,
                _ => 0.97,
            },
        }
    }

    /// Whether this archetype commutes (home→work→home) on weekdays.
    pub const fn commutes(self) -> bool {
        matches!(
            self,
            Archetype::RegularCommuter | Archetype::FlexCommuter | Archetype::HeavyFleet
        )
    }

    /// Standard deviation of day-to-day departure jitter, minutes.
    /// Small = the very regular dark rows of Figure 5's left car.
    pub const fn departure_jitter_min(self) -> f64 {
        match self {
            Archetype::RegularCommuter => 12.0,
            Archetype::FlexCommuter => 50.0,
            Archetype::ErrandDriver => 90.0,
            Archetype::WeekendDriver => 75.0,
            Archetype::RareDriver => 120.0,
            Archetype::HeavyFleet => 25.0,
        }
    }

    /// Mean number of extra (non-commute) trips on an active day.
    pub const fn extra_trips_mean(self) -> f64 {
        match self {
            Archetype::RegularCommuter => 0.35,
            Archetype::FlexCommuter => 0.55,
            Archetype::ErrandDriver => 1.9,
            Archetype::WeekendDriver => 1.6,
            Archetype::RareDriver => 1.1,
            Archetype::HeavyFleet => 6.5,
        }
    }

    /// Probability the car's head unit runs infotainment streams while
    /// driving (long-lived connections).
    pub const fn infotainment_propensity(self) -> f64 {
        match self {
            Archetype::RegularCommuter => 0.80,
            Archetype::FlexCommuter => 0.75,
            Archetype::ErrandDriver => 0.60,
            Archetype::WeekendDriver => 0.70,
            Archetype::RareDriver => 0.35,
            Archetype::HeavyFleet => 0.90,
        }
    }

    /// Probability a trip carries an in-car WiFi hotspot session.
    pub const fn hotspot_propensity(self) -> f64 {
        match self {
            Archetype::RegularCommuter => 0.10,
            Archetype::FlexCommuter => 0.10,
            Archetype::ErrandDriver => 0.06,
            Archetype::WeekendDriver => 0.25,
            Archetype::RareDriver => 0.02,
            Archetype::HeavyFleet => 0.45,
        }
    }
}

/// Mixture weights over archetypes. Must sum to ~1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ArchetypeMix {
    /// Weight per archetype, indexed like [`Archetype::ALL`].
    pub weights: [f64; 6],
}

impl Default for ArchetypeMix {
    fn default() -> Self {
        ArchetypeMix {
            weights: [0.36, 0.15, 0.18, 0.10, 0.08, 0.13],
        }
    }
}

impl ArchetypeMix {
    /// Validate the weights: nonnegative, summing to 1 ± 1e-6.
    pub fn validate(&self) -> conncar_types::Result<()> {
        if self.weights.iter().any(|w| *w < 0.0) {
            return Err(conncar_types::Error::InvalidConfig {
                what: "archetype_mix",
                why: "negative weight".into(),
            });
        }
        let sum: f64 = self.weights.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(conncar_types::Error::InvalidConfig {
                what: "archetype_mix",
                why: format!("weights sum to {sum}, expected 1"),
            });
        }
        Ok(())
    }

    /// Pick an archetype from a uniform draw `u ∈ [0, 1)`.
    pub fn pick(&self, u: f64) -> Archetype {
        let mut acc = 0.0;
        for (a, w) in Archetype::ALL.iter().zip(self.weights) {
            acc += w;
            if u < acc {
                return *a;
            }
        }
        *Archetype::ALL.last().expect("non-empty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mix_is_valid() {
        ArchetypeMix::default().validate().unwrap();
    }

    #[test]
    fn invalid_mixes_rejected() {
        let mut m = ArchetypeMix::default();
        m.weights[0] = -0.1;
        assert!(m.validate().is_err());
        let m = ArchetypeMix { weights: [0.5; 6] };
        assert!(m.validate().is_err());
    }

    #[test]
    fn pick_covers_all_archetypes() {
        let m = ArchetypeMix::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..1_000 {
            seen.insert(m.pick(i as f64 / 1_000.0));
        }
        assert_eq!(seen.len(), 6);
        // Boundary draws are safe.
        assert_eq!(m.pick(0.0), Archetype::RegularCommuter);
        assert_eq!(m.pick(0.999_999_9), Archetype::HeavyFleet);
    }

    #[test]
    fn pick_respects_weights() {
        let m = ArchetypeMix::default();
        let n = 100_000;
        let commuters = (0..n)
            .filter(|i| m.pick(*i as f64 / n as f64) == Archetype::RegularCommuter)
            .count();
        let frac = commuters as f64 / n as f64;
        assert!((frac - 0.36).abs() < 0.01, "commuter share {frac}");
    }

    #[test]
    fn weekday_activity_shape() {
        // Fleet-wide weekday activity should exceed Sunday activity —
        // the Figure 2 / Table 1 weekly pattern.
        let m = ArchetypeMix::default();
        let avg = |d: DayOfWeek| -> f64 {
            Archetype::ALL
                .iter()
                .zip(m.weights)
                .map(|(a, w)| w * a.activity_probability(d))
                .sum()
        };
        let wed = avg(DayOfWeek::Wednesday);
        let sat = avg(DayOfWeek::Saturday);
        let sun = avg(DayOfWeek::Sunday);
        assert!(wed > sat, "wed {wed} sat {sat}");
        assert!(sat > sun, "sat {sat} sun {sun}");
        assert!((0.70..0.85).contains(&wed), "weekday activity {wed}");
        assert!((0.55..0.75).contains(&sun), "sunday activity {sun}");
    }

    #[test]
    fn heavy_fleet_drives_most() {
        assert!(
            Archetype::HeavyFleet.extra_trips_mean()
                > 3.0 * Archetype::RegularCommuter.extra_trips_mean()
        );
    }

    #[test]
    fn labels_unique() {
        let labels: std::collections::HashSet<_> =
            Archetype::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), 6);
    }
}

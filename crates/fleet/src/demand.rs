//! Traffic demand during a trip.
//!
//! The connected cars of the study carry four traffic sources (§3):
//! telemetry, emergency/keep-alive signaling, infotainment, and the
//! in-car WiFi hotspot (FOTA comes later, from the campaign planner in
//! `conncar-fota`). This module turns a trip duration plus a persona's
//! propensities into a sorted, non-overlapping list of
//! [`Transfer`] intervals for the RRC machine:
//!
//! * a start-of-trip burst (network attach, app sync, telemetry upload);
//! * short periodic telemetry pings every few minutes — these are what
//!   make car connections "mostly short" (§4.7) for cars without
//!   infotainment, since each ping plus the 10–12 s timeout is its own
//!   short session;
//! * infotainment streaming with on/off phases, when the persona uses it
//!   — these produce the longer sessions and the handover chains;
//! * an optional hotspot session spanning most of the trip.

use conncar_radio::{Transfer, TransferKind};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-trip demand generation parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DemandProfile {
    /// Whether this car streams infotainment.
    pub infotainment: bool,
    /// Probability this trip carries a hotspot session.
    pub hotspot_p: f64,
    /// Telemetry ping period bounds, seconds.
    pub telemetry_period: (u64, u64),
    /// Telemetry ping duration bounds, seconds.
    pub telemetry_len: (u64, u64),
    /// Infotainment on-phase bounds, seconds.
    pub stream_on: (u64, u64),
    /// Infotainment off-phase bounds, seconds.
    pub stream_off: (u64, u64),
}

impl DemandProfile {
    /// Profile for a persona (see [`crate::persona::Persona`]).
    ///
    /// Defaults are calibrated against §4.4/§4.5: telemetry reports a
    /// few times an hour (each ping + the RRC timeout is its own short
    /// record), and infotainment streams in bursts separated by long
    /// pauses — cars "often do not connect to every cell they
    /// traverse", which is what keeps handover counts per mobility
    /// session low.
    pub fn new(infotainment: bool, hotspot_p: f64) -> DemandProfile {
        DemandProfile {
            infotainment,
            hotspot_p,
            telemetry_period: (1_700, 2_700),
            telemetry_len: (8, 15),
            stream_on: (180, 600),
            stream_off: (650, 1_300),
        }
    }

    /// Generate the transfer list for a trip lasting `trip_secs`.
    ///
    /// The returned transfers are sorted by start and non-overlapping;
    /// overlapping raw intervals are merged with the higher-demand kind
    /// winning.
    pub fn generate(&self, trip_secs: u64, rng: &mut impl Rng) -> Vec<Transfer> {
        if trip_secs == 0 {
            return Vec::new();
        }
        let mut raw: Vec<Transfer> = Vec::new();

        // Start-of-trip burst.
        let burst = rng.gen_range(45..=100).min(trip_secs.max(1));
        raw.push(Transfer::new(0, burst.max(1), TransferKind::Telemetry));

        // Periodic telemetry.
        let mut t = burst + rng.gen_range(self.telemetry_period.0..=self.telemetry_period.1);
        while t < trip_secs {
            let len = rng.gen_range(self.telemetry_len.0..=self.telemetry_len.1);
            let end = (t + len).min(trip_secs);
            if end > t {
                raw.push(Transfer::new(t, end, TransferKind::Telemetry));
            }
            t += rng.gen_range(self.telemetry_period.0..=self.telemetry_period.1);
        }

        // Infotainment on/off phases.
        if self.infotainment {
            let mut t = rng.gen_range(10..60).min(trip_secs);
            while t < trip_secs {
                let on = rng.gen_range(self.stream_on.0..=self.stream_on.1);
                let end = (t + on).min(trip_secs);
                if end > t {
                    raw.push(Transfer::new(t, end, TransferKind::Infotainment));
                }
                t = end + rng.gen_range(self.stream_off.0..=self.stream_off.1);
            }
        }

        // Hotspot covering the middle stretch of the trip.
        if self.hotspot_p > 0.0 && rng.gen_bool(self.hotspot_p.clamp(0.0, 1.0)) {
            let lead = (trip_secs / 10).max(5).min(trip_secs.saturating_sub(1));
            let end = trip_secs - trip_secs / 20;
            if end > lead {
                raw.push(Transfer::new(lead, end, TransferKind::Hotspot));
            }
        }

        merge_transfers(raw)
    }
}

/// Demand ranking used when overlapping intervals merge.
fn rank(kind: TransferKind) -> u8 {
    match kind {
        TransferKind::Telemetry => 0,
        TransferKind::Infotainment => 1,
        TransferKind::Hotspot => 2,
        TransferKind::Fota => 3,
        TransferKind::Greedy => 4,
    }
}

/// Sort and merge overlapping/adjacent transfers. The merged interval
/// takes the highest-demand kind among its parts — a conservative
/// simplification (demand is not additive across sources in a single
/// modem; the air interface serializes them).
pub fn merge_transfers(mut raw: Vec<Transfer>) -> Vec<Transfer> {
    if raw.is_empty() {
        return raw;
    }
    raw.sort_by_key(|t| (t.start_off, t.end_off));
    let mut out: Vec<Transfer> = Vec::with_capacity(raw.len());
    for t in raw {
        match out.last_mut() {
            Some(prev) if t.start_off <= prev.end_off => {
                prev.end_off = prev.end_off.max(t.end_off);
                if rank(t.kind) > rank(prev.kind) {
                    prev.kind = t.kind;
                }
            }
            _ => out.push(t),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn assert_sorted_disjoint(ts: &[Transfer]) {
        for w in ts.windows(2) {
            assert!(
                w[1].start_off > w[0].end_off,
                "overlap: {:?} then {:?}",
                w[0],
                w[1]
            );
        }
        for t in ts {
            assert!(t.end_off > t.start_off);
        }
    }

    #[test]
    fn telemetry_only_profile() {
        let p = DemandProfile::new(false, 0.0);
        let ts = p.generate(7_200, &mut rng(1));
        assert_sorted_disjoint(&ts);
        assert!(ts.iter().all(|t| t.kind == TransferKind::Telemetry));
        // Start burst + a few pings over two hours.
        assert!(ts.len() >= 2, "{} transfers", ts.len());
        // Low duty cycle: telemetry-only cars are mostly idle.
        let active: u64 = ts.iter().map(|t| t.len_secs()).sum();
        assert!(active < 7_200 / 10, "telemetry active {active}s of 7200");
    }

    #[test]
    fn infotainment_raises_duty_cycle() {
        let tele = DemandProfile::new(false, 0.0);
        let info = DemandProfile::new(true, 0.0);
        let sum = |p: &DemandProfile, seed| -> u64 {
            let ts = p.generate(1_800, &mut rng(seed));
            assert_sorted_disjoint(&ts);
            ts.iter().map(|t| t.len_secs()).sum()
        };
        let tele_avg: u64 = (0..20).map(|s| sum(&tele, s)).sum::<u64>() / 20;
        let info_avg: u64 = (0..20).map(|s| sum(&info, s)).sum::<u64>() / 20;
        assert!(
            info_avg > 3 * tele_avg,
            "info {info_avg}s vs telemetry {tele_avg}s"
        );
        // Streaming cars burst on and off: a meaningful but partial
        // duty cycle (calibrated for the paper's low per-session
        // handover counts).
        assert!(
            (1_800 / 10..=1_800 * 6 / 10).contains(&info_avg),
            "info duty {info_avg}s"
        );
    }

    #[test]
    fn hotspot_always_fires_at_p1() {
        let p = DemandProfile::new(false, 1.0);
        let ts = p.generate(1_200, &mut rng(3));
        assert_sorted_disjoint(&ts);
        assert!(ts.iter().any(|t| t.kind == TransferKind::Hotspot));
    }

    #[test]
    fn zero_length_trip() {
        let p = DemandProfile::new(true, 1.0);
        assert!(p.generate(0, &mut rng(4)).is_empty());
    }

    #[test]
    fn very_short_trip_still_bursts() {
        let p = DemandProfile::new(false, 0.0);
        let ts = p.generate(15, &mut rng(5));
        assert_eq!(ts.len(), 1);
        assert!(ts[0].end_off <= 15 || ts[0].end_off <= 40);
    }

    #[test]
    fn merge_takes_higher_demand_kind() {
        let merged = merge_transfers(vec![
            Transfer::new(0, 100, TransferKind::Telemetry),
            Transfer::new(50, 200, TransferKind::Hotspot),
            Transfer::new(300, 400, TransferKind::Telemetry),
        ]);
        assert_eq!(merged.len(), 2);
        assert_eq!(merged[0].start_off, 0);
        assert_eq!(merged[0].end_off, 200);
        assert_eq!(merged[0].kind, TransferKind::Hotspot);
        assert_eq!(merged[1].kind, TransferKind::Telemetry);
    }

    #[test]
    fn merge_handles_adjacency_and_containment() {
        let merged = merge_transfers(vec![
            Transfer::new(0, 100, TransferKind::Infotainment),
            Transfer::new(100, 150, TransferKind::Telemetry), // adjacent
            Transfer::new(10, 20, TransferKind::Telemetry),   // contained
        ]);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].end_off, 150);
        assert_eq!(merged[0].kind, TransferKind::Infotainment);
    }

    #[test]
    fn merge_empty() {
        assert!(merge_transfers(Vec::new()).is_empty());
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DemandProfile::new(true, 0.5);
        let a = p.generate(2_400, &mut rng(9));
        let b = p.generate(2_400, &mut rng(9));
        assert_eq!(a, b);
    }
}

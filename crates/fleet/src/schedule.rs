//! Day plans: which trips a car makes on one study day.
//!
//! A plan is a sorted, non-overlapping list of [`PlannedTrip`]s in local
//! civil time. Commuting archetypes get their out/back pair anchored on
//! the persona's habitual times with per-day jitter (the regularity knob
//! behind Figure 5's dark stripes); extra errand trips are sprinkled
//! through the day; heavy-fleet cars chain many short hops.

use crate::persona::Persona;
use conncar_geo::{NodeId, Region};
use conncar_types::DayOfWeek;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Why a trip happens; matters only for destination choice and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TripPurpose {
    /// Home → work.
    CommuteOut,
    /// Work → home.
    CommuteBack,
    /// Home → somewhere → (separately planned) back.
    Errand,
    /// Return leg of an errand.
    ErrandReturn,
    /// Heavy-fleet duty hop.
    Duty,
}

/// One planned trip in local time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedTrip {
    /// Departure, seconds after local midnight. May exceed 86 400 for
    /// late-evening returns that spill past midnight.
    pub depart_local_secs: u64,
    /// Origin road node.
    pub origin: NodeId,
    /// Destination road node.
    pub dest: NodeId,
    /// Purpose tag.
    pub purpose: TripPurpose,
}

/// A car's plan for one day.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DayPlan {
    /// Sorted trips; later trips are dropped rather than overlapped when
    /// the day gets crowded.
    pub trips: Vec<PlannedTrip>,
}

impl DayPlan {
    /// An empty (inactive) day.
    pub fn inactive() -> DayPlan {
        DayPlan { trips: Vec::new() }
    }

    /// Whether the car drives at all.
    pub fn is_active(&self) -> bool {
        !self.trips.is_empty()
    }

    /// Generate the plan for `persona` on a day of weekday `weekday`.
    ///
    /// `activity_scale` is the fleet-wide day factor (weather, holidays,
    /// slow adoption trend) multiplying the persona's base activity
    /// probability.
    pub fn generate(
        persona: &Persona,
        weekday: DayOfWeek,
        activity_scale: f64,
        region: &Region,
        rng: &mut impl Rng,
    ) -> DayPlan {
        let p_active = (persona.activity_probability(weekday) * activity_scale).clamp(0.0, 1.0);
        if !rng.gen_bool(p_active) {
            return DayPlan::inactive();
        }

        let mut trips: Vec<PlannedTrip> = Vec::new();
        let commuting = persona.archetype.commutes() && weekday.is_weekday();

        if commuting {
            let out = jittered(persona.commute_out_secs as f64, persona.jitter_secs, rng);
            let back = jittered(persona.commute_back_secs as f64, persona.jitter_secs, rng);
            trips.push(PlannedTrip {
                depart_local_secs: out,
                origin: persona.home,
                dest: persona.work,
                purpose: TripPurpose::CommuteOut,
            });
            trips.push(PlannedTrip {
                depart_local_secs: back.max(out + 3_600),
                origin: persona.work,
                dest: persona.home,
                purpose: TripPurpose::CommuteBack,
            });
        }

        // Extra trips. Heavy fleet gets duty hops chained between random
        // points; everyone else gets errand out-and-back pairs.
        let extra_mean = persona.archetype.extra_trips_mean();
        let n_extra = sample_poisson(extra_mean, rng);
        if persona.archetype == crate::archetype::Archetype::HeavyFleet {
            // Duty hops spread over the working span of the day.
            let mut cursor = persona.commute_out_secs as u64 + 1_800;
            let mut from = persona.work;
            for _ in 0..n_extra {
                cursor += rng.gen_range(900..5_400);
                if cursor > 22 * 3_600 {
                    break;
                }
                let dest = region.random_errand(rng.gen());
                trips.push(PlannedTrip {
                    depart_local_secs: cursor,
                    origin: from,
                    dest,
                    purpose: TripPurpose::Duty,
                });
                from = dest;
                cursor += 1_200; // rough hop time before next departure
            }
        } else {
            for _ in 0..n_extra {
                // Errands happen 9:00–20:00, weighted midday/evening.
                let t = rng.gen_range(9.0_f64..20.0) * 3_600.0;
                let dest = region.random_errand(rng.gen());
                let dwell = rng.gen_range(900..5_400);
                trips.push(PlannedTrip {
                    depart_local_secs: t as u64,
                    origin: persona.home,
                    dest,
                    purpose: TripPurpose::Errand,
                });
                trips.push(PlannedTrip {
                    depart_local_secs: t as u64 + dwell,
                    origin: dest,
                    dest: persona.home,
                    purpose: TripPurpose::ErrandReturn,
                });
            }
        }

        // An active day means the car was *used*: guarantee at least one
        // out-and-back errand on days where the draws produced nothing
        // (typical for commuters on weekends).
        if trips.is_empty() {
            let t = rng.gen_range(8.5_f64..19.0) * 3_600.0;
            let dest = region.random_errand(rng.gen());
            let dwell = rng.gen_range(900..5_400);
            trips.push(PlannedTrip {
                depart_local_secs: t as u64,
                origin: persona.home,
                dest,
                purpose: TripPurpose::Errand,
            });
            trips.push(PlannedTrip {
                depart_local_secs: t as u64 + dwell,
                origin: dest,
                dest: persona.home,
                purpose: TripPurpose::ErrandReturn,
            });
        }

        trips.sort_by_key(|t| t.depart_local_secs);
        // Drop trips that would depart before the previous one plausibly
        // ends (90 s minimum turnaround; actual route times are resolved
        // later, so this is a coarse de-overlap).
        let mut cleaned: Vec<PlannedTrip> = Vec::with_capacity(trips.len());
        for t in trips {
            match cleaned.last() {
                Some(prev) if t.depart_local_secs < prev.depart_local_secs + 600 => {
                    // too tight — skip
                }
                _ => cleaned.push(t),
            }
        }
        DayPlan { trips: cleaned }
    }
}

/// Anchor + zero-mean normal-ish jitter (sum of 3 uniforms), clamped to
/// the day.
fn jittered(anchor_secs: f64, sigma_secs: f64, rng: &mut impl Rng) -> u64 {
    let z = (rng.gen::<f64>() + rng.gen::<f64>() + rng.gen::<f64>() - 1.5) / 0.5;
    (anchor_secs + z * sigma_secs).clamp(0.0, 86_399.0) as u64
}

/// Small-mean Poisson sampler (Knuth's multiplication method — exact and
/// fast for the means ≤ ~7 used here; avoids a `rand_distr` dependency).
fn sample_poisson(mean: f64, rng: &mut impl Rng) -> u64 {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k: u64 = 0;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p < l || k > 64 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archetype::{Archetype, ArchetypeMix};
    use crate::persona::PersonaFactory;
    use conncar_geo::RegionConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn setup() -> (Region, Vec<Persona>) {
        let region = Region::generate(&RegionConfig::small(), 42);
        let f = PersonaFactory::new(ArchetypeMix::default(), 42);
        let personas = (0..400).map(|i| f.create(i, &region)).collect();
        (region, personas)
    }

    fn find(personas: &[Persona], a: Archetype) -> &Persona {
        personas.iter().find(|p| p.archetype == a).expect("archetype present")
    }

    #[test]
    fn commuter_weekday_has_out_and_back() {
        let (region, personas) = setup();
        let p = find(&personas, Archetype::RegularCommuter);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        // Try a few days; activity is 0.97 so the first active day comes
        // fast.
        for _ in 0..10 {
            let plan = DayPlan::generate(p, DayOfWeek::Tuesday, 1.0, &region, &mut rng);
            if plan.is_active() {
                let purposes: Vec<_> = plan.trips.iter().map(|t| t.purpose).collect();
                assert!(purposes.contains(&TripPurpose::CommuteOut));
                assert!(purposes.contains(&TripPurpose::CommuteBack));
                // Sorted and separated.
                for w in plan.trips.windows(2) {
                    assert!(w[1].depart_local_secs >= w[0].depart_local_secs + 600);
                }
                return;
            }
        }
        panic!("commuter never active in 10 tries");
    }

    #[test]
    fn commuter_weekend_has_no_commute() {
        let (region, personas) = setup();
        let p = find(&personas, Archetype::RegularCommuter);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..30 {
            let plan = DayPlan::generate(p, DayOfWeek::Sunday, 1.0, &region, &mut rng);
            for t in &plan.trips {
                assert!(!matches!(
                    t.purpose,
                    TripPurpose::CommuteOut | TripPurpose::CommuteBack
                ));
            }
        }
    }

    #[test]
    fn zero_activity_scale_grounds_everyone() {
        let (region, personas) = setup();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for p in personas.iter().take(50) {
            let plan = DayPlan::generate(p, DayOfWeek::Monday, 0.0, &region, &mut rng);
            assert!(!plan.is_active());
        }
    }

    #[test]
    fn heavy_fleet_makes_many_trips() {
        let (region, personas) = setup();
        let p = find(&personas, Archetype::HeavyFleet);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut best = 0;
        for _ in 0..10 {
            let plan = DayPlan::generate(p, DayOfWeek::Wednesday, 1.0, &region, &mut rng);
            best = best.max(plan.trips.len());
        }
        assert!(best >= 4, "heavy fleet max trips {best}");
    }

    #[test]
    fn rare_driver_is_mostly_inactive() {
        let (region, personas) = setup();
        let p = find(&personas, Archetype::RareDriver);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let active_days = (0..200)
            .filter(|_| {
                DayPlan::generate(p, DayOfWeek::Monday, 1.0, &region, &mut rng).is_active()
            })
            .count();
        assert!(
            active_days < 80,
            "rare driver active {active_days}/200 days"
        );
    }

    #[test]
    fn commute_jitter_varies_departures() {
        let (region, personas) = setup();
        let p = find(&personas, Archetype::RegularCommuter);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let mut departures = Vec::new();
        for _ in 0..40 {
            let plan = DayPlan::generate(p, DayOfWeek::Thursday, 1.0, &region, &mut rng);
            if let Some(t) = plan
                .trips
                .iter()
                .find(|t| t.purpose == TripPurpose::CommuteOut)
            {
                departures.push(t.depart_local_secs as f64);
            }
        }
        assert!(departures.len() > 20);
        let mean = departures.iter().sum::<f64>() / departures.len() as f64;
        let var =
            departures.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / departures.len() as f64;
        let sd = var.sqrt();
        // σ configured to 12 min for regular commuters; allow slack.
        assert!(
            (200.0..1_800.0).contains(&sd),
            "departure σ {sd} s, mean {mean}"
        );
        // Anchored near the persona's habitual time.
        assert!((mean - p.commute_out_secs as f64).abs() < 900.0);
    }

    #[test]
    fn errands_come_in_pairs_when_not_crowded() {
        let (region, personas) = setup();
        let p = find(&personas, Archetype::ErrandDriver);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..30 {
            let plan = DayPlan::generate(p, DayOfWeek::Saturday, 1.0, &region, &mut rng);
            for t in &plan.trips {
                // Errand trips start from home or return to it.
                match t.purpose {
                    TripPurpose::Errand => assert_eq!(t.origin, p.home),
                    TripPurpose::ErrandReturn => assert_eq!(t.dest, p.home),
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::archetype::ArchetypeMix;
    use crate::persona::PersonaFactory;
    use conncar_geo::{Region, RegionConfig};
    use proptest::prelude::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::sync::OnceLock;

    fn region() -> &'static Region {
        static REGION: OnceLock<Region> = OnceLock::new();
        REGION.get_or_init(|| Region::generate(&RegionConfig::small(), 42))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn plans_are_sorted_and_separated(
            car in 0u32..500,
            day_idx in 0usize..7,
            seed in any::<u64>(),
            scale in 0.0f64..1.5,
        ) {
            let r = region();
            let persona = PersonaFactory::new(ArchetypeMix::default(), 42).create(car, r);
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let plan = DayPlan::generate(
                &persona,
                DayOfWeek::from_index(day_idx),
                scale,
                r,
                &mut rng,
            );
            for w in plan.trips.windows(2) {
                prop_assert!(w[1].depart_local_secs >= w[0].depart_local_secs + 600);
            }
            for t in &plan.trips {
                // Departures stay within (extended) civil day bounds.
                prop_assert!(t.depart_local_secs < 2 * 86_400);
                prop_assert!(t.origin.index() < r.roads().node_count());
                prop_assert!(t.dest.index() < r.roads().node_count());
            }
            // An active plan is never empty (the guaranteed-errand rule).
            if plan.is_active() {
                prop_assert!(!plan.trips.is_empty());
            }
        }
    }
}

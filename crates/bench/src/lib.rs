//! Shared fixture for the benchmark harness.
//!
//! Every bench binary regenerates its paper artifact from the same
//! bench-scale study (deterministic, seed-fixed), prints the artifact
//! once — so `cargo bench` output can be compared against the paper —
//! and then measures the analysis runtime.

use conncar::{StudyAnalyses, StudyConfig, StudyData};
use conncar_types::{DayOfWeek, StudyPeriod};
use std::sync::OnceLock;

/// Bench study scale: big enough for every distribution to be non-
/// degenerate, small enough that `cargo bench` stays minutes, not hours.
///
/// `CONNCAR_BENCH_FIXTURE=tiny` swaps in [`StudyConfig::tiny`] — the CI
/// bench smoke job uses it to exercise the full bench + artifact + gate
/// path in seconds instead of minutes.
pub fn bench_config() -> StudyConfig {
    if std::env::var("CONNCAR_BENCH_FIXTURE").as_deref() == Ok("tiny") {
        return StudyConfig::tiny();
    }
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = 250;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, 14).expect("nonzero");
    cfg.faults.loss_days = vec![9, 10, 12];
    cfg
}

/// The shared study + analyses, generated once per bench process.
pub fn fixture() -> &'static (StudyData, StudyAnalyses) {
    static FIXTURE: OnceLock<(StudyData, StudyAnalyses)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let study = StudyData::generate(&bench_config()).expect("bench study");
        let analyses = StudyAnalyses::run(&study).expect("bench analyses");
        (study, analyses)
    })
}

/// Standard criterion configuration: modest sample counts, the work
/// under test is milliseconds-scale.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
        .configure_from_args()
}

/// Print one experiment's regenerated artifact (the rows/series the
/// paper reports) before timing it.
pub fn print_artifact(e: conncar::Experiment) {
    let (study, analyses) = fixture();
    match e.run(study, analyses) {
        Ok(out) => println!("\n=== {} — {} ===\n{}", e.id(), e.title(), out.text),
        Err(err) => println!("\n=== {} failed: {err} ===", e.id()),
    }
}

//! Shared fixture for the benchmark harness.
//!
//! Every bench binary regenerates its paper artifact from the same
//! bench-scale study (deterministic, seed-fixed), prints the artifact
//! once — so `cargo bench` output can be compared against the paper —
//! and then measures the analysis runtime.

use conncar::{StudyAnalyses, StudyConfig, StudyData};
use conncar_types::{DayOfWeek, StudyPeriod};
use std::sync::OnceLock;

/// Bench study scale: big enough for every distribution to be non-
/// degenerate, small enough that `cargo bench` stays minutes, not hours.
///
/// `CONNCAR_BENCH_FIXTURE=tiny` swaps in [`StudyConfig::tiny`] — the CI
/// bench smoke job uses it to exercise the full bench + artifact + gate
/// path in seconds instead of minutes.
pub fn bench_config() -> StudyConfig {
    if std::env::var("CONNCAR_BENCH_FIXTURE").as_deref() == Ok("tiny") {
        return StudyConfig::tiny();
    }
    let mut cfg = StudyConfig::default();
    cfg.fleet.cars = 250;
    cfg.period = StudyPeriod::new(DayOfWeek::Monday, 14).expect("nonzero");
    cfg.faults.loss_days = vec![9, 10, 12];
    cfg
}

/// The shared study + analyses, generated once per bench process.
pub fn fixture() -> &'static (StudyData, StudyAnalyses) {
    static FIXTURE: OnceLock<(StudyData, StudyAnalyses)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let study = StudyData::generate(&bench_config()).expect("bench study");
        let analyses = StudyAnalyses::run(&study).expect("bench analyses");
        (study, analyses)
    })
}

/// Standard criterion configuration: modest sample counts, the work
/// under test is milliseconds-scale.
pub fn criterion() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3))
        .configure_from_args()
}

/// Print one experiment's regenerated artifact (the rows/series the
/// paper reports) before timing it.
pub fn print_artifact(e: conncar::Experiment) {
    let (study, analyses) = fixture();
    match e.run(study, analyses) {
        Ok(out) => println!("\n=== {} — {} ===\n{}", e.id(), e.title(), out.text),
        Err(err) => println!("\n=== {} failed: {err} ===", e.id()),
    }
}

/// Resolve a bench artifact's output path (`env_key` override, else
/// `default_path`) and write `json` there.
///
/// The harness refuses to clobber a previous real artifact with an
/// empty run: when the caller flags the run as empty (nothing measured)
/// or the rendered JSON is blank, and the target already holds bytes,
/// the existing artifact is kept and a warning printed instead. CI
/// gates read these files — a truncated rerun must never erase the
/// numbers they gate on. Panics on I/O errors for real writes, so a
/// gate never reads a silently missing artifact.
pub fn write_artifact(
    env_key: &str,
    default_path: &str,
    json: &str,
    run_is_empty: bool,
) -> std::path::PathBuf {
    let path = std::path::PathBuf::from(
        std::env::var(env_key).unwrap_or_else(|_| default_path.to_string()),
    );
    let empty = run_is_empty || json.trim().is_empty();
    let target_has_data = std::fs::metadata(&path).map(|m| m.len() > 0).unwrap_or(false);
    if empty && target_has_data {
        eprintln!(
            "warning: refusing to overwrite {} with an empty bench run",
            path.display()
        );
        return path;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    path
}

#[cfg(test)]
mod tests {
    use super::write_artifact;

    #[test]
    fn empty_runs_do_not_clobber_real_artifacts() {
        let dir = std::env::temp_dir().join("conncar_bench_write_artifact_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join("BENCH_x.json");
        let key = "CONNCAR_TEST_BENCH_X_JSON";
        std::env::set_var(key, &target);

        // First real run writes.
        write_artifact(key, "unused-default", "{\"tiers\":[1]}", false);
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "{\"tiers\":[1]}");
        // An empty rerun is refused...
        write_artifact(key, "unused-default", "{\"tiers\":[]}", true);
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "{\"tiers\":[1]}");
        // ...and so is a blank payload, even when not flagged.
        write_artifact(key, "unused-default", "  \n", false);
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "{\"tiers\":[1]}");
        // A later real run still updates the artifact.
        write_artifact(key, "unused-default", "{\"tiers\":[2]}", false);
        assert_eq!(std::fs::read_to_string(&target).unwrap(), "{\"tiers\":[2]}");

        std::env::remove_var(key);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

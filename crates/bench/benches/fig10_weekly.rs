//! Figure 10: weekly concurrent-car and PRB profiles of two sample
//! radios.

use conncar::Experiment;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig10);
    let (_, analyses) = fixture();
    let cell = analyses.concurrency.cells().next().expect("cells");
    c.bench_function("fig10/weekly_profile", |b| {
        b.iter(|| analyses.concurrency.weekly_profile(cell))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

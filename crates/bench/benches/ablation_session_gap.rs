//! Ablation: the session-gap parameters of §3 (30 s concatenation) and
//! §4.5 (10-minute mobility sessions). Sweeps the gap and reports
//! session counts and handover percentiles.

use conncar_analysis::handover::handover_analysis;
use conncar_bench::{criterion, fixture};
use conncar_cdr::{SessionConfig, Sessionizer};
use conncar_types::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (study, _) = fixture();
    println!("\n=== ablation: session-gap sweep ===");
    println!(
        "{:<10} {:>10} {:>14} {:>10} {:>10}",
        "gap (s)", "sessions", "median HOs", "p70", "p90"
    );
    for gap_secs in [10u64, 30, 120, 600, 1_800] {
        let cfg = SessionConfig {
            max_gap: Duration::from_secs(gap_secs),
        };
        let sessions = Sessionizer::new(cfg).sessions(&study.clean);
        let r = handover_analysis(&study.clean, cfg).expect("handovers");
        let (p70, p90) = r.p70_p90();
        println!(
            "{:<10} {:>10} {:>14.0} {:>10.0} {:>10.0}",
            gap_secs,
            sessions.len(),
            r.median().unwrap_or(0.0),
            p70.unwrap_or(0.0),
            p90.unwrap_or(0.0),
        );
    }
    let mut g = c.benchmark_group("ablation_session_gap");
    for gap_secs in [30u64, 600] {
        g.bench_with_input(BenchmarkId::from_parameter(gap_secs), &gap_secs, |b, &s| {
            let cfg = SessionConfig {
                max_gap: Duration::from_secs(s),
            };
            b.iter(|| Sessionizer::new(cfg).sessions(&study.clean))
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Pipeline throughput: the data-plane costs a production deployment
//! would care about — trace generation, codec round trips,
//! sessionization, concurrency indexing.

use conncar_analysis::concurrency::ConcurrencyIndex;
use conncar_bench::{criterion, fixture};
use conncar_cdr::{BinaryCodec, CsvCodec, SessionConfig, Sessionizer};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench(c: &mut Criterion) {
    let (study, _) = fixture();
    let records = study.clean.records();
    println!(
        "pipeline fixture: {} records, {} cars, {} cells",
        records.len(),
        study.clean.car_count(),
        study.clean.cell_count()
    );

    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("binary_encode", |b| b.iter(|| BinaryCodec::encode(records)));
    let encoded = BinaryCodec::encode(records);
    g.bench_function("binary_decode", |b| {
        b.iter(|| BinaryCodec::decode(&encoded).expect("decode"))
    });
    g.bench_function("csv_encode", |b| b.iter(|| CsvCodec::encode(records)));
    let csv = CsvCodec::encode(records);
    g.bench_function("csv_decode", |b| {
        b.iter(|| CsvCodec::decode(&csv).expect("decode"))
    });
    g.bench_function("sessionize_30s", |b| {
        b.iter(|| Sessionizer::new(SessionConfig::AGGREGATE).sessions(&study.clean))
    });
    g.bench_function("sessionize_10min", |b| {
        b.iter(|| Sessionizer::new(SessionConfig::MOBILITY).sessions(&study.clean))
    });
    g.bench_function("concurrency_index", |b| {
        b.iter(|| ConcurrencyIndex::build(&study.clean))
    });
    g.finish();

    // Whole-study generation at a reduced scale (the expensive path).
    let mut small = conncar_bench::bench_config();
    small.fleet.cars = 40;
    small.period =
        conncar_types::StudyPeriod::new(conncar_types::DayOfWeek::Monday, 7).expect("days");
    c.bench_function("pipeline/generate_40cars_7days", |b| {
        b.iter(|| conncar::StudyData::generate(&small).expect("study"))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Figures 4 and 5: the reference 24×7 matrices and three sample cars'
//! weekly usage matrices.

use conncar::analyses::sample_car_matrices;
use conncar::Experiment;
use conncar_analysis::matrix::{car_matrix, reference_matrices};
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig4);
    print_artifact(Experiment::Fig5);
    let (study, _) = fixture();
    c.bench_function("fig4/reference_matrices", |b| b.iter(reference_matrices));
    c.bench_function("fig5/sample_car_matrices", |b| {
        b.iter(|| sample_car_matrices(study))
    });
    // Single-car matrix build over the busiest car.
    let (_car, records) = study
        .clean
        .by_car()
        .max_by_key(|(_, r)| r.len())
        .expect("cars");
    c.bench_function("fig5/one_car_matrix", |b| {
        b.iter(|| car_matrix(records, study.config.period, study.region.timezone()))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Ablation: the `U_PRB > 80%` busy threshold and the 65%/35% car rule
//! of §4.3. Sweeps the threshold and reports how Table 2's segments and
//! Figure 7's tail move.

use conncar::analyses::{BUSY_CAR_HI, BUSY_CAR_LO};
use conncar_analysis::busy::NetworkLoadModel;
use conncar_analysis::segmentation::{busy_time_distribution, car_profiles, segment};
use conncar_bench::{criterion, fixture};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (study, _) = fixture();
    println!("\n=== ablation: busy-threshold sweep ===");
    println!(
        "{:<12} {:>12} {:>14} {:>16}",
        "threshold", "busy cars", "both cars", "cars >50% busy"
    );
    for threshold in [0.6, 0.7, 0.8, 0.9] {
        let model = NetworkLoadModel::new(
            &study.ledger,
            &study.background,
            study.region.deployment(),
        )
        .with_threshold(threshold);
        let profiles = car_profiles(&study.clean, &model);
        let row = segment(&profiles, 3, BUSY_CAR_HI, BUSY_CAR_LO);
        let busy = busy_time_distribution(&profiles).expect("distribution");
        println!(
            "{:<12.2} {:>11.2}% {:>13.2}% {:>15.2}%",
            threshold,
            (row.rare[0] + row.common[0]) * 100.0,
            (row.rare[2] + row.common[2]) * 100.0,
            busy.over_half * 100.0,
        );
    }
    let mut g = c.benchmark_group("ablation_busy_threshold");
    g.sample_size(10);
    for threshold in [0.7f64, 0.8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threshold),
            &threshold,
            |b, &t| {
                let model = NetworkLoadModel::new(
                    &study.ledger,
                    &study.background,
                    study.region.deployment(),
                )
                .with_threshold(t);
                b.iter(|| car_profiles(&study.clean, &model))
            },
        );
    }
    g.finish();
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Figure 8: per-car connections in the busiest cell over 24 hours.

use conncar::Experiment;
use conncar_analysis::concurrency::cell_day_gantt;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig8);
    let (study, analyses) = fixture();
    let (cell, day, _) = analyses
        .concurrency
        .busiest_cell_day(&study.clean)
        .expect("non-empty study");
    c.bench_function("fig8/cell_day_gantt", |b| {
        b.iter(|| cell_day_gantt(&study.clean, cell, day))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! §4.5: handovers per mobility session and the handover-type taxonomy.

use conncar::Experiment;
use conncar_analysis::handover::handover_analysis;
use conncar_bench::{criterion, fixture, print_artifact};
use conncar_cdr::SessionConfig;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Sec45);
    let (study, _) = fixture();
    c.bench_function("sec4.5/handover_analysis", |b| {
        b.iter(|| handover_analysis(&study.clean, SessionConfig::MOBILITY).expect("handovers"))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Figure 3: CDF of per-car total connected time (full vs truncated).

use conncar::Experiment;
use conncar_analysis::temporal::connected_time_cdf;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig3);
    let (study, _) = fixture();
    c.bench_function("fig3/connected_time_cdf", |b| {
        b.iter(|| {
            connected_time_cdf(&study.clean, study.total_cars(), study.config.truncation)
                .expect("cdf")
        })
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Figure 7: distribution of per-car time spent in busy cells.

use conncar::Experiment;
use conncar_analysis::segmentation::busy_time_distribution;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig7);
    let (_, analyses) = fixture();
    c.bench_function("fig7/busy_time_distribution", |b| {
        b.iter(|| busy_time_distribution(&analyses.profiles).expect("distribution"))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Table 3: carrier use of connected cars (reach and time share).

use conncar::Experiment;
use conncar_analysis::carrier::carrier_usage;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Tab3);
    let (study, _) = fixture();
    c.bench_function("tab3/carrier_usage", |b| {
        b.iter(|| carrier_usage(&study.clean))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

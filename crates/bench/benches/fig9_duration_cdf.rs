//! Figure 9: CDF of per-cell connection durations (full vs truncated).

use conncar::Experiment;
use conncar_analysis::duration::connection_durations;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig9);
    let (study, _) = fixture();
    c.bench_function("fig9/connection_durations", |b| {
        b.iter(|| connection_durations(&study.clean, study.config.truncation).expect("cdf"))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

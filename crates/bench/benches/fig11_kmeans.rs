//! Figure 11: k-means clustering of busy radios by their daily
//! concurrent-car profiles.

use conncar::Experiment;
use conncar_analysis::cluster::{choose_k, cluster_busy_cells, kmeans};
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig11);
    let (study, analyses) = fixture();
    let model = study.load_model();
    c.bench_function("fig11/cluster_busy_cells", |b| {
        b.iter(|| {
            // Relaxed threshold so the bench study always qualifies
            // some cells.
            cluster_busy_cells(&analyses.concurrency, &model, 0.4, 2, 42)
        })
    });
    // Raw k-means on the profile vectors.
    let points: Vec<Vec<f64>> = analyses
        .concurrency
        .cells()
        .take(64)
        .map(|c| analyses.concurrency.daily_profile(c).to_vec())
        .collect();
    c.bench_function("fig11/kmeans_k2", |b| {
        b.iter(|| kmeans(&points, 2, 100, 7).expect("kmeans"))
    });
    c.bench_function("fig11/choose_k", |b| {
        b.iter(|| choose_k(&points, 5, 50, 7).expect("choose_k"))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Ablation: the 600 s truncation cap of §3. Sweeps the cap and reports
//! how the Figure 3 / Figure 9 means move — the justification for the
//! paper's conservative choice.

use conncar_analysis::duration::connection_durations;
use conncar_analysis::temporal::connected_time_cdf;
use conncar_bench::{criterion, fixture};
use conncar_types::Duration;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let (study, _) = fixture();
    println!("\n=== ablation: truncation cap sweep ===");
    println!(
        "{:<10} {:>16} {:>16} {:>16}",
        "cap (s)", "fig3 mean", "fig9 mean (s)", "fig9 p73 (s)"
    );
    for cap_secs in [150u64, 300, 600, 1_200, 2_400] {
        let cap = Duration::from_secs(cap_secs);
        let f3 = connected_time_cdf(&study.clean, study.total_cars(), cap).expect("cdf");
        let f9 = connection_durations(&study.clean, cap).expect("cdf");
        println!(
            "{:<10} {:>15.3}% {:>16.0} {:>16.0}",
            cap_secs,
            f3.truncated.mean() * 100.0,
            f9.truncated.mean(),
            f9.truncated.quantile(0.73).unwrap_or(0.0),
        );
    }
    let mut g = c.benchmark_group("ablation_truncation");
    for cap_secs in [300u64, 600, 1_200] {
        g.bench_with_input(BenchmarkId::from_parameter(cap_secs), &cap_secs, |b, &s| {
            b.iter(|| {
                connection_durations(&study.clean, Duration::from_secs(s)).expect("cdf")
            })
        });
    }
    g.finish();
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

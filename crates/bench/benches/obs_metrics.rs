//! Metrics-substrate micro-benchmarks.
//!
//! Two questions, both answered with a machine-readable artifact
//! (`target/BENCH_metrics.json`, path overridable via
//! `BENCH_METRICS_JSON`):
//!
//! 1. **`sum_prefix` fast path** — the `CounterRegistry` keeps keys in
//!    a `BTreeMap`, so a prefix sum can range-scan from the prefix and
//!    stop at the first non-matching key instead of filtering the whole
//!    registry linearly. This bench builds registries of growing size
//!    with a small target namespace and times the shipped range scan
//!    against the naive linear filter, pinning the speedup the code
//!    comment claims.
//! 2. **Live-plane hot-path cost** — the per-record price of the
//!    lock-free primitives the serve engine calls on every query:
//!    `LiveCounter::incr`, `LiveHistogram::record`, and
//!    `FlightRecorder::post`, reported as ns/op.
//!
//! Plain `fn main` on purpose, like the other benches: the numbers go
//! to the JSON artifact, not a criterion report.

use conncar_obs::{Clock, CounterRegistry, FlightRecorder, LiveCounter, LiveHistogram, MonotonicClock};

/// Best-of-N wall time in nanoseconds for `ops` operations.
fn best_ns(clock: &dyn Clock, iters: usize, mut f: impl FnMut()) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t0 = clock.now_nanos();
        f();
        best = best.min(clock.now_nanos().saturating_sub(t0).max(1));
    }
    best
}

/// A registry with `total` keys across disjoint namespaces, of which
/// `hot` live under the `serve.cache.` prefix being summed.
fn registry(total: usize, hot: usize) -> CounterRegistry {
    let mut reg = CounterRegistry::new();
    for i in 0..hot {
        reg.add(&format!("serve.cache.op{i:04}"), i as u64 + 1);
    }
    for i in 0..total.saturating_sub(hot) {
        // Spread the cold keys across namespaces sorting both below
        // and above the hot prefix, so the range scan's early stop is
        // actually exercised.
        let ns = ["a.early", "m.mid", "z.late"][i % 3];
        reg.add(&format!("{ns}.k{i:05}"), 1);
    }
    reg
}

fn naive_sum(reg: &CounterRegistry, prefix: &str) -> u64 {
    reg.iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| v)
        .sum()
}

fn main() {
    let clock = MonotonicClock::new();
    let iters = 30usize;
    let mut rows: Vec<String> = Vec::new();

    // --- sum_prefix: range scan vs linear filter -------------------
    let hot = 16usize;
    let mut worst_ratio = f64::MAX;
    for total in [64usize, 512, 4096] {
        let reg = registry(total, hot);
        let want = naive_sum(&reg, "serve.cache.");
        assert_eq!(reg.sum_prefix("serve.cache."), want, "paths must agree");

        let range_ns = best_ns(&clock, iters, || {
            std::hint::black_box(reg.sum_prefix(std::hint::black_box("serve.cache.")));
        });
        let linear_ns = best_ns(&clock, iters, || {
            std::hint::black_box(naive_sum(&reg, std::hint::black_box("serve.cache.")));
        });
        let speedup = linear_ns as f64 / range_ns as f64;
        worst_ratio = worst_ratio.min(speedup);
        rows.push(format!(
            concat!(
                "    {{\"experiment\": \"sum_prefix\", \"registry_keys\": {}, ",
                "\"prefix_keys\": {}, \"range_scan_ns\": {}, \"linear_filter_ns\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            total, hot, range_ns, linear_ns, speedup
        ));
        println!(
            "sum_prefix over {total:>5} keys: range {range_ns:>7}ns vs linear \
             {linear_ns:>7}ns ({speedup:.2}x)"
        );
    }

    // --- live-plane primitives: ns per operation -------------------
    let ops = 100_000u64;
    let counter = LiveCounter::new();
    let counter_ns = best_ns(&clock, 5, || {
        for _ in 0..ops {
            counter.incr();
        }
    });
    let hist = LiveHistogram::new();
    let hist_ns = best_ns(&clock, 5, || {
        for i in 0..ops {
            hist.record(i.wrapping_mul(2_654_435_761));
        }
    });
    let ring = FlightRecorder::new(256);
    let ring_ns = best_ns(&clock, 5, || {
        for i in 0..ops {
            ring.post(i, 1, i, 0);
        }
    });
    for (name, total_ns) in [
        ("counter_incr", counter_ns),
        ("histogram_record", hist_ns),
        ("flight_post", ring_ns),
    ] {
        let per_op = total_ns as f64 / ops as f64;
        rows.push(format!(
            concat!(
                "    {{\"experiment\": \"{}\", \"ops\": {}, \"wall_ns\": {}, ",
                "\"ns_per_op\": {:.2}}}"
            ),
            name, ops, total_ns, per_op
        ));
        println!("{name:<18} {per_op:>8.2} ns/op");
    }
    std::hint::black_box((counter.get(), hist.snapshot().count, ring.posted()));

    let json = format!(
        "{{\n  \"bench\": \"obs_metrics\",\n  \"clock\": \"{}\",\n  \"results\": [\n{}\n  ]\n}}\n",
        clock.kind(),
        rows.join(",\n")
    );
    let path = conncar_bench::write_artifact(
        "BENCH_METRICS_JSON",
        "target/BENCH_metrics.json",
        &json,
        rows.is_empty(),
    );
    println!("wrote {}", path.display());
    // The range scan must never lose to the linear filter at scale;
    // tolerate parity (ratio near 1.0) only for the smallest registry.
    assert!(
        worst_ratio > 0.5,
        "range-scan sum_prefix catastrophically slower than linear filter"
    );
}

//! Figure 6: histogram of the number of days each car was on the
//! network.

use conncar::Experiment;
use conncar_analysis::segmentation::days_histogram;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig6);
    let (study, analyses) = fixture();
    c.bench_function("fig6/days_histogram", |b| {
        b.iter(|| days_histogram(&analyses.profiles, study.config.period.days()))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

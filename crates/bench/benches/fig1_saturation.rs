//! Figure 1: a single greedy download saturates two radio cells.
//! Regenerates the test-day vs average-day PRB series, then times the
//! saturation experiment.

use conncar::Experiment;
use conncar_bench::{criterion, fixture, print_artifact};
use conncar_fota::{greedy_saturation, GreedyExperiment};
use conncar_radio::CellClass;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig1);
    let (study, analyses) = fixture();
    // Two car-visited cells (any two; the bench measures runtime, the
    // artifact above used the hottest pair).
    let mut cells = analyses.concurrency.cells();
    let a = cells.next().expect("cells");
    let b = cells.next().unwrap_or(a);
    let exp = GreedyExperiment::paper([a, b], 7);
    c.bench_function("fig1/greedy_saturation", |bch| {
        bch.iter(|| {
            greedy_saturation(
                &exp,
                &study.ledger,
                &study.background,
                [CellClass::Business, CellClass::Residential],
            )
        })
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

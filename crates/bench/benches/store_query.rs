//! Store vs legacy query benchmark.
//!
//! Times the rewired analyses and representative ad-hoc queries twice —
//! once over the flat record vector (the legacy path) and once through
//! the sharded columnar [`CdrStore`] — and emits a machine-readable
//! `BENCH_store.json` (path overridable via `BENCH_STORE_JSON`) with
//! per-experiment wall times, rows/s, and speedups.
//!
//! Plain `fn main` on purpose: the numbers go to the JSON artifact, not
//! a criterion report, so the binary stays runnable anywhere `rustc` is.

use conncar::StudyData;
use conncar_analysis::concurrency::ConcurrencyIndex;
use conncar_analysis::duration::{connection_durations, connection_durations_store};
use conncar_analysis::temporal::{daily_presence, daily_presence_store};
use conncar_bench::bench_config;
use conncar_store::{CdrStore, Filter};
use std::time::Instant;

/// Best-of-N wall time in nanoseconds (min absorbs scheduler noise
/// better than mean at these iteration counts).
fn best_of<R>(iters: usize, mut f: impl FnMut() -> R) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t = Instant::now();
        let r = f();
        let ns = t.elapsed().as_nanos() as u64;
        std::hint::black_box(&r);
        best = best.min(ns.max(1));
    }
    best
}

struct Row {
    id: &'static str,
    rows: u64,
    legacy_ns: u64,
    store_ns: u64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy_ns as f64 / self.store_ns as f64
    }
    fn json(&self) -> String {
        let rps = |ns: u64| (self.rows as f64 / (ns as f64 / 1e9)).round();
        format!(
            concat!(
                "    {{\"experiment\": \"{}\", \"rows\": {}, ",
                "\"legacy_wall_ns\": {}, \"store_wall_ns\": {}, ",
                "\"legacy_rows_per_sec\": {}, \"store_rows_per_sec\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            self.id,
            self.rows,
            self.legacy_ns,
            self.store_ns,
            rps(self.legacy_ns),
            rps(self.store_ns),
            self.speedup()
        )
    }
}

fn main() {
    let cfg = bench_config();
    let study = StudyData::generate(&cfg).expect("bench study");
    let ds = &study.clean;
    let rows = ds.len() as u64;
    let total_cars = study.total_cars();
    let cap = cfg.truncation;

    let t = Instant::now();
    let store = CdrStore::build_auto(ds);
    let build_ns = t.elapsed().as_nanos() as u64;
    eprintln!(
        "fixture: {} records, {} cars, {} shards (built in {:.1} ms)",
        rows,
        ds.car_count(),
        store.shard_count(),
        build_ns as f64 / 1e6
    );

    // Ad-hoc query targets pulled from the data itself.
    let probe = ds.records()[ds.len() / 2];
    let (car, cell) = (probe.car, probe.cell);
    let mid = cfg.period.duration().as_secs() / 2;
    let (win_lo, win_hi) = (
        conncar_types::Timestamp::from_secs(mid),
        conncar_types::Timestamp::from_secs(mid + 6 * 3600),
    );

    let iters = 7;
    let mut out: Vec<Row> = Vec::new();

    out.push(Row {
        id: "fig2_daily_presence",
        rows,
        legacy_ns: best_of(iters, || daily_presence(ds, total_cars)),
        store_ns: best_of(iters, || daily_presence_store(&store, total_cars)),
    });
    out.push(Row {
        id: "fig9_connection_durations",
        rows,
        legacy_ns: best_of(iters, || connection_durations(ds, cap).expect("cdf")),
        store_ns: best_of(iters, || {
            connection_durations_store(&store, cap).expect("cdf")
        }),
    });
    out.push(Row {
        id: "concurrency_index",
        rows,
        legacy_ns: best_of(iters, || ConcurrencyIndex::build(ds)),
        store_ns: best_of(iters, || ConcurrencyIndex::build_from_store(&store)),
    });
    out.push(Row {
        id: "car_history_lookup",
        rows,
        legacy_ns: best_of(iters, || {
            ds.records()
                .iter()
                .filter(|r| r.car == car)
                .copied()
                .collect::<Vec<_>>()
        }),
        store_ns: best_of(iters, || store.collect(&Filter::all().car(car))),
    });
    out.push(Row {
        id: "cell_window_count",
        rows,
        legacy_ns: best_of(iters, || {
            ds.records()
                .iter()
                .filter(|r| r.cell == cell && r.start < win_hi && r.end > win_lo)
                .count()
        }),
        store_ns: best_of(iters, || {
            store.count(&Filter::all().cell(cell).window(win_lo, win_hi))
        }),
    });

    let best = out
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("rows");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store_query\",\n",
            "  \"fixture\": {{\"records\": {}, \"cars\": {}, \"shards\": {}, \"days\": {}}},\n",
            "  \"store_build_ns\": {},\n",
            "  \"best_speedup\": {{\"experiment\": \"{}\", \"speedup\": {:.3}}},\n",
            "  \"experiments\": [\n{}\n  ]\n",
            "}}\n"
        ),
        rows,
        ds.car_count(),
        store.shard_count(),
        cfg.period.days(),
        build_ns,
        best.id,
        best.speedup(),
        out.iter().map(|r| r.json()).collect::<Vec<_>>().join(",\n")
    );

    let path =
        std::env::var("BENCH_STORE_JSON").unwrap_or_else(|_| "target/BENCH_store.json".into());
    std::fs::write(&path, &json).expect("write BENCH_store.json");
    println!("{json}");
    eprintln!("wrote {path}");
}

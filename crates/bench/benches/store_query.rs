//! Store vs legacy query benchmark.
//!
//! Times the rewired analyses and representative ad-hoc queries twice —
//! once over the flat record vector (the legacy path) and once through
//! the sharded columnar [`CdrStore`] — and emits a machine-readable
//! `BENCH_store.json` (path overridable via `BENCH_STORE_JSON`) with
//! per-experiment wall times, rows/s, and speedups.
//!
//! Every measurement flows through the obs clock: each timed run is a
//! [`SpanRecord`] against a [`MonotonicClock`], the same machinery that
//! times `RUN_OBS.json`, so the two artifacts share one timing source.
//! The span tree itself is written as a second artifact (default
//! `target/RUN_OBS_bench.json`, overridable via `BENCH_OBS_JSON`).
//!
//! Plain `fn main` on purpose: the numbers go to the JSON artifacts, not
//! a criterion report, so the binary stays runnable anywhere `rustc` is.

use conncar::StudyData;
use conncar_analysis::concurrency::ConcurrencyIndex;
use conncar_analysis::duration::{connection_durations, connection_durations_store};
use conncar_analysis::temporal::{daily_presence, daily_presence_store};
use conncar_bench::bench_config;
use conncar_obs::{Clock, CounterRegistry, MonotonicClock, RunTelemetry, SharedClock, SpanRecord};
use conncar_store::{CdrStore, Filter};
use std::sync::Arc;

/// Best-of-N wall time as a leaf span (min absorbs scheduler noise
/// better than mean at these iteration counts). The span carries the
/// processed row count, so `items_per_sec` is the throughput figure.
fn best_span<R>(
    clock: &dyn Clock,
    name: &str,
    rows: u64,
    iters: usize,
    mut f: impl FnMut() -> R,
) -> SpanRecord {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t0 = clock.now_nanos();
        let r = f();
        let ns = clock.now_nanos().saturating_sub(t0);
        std::hint::black_box(&r);
        best = best.min(ns.max(1));
    }
    SpanRecord::leaf(name, best, rows)
}

struct Row {
    id: &'static str,
    legacy: SpanRecord,
    store: SpanRecord,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy.wall_ns as f64 / self.store.wall_ns as f64
    }
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"experiment\": \"{}\", \"rows\": {}, ",
                "\"legacy_wall_ns\": {}, \"store_wall_ns\": {}, ",
                "\"legacy_rows_per_sec\": {}, \"store_rows_per_sec\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            self.id,
            self.legacy.items,
            self.legacy.wall_ns,
            self.store.wall_ns,
            self.legacy.items_per_sec().round(),
            self.store.items_per_sec().round(),
            self.speedup()
        )
    }
}

fn main() {
    let cfg = bench_config();
    let study = StudyData::generate(&cfg).expect("bench study");
    let ds = &study.clean;
    let rows = ds.len() as u64;
    let total_cars = study.total_cars();
    let cap = cfg.truncation;

    let clock: SharedClock = Arc::new(MonotonicClock::new());
    let store = CdrStore::build_auto_with_clock(ds, clock.clone());
    let build = store.build_span();
    eprintln!(
        "fixture: {} records, {} cars, {} shards (built in {:.1} ms)",
        rows,
        ds.car_count(),
        store.shard_count(),
        build.wall_ns as f64 / 1e6
    );

    // Ad-hoc query targets pulled from the data itself.
    let probe = ds.records()[ds.len() / 2];
    let (car, cell) = (probe.car, probe.cell);
    let mid = cfg.period.duration().as_secs() / 2;
    let (win_lo, win_hi) = (
        conncar_types::Timestamp::from_secs(mid),
        conncar_types::Timestamp::from_secs(mid + 6 * 3600),
    );

    let iters = 7;
    let ck = &*clock;
    let mut out: Vec<Row> = Vec::new();

    out.push(Row {
        id: "fig2_daily_presence",
        legacy: best_span(ck, "legacy/fig2_daily_presence", rows, iters, || {
            daily_presence(ds, total_cars)
        }),
        store: best_span(ck, "store/fig2_daily_presence", rows, iters, || {
            daily_presence_store(&store, total_cars)
        }),
    });
    out.push(Row {
        id: "fig9_connection_durations",
        legacy: best_span(ck, "legacy/fig9_connection_durations", rows, iters, || {
            connection_durations(ds, cap).expect("cdf")
        }),
        store: best_span(ck, "store/fig9_connection_durations", rows, iters, || {
            connection_durations_store(&store, cap).expect("cdf")
        }),
    });
    out.push(Row {
        id: "concurrency_index",
        legacy: best_span(ck, "legacy/concurrency_index", rows, iters, || {
            ConcurrencyIndex::build(ds)
        }),
        store: best_span(ck, "store/concurrency_index", rows, iters, || {
            ConcurrencyIndex::build_from_store(&store)
        }),
    });
    out.push(Row {
        id: "car_history_lookup",
        legacy: best_span(ck, "legacy/car_history_lookup", rows, iters, || {
            ds.records()
                .iter()
                .filter(|r| r.car == car)
                .copied()
                .collect::<Vec<_>>()
        }),
        store: best_span(ck, "store/car_history_lookup", rows, iters, || {
            store.collect(&Filter::all().car(car))
        }),
    });
    out.push(Row {
        id: "cell_window_count",
        legacy: best_span(ck, "legacy/cell_window_count", rows, iters, || {
            ds.records()
                .iter()
                .filter(|r| r.cell == cell && r.start < win_hi && r.end > win_lo)
                .count()
        }),
        store: best_span(ck, "store/cell_window_count", rows, iters, || {
            store.count(&Filter::all().cell(cell).window(win_lo, win_hi))
        }),
    });

    let best = out
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("rows");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store_query\",\n",
            "  \"timing_source\": \"conncar-obs {}\",\n",
            "  \"fixture\": {{\"records\": {}, \"cars\": {}, \"shards\": {}, \"days\": {}}},\n",
            "  \"store_build_ns\": {},\n",
            "  \"best_speedup\": {{\"experiment\": \"{}\", \"speedup\": {:.3}}},\n",
            "  \"experiments\": [\n{}\n  ]\n",
            "}}\n"
        ),
        clock.kind(),
        rows,
        ds.car_count(),
        store.shard_count(),
        cfg.period.days(),
        build.wall_ns,
        best.id,
        best.speedup(),
        out.iter().map(|r| r.json()).collect::<Vec<_>>().join(",\n")
    );

    // The same spans, as a telemetry artifact: build subtree + one
    // legacy/store leaf pair per experiment.
    let mut children = vec![build];
    for row in out {
        children.push(row.legacy);
        children.push(row.store);
    }
    let mut counters = CounterRegistry::new();
    counters.add("bench.fixture_records", rows);
    counters.add("bench.fixture_cars", ds.car_count() as u64);
    counters.add("store.shards_built", store.shard_count() as u64);
    let telemetry = RunTelemetry {
        clock: clock.kind().to_string(),
        root: SpanRecord {
            name: "bench/store_query".to_string(),
            wall_ns: children.iter().map(|c| c.wall_ns).sum(),
            items: rows,
            children,
        },
        counters,
    };

    let path =
        std::env::var("BENCH_STORE_JSON").unwrap_or_else(|_| "target/BENCH_store.json".into());
    std::fs::write(&path, &json).expect("write BENCH_store.json");
    let obs_path =
        std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| "target/RUN_OBS_bench.json".into());
    telemetry
        .write_json(std::path::Path::new(&obs_path))
        .expect("write RUN_OBS_bench.json");
    println!("{json}");
    eprintln!("wrote {path} and {obs_path}");
}

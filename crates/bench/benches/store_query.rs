//! Store vs legacy query benchmark.
//!
//! Times the rewired analyses and representative ad-hoc queries twice —
//! once over the flat record vector (the legacy path) and once through
//! the sharded columnar [`CdrStore`] — and emits a machine-readable
//! `BENCH_store.json` (path overridable via `BENCH_STORE_JSON`) with
//! per-experiment wall times, rows/s, and speedups.
//!
//! Every measurement flows through the obs clock: each timed run is a
//! [`SpanRecord`] against a [`MonotonicClock`], the same machinery that
//! times `RUN_OBS.json`, so the two artifacts share one timing source.
//! The span tree itself is written as a second artifact (default
//! `target/RUN_OBS_bench.json`, overridable via `BENCH_OBS_JSON`).
//!
//! A second artifact, `BENCH_fused.json` (path overridable via
//! `BENCH_FUSED_JSON`), compares the five store-backed §4 analyses run
//! as five sequential store passes against the same five in one
//! [`FusedPass`] that reads the table once — with presence and
//! concurrency sharing a single combined folder, as in
//! `StudyAnalyses::run`.
//!
//! Plain `fn main` on purpose: the numbers go to the JSON artifacts, not
//! a criterion report, so the binary stays runnable anywhere `rustc` is.

use conncar::StudyData;
use conncar_analysis::concurrency::ConcurrencyIndex;
use conncar_analysis::duration::{
    connection_durations, connection_durations_store, fuse_connection_durations,
};
use conncar_analysis::fusion::fuse_presence_concurrency;
use conncar_analysis::segmentation::{car_profiles_store, fuse_car_profiles};
use conncar_analysis::temporal::{
    connected_time_cdf_store, daily_presence, daily_presence_store, fuse_connected_time,
};
use conncar_bench::bench_config;
use conncar_obs::{Clock, CounterRegistry, MonotonicClock, RunTelemetry, SharedClock, SpanRecord};
use conncar_store::{CdrStore, Filter, FusedPass};
use std::sync::Arc;

/// Best-of-N wall time as a leaf span (min absorbs scheduler noise
/// better than mean at these iteration counts). The span carries the
/// processed row count, so `items_per_sec` is the throughput figure.
fn best_span<R>(
    clock: &dyn Clock,
    name: &str,
    rows: u64,
    iters: usize,
    mut f: impl FnMut() -> R,
) -> SpanRecord {
    let mut best = u64::MAX;
    for _ in 0..iters {
        let t0 = clock.now_nanos();
        let r = f();
        let ns = clock.now_nanos().saturating_sub(t0);
        std::hint::black_box(&r);
        best = best.min(ns.max(1));
    }
    SpanRecord::leaf(name, best, rows)
}

struct Row {
    id: &'static str,
    legacy: SpanRecord,
    store: SpanRecord,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.legacy.wall_ns as f64 / self.store.wall_ns as f64
    }
    fn json(&self) -> String {
        format!(
            concat!(
                "    {{\"experiment\": \"{}\", \"rows\": {}, ",
                "\"legacy_wall_ns\": {}, \"store_wall_ns\": {}, ",
                "\"legacy_rows_per_sec\": {}, \"store_rows_per_sec\": {}, ",
                "\"speedup\": {:.3}}}"
            ),
            self.id,
            self.legacy.items,
            self.legacy.wall_ns,
            self.store.wall_ns,
            self.legacy.items_per_sec().round(),
            self.store.items_per_sec().round(),
            self.speedup()
        )
    }
}

fn main() {
    let cfg = bench_config();
    let study = StudyData::generate(&cfg).expect("bench study");
    let ds = &study.clean;
    let rows = ds.len() as u64;
    let total_cars = study.total_cars();
    let cap = cfg.truncation;

    let clock: SharedClock = Arc::new(MonotonicClock::new());
    let store = CdrStore::build_auto_with_clock(ds, clock.clone());
    let build = store.build_span();
    eprintln!(
        "fixture: {} records, {} cars, {} shards (built in {:.1} ms)",
        rows,
        ds.car_count(),
        store.shard_count(),
        build.wall_ns as f64 / 1e6
    );

    // Ad-hoc query targets pulled from the data itself.
    let probe = ds.records()[ds.len() / 2];
    let (car, cell) = (probe.car, probe.cell);
    let mid = cfg.period.duration().as_secs() / 2;
    let (win_lo, win_hi) = (
        conncar_types::Timestamp::from_secs(mid),
        conncar_types::Timestamp::from_secs(mid + 6 * 3600),
    );

    let iters = 7;
    let ck = &*clock;
    let mut out: Vec<Row> = Vec::new();

    out.push(Row {
        id: "fig2_daily_presence",
        legacy: best_span(ck, "legacy/fig2_daily_presence", rows, iters, || {
            daily_presence(ds, total_cars)
        }),
        store: best_span(ck, "store/fig2_daily_presence", rows, iters, || {
            daily_presence_store(&store, total_cars)
        }),
    });
    out.push(Row {
        id: "fig9_connection_durations",
        legacy: best_span(ck, "legacy/fig9_connection_durations", rows, iters, || {
            connection_durations(ds, cap).expect("cdf")
        }),
        store: best_span(ck, "store/fig9_connection_durations", rows, iters, || {
            connection_durations_store(&store, cap).expect("cdf")
        }),
    });
    out.push(Row {
        id: "concurrency_index",
        legacy: best_span(ck, "legacy/concurrency_index", rows, iters, || {
            ConcurrencyIndex::build(ds)
        }),
        store: best_span(ck, "store/concurrency_index", rows, iters, || {
            ConcurrencyIndex::build_from_store(&store)
        }),
    });
    out.push(Row {
        id: "car_history_lookup",
        legacy: best_span(ck, "legacy/car_history_lookup", rows, iters, || {
            ds.records()
                .iter()
                .filter(|r| r.car == car)
                .copied()
                .collect::<Vec<_>>()
        }),
        store: best_span(ck, "store/car_history_lookup", rows, iters, || {
            store.collect(&Filter::all().car(car))
        }),
    });
    out.push(Row {
        id: "cell_window_count",
        legacy: best_span(ck, "legacy/cell_window_count", rows, iters, || {
            ds.records()
                .iter()
                .filter(|r| r.cell == cell && r.start < win_hi && r.end > win_lo)
                .count()
        }),
        store: best_span(ck, "store/cell_window_count", rows, iters, || {
            store.count(&Filter::all().cell(cell).window(win_lo, win_hi))
        }),
    });

    // --- fused one-pass vs five sequential store passes ---
    //
    // Paired design: every iteration times the five sequential passes
    // AND the fused bundle back to back (alternating which goes
    // first), then each keeps its own minimum. Measuring one side
    // wholly after the other would hand whichever ran first the
    // cooler CPU — at these durations, thermal drift is bigger than
    // the effect under test.
    let model = study.load_model();
    let time_seq = |k: usize| -> u64 {
        let t0 = ck.now_nanos();
        match k {
            0 => {
                std::hint::black_box(&daily_presence_store(&store, total_cars));
            }
            1 => {
                std::hint::black_box(&connected_time_cdf_store(&store, total_cars, cap).expect("cdf"));
            }
            2 => {
                std::hint::black_box(&car_profiles_store(&store, &model));
            }
            3 => {
                std::hint::black_box(&connection_durations_store(&store, cap).expect("cdf"));
            }
            _ => {
                std::hint::black_box(&ConcurrencyIndex::build_from_store(&store));
            }
        }
        ck.now_nanos().saturating_sub(t0).max(1)
    };
    // The fused bundle is what `StudyAnalyses::run` executes: presence
    // and concurrency share one combined folder (one bin expansion, one
    // key sort for both — the saving a sequential run cannot have),
    // plus the three remaining per-car folders.
    let time_fused = || -> u64 {
        let t0 = ck.now_nanos();
        let mut pass = FusedPass::new(&store, Filter::all());
        let pc = fuse_presence_concurrency(&mut pass, total_cars);
        let connected = fuse_connected_time(&mut pass, total_cars, cap);
        let profiles = fuse_car_profiles(&mut pass, &model);
        let durations = fuse_connection_durations(&mut pass, cap);
        let mut out = pass.run();
        std::hint::black_box(&(
            pc.finish(&mut out),
            connected.finish(&mut out).expect("cdf"),
            profiles.finish(&mut out),
            durations.finish(&mut out).expect("cdf"),
        ));
        ck.now_nanos().saturating_sub(t0).max(1)
    };
    // The ~20 ms bundle needs more samples than the short single-query
    // windows to reach its timing floor.
    let paired_iters = 15;
    let mut seq_best = [u64::MAX; 5];
    let mut fused_best = u64::MAX;
    for it in 0..paired_iters {
        if it % 2 == 0 {
            for (k, best) in seq_best.iter_mut().enumerate() {
                *best = (*best).min(time_seq(k));
            }
            fused_best = fused_best.min(time_fused());
        } else {
            fused_best = fused_best.min(time_fused());
            for (k, best) in seq_best.iter_mut().enumerate() {
                *best = (*best).min(time_seq(k));
            }
        }
    }
    let seq_names = [
        "seq/fig2_daily_presence",
        "seq/fig3_connected_time",
        "seq/fig6_car_profiles",
        "seq/fig9_connection_durations",
        "seq/concurrency_index",
    ];
    let sequential: Vec<SpanRecord> = seq_names
        .iter()
        .zip(seq_best)
        .map(|(name, ns)| SpanRecord::leaf(name, ns, rows))
        .collect();
    let fused = SpanRecord::leaf("fused/all_five_analyses", fused_best, rows);
    let sequential_ns: u64 = sequential.iter().map(|s| s.wall_ns).sum();
    let fused_vs_sequential = sequential_ns as f64 / fused.wall_ns as f64;
    let fused_json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"fused_scan\",\n",
            "  \"timing_source\": \"conncar-obs {}\",\n",
            "  \"fixture\": {{\"records\": {}, \"cars\": {}, \"shards\": {}, \"days\": {}}},\n",
            "  \"sequential\": [\n{}\n  ],\n",
            "  \"sequential_scan_ns\": {},\n",
            "  \"fused_scan_ns\": {},\n",
            "  \"fused_ns_per_analysis\": {},\n",
            "  \"fused_rows_per_sec\": {},\n",
            "  \"fused_vs_sequential\": {:.3}\n",
            "}}\n"
        ),
        clock.kind(),
        rows,
        ds.car_count(),
        store.shard_count(),
        cfg.period.days(),
        sequential
            .iter()
            .map(|s| format!(
                "    {{\"analysis\": \"{}\", \"wall_ns\": {}, \"rows_per_sec\": {}}}",
                s.name.trim_start_matches("seq/"),
                s.wall_ns,
                s.items_per_sec().round()
            ))
            .collect::<Vec<_>>()
            .join(",\n"),
        sequential_ns,
        fused.wall_ns,
        fused.wall_ns / sequential.len() as u64,
        fused.items_per_sec().round(),
        fused_vs_sequential
    );

    let best = out
        .iter()
        .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
        .expect("rows");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"store_query\",\n",
            "  \"timing_source\": \"conncar-obs {}\",\n",
            "  \"fixture\": {{\"records\": {}, \"cars\": {}, \"shards\": {}, \"days\": {}}},\n",
            "  \"store_build_ns\": {},\n",
            "  \"best_speedup\": {{\"experiment\": \"{}\", \"speedup\": {:.3}}},\n",
            "  \"experiments\": [\n{}\n  ]\n",
            "}}\n"
        ),
        clock.kind(),
        rows,
        ds.car_count(),
        store.shard_count(),
        cfg.period.days(),
        build.wall_ns,
        best.id,
        best.speedup(),
        out.iter().map(|r| r.json()).collect::<Vec<_>>().join(",\n")
    );

    // The same spans, as a telemetry artifact: build subtree + one
    // legacy/store leaf pair per experiment + the fused-vs-sequential
    // leaves.
    let mut children = vec![build];
    for row in out {
        children.push(row.legacy);
        children.push(row.store);
    }
    children.extend(sequential);
    children.push(fused);
    let mut counters = CounterRegistry::new();
    counters.add("bench.fixture_records", rows);
    counters.add("bench.fixture_cars", ds.car_count() as u64);
    counters.add("store.shards_built", store.shard_count() as u64);
    let telemetry = RunTelemetry {
        clock: clock.kind().to_string(),
        trace: None,
        root: SpanRecord {
            name: "bench/store_query".to_string(),
            wall_ns: children.iter().map(|c| c.wall_ns).sum(),
            items: rows,
            children,
        },
        counters,
    };

    let ran_empty = rows == 0;
    let path = conncar_bench::write_artifact(
        "BENCH_STORE_JSON",
        "target/BENCH_store.json",
        &json,
        ran_empty,
    );
    let fused_path = conncar_bench::write_artifact(
        "BENCH_FUSED_JSON",
        "target/BENCH_fused.json",
        &fused_json,
        ran_empty,
    );
    let obs_path =
        std::env::var("BENCH_OBS_JSON").unwrap_or_else(|_| "target/RUN_OBS_bench.json".into());
    telemetry
        .write_json(std::path::Path::new(&obs_path))
        .expect("write RUN_OBS_bench.json");
    println!("{json}");
    println!("{fused_json}");
    eprintln!(
        "wrote {}, {} and {obs_path}",
        path.display(),
        fused_path.display()
    );
}

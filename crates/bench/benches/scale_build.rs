//! Out-of-core build scaling bench: rows/s and peak RSS across fleet
//! tiers (`target/BENCH_scale.json`, path overridable via
//! `BENCH_SCALE_JSON`).
//!
//! The paper's substrate is one million cars; this bench measures the
//! streaming build's trajectory toward it. Each tier builds a fleet of
//! N cars through generate → fault → clean → store with
//! [`conncar::build_streamed`] and records rows/s and peak RSS; the
//! largest measured tier is extrapolated to the paper's 1M cars. Peak
//! memory is supposed to follow the chunk size, not the fleet size, so
//! the emitted `peak_rss_sublinearity` ratio ((rss_hi / rss_lo) /
//! (cars_hi / cars_lo)) must stay well under 1.0 — the CI scale gate
//! holds a ceiling over it and floors on rows/s.
//!
//! Knobs (all env):
//!
//! * `CONNCAR_SCALE_TIERS` — comma-separated car counts
//!   (default `10000,100000`; `CONNCAR_BENCH_FIXTURE=tiny` shrinks the
//!   default to `120,480` on the tiny region for CI smoke runs);
//! * `CONNCAR_SCALE_DAYS` — study days per tier (default 7: the
//!   trajectory varies cars, not window);
//! * `CONNCAR_SCALE_SHARDS`, `CONNCAR_SCALE_CHUNK`,
//!   `CONNCAR_SCALE_SEGMENT_HOURS` — store and build shape
//!   (defaults 8, 10000, 24);
//! * `CONNCAR_BIN` — path to a `conncar` binary. When set (or when
//!   `target/release/conncar` exists) each tier runs as a subprocess,
//!   so `VmHWM` is a per-tier reading; otherwise tiers run in-process,
//!   ascending, where peak RSS is a running maximum — still a valid
//!   ceiling for the largest tier.

use conncar::{build_streamed, BuildConfig, StudyConfig};
use conncar_obs::{peak_rss_bytes, Clock, MonotonicClock};
use conncar_types::StudyPeriod;

struct Tier {
    cars: u32,
    chunks: u64,
    rows_truth: u64,
    rows_clean: u64,
    wall_ns: u64,
    peak_rss_bytes: u64,
}

impl Tier {
    fn rows_per_sec(&self) -> f64 {
        self.rows_clean as f64 * 1e9 / self.wall_ns.max(1) as f64
    }
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Extract one unsigned field out of the `conncar build` JSON line.
fn field_u64(json: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &json[json.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Per-tier subprocess run: exact `VmHWM`, no cross-tier contamination.
fn run_subprocess(bin: &str, fixture: &str, cars: u32, days: u32, shards: u64, chunk: u64, seg: u64) -> Tier {
    let out = std::process::Command::new(bin)
        .args([
            "build",
            "--fixture",
            fixture,
            "--cars",
            &cars.to_string(),
            "--days",
            &days.to_string(),
            "--shards",
            &shards.to_string(),
            "--chunk-cars",
            &chunk.to_string(),
            "--segment-hours",
            &seg.to_string(),
        ])
        .output()
        .unwrap_or_else(|e| panic!("spawning {bin}: {e}"));
    assert!(
        out.status.success(),
        "tier cars={cars}: {bin} build failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("tier cars={cars}: no JSON line on stdout:\n{stdout}"));
    let get = |key: &str| {
        field_u64(line, key).unwrap_or_else(|| panic!("tier cars={cars}: missing `{key}` in {line}"))
    };
    Tier {
        cars,
        chunks: get("chunks"),
        rows_truth: get("rows_truth"),
        rows_clean: get("rows_clean"),
        wall_ns: get("wall_ns"),
        peak_rss_bytes: get("peak_rss_bytes"),
    }
}

/// In-process fallback: peak RSS is a running max across tiers.
fn run_inproc(base: &StudyConfig, cars: u32, days: u32, shards: u64, chunk: u64, seg: u64) -> Tier {
    let mut cfg = base.clone();
    cfg.fleet.cars = cars;
    cfg.period = StudyPeriod::new(cfg.period.start_day(), days).expect("nonzero days");
    cfg.faults.loss_days.retain(|&l| l < u64::from(days));
    cfg.build = Some(BuildConfig {
        chunk_cars: chunk as u32,
        segment_hours: seg as u32,
    });
    let clock = MonotonicClock::new();
    let t0 = clock.now_nanos();
    let b = build_streamed(&cfg, shards as usize).expect("streamed build");
    let wall_ns = clock.now_nanos().saturating_sub(t0).max(1);
    Tier {
        cars,
        chunks: b.chunks.len() as u64,
        rows_truth: b.run_report.records_truth as u64,
        rows_clean: b.rows() as u64,
        wall_ns,
        peak_rss_bytes: peak_rss_bytes(),
    }
}

fn main() {
    let tiny = std::env::var("CONNCAR_BENCH_FIXTURE").as_deref() == Ok("tiny");
    let fixture = if tiny { "tiny" } else { "paper" };
    let default_tiers = if tiny { "120,480" } else { "10000,100000" };
    let tiers_spec = std::env::var("CONNCAR_SCALE_TIERS")
        .unwrap_or_else(|_| default_tiers.to_string());
    let tiers_cars: Vec<u32> = tiers_spec
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|s| s.trim().parse().unwrap_or_else(|_| panic!("bad tier `{s}`")))
        .collect();
    let days = env_u64("CONNCAR_SCALE_DAYS", 7) as u32;
    let shards = env_u64("CONNCAR_SCALE_SHARDS", 8);
    let chunk = env_u64("CONNCAR_SCALE_CHUNK", 10_000);
    let seg = env_u64("CONNCAR_SCALE_SEGMENT_HOURS", 24);

    let bin = std::env::var("CONNCAR_BIN").ok().or_else(|| {
        let release = "target/release/conncar";
        std::fs::metadata(release).is_ok().then(|| release.to_string())
    });
    let mode = if bin.is_some() { "subprocess" } else { "in-process" };
    let base = if tiny {
        StudyConfig::tiny()
    } else {
        StudyConfig::paper()
    };

    let mut tiers: Vec<Tier> = Vec::new();
    for &cars in &tiers_cars {
        eprintln!("tier: {cars} cars x {days} days ({mode}) ...");
        let t = match &bin {
            Some(bin) => run_subprocess(bin, fixture, cars, days, shards, chunk, seg),
            None => run_inproc(&base, cars, days, shards, chunk, seg),
        };
        assert!(
            t.rows_clean > 0,
            "tier cars={cars} produced no clean rows — empty run"
        );
        println!(
            "tier cars={:>8}: {:>10} rows, {:>9.1} rows/s, peak RSS {:>7.1} MiB, {} chunks",
            t.cars,
            t.rows_clean,
            t.rows_per_sec(),
            t.peak_rss_bytes as f64 / (1024.0 * 1024.0),
            t.chunks
        );
        tiers.push(t);
    }

    // Sublinearity of peak RSS in car count, first tier vs last.
    let sublinearity = match (tiers.first(), tiers.last()) {
        (Some(a), Some(b)) if b.cars > a.cars && a.peak_rss_bytes > 0 => {
            let rss_ratio = b.peak_rss_bytes as f64 / a.peak_rss_bytes as f64;
            let cars_ratio = f64::from(b.cars) / f64::from(a.cars);
            Some(rss_ratio / cars_ratio)
        }
        _ => None,
    };

    // Extrapolate the largest measured tier to the paper's fleet.
    const PAPER_CARS: f64 = 1_000_000.0;
    let extrapolation = tiers.last().map(|last| {
        let rows_per_car = last.rows_clean as f64 / f64::from(last.cars);
        let projected_rows = rows_per_car * PAPER_CARS;
        let projected_wall_s = projected_rows / last.rows_per_sec();
        // Affine RSS model over the measured endpoints: the linear term
        // is the store's compact columns, the intercept the chunk-sized
        // working set. One tier -> flat projection (no slope evidence).
        let projected_rss = match tiers.first() {
            Some(first) if last.cars > first.cars => {
                let slope = (last.peak_rss_bytes as f64 - first.peak_rss_bytes as f64)
                    / (f64::from(last.cars) - f64::from(first.cars));
                let base = last.peak_rss_bytes as f64 - slope * f64::from(last.cars);
                (base + slope * PAPER_CARS).max(0.0)
            }
            _ => last.peak_rss_bytes as f64,
        };
        format!(
            concat!(
                "{{\"cars\": 1000000, \"projected_rows\": {:.0}, ",
                "\"projected_wall_s\": {:.1}, \"projected_peak_rss_bytes\": {:.0}, ",
                "\"basis\": \"affine over measured tiers; throughput of the largest\"}}"
            ),
            projected_rows, projected_wall_s, projected_rss
        )
    });

    let tier_rows: Vec<String> = tiers
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "    {{\"cars\": {}, \"chunks\": {}, \"rows_truth\": {}, ",
                    "\"rows_clean\": {}, \"wall_ns\": {}, \"rows_per_sec\": {:.1}, ",
                    "\"peak_rss_bytes\": {}}}"
                ),
                t.cars,
                t.chunks,
                t.rows_truth,
                t.rows_clean,
                t.wall_ns,
                t.rows_per_sec(),
                t.peak_rss_bytes
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"scale_build\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"fixture\": \"{}\",\n",
            "  \"days\": {},\n",
            "  \"shards\": {},\n",
            "  \"chunk_cars\": {},\n",
            "  \"segment_hours\": {},\n",
            "  \"tiers\": [\n{}\n  ],\n",
            "  \"peak_rss_sublinearity\": {},\n",
            "  \"extrapolation_1m_cars\": {}\n",
            "}}\n"
        ),
        mode,
        fixture,
        days,
        shards,
        chunk,
        seg,
        tier_rows.join(",\n"),
        sublinearity.map_or("null".to_string(), |s| format!("{s:.4}")),
        extrapolation.as_deref().unwrap_or("null"),
    );

    let path = conncar_bench::write_artifact(
        "BENCH_SCALE_JSON",
        "target/BENCH_scale.json",
        &json,
        tiers.is_empty(),
    );
    println!("{json}");
    eprintln!("wrote {}", path.display());
}

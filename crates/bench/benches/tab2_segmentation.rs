//! Table 2: car segmentation (rare/common × busy/non-busy/both).

use conncar::analyses::{BUSY_CAR_HI, BUSY_CAR_LO};
use conncar::Experiment;
use conncar_analysis::segmentation::{car_profiles, segment};
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Tab2);
    let (study, analyses) = fixture();
    c.bench_function("tab2/segment", |b| {
        b.iter(|| segment(&analyses.profiles, 3, BUSY_CAR_HI, BUSY_CAR_LO))
    });
    // The expensive upstream join: per-car busy profiles.
    let model = study.load_model();
    c.bench_function("tab2/car_profiles", |b| {
        b.iter(|| car_profiles(&study.clean, &model))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

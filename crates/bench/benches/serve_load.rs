//! Serve load benchmark: the shared-scan scheduler under a realistic
//! concurrent query mix.
//!
//! Two phases over the same deterministic 1000-query workload
//! ([`conncar_serve::workload`], fixed seed):
//!
//! 1. **Deterministic engine run** (NullClock store, no sockets): the
//!    workload is admitted in fixed-size batches through
//!    [`ServeEngine::submit_batch`]. Every answer is checked
//!    byte-identical to standalone [`QueryRequest::execute_single`]
//!    execution, the engine's counters are emitted as `SERVE_OBS.json`
//!    (path overridable via `SERVE_OBS_JSON`), and the whole phase runs
//!    **twice** to assert the artifact is byte-identical run to run.
//!    This phase also enforces the scan-sharing contract: the shared
//!    passes must perform at least 2x fewer shard scans than naive
//!    per-query execution would have — and, since the live metrics
//!    plane landed, asserts the generation-normalized [`ServeSnapshot`]
//!    encoding is byte-identical across the two runs (the determinism
//!    contract the `metrics-gate` CI job pins).
//!
//! 2. **Instrumentation overhead** (monotonic clock): the same
//!    workload runs through fresh engines with the live plane enabled
//!    and disabled, alternating instrumented/stripped passes
//!    (min-of-3 each, same store). `overhead_pct` in the emitted JSON
//!    is the relative cost of every counter bump, histogram record,
//!    and flight post on the hot path; `metrics-gate` holds it under
//!    its ceiling.
//!
//! 3. **TCP timing run** (monotonic clock): the same workload is split
//!    across concurrent [`ServeClient`] connections against a real
//!    [`ServeServer`], measuring per-request latency and aggregate
//!    throughput. Timing flows through the obs clock like every other
//!    bench.
//!
//! The machine-readable summary lands in `BENCH_serve.json` (path
//! overridable via `BENCH_SERVE_JSON`): qps, p50/p99 latency, shards
//! scanned per query (physical vs naive), and the cache hit rate — the
//! numbers the CI serve-gate holds floors on. Gated numbers come from
//! the deterministic phase; only qps/latency come from the wall clock.
//!
//! Plain `fn main` on purpose: the numbers go to the JSON artifacts, not
//! a criterion report, so the binary stays runnable anywhere `rustc` is.

use conncar::StudyData;
use conncar_bench::bench_config;
use conncar_obs::{Clock, MonotonicClock, NullClock, RunTelemetry, SpanRecord};
use conncar_serve::engine::keys;
use conncar_serve::{
    workload, MetricsConfig, QueryRequest, ServeClient, ServeEngine, ServeServer, WorkloadSpec,
    WorkloadTargets,
};
use conncar_store::CdrStore;
use std::sync::Arc;
use std::thread;

/// Admission batch size for the deterministic phase: models how many
/// requests the service's scheduler drains per wake-up under load.
const ADMIT_BATCH: usize = 64;
const CACHE_CAPACITY: usize = 1024;
const EPOCH_MAX: usize = 16;
const TCP_CLIENTS: usize = 4;
const TCP_WORKERS: usize = 4;

/// Overhead-measurement rounds: instrumented and stripped passes
/// alternate this many times and the minimum of each side is compared,
/// so a one-off scheduler hiccup cannot fake (or hide) overhead.
const OVERHEAD_ROUNDS: usize = 3;

/// What one deterministic engine pass produces.
struct DeterministicRun {
    obs_json: String,
    /// Generation-normalized canonical [`ServeSnapshot`] encoding —
    /// the bytes the stats wire endpoint would hand a client.
    snapshot: Vec<u8>,
    /// Flight-recorder events captured in the snapshot.
    flight_events: usize,
    physical: u64,
    naive: u64,
    cache_hits: u64,
    cache_misses: u64,
    coalesced: u64,
    epochs: u64,
    shards: usize,
}

/// Run the full workload through a fresh engine in admission batches,
/// asserting every answer is byte-identical to standalone execution.
fn deterministic_run(
    ds: &conncar_cdr::CdrDataset,
    spec: &WorkloadSpec,
) -> DeterministicRun {
    let store = Arc::new(CdrStore::build_auto_with_clock(ds, Arc::new(NullClock)));
    let targets = WorkloadTargets::from_store(&store);
    let reqs = workload::generate(spec, &targets);
    let mut engine = ServeEngine::new(Arc::clone(&store), CACHE_CAPACITY, EPOCH_MAX);
    for batch in reqs.chunks(ADMIT_BATCH) {
        for (req, resp) in batch.iter().zip(engine.submit_batch(batch)) {
            let got = resp.expect("workload requests are valid").value.encode();
            let want = req.execute_single(&store).0.encode();
            assert_eq!(
                got, want,
                "scheduled answer must be byte-identical to standalone execution"
            );
        }
    }
    let c = engine.counters();
    let snap = engine.snapshot().normalized();
    let telemetry = RunTelemetry {
        clock: "null".to_string(),
        trace: None,
        root: SpanRecord::leaf("serve/deterministic_load", 0, reqs.len() as u64),
        counters: c.clone(),
    };
    DeterministicRun {
        obs_json: telemetry.to_json(),
        flight_events: snap.events.len(),
        snapshot: snap.encode(),
        physical: c.get(keys::PHYSICAL_SHARD_SCANS),
        naive: c.get(keys::NAIVE_SHARD_SCANS),
        cache_hits: c.get(keys::CACHE_HITS),
        cache_misses: c.get(keys::CACHE_MISSES),
        coalesced: c.get(keys::COALESCED),
        epochs: c.get(keys::EPOCHS),
        shards: store.shard_count(),
    }
}

/// One full engine pass over the workload with the live plane on or
/// off; returns elapsed nanoseconds on the store's clock. Fresh engine
/// each pass so every round pays the same cold cache.
fn timed_pass(
    clock: &Arc<MonotonicClock>,
    store: &Arc<CdrStore>,
    reqs: &[QueryRequest],
    enabled: bool,
) -> u64 {
    let mut engine = ServeEngine::with_metrics(
        Arc::clone(store),
        CACHE_CAPACITY,
        EPOCH_MAX,
        MetricsConfig {
            enabled,
            ..MetricsConfig::default()
        },
    );
    let t0 = clock.now_nanos();
    for batch in reqs.chunks(ADMIT_BATCH) {
        for resp in engine.submit_batch(batch) {
            resp.expect("workload requests are valid");
        }
    }
    clock.now_nanos().saturating_sub(t0).max(1)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn main() {
    let cfg = bench_config();
    let study = StudyData::generate(&cfg).expect("bench study");
    let ds = &study.clean;
    let spec = WorkloadSpec::default();

    // ---- phase 1: deterministic engine run, twice ----
    let first = deterministic_run(ds, &spec);
    let second = deterministic_run(ds, &spec);
    assert_eq!(
        first.obs_json, second.obs_json,
        "same seed must produce a byte-identical SERVE_OBS.json"
    );
    assert_eq!(
        first.snapshot, second.snapshot,
        "same seed must produce a byte-identical normalized ServeSnapshot encoding"
    );
    let sharing = first.naive as f64 / first.physical.max(1) as f64;
    eprintln!(
        "deterministic: {} queries, {} epochs, {} physical vs {} naive shard scans ({sharing:.2}x), \
         {} hits / {} misses / {} coalesced",
        spec.queries,
        first.epochs,
        first.physical,
        first.naive,
        first.cache_hits,
        first.cache_misses,
        first.coalesced,
    );
    assert!(
        first.naive >= 2 * first.physical,
        "shared scans must save at least 2x over naive execution \
         (physical {} vs naive {})",
        first.physical,
        first.naive
    );
    let hit_rate = first.cache_hits as f64 / spec.queries.max(1) as f64;

    // ---- phase 2: instrumentation overhead ----
    let clock = Arc::new(MonotonicClock::new());
    let store = Arc::new(CdrStore::build_auto_with_clock(ds, clock.clone()));
    let targets = WorkloadTargets::from_store(&store);
    let reqs = workload::generate(&spec, &targets);
    let mut instr_ns = u64::MAX;
    let mut stripped_ns = u64::MAX;
    for _ in 0..OVERHEAD_ROUNDS {
        instr_ns = instr_ns.min(timed_pass(&clock, &store, &reqs, true));
        stripped_ns = stripped_ns.min(timed_pass(&clock, &store, &reqs, false));
    }
    let overhead_pct = (instr_ns as f64 / stripped_ns as f64 - 1.0) * 100.0;
    eprintln!(
        "overhead: instrumented {:.2} ms vs stripped {:.2} ms over {} queries \
         ({overhead_pct:+.2}%)",
        instr_ns as f64 / 1e6,
        stripped_ns as f64 / 1e6,
        reqs.len(),
    );

    // ---- phase 3: TCP timing run ----
    let engine = ServeEngine::new(Arc::clone(&store), CACHE_CAPACITY, EPOCH_MAX);
    let server =
        ServeServer::bind("127.0.0.1:0", engine, TCP_WORKERS, 4 * ADMIT_BATCH).expect("bind");
    let addr = server.local_addr();

    // Round-robin the workload across the client connections so every
    // client carries the full mix.
    let mut slices: Vec<Vec<QueryRequest>> = vec![Vec::new(); TCP_CLIENTS];
    for (i, req) in reqs.iter().enumerate() {
        slices[i % TCP_CLIENTS].push(req.clone());
    }
    let t0 = clock.now_nanos();
    let threads: Vec<_> = slices
        .into_iter()
        .map(|slice| {
            let clock = Arc::clone(&clock);
            thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(slice.len());
                for req in &slice {
                    let q0 = clock.now_nanos();
                    client.query(req).expect("served");
                    lat.push(clock.now_nanos().saturating_sub(q0).max(1));
                }
                lat
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::with_capacity(reqs.len());
    for t in threads {
        latencies.extend(t.join().expect("client thread"));
    }
    let wall_ns = clock.now_nanos().saturating_sub(t0).max(1);
    let tcp_engine = server.shutdown().expect("clean shutdown");
    let tc = tcp_engine.counters();

    latencies.sort_unstable();
    let qps = latencies.len() as f64 / (wall_ns as f64 / 1e9);
    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    eprintln!(
        "tcp: {} queries over {TCP_CLIENTS} clients in {:.1} ms — {qps:.0} qps, \
         p50 {:.2} ms, p99 {:.2} ms",
        latencies.len(),
        wall_ns as f64 / 1e6,
        p50 as f64 / 1e6,
        p99 as f64 / 1e6,
    );

    let queries = spec.queries as f64;
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"serve_load\",\n",
            "  \"timing_source\": \"conncar-obs {}\",\n",
            "  \"fixture\": {{\"records\": {}, \"cars\": {}, \"shards\": {}, \"days\": {}}},\n",
            "  \"workload\": {{\"queries\": {}, \"seed\": {}, \"repeat_pct\": {}, ",
            "\"admit_batch\": {}, \"epoch_max\": {}, \"clients\": {}}},\n",
            "  \"qps\": {:.0},\n",
            "  \"latency_ns\": {{\"p50\": {}, \"p99\": {}}},\n",
            "  \"scan_sharing\": {{\"physical_shard_scans\": {}, \"naive_shard_scans\": {}, ",
            "\"shards_per_query\": {:.3}, \"naive_shards_per_query\": {:.3}, ",
            "\"sharing_factor\": {:.3}}},\n",
            "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}}},\n",
            "  \"coalesced\": {},\n",
            "  \"epochs\": {},\n",
            "  \"metrics\": {{\"snapshot_identical\": true, \"snapshot_bytes\": {}, ",
            "\"flight_events\": {}, \"overhead_pct\": {:.2}}},\n",
            "  \"tcp_cache_hit_rate\": {:.3}\n",
            "}}\n"
        ),
        clock.kind(),
        ds.len(),
        ds.car_count(),
        first.shards,
        cfg.period.days(),
        spec.queries,
        spec.seed,
        spec.repeat_pct,
        ADMIT_BATCH,
        EPOCH_MAX,
        TCP_CLIENTS,
        qps,
        p50,
        p99,
        first.physical,
        first.naive,
        first.physical as f64 / queries,
        first.naive as f64 / queries,
        sharing,
        first.cache_hits,
        first.cache_misses,
        hit_rate,
        first.coalesced,
        first.epochs,
        first.snapshot.len(),
        first.flight_events,
        overhead_pct,
        tc.get(keys::CACHE_HITS) as f64 / tc.get(keys::QUERIES).max(1) as f64,
    );

    let obs_path =
        std::env::var("SERVE_OBS_JSON").unwrap_or_else(|_| "target/SERVE_OBS.json".into());
    std::fs::write(&obs_path, &first.obs_json).expect("write SERVE_OBS.json");
    let path = conncar_bench::write_artifact(
        "BENCH_SERVE_JSON",
        "target/BENCH_serve.json",
        &json,
        spec.queries == 0,
    );
    println!("{json}");
    eprintln!("wrote {} and {obs_path}", path.display());
}

//! Figure 2: % of cars and % of cells on the network per study day,
//! with OLS trend lines.

use conncar::Experiment;
use conncar_analysis::temporal::daily_presence;
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Fig2);
    let (study, _) = fixture();
    c.bench_function("fig2/daily_presence", |b| {
        b.iter(|| daily_presence(&study.clean, study.total_cars()))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Ablation: seed sensitivity. Re-runs a small study under several
//! seeds and reports the spread of the headline statistics — the check
//! that the reproduction's claims are not one lucky draw.

use conncar::{StudyAnalyses, StudyData};
use conncar_bench::{bench_config, criterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("\n=== ablation: seed sensitivity ===");
    println!(
        "{:<12} {:>12} {:>14} {:>14} {:>12}",
        "seed", "% cars/day", "fig9 median", "HO median", "C3 time %"
    );
    let mut cfg = bench_config();
    cfg.fleet.cars = 120;
    for seed in [1u64, 2, 3, 4, 5] {
        cfg.seed = seed;
        let study = StudyData::generate(&cfg).expect("study");
        let analyses = StudyAnalyses::run(&study).expect("analyses");
        let cars_frac = analyses.presence.car_fractions();
        let mean_cars = cars_frac.iter().sum::<f64>() / cars_frac.len() as f64;
        println!(
            "{:<12} {:>11.1}% {:>13.0}s {:>14.0} {:>11.1}%",
            seed,
            mean_cars * 100.0,
            analyses.durations.median_secs().unwrap_or(0.0),
            analyses.handovers.median().unwrap_or(0.0),
            analyses.carriers.time_frac[2] * 100.0,
        );
    }
    // Time one full small-study regeneration.
    c.bench_function("ablation_seed/regenerate_120cars", |b| {
        b.iter(|| StudyData::generate(&cfg).expect("study"))
    });
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

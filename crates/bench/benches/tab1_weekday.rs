//! Table 1: per-weekday means and standard deviations of cell usage and
//! car occurrence.

use conncar::Experiment;
use conncar_analysis::temporal::{daily_presence, weekday_table};
use conncar_bench::{criterion, fixture, print_artifact};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    print_artifact(Experiment::Tab1);
    let (study, _) = fixture();
    let presence = daily_presence(&study.clean, study.total_cars());
    c.bench_function("tab1/weekday_table", |b| b.iter(|| weekday_table(&presence)));
}

criterion_group! { name = benches; config = criterion(); targets = bench }
criterion_main!(benches);

//! Cell throughput as a function of load.
//!
//! Used by the FOTA campaign simulator to turn "how busy is this cell"
//! into "how long does this download take" — the mechanism behind the
//! paper's warning that a large download in an already-loaded cell is
//! "pouring oil onto the fire".

use conncar_types::Carrier;

/// Downlink throughput available to one additional user of `carrier`
/// when the cell is at `utilization` (fraction of PRBs already in use).
///
/// The model is proportional-fair-ish: the free capacity is what remains,
/// with a small floor because the scheduler never fully starves a user.
pub fn available_throughput_mbps(carrier: Carrier, utilization: f64) -> f64 {
    let peak = carrier.peak_throughput_mbps() as f64;
    let free = (1.0 - utilization.clamp(0.0, 1.0)).max(0.02);
    peak * free
}

/// Seconds needed to move `megabytes` through a cell at a constant
/// `utilization`. Returns `f64::INFINITY` for nonpositive sizes served
/// zero throughput (cannot happen with the floor, but kept total).
pub fn transfer_time_secs(carrier: Carrier, utilization: f64, megabytes: f64) -> f64 {
    let mbps = available_throughput_mbps(carrier, utilization);
    if mbps <= 0.0 {
        return f64::INFINITY;
    }
    megabytes * 8.0 / mbps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_cell_gives_peak() {
        assert_eq!(
            available_throughput_mbps(Carrier::C3, 0.0),
            Carrier::C3.peak_throughput_mbps() as f64
        );
    }

    #[test]
    fn busy_cell_starves() {
        let busy = available_throughput_mbps(Carrier::C3, 0.95);
        assert!(busy < 0.06 * Carrier::C3.peak_throughput_mbps() as f64);
        // Floor keeps it positive even at 100%.
        assert!(available_throughput_mbps(Carrier::C3, 1.0) > 0.0);
    }

    #[test]
    fn monotone_in_load() {
        let mut last = f64::MAX;
        for i in 0..=10 {
            let u = i as f64 / 10.0;
            let t = available_throughput_mbps(Carrier::C1, u);
            assert!(t <= last);
            last = t;
        }
    }

    #[test]
    fn transfer_time_scales() {
        // 900 MB FOTA image on an idle C3 cell: 900*8/75 = 96 s.
        let t = transfer_time_secs(Carrier::C3, 0.0, 900.0);
        assert!((t - 96.0).abs() < 1e-9);
        // Same download on a 90%-loaded cell takes ~10x longer.
        let t_busy = transfer_time_secs(Carrier::C3, 0.9, 900.0);
        assert!(t_busy > 9.0 * t);
    }

    #[test]
    fn clamps_out_of_range_utilization() {
        assert_eq!(
            available_throughput_mbps(Carrier::C1, -1.0),
            Carrier::C1.peak_throughput_mbps() as f64
        );
        assert!(available_throughput_mbps(Carrier::C1, 2.0) > 0.0);
    }
}

//! Background PRB utilization: the load all *other* users put on each
//! cell.
//!
//! The paper's busy-hour machinery (Figures 1, 10, 11; Table 2) needs a
//! per-cell, per-15-minute-bin utilization series `U_PRB`. Car traffic is
//! a small fraction of total network load, so the dominant term is
//! background: smartphones following the well-known diurnal pattern.
//!
//! The model is multiplicative:
//!
//! ```text
//! U_bg(cell, bin) = clamp( peak(zone) · busyness(cell) · shape(class, weekbin) · noise(cell, bin) )
//! ```
//!
//! * `shape` — a normalized (≤ 1) weekly curve per land-use class:
//!   residential cells peak in the evening, business cells during office
//!   hours, highway cells at commute times, rural cells stay flat.
//!   Weekends damp business load and lift daytime residential load.
//! * `busyness` — a deterministic per-cell factor (hash-driven,
//!   0.35–1.70) giving the heavy-tailed cell population of a real
//!   network: most cells moderate, a few hot. The hot tail is what makes
//!   "busy cells" (`U_PRB > 80%`) exist.
//! * `noise` — ±8% multiplicative per-bin texture so two days are never
//!   identical.
//!
//! Everything is a pure function of (cell id, bin, seed): no state, so
//! analyses can evaluate arbitrary slices cheaply and in parallel.

use conncar_geo::{StationInfo, Zone};
use conncar_types::{BinIndex, CellId, DayOfWeek, StudyPeriod, BINS_PER_DAY};
use serde::{Deserialize, Serialize};

/// Land-use class of a cell, driving its diurnal shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellClass {
    /// Evening-peaked neighborhood cell.
    Residential,
    /// Office-hours-peaked downtown cell.
    Business,
    /// Commute-peaked corridor cell.
    Highway,
    /// Flat, lightly loaded countryside cell.
    Rural,
}

impl CellClass {
    /// Derive the class of a station's cells from its zone and siting.
    ///
    /// Urban stations split ~70/30 business/residential, suburban ~25/75;
    /// the split is a deterministic hash of the station id.
    pub fn of_station(station: &StationInfo) -> CellClass {
        if station.highway_site {
            return CellClass::Highway;
        }
        let h = mix(station.id.0 as u64);
        let frac = (h & 0xFFFF) as f64 / 65_536.0;
        match station.zone {
            Zone::Urban => {
                if frac < 0.70 {
                    CellClass::Business
                } else {
                    CellClass::Residential
                }
            }
            Zone::Suburban => {
                if frac < 0.25 {
                    CellClass::Business
                } else {
                    CellClass::Residential
                }
            }
            Zone::Rural => CellClass::Rural,
        }
    }

    /// Normalized weekly shape value for one 15-minute bin.
    ///
    /// `hour_frac` is the local hour as a fraction (e.g. 17.25 = 17:15).
    pub fn shape(self, day: DayOfWeek, hour_frac: f64) -> f64 {
        let weekend = day.is_weekend();
        match self {
            CellClass::Residential => {
                // Overnight trough, small morning shoulder, evening peak.
                let base = 0.18
                    + 0.25 * bump(hour_frac, 7.5, 2.0)
                    + 0.55 * bump(hour_frac, 13.0, 4.5)
                    + 1.00 * bump(hour_frac, 20.0, 3.0);
                let scale = if weekend { 1.08 } else { 1.0 };
                (base * scale).min(1.0)
            }
            CellClass::Business => {
                let base = 0.12
                    + 0.95 * bump(hour_frac, 13.0, 3.8)
                    + 0.35 * bump(hour_frac, 18.5, 2.0);
                let scale = if weekend { 0.45 } else { 1.0 };
                (base * scale).min(1.0)
            }
            CellClass::Highway => {
                // Weekends lose the commute spikes but keep midday trips.
                let base = if weekend {
                    0.10 + 0.75 * bump(hour_frac, 13.5, 4.0)
                } else {
                    let commute =
                        0.95 * bump(hour_frac, 8.0, 1.6) + 1.0 * bump(hour_frac, 17.5, 2.0);
                    let midday = 0.55 * bump(hour_frac, 12.5, 3.0);
                    0.10 + commute + midday
                };
                base.min(1.0)
            }
            CellClass::Rural => {
                let base = 0.25 + 0.45 * bump(hour_frac, 14.0, 5.0);
                (base * if weekend { 1.05 } else { 1.0 }).min(1.0)
            }
        }
    }

    /// Peak utilization scale for the zone this class typically sits in.
    pub const fn peak_utilization(self) -> f64 {
        match self {
            CellClass::Residential => 0.72,
            CellClass::Business => 0.85,
            CellClass::Highway => 0.78,
            CellClass::Rural => 0.30,
        }
    }
}

/// Gaussian bump centred at `center` hours with width `sigma` hours,
/// wrapping around midnight.
fn bump(hour: f64, center: f64, sigma: f64) -> f64 {
    let mut d = (hour - center).abs();
    if d > 12.0 {
        d = 24.0 - d;
    }
    (-0.5 * (d / sigma).powi(2)).exp()
}

/// SplitMix-style integer mix (local copy; cheap and dependency-free).
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a cell id to a stable u64.
#[inline]
fn cell_hash(cell: CellId) -> u64 {
    mix((cell.station.0 as u64) << 16
        ^ (cell.sector as u64) << 8
        ^ cell.carrier.index() as u64)
}

/// Background-load model configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BackgroundLoadConfig {
    /// Root seed decorrelating this model from everything else.
    pub seed: u64,
    /// Lower bound of the per-cell busyness factor.
    pub busyness_min: f64,
    /// Upper bound of the per-cell busyness factor.
    pub busyness_max: f64,
    /// Exponent skewing busyness towards the low end (heavy tail of hot
    /// cells appears as the exponent drops below 1… we use >1 to skew
    /// *most* cells cool).
    pub busyness_skew: f64,
    /// Amplitude of per-bin multiplicative noise (0.08 = ±8%).
    pub noise_amplitude: f64,
    /// Hard ceiling on background utilization, leaving headroom that car
    /// traffic and the Figure-1 greedy download can consume.
    pub ceiling: f64,
    /// Per-carrier utilization multiplier (traffic steering means the 3G
    /// layer and new bands run cooler), indexed by `Carrier::index`.
    pub carrier_scale: [f64; 5],
}

impl Default for BackgroundLoadConfig {
    fn default() -> Self {
        BackgroundLoadConfig {
            seed: 0xBACC_0FFE,
            busyness_min: 0.35,
            busyness_max: 1.70,
            busyness_skew: 1.15,
            noise_amplitude: 0.08,
            ceiling: 0.97,
            //              C1    C2    C3    C4    C5
            carrier_scale: [1.05, 0.55, 1.00, 0.90, 0.30],
        }
    }
}

/// The background utilization model. Pure and `Sync`; share freely.
#[derive(Debug, Clone)]
pub struct BackgroundLoad {
    cfg: BackgroundLoadConfig,
    period: StudyPeriod,
    /// Local-time offset of the region in hours (diurnal shapes are
    /// civil-time phenomena).
    tz_offset_hours: i8,
}

impl BackgroundLoad {
    /// Build the model for a study period and region time zone.
    pub fn new(
        cfg: BackgroundLoadConfig,
        period: StudyPeriod,
        tz_offset_hours: i8,
    ) -> BackgroundLoad {
        BackgroundLoad {
            cfg,
            period,
            tz_offset_hours,
        }
    }

    /// The per-cell busyness factor in `[busyness_min, busyness_max]`.
    pub fn busyness(&self, cell: CellId) -> f64 {
        let h = mix(cell_hash(cell) ^ self.cfg.seed);
        let u = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
        let skewed = u.powf(self.cfg.busyness_skew);
        self.cfg.busyness_min + skewed * (self.cfg.busyness_max - self.cfg.busyness_min)
    }

    /// Background utilization of `cell` (class `class`) in `bin`,
    /// in `[0, ceiling]`.
    pub fn utilization(&self, cell: CellId, class: CellClass, bin: BinIndex) -> f64 {
        // Local civil time of the bin's midpoint.
        let mid_secs = bin.start().as_secs() as i64 + 450 + self.tz_offset_hours as i64 * 3_600;
        let mid = mid_secs.max(0) as u64;
        let day_idx = mid / 86_400;
        let weekday = self.period.start_day().plus(day_idx as usize);
        let hour_frac = (mid % 86_400) as f64 / 3_600.0;
        let shape = class.shape(weekday, hour_frac);
        let noise = {
            let h = mix(cell_hash(cell) ^ mix(bin.0) ^ self.cfg.seed.rotate_left(17));
            let u = (h & 0xFFFF_FFFF) as f64 / u32::MAX as f64;
            1.0 + self.cfg.noise_amplitude * (2.0 * u - 1.0)
        };
        let carrier_scale = self.cfg.carrier_scale[cell.carrier.index()];
        (class.peak_utilization() * self.busyness(cell) * shape * noise * carrier_scale)
            .clamp(0.0, self.cfg.ceiling)
    }

    /// Average background utilization of a cell over one day.
    pub fn daily_average(&self, cell: CellId, class: CellClass, day: u64) -> f64 {
        let first = day * BINS_PER_DAY as u64;
        let sum: f64 = (first..first + BINS_PER_DAY as u64)
            .map(|b| self.utilization(cell, class, BinIndex(b)))
            .sum();
        sum / BINS_PER_DAY as f64
    }

    /// The study period the model is anchored to.
    pub fn period(&self) -> StudyPeriod {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier};

    fn cell(st: u32) -> CellId {
        CellId::new(BaseStationId(st), 0, Carrier::C3)
    }

    fn model() -> BackgroundLoad {
        BackgroundLoad::new(BackgroundLoadConfig::default(), StudyPeriod::PAPER, 0)
    }

    #[test]
    fn shapes_are_normalized() {
        for class in [
            CellClass::Residential,
            CellClass::Business,
            CellClass::Highway,
            CellClass::Rural,
        ] {
            for day in DayOfWeek::ALL {
                for q in 0..96 {
                    let s = class.shape(day, q as f64 / 4.0);
                    assert!((0.0..=1.0).contains(&s), "{class:?} {day} {q}: {s}");
                }
            }
        }
    }

    #[test]
    fn business_peaks_midday_residential_evening() {
        let b_noon = CellClass::Business.shape(DayOfWeek::Tuesday, 13.0);
        let b_night = CellClass::Business.shape(DayOfWeek::Tuesday, 3.0);
        assert!(b_noon > 3.0 * b_night);
        let r_evening = CellClass::Residential.shape(DayOfWeek::Tuesday, 20.0);
        let r_noon = CellClass::Residential.shape(DayOfWeek::Tuesday, 12.0);
        assert!(r_evening > r_noon);
    }

    #[test]
    fn highway_commute_peaks_vanish_on_weekend() {
        let rush = CellClass::Highway.shape(DayOfWeek::Wednesday, 8.0);
        let sat_morning = CellClass::Highway.shape(DayOfWeek::Saturday, 8.0);
        assert!(rush > 1.5 * sat_morning);
    }

    #[test]
    fn business_damps_on_weekend() {
        let wk = CellClass::Business.shape(DayOfWeek::Thursday, 13.0);
        let we = CellClass::Business.shape(DayOfWeek::Sunday, 13.0);
        assert!(we < 0.6 * wk);
    }

    #[test]
    fn utilization_bounded_and_deterministic() {
        let m = model();
        for st in 0..50 {
            for b in [0u64, 40, 96 * 45 + 70] {
                let u1 = m.utilization(cell(st), CellClass::Business, BinIndex(b));
                let u2 = m.utilization(cell(st), CellClass::Business, BinIndex(b));
                assert_eq!(u1, u2);
                assert!((0.0..=0.97).contains(&u1));
            }
        }
    }

    #[test]
    fn busyness_spread_produces_hot_and_cool_cells() {
        let m = model();
        let vals: Vec<f64> = (0..500).map(|i| m.busyness(cell(i))).collect();
        let min = vals.iter().cloned().fold(f64::MAX, f64::min);
        let max = vals.iter().cloned().fold(f64::MIN, f64::max);
        assert!(min < 0.6, "coolest cell {min}");
        assert!(max > 1.3, "hottest cell {max}");
        // Skew >1 pushes the median below the midpoint.
        let mut sorted = vals.clone();
        sorted.sort_by(f64::total_cmp);
        assert!(sorted[250] < (0.35 + 1.70) / 2.0);
    }

    #[test]
    fn some_cells_get_busy_at_peak() {
        // Hot business cells at midday should exceed the 80% busy bar.
        let m = model();
        let midday_bin = BinIndex((13 * 4) as u64); // 13:00, day 0 (Monday)
        let busy = (0..2_000)
            .filter(|&st| m.utilization(cell(st), CellClass::Business, midday_bin) > 0.80)
            .count();
        assert!(busy > 20, "only {busy}/2000 busy at peak");
        // And overnight almost nothing is.
        let night_bin = BinIndex(12); // 03:00
        let busy_night = (0..2_000)
            .filter(|&st| m.utilization(cell(st), CellClass::Business, night_bin) > 0.80)
            .count();
        assert!(busy_night < busy / 10);
    }

    #[test]
    fn carrier_scaling_cools_legacy_layers() {
        let m = model();
        let st = BaseStationId(9);
        let b = BinIndex(52);
        let c3 = m.utilization(CellId::new(st, 0, Carrier::C3), CellClass::Business, b);
        let c2 = m.utilization(CellId::new(st, 0, Carrier::C2), CellClass::Business, b);
        // Same site/sector: 3G layer is cooler on average. Noise and
        // busyness are per-cell, so compare with margin.
        assert!(c2 < c3 + 0.25);
    }

    #[test]
    fn daily_average_in_range() {
        let m = model();
        let avg = m.daily_average(cell(3), CellClass::Residential, 2);
        assert!((0.0..=0.97).contains(&avg));
    }

    #[test]
    fn timezone_shifts_the_peak() {
        let utc = BackgroundLoad::new(BackgroundLoadConfig::default(), StudyPeriod::PAPER, 0);
        let pacific = BackgroundLoad::new(BackgroundLoadConfig::default(), StudyPeriod::PAPER, -8);
        // 13:00 local in UTC-8 is 21:00 UTC: bin 84 of day 0.
        let c = cell(5);
        let u_utc_13 = utc.utilization(c, CellClass::Business, BinIndex(52));
        let u_pac_21utc = pacific.utilization(c, CellClass::Business, BinIndex(84));
        // Both are "13:00 local business" values; they differ only by
        // per-bin noise, not by an order of magnitude.
        assert!((u_utc_13 - u_pac_21utc).abs() < 0.25);
    }
}

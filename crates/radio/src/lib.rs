//! # conncar-radio
//!
//! The radio-network layer of the study: what the proprietary RAN
//! counters provided to the paper's authors, rebuilt as a simulator.
//!
//! Three pieces:
//!
//! * [`background`] — every cell carries load from *other* users
//!   (smartphones, tablets, modems). We model it as a per-cell diurnal
//!   PRB-utilization curve driven by the cell's land-use class, with
//!   deterministic per-cell busyness and per-bin noise. This is the
//!   "average" curve of Figure 1 and the busy/non-busy classifier input
//!   of §4.3.
//! * [`connection`] — the RRC connection lifecycle of one car modem:
//!   attach on data, stay while data flows, detach after the 10–12 s
//!   inactivity timeout (§3), hand over between cells as the car moves.
//!   Produces the radio-level connection records that become CDRs.
//! * [`prb`] — a ledger accumulating car-generated PRB demand per
//!   (cell, 15-minute bin) on top of background load, yielding the
//!   `U_PRB` series every busy-hour analysis consumes.
//!
//! The simulator is a deterministic discrete-event machine (no async, no
//! threads): the guides' own advice is that CPU-bound simulation belongs
//! on plain threads, and determinism is what makes the reproduction
//! reviewable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod connection;
pub mod prb;
pub mod throughput;

pub use background::{BackgroundLoad, BackgroundLoadConfig, CellClass};
pub use connection::{
    ConnectionGenerator, RadioConnection, RrcConfig, Transfer, TransferKind,
};
pub use prb::{PrbLedger, UtilizationSeries};
pub use throughput::available_throughput_mbps;

//! RRC connection lifecycle of a car modem.
//!
//! §3 of the paper: *"There can be a vast range of connection durations
//! at radio level due to the normal timeout of 10 to 12 seconds after no
//! data is left to transmit in either direction."* This module is that
//! state machine:
//!
//! * a data **transfer** (telemetry ping, infotainment burst, hotspot
//!   session, FOTA chunk) brings the modem to RRC-connected on the
//!   strongest serving cell;
//! * while connected and moving, the serving cell is re-evaluated at a
//!   sampling cadence; a change closes the per-cell connection record and
//!   opens a new one — a **handover** (the paper's radio-level records
//!   are per cell, which is why Figure 9's durations are per-cell);
//! * 10–12 s after the last data the connection times out and the modem
//!   returns to idle.
//!
//! The generator also credits each transfer's PRB demand to a
//! [`PrbLedger`], so network load and CDRs come
//! from one pass over the same events.

use crate::prb::PrbLedger;
use conncar_geo::{Point, Region};
use conncar_types::{CarId, CellId, Duration, ModemCapability, Timestamp};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What kind of traffic a transfer is; fixes its demand intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TransferKind {
    /// Small periodic telemetry/keep-alive exchange.
    Telemetry,
    /// Infotainment traffic (maps, streaming audio).
    Infotainment,
    /// In-car WiFi hotspot backhaul (passenger devices).
    Hotspot,
    /// Firmware-over-the-air download chunk.
    Fota,
    /// Unbounded greedy download (the Figure 1 experiment): takes all
    /// free capacity of whatever cell serves it.
    Greedy,
}

impl TransferKind {
    /// Mean offered downlink demand, Mbit/s. `Greedy` is effectively
    /// infinite and handled specially by the ledger.
    pub const fn demand_mbps(self) -> f64 {
        match self {
            TransferKind::Telemetry => 0.05,
            TransferKind::Infotainment => 2.0,
            TransferKind::Hotspot => 6.0,
            TransferKind::Fota => 12.0,
            TransferKind::Greedy => f64::INFINITY,
        }
    }
}

/// One data-transfer interval within a trip, offsets in seconds from the
/// trip start.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Transfer {
    /// Start offset, seconds from trip start.
    pub start_off: u64,
    /// End offset (exclusive), seconds from trip start.
    pub end_off: u64,
    /// Traffic kind.
    pub kind: TransferKind,
}

impl Transfer {
    /// Construct; `end_off` must exceed `start_off`.
    pub fn new(start_off: u64, end_off: u64, kind: TransferKind) -> Transfer {
        debug_assert!(end_off > start_off, "empty transfer");
        Transfer {
            start_off,
            end_off,
            kind,
        }
    }

    /// Length in seconds.
    pub fn len_secs(&self) -> u64 {
        self.end_off - self.start_off
    }
}

/// One radio-level connection record: a car on one cell for one interval.
/// The raw event that becomes a Call Detail Record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RadioConnection {
    /// The connecting car.
    pub car: CarId,
    /// The serving cell.
    pub cell: CellId,
    /// Connection setup (or handover-in) time.
    pub start: Timestamp,
    /// Release (or handover-out) time; exclusive, `> start`.
    pub end: Timestamp,
}

impl RadioConnection {
    /// The record's duration.
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }
}

/// RRC machine parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RrcConfig {
    /// Minimum inactivity timeout, seconds (paper: 10).
    pub timeout_min_secs: u64,
    /// Maximum inactivity timeout, seconds (paper: 12).
    pub timeout_max_secs: u64,
    /// Serving-cell re-evaluation cadence while connected, seconds.
    pub sample_interval_secs: u64,
    /// Time-to-trigger, in samples: a challenger cell must be the best
    /// choice on this many consecutive evaluations before the handover
    /// executes (3GPP TTT). Suppresses one-sample shadow-fading spikes
    /// that would otherwise fragment every drive into sample-length
    /// records.
    pub ttt_samples: u8,
    /// Probability that a transfer starts on the 3G layer instead of
    /// LTE (attach failures, congestion redirection, CSFB leftovers —
    /// the mechanisms that put real LTE-capable cars on legacy carriers
    /// a few percent of the time, Table 3's C2 column).
    pub rat_fallback_p: f64,
}

impl Default for RrcConfig {
    fn default() -> Self {
        RrcConfig {
            timeout_min_secs: 10,
            timeout_max_secs: 12,
            sample_interval_secs: 20,
            ttt_samples: 2,
            rat_fallback_p: 0.055,
        }
    }
}

/// Simulates the RRC lifecycle for one car trip at a time.
#[derive(Debug, Clone)]
pub struct ConnectionGenerator {
    cfg: RrcConfig,
}

impl ConnectionGenerator {
    /// Build a generator.
    pub fn new(cfg: RrcConfig) -> ConnectionGenerator {
        ConnectionGenerator { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &RrcConfig {
        &self.cfg
    }

    /// Simulate one trip's radio activity.
    ///
    /// * `position(t)` — the car's position `t` seconds after `t0`
    ///   (constant closure for a parked car);
    /// * `transfers` — sorted, non-overlapping data intervals;
    /// * the generated per-cell connection records are returned, and each
    ///   transfer's PRB demand is credited to `ledger` (if provided).
    pub fn simulate_trip(
        &self,
        car: CarId,
        t0: Timestamp,
        position: impl Fn(f64) -> Point,
        transfers: &[Transfer],
        region: &Region,
        cap: ModemCapability,
        ledger: Option<&mut PrbLedger>,
        rng: &mut impl Rng,
    ) -> Vec<RadioConnection> {
        let mut out = Vec::new();
        let mut ledger = ledger;
        // Open connection state: (cell, record start offset).
        let mut open: Option<(CellId, u64)> = None;
        // Time-to-trigger state: a challenger cell and how many
        // consecutive samples it has won.
        let mut pending: Option<(CellId, u8)> = None;
        // Offset of the last second that carried data.
        let mut last_data_end: u64 = 0;

        let step = self.cfg.sample_interval_secs.max(1);
        let close = |cell: CellId, start_off: u64, end_off: u64, out: &mut Vec<RadioConnection>| {
            if end_off > start_off {
                out.push(RadioConnection {
                    car,
                    cell,
                    start: t0 + Duration::from_secs(start_off),
                    end: t0 + Duration::from_secs(end_off),
                });
            }
        };

        for tr in transfers {
            debug_assert!(tr.end_off > tr.start_off);
            // Idle gap before this transfer: did the connection survive?
            if let Some((cell, start_off)) = open {
                let timeout = rng.gen_range(self.cfg.timeout_min_secs..=self.cfg.timeout_max_secs);
                if tr.start_off > last_data_end + timeout {
                    close(cell, start_off, last_data_end + timeout, &mut out);
                    open = None;
                }
            }
            // 3G-fallback event: this transfer rides the legacy layer.
            let umts_only = cap.supports(conncar_types::Carrier::C2);
            let effective_cap = if self.cfg.rat_fallback_p > 0.0
                && open.is_none()
                && umts_only
                && rng.gen_bool(self.cfg.rat_fallback_p.clamp(0.0, 1.0))
            {
                ModemCapability::UMTS_ONLY
            } else {
                cap
            };
            // Walk the transfer, re-evaluating the serving cell.
            let mut cursor = tr.start_off;
            while cursor < tr.end_off {
                let seg_end = (cursor + step).min(tr.end_off);
                let pos = position(cursor as f64);
                let current = open.map(|(c, _)| c);
                match region.serving_cell(pos, effective_cap, current) {
                    Some(serving) => {
                        let mut active_cell = serving.cell;
                        match open {
                            None => {
                                open = Some((serving.cell, cursor));
                                pending = None;
                            }
                            Some((cell, start_off)) if cell != serving.cell => {
                                // Time-to-trigger: only execute the
                                // handover once the same challenger has
                                // won `ttt_samples` consecutive samples.
                                let streak = match pending {
                                    Some((c, n)) if c == serving.cell => n.saturating_add(1),
                                    _ => 1,
                                };
                                if streak >= self.cfg.ttt_samples.max(1) {
                                    close(cell, start_off, cursor, &mut out);
                                    open = Some((serving.cell, cursor));
                                    pending = None;
                                } else {
                                    pending = Some((serving.cell, streak));
                                    // Data keeps flowing on the old cell.
                                    active_cell = cell;
                                }
                            }
                            Some((cell, _)) => {
                                pending = None;
                                active_cell = cell;
                            }
                        }
                        if let Some(ref mut lg) = ledger {
                            lg.add_transfer_load(
                                active_cell,
                                t0 + Duration::from_secs(cursor),
                                t0 + Duration::from_secs(seg_end),
                                tr.kind,
                            );
                        }
                        last_data_end = seg_end;
                    }
                    None => {
                        // Coverage gap: drop the connection where data
                        // stopped flowing.
                        if let Some((cell, start_off)) = open.take() {
                            close(cell, start_off, cursor.max(start_off), &mut out);
                        }
                        pending = None;
                    }
                }
                cursor = seg_end;
            }
        }
        // Final timeout tail.
        if let Some((cell, start_off)) = open {
            let timeout = rng.gen_range(self.cfg.timeout_min_secs..=self.cfg.timeout_max_secs);
            close(cell, start_off, last_data_end + timeout, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_geo::RegionConfig;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn region() -> Region {
        Region::generate(&RegionConfig::small(), 42)
    }

    fn center(r: &Region) -> Point {
        Point::new(r.config().width_m / 2.0, r.config().height_m / 2.0)
    }

    #[test]
    fn parked_car_single_transfer() {
        let r = region();
        let p = center(&r);
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::from_secs(1_000),
            |_| p,
            &[Transfer::new(0, 60, TransferKind::Telemetry)],
            &r,
            ModemCapability::STANDARD,
            None,
            &mut rng,
        );
        assert_eq!(conns.len(), 1);
        let c = &conns[0];
        assert_eq!(c.start, Timestamp::from_secs(1_000));
        // 60 s of data + 10–12 s timeout.
        let dur = c.duration().as_secs();
        assert!((70..=72).contains(&dur), "duration {dur}");
    }

    #[test]
    fn close_transfers_share_a_connection() {
        let r = region();
        let p = center(&r);
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        // Gap of 5 s < timeout: one record.
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            |_| p,
            &[
                Transfer::new(0, 30, TransferKind::Telemetry),
                Transfer::new(35, 60, TransferKind::Telemetry),
            ],
            &r,
            ModemCapability::STANDARD,
            None,
            &mut rng,
        );
        assert_eq!(conns.len(), 1);
        assert!(conns[0].duration().as_secs() >= 70);
    }

    #[test]
    fn long_gap_splits_connections() {
        let r = region();
        let p = center(&r);
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            |_| p,
            &[
                Transfer::new(0, 30, TransferKind::Telemetry),
                Transfer::new(300, 330, TransferKind::Telemetry),
            ],
            &r,
            ModemCapability::STANDARD,
            None,
            &mut rng,
        );
        assert_eq!(conns.len(), 2);
        // First record ends at 30 + timeout.
        let d0 = conns[0].duration().as_secs();
        assert!((40..=42).contains(&d0), "first duration {d0}");
        assert_eq!(conns[1].start, Timestamp::from_secs(300));
    }

    #[test]
    fn driving_produces_handovers() {
        let r = region();
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Cross the region at 30 m/s for 600 s with continuous data.
        let w = r.config().width_m;
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            move |t| Point::new((1_000.0 + 30.0 * t).min(w - 1.0), 12_000.0),
            &[Transfer::new(0, 600, TransferKind::Infotainment)],
            &r,
            ModemCapability::STANDARD,
            None,
            &mut rng,
        );
        assert!(conns.len() >= 3, "18 km drive: {} records", conns.len());
        // Records are contiguous at handover boundaries and time-ordered.
        for w in conns.windows(2) {
            assert!(w[0].end <= w[1].start);
            assert!(w[0].cell != w[1].cell || w[1].start > w[0].end);
        }
        // Total connected span covers the transfer plus timeout.
        let total: u64 = conns.iter().map(|c| c.duration().as_secs()).sum();
        assert!((600..=615).contains(&total), "total connected {total}");
    }

    #[test]
    fn no_transfers_no_records() {
        let r = region();
        let p = center(&r);
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            |_| p,
            &[],
            &r,
            ModemCapability::STANDARD,
            None,
            &mut rng,
        );
        assert!(conns.is_empty());
    }

    #[test]
    fn no_capability_no_records() {
        let r = region();
        let p = center(&r);
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            |_| p,
            &[Transfer::new(0, 100, TransferKind::Telemetry)],
            &r,
            ModemCapability::NONE,
            None,
            &mut rng,
        );
        assert!(conns.is_empty());
    }

    #[test]
    fn determinism_given_same_rng_seed() {
        let r = region();
        let gen = ConnectionGenerator::new(RrcConfig::default());
        let run = || {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            gen.simulate_trip(
                CarId(9),
                Timestamp::from_secs(500),
                |t| Point::new(8_000.0 + 10.0 * t, 9_000.0),
                &[Transfer::new(10, 200, TransferKind::Hotspot)],
                &r,
                ModemCapability::STANDARD,
                None,
                &mut ChaCha8Rng::seed_from_u64(rng.gen()),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn ttt_suppresses_flapping() {
        // The same drive with TTT disabled produces at least as many
        // (usually more) per-cell records than with the default TTT.
        let r = region();
        let w = r.config().width_m;
        let drive = move |t: f64| Point::new((1_000.0 + 25.0 * t).min(w - 1.0), 11_000.0);
        let run = |ttt: u8| -> usize {
            let gen = ConnectionGenerator::new(RrcConfig {
                ttt_samples: ttt,
                rat_fallback_p: 0.0,
                ..RrcConfig::default()
            });
            let mut rng = ChaCha8Rng::seed_from_u64(11);
            gen.simulate_trip(
                CarId(1),
                Timestamp::EPOCH,
                drive,
                &[Transfer::new(0, 900, TransferKind::Hotspot)],
                &r,
                ModemCapability::STANDARD,
                None,
                &mut rng,
            )
            .len()
        };
        let without = run(1);
        let with_ttt = run(2);
        assert!(
            with_ttt <= without,
            "TTT should not increase records: {with_ttt} vs {without}"
        );
    }

    #[test]
    fn forced_fallback_rides_the_3g_layer() {
        let r = region();
        let p = center(&r);
        let gen = ConnectionGenerator::new(RrcConfig {
            rat_fallback_p: 1.0,
            ..RrcConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            |_| p,
            &[Transfer::new(0, 120, TransferKind::Telemetry)],
            &r,
            ModemCapability::STANDARD,
            None,
            &mut rng,
        );
        assert!(!conns.is_empty());
        for c in &conns {
            assert_eq!(c.cell.carrier, conncar_types::Carrier::C2);
        }
        // A modem without C2 support cannot fall back: stays on LTE.
        let cap_no_c2 = ModemCapability::from_carriers([
            conncar_types::Carrier::C1,
            conncar_types::Carrier::C3,
        ]);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let conns = gen.simulate_trip(
            CarId(2),
            Timestamp::EPOCH,
            |_| p,
            &[Transfer::new(0, 120, TransferKind::Telemetry)],
            &r,
            cap_no_c2,
            None,
            &mut rng,
        );
        assert!(conns
            .iter()
            .all(|c| c.cell.carrier != conncar_types::Carrier::C2));
    }

    #[test]
    fn ledger_credits_follow_the_serving_cell() {
        // With a ledger attached, every touched cell in the ledger also
        // appears in the emitted records (same pass, same cells).
        use crate::prb::PrbLedger;
        use conncar_types::StudyPeriod;
        let r = region();
        let w = r.config().width_m;
        let mut ledger = PrbLedger::new(StudyPeriod::PAPER);
        let gen = ConnectionGenerator::new(RrcConfig {
            rat_fallback_p: 0.0,
            ..RrcConfig::default()
        });
        let mut rng = ChaCha8Rng::seed_from_u64(14);
        let conns = gen.simulate_trip(
            CarId(1),
            Timestamp::EPOCH,
            move |t| Point::new((2_000.0 + 20.0 * t).min(w - 1.0), 9_000.0),
            &[Transfer::new(0, 600, TransferKind::Infotainment)],
            &r,
            ModemCapability::STANDARD,
            Some(&mut ledger),
            &mut rng,
        );
        let record_cells: std::collections::HashSet<_> =
            conns.iter().map(|c| c.cell).collect();
        let ledger_cells: std::collections::HashSet<_> = ledger.touched_cells().collect();
        assert!(!ledger_cells.is_empty());
        for cell in &ledger_cells {
            assert!(
                record_cells.contains(cell),
                "ledger cell {cell} missing from records"
            );
        }
    }

    #[test]
    fn transfer_len() {
        let t = Transfer::new(10, 40, TransferKind::Fota);
        assert_eq!(t.len_secs(), 30);
        assert!(TransferKind::Greedy.demand_mbps().is_infinite());
        assert!(TransferKind::Telemetry.demand_mbps() < 0.1);
    }
}

//! PRB utilization ledger: background plus car-generated load per
//! (cell, 15-minute bin).
//!
//! "In LTE, radio resources are finite and measured using Physical
//! Resource Block (PRB) utilization, U_PRB" (§4). The ledger accumulates
//! each transfer's demand as a fraction of its serving cell's capacity,
//! prorated over the bins it overlaps; combined with the
//! [`BackgroundLoad`] model it yields the `U_PRB(cell, bin)` series that
//! every busy-hour analysis reads.
//!
//! Storage is sparse: only cells that actually carried car traffic
//! allocate a dense bin vector; untouched cells fall back to pure
//! background on query.

use crate::background::{BackgroundLoad, CellClass};
use crate::connection::TransferKind;
use conncar_types::{BinIndex, CellId, StudyPeriod, Timestamp, BIN_SECONDS};
use std::collections::HashMap;

/// Accumulates car-generated PRB demand per (cell, bin).
#[derive(Debug, Clone)]
pub struct PrbLedger {
    period: StudyPeriod,
    total_bins: usize,
    /// Car-load utilization fraction per bin, per touched cell.
    load: HashMap<CellId, Vec<f32>>,
}

impl PrbLedger {
    /// An empty ledger covering a study period.
    pub fn new(period: StudyPeriod) -> PrbLedger {
        PrbLedger {
            period,
            total_bins: period.total_bins() as usize,
            load: HashMap::new(),
        }
    }

    /// The covered period.
    pub fn period(&self) -> StudyPeriod {
        self.period
    }

    /// Credit a transfer's demand on `cell` for `[start, end)`.
    ///
    /// The demand fraction is `offered Mbit/s ÷ the carrier's peak
    /// throughput`, capped at 1; a [`TransferKind::Greedy`] download
    /// claims the whole cell (fraction 1), which is how a single device
    /// saturates a radio in the Figure 1 experiment.
    pub fn add_transfer_load(
        &mut self,
        cell: CellId,
        start: Timestamp,
        end: Timestamp,
        kind: TransferKind,
    ) {
        let demand = kind.demand_mbps();
        let frac = if demand.is_infinite() {
            1.0
        } else {
            (demand / cell.carrier.peak_throughput_mbps() as f64).min(1.0)
        };
        self.add_load_fraction(cell, start, end, frac);
    }

    /// Credit a raw utilization fraction on `cell` for `[start, end)`.
    pub fn add_load_fraction(&mut self, cell: CellId, start: Timestamp, end: Timestamp, frac: f64) {
        if frac <= 0.0 {
            return;
        }
        let Some((start, end)) = self.period.clip(start, end) else {
            return;
        };
        let total_bins = self.total_bins;
        let bins = self
            .load
            .entry(cell)
            .or_insert_with(|| vec![0.0; total_bins]);
        for b in BinIndex::covering(start, end) {
            let idx = b.0 as usize;
            if idx >= bins.len() {
                break;
            }
            let overlap = b.overlap_secs(start, end) as f64;
            bins[idx] += (frac * overlap / BIN_SECONDS as f64) as f32;
        }
    }

    /// Car-generated load fraction in one bin (0 when untouched).
    pub fn car_load(&self, cell: CellId, bin: BinIndex) -> f64 {
        self.load
            .get(&cell)
            .and_then(|v| v.get(bin.0 as usize))
            .copied()
            .unwrap_or(0.0) as f64
    }

    /// Total `U_PRB` of a cell in a bin: background + car load, capped
    /// at 1.
    pub fn utilization(
        &self,
        cell: CellId,
        class: CellClass,
        bin: BinIndex,
        bg: &BackgroundLoad,
    ) -> f64 {
        (bg.utilization(cell, class, bin) + self.car_load(cell, bin)).min(1.0)
    }

    /// Dense utilization series for one cell over the whole period.
    pub fn series(&self, cell: CellId, class: CellClass, bg: &BackgroundLoad) -> UtilizationSeries {
        let values = (0..self.total_bins as u64)
            .map(|b| self.utilization(cell, class, BinIndex(b), bg))
            .collect();
        UtilizationSeries {
            cell,
            values,
            period: self.period,
        }
    }

    /// Cells that carried any car traffic.
    pub fn touched_cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.load.keys().copied()
    }

    /// Number of touched cells.
    pub fn touched_count(&self) -> usize {
        self.load.len()
    }

    /// Merge another ledger (bin-wise sum). Panics if periods differ —
    /// merging across studies is a programming error.
    pub fn merge(&mut self, other: &PrbLedger) {
        assert_eq!(
            self.period, other.period,
            "cannot merge ledgers of different periods"
        );
        for (cell, bins) in &other.load {
            let total_bins = self.total_bins;
            let mine = self
                .load
                .entry(*cell)
                .or_insert_with(|| vec![0.0; total_bins]);
            for (m, o) in mine.iter_mut().zip(bins) {
                *m += o;
            }
        }
    }
}

/// A cell's dense `U_PRB` series over the study.
#[derive(Debug, Clone)]
pub struct UtilizationSeries {
    /// The cell.
    pub cell: CellId,
    /// One utilization value per 15-minute bin, `[0, 1]`.
    pub values: Vec<f64>,
    /// The covered period.
    pub period: StudyPeriod,
}

impl UtilizationSeries {
    /// Mean utilization over the whole period.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Mean utilization over one week's worth of bins starting at
    /// `week` (0-based). Returns `None` if the week is incomplete.
    pub fn week_mean(&self, week: usize) -> Option<f64> {
        let start = week * conncar_types::BINS_PER_WEEK;
        let end = start + conncar_types::BINS_PER_WEEK;
        if end > self.values.len() {
            return None;
        }
        Some(self.values[start..end].iter().sum::<f64>() / conncar_types::BINS_PER_WEEK as f64)
    }

    /// Fraction of bins above a busy threshold.
    pub fn busy_fraction(&self, threshold: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|&&u| u > threshold).count() as f64 / self.values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::background::BackgroundLoadConfig;
    use conncar_types::{BaseStationId, Carrier, Duration};

    fn cell() -> CellId {
        CellId::new(BaseStationId(1), 0, Carrier::C3)
    }

    fn ledger() -> PrbLedger {
        PrbLedger::new(StudyPeriod::PAPER)
    }

    #[test]
    fn load_prorates_over_bins() {
        let mut lg = ledger();
        // 30 s at fraction 0.5 inside bin 0.
        lg.add_load_fraction(
            cell(),
            Timestamp::from_secs(100),
            Timestamp::from_secs(130),
            0.5,
        );
        let got = lg.car_load(cell(), BinIndex(0));
        assert!((got - 0.5 * 30.0 / 900.0).abs() < 1e-6);
        assert_eq!(lg.car_load(cell(), BinIndex(1)), 0.0);
    }

    #[test]
    fn load_splits_across_bin_boundary() {
        let mut lg = ledger();
        lg.add_load_fraction(
            cell(),
            Timestamp::from_secs(800),
            Timestamp::from_secs(1_000),
            1.0,
        );
        assert!((lg.car_load(cell(), BinIndex(0)) - 100.0 / 900.0).abs() < 1e-6);
        assert!((lg.car_load(cell(), BinIndex(1)) - 100.0 / 900.0).abs() < 1e-6);
    }

    #[test]
    fn transfer_kind_scales_demand() {
        let mut lg = ledger();
        let span = (Timestamp::from_secs(0), Timestamp::from_secs(900));
        lg.add_transfer_load(cell(), span.0, span.1, TransferKind::Telemetry);
        let tele = lg.car_load(cell(), BinIndex(0));
        // C3 peak 75 Mbps; telemetry 0.05 Mbps → tiny.
        assert!(tele < 0.001, "telemetry load {tele}");
        let mut lg2 = ledger();
        lg2.add_transfer_load(cell(), span.0, span.1, TransferKind::Greedy);
        assert!((lg2.car_load(cell(), BinIndex(0)) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn outside_period_is_ignored() {
        let mut lg = ledger();
        let after = StudyPeriod::PAPER.end();
        lg.add_load_fraction(cell(), after, after + Duration::from_hours(1), 1.0);
        assert_eq!(lg.touched_count(), 0);
        // Straddling the end is clipped, not dropped.
        lg.add_load_fraction(
            cell(),
            after - Duration::from_secs(450),
            after + Duration::from_secs(450),
            1.0,
        );
        let last_bin = BinIndex(StudyPeriod::PAPER.total_bins() - 1);
        assert!((lg.car_load(cell(), last_bin) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn utilization_caps_at_one() {
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), StudyPeriod::PAPER, 0);
        let mut lg = ledger();
        lg.add_load_fraction(
            cell(),
            Timestamp::from_secs(0),
            Timestamp::from_secs(900),
            5.0,
        );
        let u = lg.utilization(cell(), CellClass::Business, BinIndex(0), &bg);
        assert_eq!(u, 1.0);
    }

    #[test]
    fn untouched_cell_is_pure_background() {
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), StudyPeriod::PAPER, 0);
        let lg = ledger();
        let b = BinIndex(52);
        assert_eq!(
            lg.utilization(cell(), CellClass::Business, b, &bg),
            bg.utilization(cell(), CellClass::Business, b)
        );
    }

    #[test]
    fn merge_sums_loads() {
        let mut a = ledger();
        let mut b = ledger();
        let span = (Timestamp::from_secs(0), Timestamp::from_secs(900));
        a.add_load_fraction(cell(), span.0, span.1, 0.2);
        b.add_load_fraction(cell(), span.0, span.1, 0.3);
        a.merge(&b);
        assert!((a.car_load(cell(), BinIndex(0)) - 0.5).abs() < 1e-6);
        assert_eq!(a.touched_count(), 1);
    }

    #[test]
    #[should_panic(expected = "different periods")]
    fn merge_rejects_mismatched_periods() {
        let mut a = PrbLedger::new(StudyPeriod::PAPER);
        let b = PrbLedger::new(
            StudyPeriod::new(conncar_types::DayOfWeek::Monday, 7).unwrap(),
        );
        a.merge(&b);
    }

    #[test]
    fn series_statistics() {
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), StudyPeriod::PAPER, 0);
        let lg = ledger();
        let s = lg.series(cell(), CellClass::Business, &bg);
        assert_eq!(s.values.len(), StudyPeriod::PAPER.total_bins() as usize);
        let m = s.mean();
        assert!((0.0..=1.0).contains(&m));
        assert!(s.week_mean(0).is_some());
        assert!(s.week_mean(12).is_none()); // 90 days = 12 weeks + 6 days
        let bf = s.busy_fraction(0.8);
        assert!((0.0..=1.0).contains(&bf));
        // Busy fraction is monotone in the threshold.
        assert!(s.busy_fraction(0.5) >= bf);
    }
}

//! Property tests for the corruption-tolerant ingest path: no byte
//! stream — bit-flipped, truncated, duplicated, or pure garbage — may
//! panic the reader, and the [`IngestReport`] totals must always
//! reconcile with the records actually yielded.

use conncar_cdr::{salvage, CdrReader, CdrRecord, CdrWriter, Cleaner, RejectReason};
use conncar_types::{
    BaseStationId, CarId, Carrier, CellId, DayOfWeek, Error, StudyPeriod, Timestamp,
};
use proptest::prelude::*;

/// A well-formed v2 stream of `records` records in chunks of `chunk`.
fn stream(records: usize, chunk: usize) -> Vec<u8> {
    let recs: Vec<CdrRecord> = (0..records)
        .map(|i| CdrRecord {
            car: CarId(i as u32 % 53),
            cell: CellId::new(
                BaseStationId(i as u32 % 7),
                (i % 3) as u8,
                Carrier::from_index(i % 5).expect("valid index"),
            ),
            start: Timestamp::from_secs(i as u64 * 37),
            end: Timestamp::from_secs(i as u64 * 37 + 30),
        })
        .collect();
    let mut w = CdrWriter::new(Vec::new()).with_chunk_records(chunk.max(1));
    w.write_all(&recs).expect("in-memory write");
    w.finish().expect("in-memory finish").0
}

/// Regression for the rule-L4 fixes: a v2 stream truncated mid-frame
/// must flow through the *full* clean path — salvage, validate, dedup,
/// glitch-drop — without a panic, with the truncation accounted in the
/// ingest report and record-level damage landing in the quarantine.
#[test]
fn truncated_v2_frame_survives_the_full_clean_path() {
    let period = StudyPeriod::new(DayOfWeek::Monday, 7).expect("valid period");
    // 250 records, one of them carrying a skewed modem clock (end ==
    // start): it frame-checks and decodes — the tolerant reader
    // deliberately leaves validation to the cleaner — so it must come
    // out of the clean path quarantined, not as a panic.
    let mut recs: Vec<CdrRecord> = (0..250)
        .map(|i| CdrRecord {
            car: CarId(i as u32 % 53),
            cell: CellId::new(
                BaseStationId(i as u32 % 7),
                (i % 3) as u8,
                Carrier::from_index(i % 5).expect("valid index"),
            ),
            start: Timestamp::from_secs(i as u64 * 37),
            end: Timestamp::from_secs(i as u64 * 37 + 30),
        })
        .collect();
    recs[7].end = recs[7].start;
    let mut w = CdrWriter::new(Vec::new()).with_chunk_records(100);
    w.write_all(&recs).expect("in-memory write");
    let (mut bytes, _) = w.finish().expect("in-memory finish");
    // Cut into the final (50-record) frame's body: the whole frame is
    // lost — its CRC can no longer be checked.
    let cut = bytes.len() - 49 * 26 - 13;
    bytes.truncate(cut);

    let salvaged = Cleaner::default()
        .clean_stream(&bytes, period)
        .expect("partial damage is accounting, not an error");
    assert!(salvaged.ingest.truncated_tail);
    assert_eq!(salvaged.ingest.chunks_ok, 2);
    assert_eq!(salvaged.ingest.records_lost_truncated, 50);
    assert_eq!(salvaged.ingest.records_yielded, 200);
    // The skewed record decoded fine but was quarantined by validation.
    assert_eq!(salvaged.outcome.report.dropped_malformed, 1);
    assert_eq!(salvaged.outcome.quarantine.count(RejectReason::Malformed), 1);
    assert_eq!(salvaged.outcome.dataset.len(), 199);
    // Every announced record is in exactly one bucket: kept, cut off,
    // or quarantined.
    assert_eq!(
        salvaged.outcome.dataset.len() as u64
            + salvaged.ingest.records_lost_truncated
            + salvaged.outcome.quarantine.len() as u64,
        250
    );
}

/// Total loss — a stream cut inside its only frame — is the one case
/// that *is* an error, and it is [`Error::Clean`], not a panic.
#[test]
fn unsalvageable_stream_is_a_clean_error() {
    let period = StudyPeriod::new(DayOfWeek::Monday, 7).expect("valid period");
    let bytes = stream(40, 100);
    let cut = &bytes[..5 + 12 + 7]; // header + chunk header + partial row
    let err = Cleaner::default()
        .clean_stream(cut, period)
        .expect_err("nothing salvageable");
    assert!(matches!(err, Error::Clean { stage: "salvage", .. }), "{err}");
    // A pristine header-only stream stays a legitimate empty trace.
    let empty = Cleaner::default()
        .clean_stream(&bytes[..5], period)
        .expect("header-only stream is an empty trace");
    assert!(empty.ingest.is_pristine());
    assert_eq!(empty.outcome.dataset.len(), 0);
}

proptest! {
    #[test]
    fn mutated_streams_never_panic_and_always_reconcile(
        records in 0usize..300,
        chunk in 1usize..48,
        flips in proptest::collection::vec((0usize..1_000_000, 1u8..=255u8), 0..24),
        cut in 0usize..1_000_000,
        do_cut in any::<bool>(),
        dup_from in 0usize..1_000_000,
        do_dup in any::<bool>(),
    ) {
        let mut bytes = stream(records, chunk);
        // Duplicate a tail slice (chunks delivered twice).
        if do_dup && bytes.len() > 5 {
            let from = 5 + dup_from % (bytes.len() - 5);
            let dup = bytes[from..].to_vec();
            bytes.extend_from_slice(&dup);
        }
        // Arbitrary bit damage anywhere, header included.
        for (pos, mask) in &flips {
            if bytes.is_empty() {
                break;
            }
            let i = pos % bytes.len();
            bytes[i] ^= mask;
        }
        // Truncation at an arbitrary byte boundary.
        if do_cut && !bytes.is_empty() {
            bytes.truncate(cut % bytes.len());
        }

        // Tolerant path: never an error, never a panic, and the report
        // agrees with what came back.
        let (recs, report) = salvage(&bytes);
        prop_assert_eq!(recs.len() as u64, report.records_yielded);
        prop_assert!(report.records_accounted() >= report.records_yielded);

        // Untouched streams round-trip perfectly through the same path.
        if flips.is_empty() && !do_cut && !do_dup {
            prop_assert!(report.is_pristine());
            prop_assert_eq!(recs.len(), records);
        }

        // Strict path: allowed to reject, not to panic.
        let _ = CdrReader::new(&bytes[..]).read_to_end();
    }
}

//! Property tests for the corruption-tolerant ingest path: no byte
//! stream — bit-flipped, truncated, duplicated, or pure garbage — may
//! panic the reader, and the [`IngestReport`] totals must always
//! reconcile with the records actually yielded.

use conncar_cdr::{salvage, CdrReader, CdrRecord, CdrWriter};
use conncar_types::{BaseStationId, CarId, Carrier, CellId, Timestamp};
use proptest::prelude::*;

/// A well-formed v2 stream of `records` records in chunks of `chunk`.
fn stream(records: usize, chunk: usize) -> Vec<u8> {
    let recs: Vec<CdrRecord> = (0..records)
        .map(|i| CdrRecord {
            car: CarId(i as u32 % 53),
            cell: CellId::new(
                BaseStationId(i as u32 % 7),
                (i % 3) as u8,
                Carrier::from_index(i % 5).expect("valid index"),
            ),
            start: Timestamp::from_secs(i as u64 * 37),
            end: Timestamp::from_secs(i as u64 * 37 + 30),
        })
        .collect();
    let mut w = CdrWriter::new(Vec::new()).with_chunk_records(chunk.max(1));
    w.write_all(&recs).expect("in-memory write");
    w.finish().expect("in-memory finish").0
}

proptest! {
    #[test]
    fn mutated_streams_never_panic_and_always_reconcile(
        records in 0usize..300,
        chunk in 1usize..48,
        flips in proptest::collection::vec((0usize..1_000_000, 1u8..=255u8), 0..24),
        cut in 0usize..1_000_000,
        do_cut in any::<bool>(),
        dup_from in 0usize..1_000_000,
        do_dup in any::<bool>(),
    ) {
        let mut bytes = stream(records, chunk);
        // Duplicate a tail slice (chunks delivered twice).
        if do_dup && bytes.len() > 5 {
            let from = 5 + dup_from % (bytes.len() - 5);
            let dup = bytes[from..].to_vec();
            bytes.extend_from_slice(&dup);
        }
        // Arbitrary bit damage anywhere, header included.
        for (pos, mask) in &flips {
            if bytes.is_empty() {
                break;
            }
            let i = pos % bytes.len();
            bytes[i] ^= mask;
        }
        // Truncation at an arbitrary byte boundary.
        if do_cut && !bytes.is_empty() {
            bytes.truncate(cut % bytes.len());
        }

        // Tolerant path: never an error, never a panic, and the report
        // agrees with what came back.
        let (recs, report) = salvage(&bytes);
        prop_assert_eq!(recs.len() as u64, report.records_yielded);
        prop_assert!(report.records_accounted() >= report.records_yielded);

        // Untouched streams round-trip perfectly through the same path.
        if flips.is_empty() && !do_cut && !do_dup {
            prop_assert!(report.is_pristine());
            prop_assert_eq!(recs.len(), records);
        }

        // Strict path: allowed to reject, not to panic.
        let _ = CdrReader::new(&bytes[..]).read_to_end();
    }
}

//! Session aggregation.
//!
//! §3: *"We concatenate all connections that are up to 30 seconds apart
//! into aggregate sessions where appropriate."* And for mobility, §4.5
//! builds looser sessions — *"sessions on the network during which the
//! longest connection gap is 10 minutes"* — whose cell sequences bound
//! the handover counts.
//!
//! One [`Sessionizer`] serves both: the gap is a parameter.

use crate::record::{CdrDataset, CdrRecord};
use conncar_types::{CarId, CellId, Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// Sessionization parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Maximum idle gap between consecutive records that still belong to
    /// the same session.
    pub max_gap: Duration,
}

impl SessionConfig {
    /// The paper's aggregate-session gap: 30 s.
    pub const AGGREGATE: SessionConfig = SessionConfig {
        max_gap: Duration::from_secs(30),
    };

    /// The paper's mobility-session gap: 10 minutes.
    pub const MOBILITY: SessionConfig = SessionConfig {
        max_gap: Duration::from_mins(10),
    };
}

/// A run of connection records belonging to one car with no gap larger
/// than the configured maximum.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateSession {
    /// The car.
    pub car: CarId,
    /// First record's start.
    pub start: Timestamp,
    /// Last record's end.
    pub end: Timestamp,
    /// Sum of record durations (excludes the gaps).
    pub connected: Duration,
    /// Number of raw records aggregated.
    pub record_count: usize,
    /// Cell visit sequence with consecutive duplicates collapsed; its
    /// transitions are the session's handovers.
    pub cells: Vec<CellId>,
}

impl AggregateSession {
    /// Wall-clock span of the session including idle gaps.
    pub fn span(&self) -> Duration {
        self.end - self.start
    }

    /// Number of cell transitions (lower-bound handover count, §4.5).
    pub fn handover_count(&self) -> usize {
        self.cells.len().saturating_sub(1)
    }
}

/// Groups per-car records into sessions.
#[derive(Debug, Clone, Copy)]
pub struct Sessionizer {
    cfg: SessionConfig,
}

impl Sessionizer {
    /// Build with a gap configuration.
    pub fn new(cfg: SessionConfig) -> Sessionizer {
        Sessionizer { cfg }
    }

    /// Sessionize a whole dataset (canonical order assumed, which
    /// [`CdrDataset`] guarantees).
    pub fn sessions(&self, ds: &CdrDataset) -> Vec<AggregateSession> {
        let mut out = Vec::new();
        for (_car, records) in ds.by_car() {
            self.sessions_for_car(records, &mut out);
        }
        out
    }

    /// Sessionize one car's already-sorted records, appending to `out`.
    pub fn sessions_for_car(&self, records: &[CdrRecord], out: &mut Vec<AggregateSession>) {
        let mut iter = records.iter();
        let Some(first) = iter.next() else {
            return;
        };
        let mut cur = AggregateSession {
            car: first.car,
            start: first.start,
            end: first.end,
            connected: first.duration(),
            record_count: 1,
            cells: vec![first.cell],
        };
        for r in iter {
            debug_assert_eq!(r.car, cur.car, "records not grouped by car");
            // Overlapping records (sticky-modem dirt) count as gap 0.
            let gap = r.start.saturating_since(cur.end);
            if gap <= self.cfg.max_gap {
                cur.end = cur.end.max(r.end);
                cur.connected += r.duration();
                cur.record_count += 1;
                if cur.cells.last() != Some(&r.cell) {
                    cur.cells.push(r.cell);
                }
            } else {
                out.push(std::mem::replace(
                    &mut cur,
                    AggregateSession {
                        car: r.car,
                        start: r.start,
                        end: r.end,
                        connected: r.duration(),
                        record_count: 1,
                        cells: vec![r.cell],
                    },
                ));
            }
        }
        out.push(cur);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod};

    fn rec(car: u32, station: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    fn ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn gap_at_threshold_merges_beyond_splits() {
        let s = Sessionizer::new(SessionConfig::AGGREGATE);
        // Gap of exactly 30 s merges.
        let merged = s.sessions(&ds(vec![rec(1, 1, 0, 100), rec(1, 1, 130, 200)]));
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].record_count, 2);
        assert_eq!(merged[0].connected.as_secs(), 170);
        assert_eq!(merged[0].span().as_secs(), 200);
        // Gap of 31 s splits.
        let split = s.sessions(&ds(vec![rec(1, 1, 0, 100), rec(1, 1, 131, 200)]));
        assert_eq!(split.len(), 2);
    }

    #[test]
    fn cars_never_share_sessions() {
        let s = Sessionizer::new(SessionConfig::AGGREGATE);
        let sessions = s.sessions(&ds(vec![rec(1, 1, 0, 100), rec(2, 1, 100, 200)]));
        assert_eq!(sessions.len(), 2);
        assert_ne!(sessions[0].car, sessions[1].car);
    }

    #[test]
    fn cell_sequence_collapses_duplicates() {
        let s = Sessionizer::new(SessionConfig::MOBILITY);
        let sessions = s.sessions(&ds(vec![
            rec(1, 1, 0, 100),
            rec(1, 2, 100, 200),
            rec(1, 2, 210, 300),
            rec(1, 3, 300, 400),
        ]));
        assert_eq!(sessions.len(), 1);
        let sess = &sessions[0];
        assert_eq!(sess.cells.len(), 3);
        assert_eq!(sess.handover_count(), 2);
        assert_eq!(sess.record_count, 4);
    }

    #[test]
    fn overlapping_records_merge_with_zero_gap() {
        let s = Sessionizer::new(SessionConfig::AGGREGATE);
        // Sticky record overlaps the next one.
        let sessions = s.sessions(&ds(vec![rec(1, 1, 0, 500), rec(1, 2, 100, 200)]));
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].end.as_secs(), 500);
        assert_eq!(sessions[0].connected.as_secs(), 600);
    }

    #[test]
    fn empty_dataset_no_sessions() {
        let s = Sessionizer::new(SessionConfig::AGGREGATE);
        assert!(s.sessions(&ds(Vec::new())).is_empty());
    }

    #[test]
    fn ping_pong_handovers_all_count() {
        let s = Sessionizer::new(SessionConfig::MOBILITY);
        let sessions = s.sessions(&ds(vec![
            rec(1, 1, 0, 10),
            rec(1, 2, 10, 20),
            rec(1, 1, 20, 30),
        ]));
        assert_eq!(sessions[0].cells.len(), 3);
        assert_eq!(sessions[0].handover_count(), 2);
    }

    #[test]
    fn mobility_gap_keeps_commute_together() {
        let s = Sessionizer::new(SessionConfig::MOBILITY);
        // Records 5 minutes apart (telemetry pings while driving).
        let recs: Vec<CdrRecord> = (0..6)
            .map(|i| rec(1, i, i as u64 * 300, i as u64 * 300 + 60))
            .collect();
        let sessions = s.sessions(&ds(recs));
        assert_eq!(sessions.len(), 1);
        assert_eq!(sessions[0].handover_count(), 5);
        // Aggregate gap (30 s) splits them all.
        let s30 = Sessionizer::new(SessionConfig::AGGREGATE);
        let recs: Vec<CdrRecord> = (0..6)
            .map(|i| rec(1, i, i as u64 * 300, i as u64 * 300 + 60))
            .collect();
        assert_eq!(s30.sessions(&ds(recs)).len(), 6);
    }
}

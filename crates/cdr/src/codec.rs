//! CDR codecs: compact binary and CSV.
//!
//! The binary format is what a production collection pipeline would
//! stream: a fixed magic + version header, then fixed-width records.
//! All integers are little-endian. The decoder validates the magic,
//! version, record-size field and every record's time ordering, and
//! reports byte offsets on failure — a malformed feed must never panic
//! the pipeline.
//!
//! ```text
//! header:  "CDR1" | u8 version | u8 record_len (26)
//! record:  u32 car | u32 station | u8 sector | u8 carrier
//!          | u64 start_secs | u64 end_secs
//! ```

use crate::record::CdrRecord;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use conncar_types::{BaseStationId, CarId, Carrier, CellId, Error, Result, Timestamp};

/// Binary codec for CDR streams.
#[derive(Debug, Clone, Copy, Default)]
pub struct BinaryCodec;

const MAGIC: &[u8; 4] = b"CDR1";
const VERSION: u8 = 1;
const RECORD_LEN: usize = 26;

impl BinaryCodec {
    /// Encode records into a self-describing byte buffer.
    pub fn encode(records: &[CdrRecord]) -> Bytes {
        let mut buf = BytesMut::with_capacity(6 + records.len() * RECORD_LEN);
        buf.put_slice(MAGIC);
        buf.put_u8(VERSION);
        buf.put_u8(RECORD_LEN as u8);
        for r in records {
            buf.put_u32_le(r.car.0);
            buf.put_u32_le(r.cell.station.0);
            buf.put_u8(r.cell.sector);
            buf.put_u8(r.cell.carrier.index() as u8);
            buf.put_u64_le(r.start.as_secs());
            buf.put_u64_le(r.end.as_secs());
        }
        buf.freeze()
    }

    /// Decode a buffer produced by [`BinaryCodec::encode`].
    pub fn decode(mut data: &[u8]) -> Result<Vec<CdrRecord>> {
        let total = data.len() as u64;
        if data.len() < 6 {
            return Err(Error::Decode {
                offset: Some(0),
                why: format!("stream too short for header: {} bytes", data.len()),
            });
        }
        if data.get(..4) != Some(MAGIC.as_slice()) {
            return Err(Error::Decode {
                offset: Some(0),
                why: "bad magic (expected CDR1)".into(),
            });
        }
        data.advance(4);
        let version = data.get_u8();
        if version != VERSION {
            return Err(Error::Decode {
                offset: Some(4),
                why: format!("unsupported version {version}"),
            });
        }
        let rec_len = data.get_u8() as usize;
        if rec_len != RECORD_LEN {
            return Err(Error::Decode {
                offset: Some(5),
                why: format!("record length {rec_len}, expected {RECORD_LEN}"),
            });
        }
        if !data.len().is_multiple_of(RECORD_LEN) {
            return Err(Error::Decode {
                offset: Some(total),
                why: format!("truncated stream: {} trailing bytes", data.len() % RECORD_LEN),
            });
        }
        let mut out = Vec::with_capacity(data.len() / RECORD_LEN);
        while data.has_remaining() {
            let offset = total - data.len() as u64;
            let car = CarId(data.get_u32_le());
            let station = BaseStationId(data.get_u32_le());
            let sector = data.get_u8();
            let carrier_idx = data.get_u8();
            let start = data.get_u64_le();
            let end = data.get_u64_le();
            let carrier = Carrier::from_index(carrier_idx as usize).ok_or(Error::Decode {
                offset: Some(offset),
                why: format!("carrier index {carrier_idx} out of range"),
            })?;
            if end <= start {
                return Err(Error::Decode {
                    offset: Some(offset),
                    why: format!("non-positive duration: start {start} end {end}"),
                });
            }
            out.push(CdrRecord {
                car,
                cell: CellId::new(station, sector, carrier),
                start: Timestamp::from_secs(start),
                end: Timestamp::from_secs(end),
            });
        }
        Ok(out)
    }
}

/// CSV codec (header + one record per line) for interchange with
/// spreadsheet/pandas-style tooling.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvCodec;

impl CsvCodec {
    /// Header line.
    pub const HEADER: &'static str = "car,station,sector,carrier,start_secs,end_secs";

    /// Encode to CSV text.
    pub fn encode(records: &[CdrRecord]) -> String {
        let mut s = String::with_capacity(32 + records.len() * 32);
        s.push_str(Self::HEADER);
        s.push('\n');
        for r in records {
            // format! + push_str instead of writeln!().expect(): the
            // encode path carries no panic site at all (rule L4).
            s.push_str(&format!(
                "{},{},{},{},{},{}\n",
                r.car.0,
                r.cell.station.0,
                r.cell.sector,
                r.cell.carrier.index() + 1,
                r.start.as_secs(),
                r.end.as_secs()
            ));
        }
        s
    }

    /// Decode CSV text produced by [`CsvCodec::encode`].
    pub fn decode(text: &str) -> Result<Vec<CdrRecord>> {
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, h)) if h.trim() == Self::HEADER => {}
            Some((_, h)) => {
                return Err(Error::Decode {
                    offset: Some(0),
                    why: format!("unexpected header: {h:?}"),
                })
            }
            None => return Ok(Vec::new()),
        }
        let mut out = Vec::new();
        for (lineno, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split(',');
            let mut next_u64 = |name: &str| -> Result<u64> {
                fields
                    .next()
                    .ok_or_else(|| Error::Decode {
                        offset: Some(lineno as u64),
                        why: format!("missing field {name}"),
                    })?
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| Error::Decode {
                        offset: Some(lineno as u64),
                        why: format!("bad {name}: {e}"),
                    })
            };
            let car = next_u64("car")? as u32;
            let station = next_u64("station")? as u32;
            let sector = next_u64("sector")? as u8;
            let carrier_1 = next_u64("carrier")?;
            let start = next_u64("start_secs")?;
            let end = next_u64("end_secs")?;
            let carrier = carrier_1
                .checked_sub(1)
                .and_then(|i| Carrier::from_index(i as usize))
                .ok_or(Error::Decode {
                    offset: Some(lineno as u64),
                    why: format!("carrier {carrier_1} out of range 1..=5"),
                })?;
            if end <= start {
                return Err(Error::Decode {
                    offset: Some(lineno as u64),
                    why: "non-positive duration".into(),
                });
            }
            out.push(CdrRecord {
                car: CarId(car),
                cell: CellId::new(BaseStationId(station), sector, carrier),
                start: Timestamp::from_secs(start),
                end: Timestamp::from_secs(end),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<CdrRecord> {
        vec![
            CdrRecord {
                car: CarId(1),
                cell: CellId::new(BaseStationId(10), 2, Carrier::C3),
                start: Timestamp::from_secs(100),
                end: Timestamp::from_secs(250),
            },
            CdrRecord {
                car: CarId(u32::MAX),
                cell: CellId::new(BaseStationId(0), 0, Carrier::C5),
                start: Timestamp::from_secs(0),
                end: Timestamp::from_secs(1),
            },
        ]
    }

    #[test]
    fn binary_round_trip() {
        let recs = sample();
        let bytes = BinaryCodec::encode(&recs);
        assert_eq!(bytes.len(), 6 + 2 * 26);
        let back = BinaryCodec::decode(&bytes).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let mut bytes = BinaryCodec::encode(&sample()).to_vec();
        bytes[0] = b'X';
        let err = BinaryCodec::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn binary_rejects_truncation() {
        let bytes = BinaryCodec::encode(&sample());
        let err = BinaryCodec::decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(err.to_string().contains("truncated"));
        let err = BinaryCodec::decode(&bytes[..3]).unwrap_err();
        assert!(err.to_string().contains("too short"));
    }

    #[test]
    fn binary_rejects_bad_carrier_and_times() {
        let mut bytes = BinaryCodec::encode(&sample()).to_vec();
        bytes[6 + 9] = 9; // carrier byte of first record
        assert!(BinaryCodec::decode(&bytes).is_err());
        let recs = vec![CdrRecord {
            start: Timestamp::from_secs(10),
            end: Timestamp::from_secs(10),
            ..sample()[0]
        }];
        let bytes = BinaryCodec::encode(&recs);
        assert!(BinaryCodec::decode(&bytes).is_err());
    }

    #[test]
    fn binary_rejects_wrong_version() {
        let mut bytes = BinaryCodec::encode(&sample()).to_vec();
        bytes[4] = 2;
        assert!(BinaryCodec::decode(&bytes)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    #[test]
    fn csv_round_trip() {
        let recs = sample();
        let text = CsvCodec::encode(&recs);
        assert!(text.starts_with("car,station"));
        let back = CsvCodec::decode(&text).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(CsvCodec::decode("nope\n1,2,3").is_err());
        let text = format!("{}\n1,2,3\n", CsvCodec::HEADER);
        assert!(CsvCodec::decode(&text).is_err()); // missing fields
        let text = format!("{}\n1,2,3,9,0,10\n", CsvCodec::HEADER);
        assert!(CsvCodec::decode(&text).is_err()); // carrier out of range
    }

    #[test]
    fn csv_tolerates_blank_lines_and_empty_input() {
        let text = format!("{}\n\n1,10,2,3,100,250\n\n", CsvCodec::HEADER);
        let recs = CsvCodec::decode(&text).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(CsvCodec::decode("").unwrap(), Vec::new());
    }

    #[test]
    fn empty_record_sets() {
        let bytes = BinaryCodec::encode(&[]);
        assert_eq!(BinaryCodec::decode(&bytes).unwrap(), Vec::new());
        let text = CsvCodec::encode(&[]);
        assert_eq!(CsvCodec::decode(&text).unwrap(), Vec::new());
    }
}

//! Injection of the measurement artifacts the paper pre-processes away.
//!
//! §3 names three kinds of dirt in the production feed:
//!
//! 1. *"connections \[that\] appear to have lasted exactly 1 hour …
//!    presumably caused by an automatic periodic reporting feature of
//!    the network, where disconnections at the radio level were not
//!    recorded correctly"* — a fraction of records get their duration
//!    rewritten to exactly 3600 s;
//! 2. *"some data loss during 3 days in the second half of the study
//!    period"* (Figure 2's dip) — on the loss days a share of records
//!    vanishes;
//! 3. *"some modems['] tendency to improperly disconnect"* — the reason
//!    the paper truncates per-cell connections at 600 s — a fraction of
//!    records become *sticky*: their recorded end is stretched far past
//!    the true disconnect.
//!
//! Beyond those three, any production collection plane also exhibits
//! faults the paper never had to name because its operators cleaned
//! them silently. This injector models them too, so the cleaning stages
//! can be tested against ground truth:
//!
//! * **duplicates** — the same CDR delivered twice (at-least-once
//!   delivery on the backhaul);
//! * **overlaps** — a ghost record for the same car and cell nested
//!   inside a real connection (a re-sent partial report);
//! * **clock skew** — some modems carry a wrong clock, producing
//!   records whose end precedes (or equals) their start;
//! * **wire damage** — byte-level corruption of the framed stream:
//!   flipped bytes inside a chunk, chunks delivered out of order, and a
//!   stream cut off mid-chunk. These act on the *encoded* v2 stream via
//!   [`FaultInjector::corrupt_stream`], not on records.
//!
//! Injection is deterministic in the seed and returns a [`FaultReport`]
//! of exactly what was done. The three legacy fault classes draw from
//! the same RNG stream as they always have, so enabling only them
//! reproduces historic dirty datasets bit for bit; each new class draws
//! from its own domain-separated stream.

use crate::io::{crc32, CHUNK_HEADER_LEN, CHUNK_MAGIC, RECORD_LEN, VERSION_V2};
use crate::record::{CdrDataset, CdrRecord};
use conncar_obs::CounterRegistry;
use conncar_types::{CarId, Duration, SeedSplitter, StudyPeriod, Timestamp};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Fault-injection parameters. Every knob defaults to "off" except the
/// three legacy classes the paper documents; a default config therefore
/// behaves exactly as it did before the taxonomy grew.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Fraction of records rewritten to exactly one hour.
    pub hour_glitch_p: f64,
    /// Study days that suffer partial data loss.
    pub loss_days: Vec<u64>,
    /// Fraction of records dropped on a loss day.
    pub loss_fraction: f64,
    /// Fraction of records whose end time goes sticky.
    pub sticky_p: f64,
    /// Mean extra seconds appended to a sticky record (exponential).
    pub sticky_mean_extra_secs: f64,
    /// Fraction of records delivered a second time.
    pub duplicate_p: f64,
    /// Fraction of records that spawn a ghost overlapping record for
    /// the same car and cell, nested strictly inside the original.
    pub overlap_p: f64,
    /// Fraction of modems (cars) whose clock is skewed.
    pub skew_car_p: f64,
    /// On a skewed modem, the fraction of records whose end lands at or
    /// before their start.
    pub skew_record_p: f64,
    /// Fraction of stream chunks whose records are delivered out of
    /// order (wire fault; valid CRC).
    pub reorder_chunk_p: f64,
    /// Fraction of stream chunks with flipped body bytes (wire fault;
    /// the stale CRC exposes them).
    pub corrupt_chunk_p: f64,
    /// Probability that the stream is cut off inside its final chunk
    /// (wire fault).
    pub truncate_tail_p: f64,
    /// Records per chunk when the dirty dataset rides the framed
    /// stream; small chunks shrink the blast radius of one bad chunk.
    pub chunk_records: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            hour_glitch_p: 0.004,
            // The paper saw loss on 3 days in the second half of its
            // 90-day window; these defaults assume ≥ 67 study days and
            // are clamped to the period at injection time.
            loss_days: vec![55, 56, 66],
            loss_fraction: 0.35,
            sticky_p: 0.07,
            sticky_mean_extra_secs: 3_200.0,
            duplicate_p: 0.0,
            overlap_p: 0.0,
            skew_car_p: 0.0,
            skew_record_p: 0.0,
            reorder_chunk_p: 0.0,
            corrupt_chunk_p: 0.0,
            truncate_tail_p: 0.0,
            chunk_records: 65_536,
        }
    }
}

impl FaultConfig {
    /// Whether any wire-level (stream) fault is enabled.
    pub fn has_wire_faults(&self) -> bool {
        self.reorder_chunk_p > 0.0 || self.corrupt_chunk_p > 0.0 || self.truncate_tail_p > 0.0
    }
}

/// What the injector actually did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Records rewritten to exactly one hour.
    pub hour_glitches: usize,
    /// Records dropped on loss days.
    pub lost: usize,
    /// Records stretched sticky.
    pub sticky: usize,
    /// Extra copies delivered (each counts one ghost record).
    pub duplicated: usize,
    /// Ghost overlapping records injected.
    pub overlaps: usize,
    /// Records given a non-positive duration by modem clock skew.
    pub skewed: usize,
    /// Stream chunks whose record order was scrambled.
    pub reordered_chunks: usize,
    /// Stream chunks with flipped body bytes (CRC left stale).
    pub corrupted_chunks: usize,
    /// Records inside corrupted chunks (what a checksumming reader is
    /// expected to lose).
    pub corrupted_records: usize,
    /// Bytes cut off the stream tail.
    pub truncated_bytes: u64,
    /// Records in the cut-off final chunk (what a framing reader is
    /// expected to lose to the truncation).
    pub truncated_records: usize,
}

impl FaultReport {
    /// Account the injected-damage tallies into a registry under the
    /// `fault.*` keys.
    pub fn record_counters(&self, reg: &mut CounterRegistry) {
        reg.add("fault.hour_glitches", self.hour_glitches as u64);
        reg.add("fault.lost", self.lost as u64);
        reg.add("fault.sticky", self.sticky as u64);
        reg.add("fault.duplicated", self.duplicated as u64);
        reg.add("fault.overlaps", self.overlaps as u64);
        reg.add("fault.skewed", self.skewed as u64);
        reg.add("fault.reordered_chunks", self.reordered_chunks as u64);
        reg.add("fault.corrupted_chunks", self.corrupted_chunks as u64);
        reg.add("fault.corrupted_records", self.corrupted_records as u64);
        reg.add("fault.truncated_bytes", self.truncated_bytes);
        reg.add("fault.truncated_records", self.truncated_records as u64);
    }
}

/// The fault schedule *as applied*: which records each class touched,
/// and every wire-level event in stream order.
///
/// [`FaultReport`] carries tallies; this carries identities, which is
/// what a replayable trace needs — "record 8 191 was dropped on a loss
/// day" rather than "212 records were dropped". Record indices refer to
/// the position of the record in the stream the pass iterated: the
/// canonical sorted truth for the loss/glitch/sticky pass, the dirty
/// stream (post-loss, pre-ghost) for the duplicate/overlap/skew passes.
/// Logging is observational only — recorded and unrecorded injection
/// draw identical RNG streams and produce byte-identical outputs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RealizedFaults {
    /// Truth indices of records dropped on loss days.
    pub lost: Vec<u64>,
    /// Truth indices of records rewritten to exactly one hour.
    pub glitched: Vec<u64>,
    /// Truth indices of records stretched sticky.
    pub sticky: Vec<u64>,
    /// Dirty-stream indices of records delivered a second time.
    pub duplicated: Vec<u64>,
    /// Dirty-stream indices of records that spawned overlap ghosts.
    pub overlapped: Vec<u64>,
    /// Dirty-stream indices of records given a skewed end time.
    pub skewed: Vec<u64>,
    /// Wire-level events applied to the encoded stream, in stream order.
    pub wire: Vec<WireEvent>,
}

/// One wire-level fault event as applied to an encoded v2 stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireEvent {
    /// Byte offset of the affected chunk's header in the stream.
    pub offset: u64,
    /// Records in the affected chunk.
    pub records: u64,
    /// What happened: `"corrupt"`, `"reorder"` or `"truncate"`.
    pub kind: String,
}

/// Deterministic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    seed: u64,
}

impl FaultInjector {
    /// Build an injector.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultInjector {
        FaultInjector { cfg, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Produce the dirty dataset the "collection pipeline" would have
    /// delivered, plus a report of the injected damage.
    ///
    /// The legacy fault classes (glitch, loss, sticky) consume the same
    /// RNG stream they always have; each newer class uses its own
    /// domain-separated stream, so a config with only the legacy knobs
    /// set reproduces historic outputs exactly.
    pub fn inject(&self, clean: &CdrDataset) -> (CdrDataset, FaultReport) {
        self.inject_impl(clean, None)
    }

    /// [`inject`](Self::inject), additionally logging the identity of
    /// every record each fault class touched into `realized`. The log
    /// is observational: both entry points draw the same RNG streams
    /// and return byte-identical datasets and reports.
    pub fn inject_logged(&self, clean: &CdrDataset) -> (CdrDataset, FaultReport, RealizedFaults) {
        let mut realized = RealizedFaults::default();
        let (dirty, report) = self.inject_impl(clean, Some(&mut realized));
        (dirty, report, realized)
    }

    fn inject_impl(
        &self,
        clean: &CdrDataset,
        mut log: Option<&mut RealizedFaults>,
    ) -> (CdrDataset, FaultReport) {
        let seeds = SeedSplitter::new(self.seed).child("faults");
        let mut rng = ChaCha8Rng::seed_from_u64(seeds.domain("stream"));
        let mut report = FaultReport::default();
        let period = clean.period();
        // Loss-day membership is tested once per record; a bitset makes
        // that O(1) instead of a scan of the configured day list.
        let loss_days = DayBitset::new(&self.cfg.loss_days, period.days() as u64);

        let mut dirty = Vec::with_capacity(clean.len());
        for (truth_idx, r) in clean.records().iter().enumerate() {
            // Day-loss first: a record that was never delivered can't
            // also glitch.
            if loss_days.contains(r.start.day()) && rng.gen_bool(self.cfg.loss_fraction) {
                report.lost += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.lost.push(truth_idx as u64);
                }
                continue;
            }
            let mut r = *r;
            if rng.gen_bool(self.cfg.hour_glitch_p) {
                r.end = r.start + Duration::from_hours(1);
                report.hour_glitches += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.glitched.push(truth_idx as u64);
                }
            } else if rng.gen_bool(self.cfg.sticky_p) {
                let extra = exponential(&mut rng, self.cfg.sticky_mean_extra_secs);
                // A sticky record never outlives the study window by
                // more than it must; the collection system closes the
                // books at period end.
                let stretched = r.end + Duration::from_secs(extra as u64);
                r.end = stretched.min(period.end());
                if r.end <= r.start {
                    r.end = r.start + Duration::from_secs(1);
                }
                report.sticky += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.sticky.push(truth_idx as u64);
                }
            }
            dirty.push(r);
        }

        if self.cfg.duplicate_p > 0.0 {
            let mut rng = ChaCha8Rng::seed_from_u64(seeds.domain("dup"));
            let mut ghosts = Vec::new();
            for (idx, r) in dirty.iter().enumerate() {
                if rng.gen_bool(self.cfg.duplicate_p) {
                    ghosts.push(*r);
                    report.duplicated += 1;
                    if let Some(log) = log.as_deref_mut() {
                        log.duplicated.push(idx as u64);
                    }
                }
            }
            dirty.extend(ghosts);
        }

        if self.cfg.overlap_p > 0.0 {
            let mut rng = ChaCha8Rng::seed_from_u64(seeds.domain("overlap"));
            let mut ghosts = Vec::new();
            for (idx, r) in dirty.iter().enumerate() {
                // A ghost needs room to nest strictly inside its host.
                let dur = r.duration().as_secs();
                if dur >= 3 && rng.gen_bool(self.cfg.overlap_p) {
                    let mut ghost = *r;
                    ghost.start = r.start + Duration::from_secs(dur / 3);
                    ghost.end = r.start + Duration::from_secs(2 * dur / 3);
                    ghosts.push(ghost);
                    report.overlaps += 1;
                    if let Some(log) = log.as_deref_mut() {
                        log.overlapped.push(idx as u64);
                    }
                }
            }
            dirty.extend(ghosts);
        }

        if self.cfg.skew_car_p > 0.0 && self.cfg.skew_record_p > 0.0 {
            let skew_seeds = seeds.child("skew");
            let mut rng = ChaCha8Rng::seed_from_u64(skew_seeds.domain("records"));
            for (idx, r) in dirty.iter_mut().enumerate() {
                if !self.modem_is_skewed(skew_seeds, r.car)
                    || !rng.gen_bool(self.cfg.skew_record_p)
                {
                    continue;
                }
                // A wrong modem clock stamps the disconnect at or
                // before the connect: the duration collapses to zero or
                // goes negative (clamped at the epoch).
                let back = rng.gen_range(0..=300u64);
                r.end = Timestamp::from_secs(r.start.as_secs().saturating_sub(back));
                report.skewed += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.skewed.push(idx as u64);
                }
            }
        }

        (clean.with_records(dirty), report)
    }

    /// Whether `car`'s modem carries a skewed clock — a property of the
    /// modem, so derived from the seed and the car alone.
    fn modem_is_skewed(&self, skew_seeds: SeedSplitter, car: CarId) -> bool {
        modem_is_skewed(skew_seeds, self.cfg.skew_car_p, car)
    }

    /// Apply the wire-level fault classes to an encoded v2 CDR stream:
    /// flip body bytes inside chunks (leaving the CRC stale), scramble
    /// record order within chunks (CRC recomputed — damage a checksum
    /// cannot catch), and cut the stream off inside its final chunk.
    ///
    /// Streams that are not v2 (no per-chunk framing to target) pass
    /// through untouched. Deterministic in the injector's seed.
    pub fn corrupt_stream(&self, stream: &[u8], report: &mut FaultReport) -> Vec<u8> {
        self.corrupt_stream_impl(stream, report, None)
    }

    /// [`corrupt_stream`](Self::corrupt_stream), additionally appending
    /// one [`WireEvent`] per applied wire fault to `realized.wire`, in
    /// stream order. Observational only: both entry points draw the
    /// same RNG stream and return byte-identical output.
    pub fn corrupt_stream_logged(
        &self,
        stream: &[u8],
        report: &mut FaultReport,
        realized: &mut RealizedFaults,
    ) -> Vec<u8> {
        self.corrupt_stream_impl(stream, report, Some(realized))
    }

    fn corrupt_stream_impl(
        &self,
        stream: &[u8],
        report: &mut FaultReport,
        mut log: Option<&mut RealizedFaults>,
    ) -> Vec<u8> {
        let mut out = stream.to_vec();
        if !self.cfg.has_wire_faults()
            || out.len() < 5
            || &out[..4] != b"CDRS"
            || out[4] != VERSION_V2
        {
            return out;
        }
        let seeds = SeedSplitter::new(self.seed).child("faults");
        let mut rng = ChaCha8Rng::seed_from_u64(seeds.domain("wire"));
        let mut pos = 5usize;
        // (chunk start, record count, left undamaged) of the last chunk,
        // for the truncation pass.
        let mut last_chunk: Option<(usize, usize, bool)> = None;
        while out.len() - pos >= CHUNK_HEADER_LEN && &out[pos..pos + 4] == CHUNK_MAGIC {
            let count =
                u32::from_le_bytes(out[pos + 4..pos + 8].try_into().expect("4 bytes")) as usize;
            let body_start = pos + CHUNK_HEADER_LEN;
            let body_len = count * RECORD_LEN;
            if out.len() - body_start < body_len {
                break; // not a stream we produced; leave the tail alone
            }
            let mut intact = true;
            if body_len > 0 && rng.gen_bool(self.cfg.corrupt_chunk_p) {
                let stored =
                    u32::from_le_bytes(out[pos + 8..pos + 12].try_into().expect("4 bytes"));
                let flips = rng.gen_range(1..=8usize);
                for _ in 0..flips {
                    let at = body_start + rng.gen_range(0..body_len);
                    out[at] ^= rng.gen_range(1..=255u8);
                }
                // Random flips can cancel each other out; a final
                // single-bit flip always moves the CRC off the stored
                // value.
                if crc32(&out[body_start..body_start + body_len]) == stored {
                    out[body_start] ^= 0x01;
                }
                report.corrupted_chunks += 1;
                report.corrupted_records += count;
                if let Some(log) = log.as_deref_mut() {
                    log.wire.push(WireEvent {
                        offset: pos as u64,
                        records: count as u64,
                        kind: "corrupt".into(),
                    });
                }
                intact = false;
            } else if count >= 2 && rng.gen_bool(self.cfg.reorder_chunk_p) {
                // Rotate the records within the chunk: genuinely
                // out-of-order delivery, but every byte accounted for —
                // so the CRC is recomputed to match.
                let rows = rng.gen_range(1..count);
                out[body_start..body_start + body_len].rotate_left(rows * RECORD_LEN);
                let crc = crc32(&out[body_start..body_start + body_len]).to_le_bytes();
                out[pos + 8..pos + 12].copy_from_slice(&crc);
                report.reordered_chunks += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.wire.push(WireEvent {
                        offset: pos as u64,
                        records: count as u64,
                        kind: "reorder".into(),
                    });
                }
            }
            last_chunk = Some((pos, count, intact));
            pos = body_start + body_len;
        }
        if self.cfg.truncate_tail_p > 0.0 {
            if let Some((start, count, intact)) = last_chunk {
                let body_len = count * RECORD_LEN;
                // Only cut a chunk the corruption pass left intact, so
                // each damaged chunk lands in exactly one fault class.
                if intact && body_len >= 2 && rng.gen_bool(self.cfg.truncate_tail_p) {
                    let cut = rng.gen_range(1..body_len);
                    out.truncate(start + CHUNK_HEADER_LEN + body_len - cut);
                    report.truncated_bytes += cut as u64;
                    report.truncated_records += count;
                    if let Some(log) = log.as_deref_mut() {
                        log.wire.push(WireEvent {
                            offset: start as u64,
                            records: count as u64,
                            kind: "truncate".into(),
                        });
                    }
                }
            }
        }
        out
    }
}

/// Whether a car's modem carries a skewed clock — a property of the
/// modem, so derived from the seed and the car alone (order-independent:
/// batch and streaming injection agree for every car).
fn modem_is_skewed(skew_seeds: SeedSplitter, skew_car_p: f64, car: CarId) -> bool {
    let v = skew_seeds.domain_indexed("modem", car.0 as u64);
    ((v >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)) < skew_car_p
}

/// Chunk-at-a-time fault injection for the out-of-core streaming build.
///
/// Feed the canonical ground truth through
/// [`FaultStream::inject_chunk`] as an ascending partition; every
/// record-level RNG stream is carried across calls, so the legacy
/// classes (glitch, loss, sticky) draw *exactly* the draws the batch
/// [`FaultInjector::inject`] would have drawn, for any chunking. With
/// `duplicate_p` and `overlap_p` at zero (every stock configuration,
/// clock skew may be on), concatenating the chunk outputs reproduces
/// the batch dirty stream byte for byte. With a ghost class enabled the
/// ghosts land at the end of their own chunk rather than the end of the
/// whole stream, so later ghost-pass draws align differently: the
/// result is still fully deterministic, just a different (equally
/// valid) realization of the same fault distribution.
///
/// Wire faults act on one whole encoded stream and cannot ride the
/// chunked path, so configs with them enabled are rejected up front
/// with a typed error instead of being silently skipped.
#[derive(Debug)]
pub struct FaultStream {
    cfg: FaultConfig,
    period: StudyPeriod,
    loss_days: DayBitset,
    stream_rng: ChaCha8Rng,
    dup_rng: ChaCha8Rng,
    overlap_rng: ChaCha8Rng,
    skew_rng: ChaCha8Rng,
    skew_seeds: SeedSplitter,
    report: FaultReport,
}

impl FaultStream {
    /// Open a streaming injector over a study period.
    ///
    /// Rejects configurations with wire faults enabled — they need the
    /// whole encoded stream in hand, which is exactly what the
    /// streaming build never has.
    pub fn new(cfg: FaultConfig, seed: u64, period: StudyPeriod) -> conncar_types::Result<FaultStream> {
        if cfg.has_wire_faults() {
            return Err(conncar_types::Error::InvalidConfig {
                what: "faults",
                why: "wire faults (reorder/corrupt/truncate) act on one whole encoded \
                      stream and cannot ride the chunked streaming build; use the batch \
                      pipeline for wire-fault studies"
                    .into(),
            });
        }
        let seeds = SeedSplitter::new(seed).child("faults");
        let loss_days = DayBitset::new(&cfg.loss_days, period.days() as u64);
        Ok(FaultStream {
            stream_rng: ChaCha8Rng::seed_from_u64(seeds.domain("stream")),
            dup_rng: ChaCha8Rng::seed_from_u64(seeds.domain("dup")),
            overlap_rng: ChaCha8Rng::seed_from_u64(seeds.domain("overlap")),
            skew_rng: ChaCha8Rng::seed_from_u64(seeds.child("skew").domain("records")),
            skew_seeds: seeds.child("skew"),
            period,
            loss_days,
            report: FaultReport::default(),
            cfg,
        })
    }

    /// Inject faults into the next chunk of the canonical truth stream.
    ///
    /// Records must arrive in the dataset's canonical order across
    /// calls (each call continues where the previous one stopped).
    /// Returns the chunk's dirty records: pass order within the chunk
    /// mirrors the batch injector (survivors first, then ghost
    /// classes), so a per-chunk canonical sort plus concatenation over
    /// car-aligned chunks yields a canonical dirty dataset.
    pub fn inject_chunk(&mut self, truth: &[CdrRecord]) -> Vec<CdrRecord> {
        let mut dirty = Vec::with_capacity(truth.len());
        for r in truth {
            // Day-loss first: a record that was never delivered can't
            // also glitch (same draw order as the batch injector).
            if self.loss_days.contains(r.start.day())
                && self.stream_rng.gen_bool(self.cfg.loss_fraction)
            {
                self.report.lost += 1;
                continue;
            }
            let mut r = *r;
            if self.stream_rng.gen_bool(self.cfg.hour_glitch_p) {
                r.end = r.start + Duration::from_hours(1);
                self.report.hour_glitches += 1;
            } else if self.stream_rng.gen_bool(self.cfg.sticky_p) {
                let extra = exponential(&mut self.stream_rng, self.cfg.sticky_mean_extra_secs);
                let stretched = r.end + Duration::from_secs(extra as u64);
                r.end = stretched.min(self.period.end());
                if r.end <= r.start {
                    r.end = r.start + Duration::from_secs(1);
                }
                self.report.sticky += 1;
            }
            dirty.push(r);
        }

        if self.cfg.duplicate_p > 0.0 {
            let mut ghosts = Vec::new();
            for r in &dirty {
                if self.dup_rng.gen_bool(self.cfg.duplicate_p) {
                    ghosts.push(*r);
                    self.report.duplicated += 1;
                }
            }
            dirty.extend(ghosts);
        }

        if self.cfg.overlap_p > 0.0 {
            let mut ghosts = Vec::new();
            for r in &dirty {
                let dur = r.duration().as_secs();
                if dur >= 3 && self.overlap_rng.gen_bool(self.cfg.overlap_p) {
                    let mut ghost = *r;
                    ghost.start = r.start + Duration::from_secs(dur / 3);
                    ghost.end = r.start + Duration::from_secs(2 * dur / 3);
                    ghosts.push(ghost);
                    self.report.overlaps += 1;
                }
            }
            dirty.extend(ghosts);
        }

        if self.cfg.skew_car_p > 0.0 && self.cfg.skew_record_p > 0.0 {
            for r in dirty.iter_mut() {
                if !modem_is_skewed(self.skew_seeds, self.cfg.skew_car_p, r.car)
                    || !self.skew_rng.gen_bool(self.cfg.skew_record_p)
                {
                    continue;
                }
                let back = self.skew_rng.gen_range(0..=300u64);
                r.end = Timestamp::from_secs(r.start.as_secs().saturating_sub(back));
                self.report.skewed += 1;
            }
        }

        dirty
    }

    /// The damage tallied so far, across every chunk injected.
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    /// Close the stream, yielding the final report.
    pub fn finish(self) -> FaultReport {
        self.report
    }
}

/// O(1) membership test over a small set of study-day indices.
#[derive(Debug)]
struct DayBitset {
    words: Vec<u64>,
}

impl DayBitset {
    /// Build from day indices, ignoring days at or past `days`.
    fn new(days_set: &[u64], days: u64) -> DayBitset {
        let mut words = vec![0u64; days.div_ceil(64) as usize];
        for d in days_set.iter().copied().filter(|d| *d < days) {
            words[(d / 64) as usize] |= 1 << (d % 64);
        }
        DayBitset { words }
    }

    fn contains(&self, day: u64) -> bool {
        self.words
            .get((day / 64) as usize)
            .is_some_and(|w| w >> (day % 64) & 1 == 1)
    }
}

/// Exponential variate with the given mean.
fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp};
    use crate::record::CdrRecord;

    fn dataset() -> CdrDataset {
        let period = StudyPeriod::new(DayOfWeek::Monday, 90).unwrap();
        let mut records = Vec::new();
        for car in 0..200u32 {
            for day in 0..90u64 {
                let start = Timestamp::from_day_hms(day, 8, 0, 0);
                records.push(CdrRecord {
                    car: CarId(car),
                    cell: CellId::new(BaseStationId(car % 37), 0, Carrier::C3),
                    start,
                    end: start + Duration::from_secs(120),
                });
            }
        }
        CdrDataset::new(period, records)
    }

    #[test]
    fn injection_is_deterministic() {
        let ds = dataset();
        let inj = FaultInjector::new(FaultConfig::default(), 7);
        let (a, ra) = inj.inject(&ds);
        let (b, rb) = inj.inject(&ds);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn loss_days_lose_records() {
        let ds = dataset();
        let inj = FaultInjector::new(FaultConfig::default(), 7);
        let (dirty, report) = inj.inject(&ds);
        assert!(report.lost > 0);
        // 200 cars × 3 loss days × 35% ≈ 210 records gone.
        let expected = 200.0 * 3.0 * 0.35;
        assert!((report.lost as f64 - expected).abs() < expected * 0.35);
        let count_day = |ds: &CdrDataset, d: u64| {
            ds.records().iter().filter(|r| r.start.day() == d).count()
        };
        assert!(count_day(&dirty, 55) < count_day(&dirty, 54));
    }

    #[test]
    fn hour_glitches_last_exactly_one_hour() {
        let ds = dataset();
        let inj = FaultInjector::new(FaultConfig::default(), 7);
        let (dirty, report) = inj.inject(&ds);
        let exact_hours = dirty
            .records()
            .iter()
            .filter(|r| r.duration().as_secs() == 3_600)
            .count();
        assert_eq!(exact_hours, report.hour_glitches);
        assert!(report.hour_glitches > 10);
    }

    #[test]
    fn sticky_records_get_longer_but_stay_in_period() {
        let ds = dataset();
        let cfg = FaultConfig {
            sticky_p: 0.5,
            hour_glitch_p: 0.0,
            loss_fraction: 0.0,
            ..Default::default()
        };
        let inj = FaultInjector::new(cfg, 7);
        let (dirty, report) = inj.inject(&ds);
        assert!(report.sticky > ds.len() / 3);
        let end = ds.period().end();
        let mut longer = 0;
        for r in dirty.records() {
            assert!(r.end <= end);
            assert!(r.is_valid());
            if r.duration().as_secs() > 120 {
                longer += 1;
            }
        }
        assert!(longer >= report.sticky / 2);
    }

    #[test]
    fn zero_config_is_identity() {
        let ds = dataset();
        let cfg = FaultConfig {
            hour_glitch_p: 0.0,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            sticky_mean_extra_secs: 0.0,
            ..FaultConfig::default()
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert_eq!(dirty, ds);
        assert_eq!(report, FaultReport::default());
    }

    /// Count how often each record value occurs.
    fn multiset(ds: &CdrDataset) -> std::collections::HashMap<(u32, u64, u64), usize> {
        let mut m = std::collections::HashMap::new();
        for r in ds.records() {
            *m.entry((r.car.0, r.start.as_secs(), r.end.as_secs()))
                .or_insert(0) += 1;
        }
        m
    }

    #[test]
    fn new_classes_leave_the_legacy_stream_untouched() {
        // Turning on the additive classes must not change which records
        // the legacy pass glitched, lost or stretched — they draw from
        // separate RNG streams.
        let ds = dataset();
        let legacy = FaultConfig::default();
        let extended = FaultConfig {
            duplicate_p: 0.05,
            overlap_p: 0.03,
            ..legacy.clone()
        };
        let (base, base_report) = FaultInjector::new(legacy, 7).inject(&ds);
        let (ext, ext_report) = FaultInjector::new(extended, 7).inject(&ds);
        assert_eq!(base_report.hour_glitches, ext_report.hour_glitches);
        assert_eq!(base_report.lost, ext_report.lost);
        assert_eq!(base_report.sticky, ext_report.sticky);
        assert_eq!(
            ext.len(),
            base.len() + ext_report.duplicated + ext_report.overlaps
        );
        // Every legacy record is still present in the extended output.
        let ext_counts = multiset(&ext);
        for (k, n) in multiset(&base) {
            assert!(ext_counts.get(&k).copied().unwrap_or(0) >= n);
        }
    }

    #[test]
    fn duplicates_are_exact_copies() {
        let ds = dataset();
        let cfg = FaultConfig {
            hour_glitch_p: 0.0,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            duplicate_p: 0.1,
            ..FaultConfig::default()
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert!(report.duplicated > ds.len() / 20);
        assert_eq!(dirty.len(), ds.len() + report.duplicated);
        // Each extra copy duplicates a record that exists in the truth.
        let truth_counts = multiset(&ds);
        let mut extra = 0;
        for (k, n) in multiset(&dirty) {
            let base = truth_counts.get(&k).copied().unwrap_or(0);
            assert!(base > 0, "duplicate of a record not in the truth");
            extra += n - base;
        }
        assert_eq!(extra, report.duplicated);
    }

    #[test]
    fn overlaps_nest_strictly_inside_their_hosts() {
        let ds = dataset();
        let cfg = FaultConfig {
            hour_glitch_p: 0.0,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            overlap_p: 0.2,
            ..FaultConfig::default()
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert!(report.overlaps > ds.len() / 10);
        assert_eq!(dirty.len(), ds.len() + report.overlaps);
        let truth_counts = multiset(&ds);
        let mut ghosts = 0;
        for g in dirty.records() {
            if truth_counts.contains_key(&(g.car.0, g.start.as_secs(), g.end.as_secs())) {
                continue;
            }
            ghosts += 1;
            assert!(g.is_valid());
            // Its host is present: same car and cell, strictly around it.
            assert!(
                dirty.records().iter().any(|h| h.car == g.car
                    && h.cell == g.cell
                    && h.start < g.start
                    && g.end < h.end),
                "ghost {g:?} has no host"
            );
        }
        assert_eq!(ghosts, report.overlaps);
    }

    #[test]
    fn skewed_records_have_nonpositive_durations() {
        let ds = dataset();
        let cfg = FaultConfig {
            hour_glitch_p: 0.0,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            skew_car_p: 0.3,
            skew_record_p: 0.5,
            ..FaultConfig::default()
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert!(report.skewed > 0);
        let invalid = dirty.records().iter().filter(|r| !r.is_valid()).count();
        assert_eq!(invalid, report.skewed);
        // Skew is a per-modem property: the damage clusters on a subset
        // of cars rather than spreading uniformly.
        let skewed_cars: std::collections::HashSet<u32> = dirty
            .records()
            .iter()
            .filter(|r| !r.is_valid())
            .map(|r| r.car.0)
            .collect();
        assert!(skewed_cars.len() < 150, "{} cars skewed", skewed_cars.len());
    }

    #[test]
    fn wire_faults_are_deterministic_and_fully_accounted() {
        use crate::io::{salvage, CdrWriter};
        let ds = dataset();
        let cfg = FaultConfig {
            corrupt_chunk_p: 0.2,
            reorder_chunk_p: 0.2,
            truncate_tail_p: 1.0,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, 11);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(500);
        w.write_all(ds.records()).unwrap();
        let (stream, written) = w.finish().unwrap();

        let mut ra = FaultReport::default();
        let a = inj.corrupt_stream(&stream, &mut ra);
        let mut rb = FaultReport::default();
        let b = inj.corrupt_stream(&stream, &mut rb);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert!(ra.corrupted_chunks > 0);
        assert!(ra.reordered_chunks > 0);
        // Truncation fires unless the corruption pass already claimed
        // the final chunk.
        assert!(ra.truncated_bytes > 0 || ra.corrupted_chunks > 0);

        let (records, ingest) = salvage(&a);
        assert_eq!(ingest.records_accounted(), written);
        assert_eq!(records.len() as u64, ingest.records_yielded);
        assert_eq!(ingest.records_lost_corrupt, ra.corrupted_records as u64);
        assert_eq!(ingest.records_lost_truncated, ra.truncated_records as u64);
        assert_eq!(ingest.chunks_skipped, ra.corrupted_chunks);
        // Reordered chunks pass the CRC (it was recomputed) but deliver
        // their records out of order — invisible to framing, caught by
        // the dataset's canonical re-sort downstream.
        assert_eq!(ingest.records_invalid, 0);
    }

    #[test]
    fn corrupt_stream_leaves_v1_streams_alone() {
        use crate::io::CdrWriter;
        let ds = dataset();
        let cfg = FaultConfig {
            corrupt_chunk_p: 1.0,
            truncate_tail_p: 1.0,
            ..FaultConfig::default()
        };
        let mut w = CdrWriter::new(Vec::new()).with_legacy_v1();
        w.write_all(ds.records()).unwrap();
        let (stream, _) = w.finish().unwrap();
        let mut report = FaultReport::default();
        let out = FaultInjector::new(cfg, 11).corrupt_stream(&stream, &mut report);
        assert_eq!(out, stream);
        assert_eq!(report, FaultReport::default());
    }

    #[test]
    fn day_bitset_matches_linear_scan() {
        let days = vec![0, 3, 63, 64, 89];
        let set = DayBitset::new(&days, 90);
        for d in 0..200u64 {
            assert_eq!(set.contains(d), days.contains(&d) && d < 90, "day {d}");
        }
        // Out-of-period configured days are dropped.
        let set = DayBitset::new(&[5, 95], 7);
        assert!(set.contains(5));
        assert!(!set.contains(95));
    }

    #[test]
    fn loss_days_outside_period_ignored() {
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
        let ds = CdrDataset::new(
            period,
            vec![CdrRecord {
                car: CarId(1),
                cell: CellId::new(BaseStationId(1), 0, Carrier::C1),
                start: Timestamp::from_secs(100),
                end: Timestamp::from_secs(200),
            }],
        );
        // Default loss days (55, 56, 66) are all outside a 7-day period.
        let cfg = FaultConfig {
            loss_fraction: 1.0,
            hour_glitch_p: 0.0,
            sticky_p: 0.0,
            ..Default::default()
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert_eq!(report.lost, 0);
        assert_eq!(dirty.len(), 1);
    }

    #[test]
    fn streamed_legacy_classes_match_batch_for_any_chunking() {
        let ds = dataset();
        let cfg = FaultConfig::default();
        let (batch, batch_report) = FaultInjector::new(cfg.clone(), 7).inject(&ds);
        for chunk in [1usize, 97, 5_000, ds.len()] {
            let mut fs = FaultStream::new(cfg.clone(), 7, ds.period()).unwrap();
            let mut dirty = Vec::new();
            for c in ds.records().chunks(chunk) {
                dirty.extend(fs.inject_chunk(c));
            }
            assert_eq!(dirty.as_slice(), batch.records(), "chunk {chunk}");
            assert_eq!(fs.finish(), batch_report, "chunk {chunk}");
        }
    }

    #[test]
    fn streamed_skew_matches_batch_when_ghost_classes_are_off() {
        let ds = dataset();
        let cfg = FaultConfig {
            skew_car_p: 0.3,
            skew_record_p: 0.5,
            ..FaultConfig::default()
        };
        let (batch, batch_report) = FaultInjector::new(cfg.clone(), 7).inject(&ds);
        let mut fs = FaultStream::new(cfg, 7, ds.period()).unwrap();
        let mut dirty = Vec::new();
        for c in ds.records().chunks(777) {
            dirty.extend(fs.inject_chunk(c));
        }
        assert!(batch_report.skewed > 0);
        assert_eq!(dirty.as_slice(), batch.records());
        assert_eq!(fs.finish(), batch_report);
    }

    #[test]
    fn streamed_ghost_classes_are_deterministic_and_accounted() {
        let ds = dataset();
        let cfg = FaultConfig {
            duplicate_p: 0.05,
            overlap_p: 0.03,
            skew_car_p: 0.3,
            skew_record_p: 0.5,
            ..FaultConfig::default()
        };
        let run = || {
            let mut fs = FaultStream::new(cfg.clone(), 7, ds.period()).unwrap();
            let mut dirty = Vec::new();
            for c in ds.records().chunks(997) {
                dirty.extend(fs.inject_chunk(c));
            }
            (dirty, fs.finish())
        };
        let (a, ra) = run();
        let (b, rb) = run();
        assert_eq!(a, b);
        assert_eq!(ra, rb);
        assert!(ra.duplicated > 0 && ra.overlaps > 0 && ra.skewed > 0);
        // Every survivor plus every ghost is delivered.
        assert_eq!(a.len(), ds.len() - ra.lost + ra.duplicated + ra.overlaps);
    }

    #[test]
    fn streamed_injection_rejects_wire_faults() {
        let cfg = FaultConfig {
            truncate_tail_p: 0.5,
            ..FaultConfig::default()
        };
        let err = FaultStream::new(cfg, 7, StudyPeriod::PAPER).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("wire faults"), "{msg}");
        assert!(
            matches!(err, conncar_types::Error::InvalidConfig { what: "faults", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn logged_injection_is_observationally_identical() {
        let ds = dataset();
        let cfg = FaultConfig {
            duplicate_p: 0.05,
            overlap_p: 0.03,
            skew_car_p: 0.3,
            skew_record_p: 0.5,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, 7);
        let (plain, plain_report) = inj.inject(&ds);
        let (logged, logged_report, realized) = inj.inject_logged(&ds);
        // Logging must not perturb the RNG streams or the output.
        assert_eq!(plain, logged);
        assert_eq!(plain_report, logged_report);
        // Identities agree with tallies, class by class.
        assert_eq!(realized.lost.len(), logged_report.lost);
        assert_eq!(realized.glitched.len(), logged_report.hour_glitches);
        assert_eq!(realized.sticky.len(), logged_report.sticky);
        assert_eq!(realized.duplicated.len(), logged_report.duplicated);
        assert_eq!(realized.overlapped.len(), logged_report.overlaps);
        assert_eq!(realized.skewed.len(), logged_report.skewed);
        // Truth indices are in-range and strictly increasing (each pass
        // walks its stream front to back).
        for idxs in [&realized.lost, &realized.glitched, &realized.sticky] {
            assert!(idxs.windows(2).all(|w| w[0] < w[1]));
            assert!(idxs.iter().all(|&i| (i as usize) < ds.len()));
        }
    }

    #[test]
    fn logged_wire_faults_are_observationally_identical() {
        use crate::io::CdrWriter;
        let ds = dataset();
        let cfg = FaultConfig {
            corrupt_chunk_p: 0.2,
            reorder_chunk_p: 0.2,
            truncate_tail_p: 1.0,
            ..FaultConfig::default()
        };
        let inj = FaultInjector::new(cfg, 11);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(500);
        w.write_all(ds.records()).unwrap();
        let (stream, _) = w.finish().unwrap();

        let mut plain_report = FaultReport::default();
        let plain = inj.corrupt_stream(&stream, &mut plain_report);
        let mut logged_report = FaultReport::default();
        let mut realized = RealizedFaults::default();
        let logged = inj.corrupt_stream_logged(&stream, &mut logged_report, &mut realized);
        assert_eq!(plain, logged);
        assert_eq!(plain_report, logged_report);
        // One event per applied fault, in stream order.
        let count = |k: &str| realized.wire.iter().filter(|e| e.kind == k).count();
        assert_eq!(count("corrupt"), logged_report.corrupted_chunks);
        assert_eq!(count("reorder"), logged_report.reordered_chunks);
        assert_eq!(
            count("truncate"),
            usize::from(logged_report.truncated_bytes > 0)
        );
        assert!(realized
            .wire
            .iter()
            .take_while(|e| e.kind != "truncate")
            .collect::<Vec<_>>()
            .windows(2)
            .all(|w| w[0].offset < w[1].offset));
    }
}

//! Injection of the measurement artifacts the paper pre-processes away.
//!
//! §3 names three kinds of dirt in the production feed:
//!
//! 1. *"connections \[that\] appear to have lasted exactly 1 hour …
//!    presumably caused by an automatic periodic reporting feature of
//!    the network, where disconnections at the radio level were not
//!    recorded correctly"* — a fraction of records get their duration
//!    rewritten to exactly 3600 s;
//! 2. *"some data loss during 3 days in the second half of the study
//!    period"* (Figure 2's dip) — on the loss days a share of records
//!    vanishes;
//! 3. *"some modems['] tendency to improperly disconnect"* — the reason
//!    the paper truncates per-cell connections at 600 s — a fraction of
//!    records become *sticky*: their recorded end is stretched far past
//!    the true disconnect.
//!
//! Injection is deterministic in the seed and returns a [`FaultReport`]
//! of exactly what was done, so cleaning can be tested against ground
//! truth.

use crate::record::CdrDataset;
use conncar_types::{Duration, SeedSplitter};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Fault-injection parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Fraction of records rewritten to exactly one hour.
    pub hour_glitch_p: f64,
    /// Study days that suffer partial data loss.
    pub loss_days: Vec<u64>,
    /// Fraction of records dropped on a loss day.
    pub loss_fraction: f64,
    /// Fraction of records whose end time goes sticky.
    pub sticky_p: f64,
    /// Mean extra seconds appended to a sticky record (exponential).
    pub sticky_mean_extra_secs: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            hour_glitch_p: 0.004,
            // The paper saw loss on 3 days in the second half of its
            // 90-day window; these defaults assume ≥ 67 study days and
            // are clamped to the period at injection time.
            loss_days: vec![55, 56, 66],
            loss_fraction: 0.35,
            sticky_p: 0.07,
            sticky_mean_extra_secs: 3_200.0,
        }
    }
}

/// What the injector actually did.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Records rewritten to exactly one hour.
    pub hour_glitches: usize,
    /// Records dropped on loss days.
    pub lost: usize,
    /// Records stretched sticky.
    pub sticky: usize,
}

/// Deterministic fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    seed: u64,
}

impl FaultInjector {
    /// Build an injector.
    pub fn new(cfg: FaultConfig, seed: u64) -> FaultInjector {
        FaultInjector { cfg, seed }
    }

    /// The configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Produce the dirty dataset the "collection pipeline" would have
    /// delivered, plus a report of the injected damage.
    pub fn inject(&self, clean: &CdrDataset) -> (CdrDataset, FaultReport) {
        let seeds = SeedSplitter::new(self.seed).child("faults");
        let mut rng = ChaCha8Rng::seed_from_u64(seeds.domain("stream"));
        let mut report = FaultReport::default();
        let period = clean.period();
        let loss_days: Vec<u64> = self
            .cfg
            .loss_days
            .iter()
            .copied()
            .filter(|d| *d < period.days() as u64)
            .collect();

        let mut dirty = Vec::with_capacity(clean.len());
        for r in clean.records() {
            // Day-loss first: a record that was never delivered can't
            // also glitch.
            if loss_days.contains(&r.start.day()) && rng.gen_bool(self.cfg.loss_fraction) {
                report.lost += 1;
                continue;
            }
            let mut r = *r;
            if rng.gen_bool(self.cfg.hour_glitch_p) {
                r.end = r.start + Duration::from_hours(1);
                report.hour_glitches += 1;
            } else if rng.gen_bool(self.cfg.sticky_p) {
                let extra = exponential(&mut rng, self.cfg.sticky_mean_extra_secs);
                // A sticky record never outlives the study window by
                // more than it must; the collection system closes the
                // books at period end.
                let stretched = r.end + Duration::from_secs(extra as u64);
                r.end = stretched.min(period.end());
                if r.end <= r.start {
                    r.end = r.start + Duration::from_secs(1);
                }
                report.sticky += 1;
            }
            dirty.push(r);
        }
        (clean.with_records(dirty), report)
    }
}

/// Exponential variate with the given mean.
fn exponential(rng: &mut impl Rng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp};
    use crate::record::CdrRecord;

    fn dataset() -> CdrDataset {
        let period = StudyPeriod::new(DayOfWeek::Monday, 90).unwrap();
        let mut records = Vec::new();
        for car in 0..200u32 {
            for day in 0..90u64 {
                let start = Timestamp::from_day_hms(day, 8, 0, 0);
                records.push(CdrRecord {
                    car: CarId(car),
                    cell: CellId::new(BaseStationId(car % 37), 0, Carrier::C3),
                    start,
                    end: start + Duration::from_secs(120),
                });
            }
        }
        CdrDataset::new(period, records)
    }

    #[test]
    fn injection_is_deterministic() {
        let ds = dataset();
        let inj = FaultInjector::new(FaultConfig::default(), 7);
        let (a, ra) = inj.inject(&ds);
        let (b, rb) = inj.inject(&ds);
        assert_eq!(a, b);
        assert_eq!(ra, rb);
    }

    #[test]
    fn loss_days_lose_records() {
        let ds = dataset();
        let inj = FaultInjector::new(FaultConfig::default(), 7);
        let (dirty, report) = inj.inject(&ds);
        assert!(report.lost > 0);
        // 200 cars × 3 loss days × 35% ≈ 210 records gone.
        let expected = 200.0 * 3.0 * 0.35;
        assert!((report.lost as f64 - expected).abs() < expected * 0.35);
        let count_day = |ds: &CdrDataset, d: u64| {
            ds.records().iter().filter(|r| r.start.day() == d).count()
        };
        assert!(count_day(&dirty, 55) < count_day(&dirty, 54));
    }

    #[test]
    fn hour_glitches_last_exactly_one_hour() {
        let ds = dataset();
        let inj = FaultInjector::new(FaultConfig::default(), 7);
        let (dirty, report) = inj.inject(&ds);
        let exact_hours = dirty
            .records()
            .iter()
            .filter(|r| r.duration().as_secs() == 3_600)
            .count();
        assert_eq!(exact_hours, report.hour_glitches);
        assert!(report.hour_glitches > 10);
    }

    #[test]
    fn sticky_records_get_longer_but_stay_in_period() {
        let ds = dataset();
        let cfg = FaultConfig {
            sticky_p: 0.5,
            hour_glitch_p: 0.0,
            loss_fraction: 0.0,
            ..Default::default()
        };
        let inj = FaultInjector::new(cfg, 7);
        let (dirty, report) = inj.inject(&ds);
        assert!(report.sticky > ds.len() / 3);
        let end = ds.period().end();
        let mut longer = 0;
        for r in dirty.records() {
            assert!(r.end <= end);
            assert!(r.is_valid());
            if r.duration().as_secs() > 120 {
                longer += 1;
            }
        }
        assert!(longer >= report.sticky / 2);
    }

    #[test]
    fn zero_config_is_identity() {
        let ds = dataset();
        let cfg = FaultConfig {
            hour_glitch_p: 0.0,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            sticky_mean_extra_secs: 0.0,
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert_eq!(dirty, ds);
        assert_eq!(report, FaultReport::default());
    }

    #[test]
    fn loss_days_outside_period_ignored() {
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
        let ds = CdrDataset::new(
            period,
            vec![CdrRecord {
                car: CarId(1),
                cell: CellId::new(BaseStationId(1), 0, Carrier::C1),
                start: Timestamp::from_secs(100),
                end: Timestamp::from_secs(200),
            }],
        );
        // Default loss days (55, 56, 66) are all outside a 7-day period.
        let cfg = FaultConfig {
            loss_fraction: 1.0,
            hour_glitch_p: 0.0,
            sticky_p: 0.0,
            ..Default::default()
        };
        let (dirty, report) = FaultInjector::new(cfg, 7).inject(&ds);
        assert_eq!(report.lost, 0);
        assert_eq!(dirty.len(), 1);
    }
}

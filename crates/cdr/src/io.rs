//! Streaming CDR I/O over `std::io` readers and writers.
//!
//! The in-memory codecs in [`crate::codec`] are fine for test-sized
//! traces; a 90-day million-car study is tens of gigabytes, which must
//! stream. This module frames the binary format into chunks so a reader
//! can process a trace of any size with bounded memory, and tolerates
//! (reports, does not panic on) damaged input — collection pipelines
//! get cut off mid-write, ship through flaky links, and land with
//! flipped bits all the time.
//!
//! Two stream versions exist:
//!
//! ```text
//! file      := header chunk*
//! header    := "CDRS" u8 version
//! v1 chunk  := u32 record_count | record_count × record        (26 B each)
//! v2 chunk  := "CHNK" u32 record_count u32 crc32(body) | body
//! ```
//!
//! v2 (the default on write) adds a per-chunk magic and CRC-32 so a
//! reader can *detect* byte-level corruption, *skip* the damaged chunk,
//! and *resynchronize* on the next chunk boundary instead of delivering
//! garbage records downstream. v1 streams remain fully readable.
//!
//! Two reading disciplines are offered:
//!
//! * [`CdrReader::read_chunk`] / [`CdrReader::read_to_end`] — strict:
//!   the first integrity problem is an error. For archival data that is
//!   supposed to be pristine.
//! * [`CdrReader::read_to_end_tolerant`] — the ingest path: damage is
//!   skipped and accounted in an [`IngestReport`], never an error and
//!   never a panic, whatever the input bytes.

use crate::codec::BinaryCodec;
use crate::record::CdrRecord;
use bytes::Bytes;
use conncar_obs::CounterRegistry;
use conncar_types::{
    BaseStationId, CarId, Carrier, CellId, Error, Result, Timestamp,
};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

const STREAM_MAGIC: &[u8; 4] = b"CDRS";
/// Original unframed chunk format.
pub(crate) const VERSION_V1: u8 = 1;
/// CRC-framed chunk format (current default).
pub(crate) const VERSION_V2: u8 = 2;
/// Per-chunk magic in v2 streams; what the tolerant reader hunts for
/// when resynchronizing.
pub(crate) const CHUNK_MAGIC: &[u8; 4] = b"CHNK";
/// Bytes in the v2 chunk header: magic + count + crc.
pub(crate) const CHUNK_HEADER_LEN: usize = 12;
/// Serialized record size (mirrors the codec's layout).
pub(crate) const RECORD_LEN: usize = 26;
/// Records per chunk: ~64 k records ≈ 1.7 MB buffered.
const DEFAULT_CHUNK: usize = 65_536;
/// A chunk header claiming more records than this is treated as garbage
/// rather than an instruction to allocate gigabytes.
const MAX_CHUNK_RECORDS: usize = 1 << 22;

/// CRC-32 (IEEE 802.3, reflected) over a byte slice.
///
/// Public because the trace format (`conncar-replay`) checksums its
/// artifacts with the same polynomial the stream chunks use — one CRC
/// implementation, one set of test vectors.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize]; // lint:allow(L7): index is masked to 0xFF against a 256-entry table
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc; // lint:allow(L7): const-fn loop bound i < 256 matches the table length
        i += 1;
    }
    table
}

/// Writes a CDR stream chunk by chunk.
pub struct CdrWriter<W: Write> {
    inner: W,
    buffer: Vec<CdrRecord>,
    chunk_records: usize,
    records_written: u64,
    header_written: bool,
    version: u8,
}

impl<W: Write> CdrWriter<W> {
    /// Wrap a writer with the default chunk size, emitting the current
    /// (CRC-framed, v2) stream format.
    pub fn new(inner: W) -> CdrWriter<W> {
        CdrWriter {
            inner,
            buffer: Vec::with_capacity(DEFAULT_CHUNK),
            chunk_records: DEFAULT_CHUNK,
            records_written: 0,
            header_written: false,
            version: VERSION_V2,
        }
    }

    /// Emit the legacy v1 format (no per-chunk CRC) for consumers that
    /// predate framing.
    pub fn with_legacy_v1(mut self) -> CdrWriter<W> {
        self.version = VERSION_V1;
        self
    }

    /// Override the chunk size (testing / memory tuning). Must be ≥ 1.
    pub fn with_chunk_records(mut self, n: usize) -> CdrWriter<W> {
        self.chunk_records = n.max(1);
        self
    }

    /// Queue one record; flushes a chunk when the buffer fills.
    pub fn write_record(&mut self, record: CdrRecord) -> Result<()> {
        self.buffer.push(record);
        if self.buffer.len() >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Queue many records.
    pub fn write_all(&mut self, records: &[CdrRecord]) -> Result<()> {
        for r in records {
            self.write_record(*r)?;
        }
        Ok(())
    }

    /// Flush remaining records and return the inner writer plus the
    /// total record count. An untouched writer still emits a valid
    /// header-only stream.
    pub fn finish(mut self) -> Result<(W, u64)> {
        self.flush_chunk()?;
        self.inner.flush()?;
        Ok((self.inner, self.records_written))
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if !self.header_written {
            self.inner.write_all(STREAM_MAGIC)?;
            self.inner.write_all(&[self.version])?;
            self.header_written = true;
        }
        if self.buffer.is_empty() {
            return Ok(());
        }
        // Reuse the in-memory codec for the chunk body; strip its own
        // 6-byte header (the stream header replaces it).
        let encoded: Bytes = BinaryCodec::encode(&self.buffer);
        let body = encoded.get(6..).unwrap_or_default();
        if self.version == VERSION_V2 {
            self.inner.write_all(CHUNK_MAGIC)?;
            self.inner
                .write_all(&(self.buffer.len() as u32).to_le_bytes())?;
            self.inner.write_all(&crc32(body).to_le_bytes())?;
        } else {
            self.inner
                .write_all(&(self.buffer.len() as u32).to_le_bytes())?;
        }
        self.inner.write_all(body)?;
        self.records_written += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }
}

/// What the tolerant ingest path salvaged from a stream, and what it
/// had to give up on.
///
/// Totals are designed to reconcile: every record that entered a chunk
/// header's count lands in exactly one of `records_yielded`,
/// `records_lost_corrupt`, `records_lost_truncated`, or
/// `records_invalid` (see [`IngestReport::records_accounted`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestReport {
    /// Stream version from the header; 0 if the stream was empty or the
    /// header itself was unreadable.
    pub version: u8,
    /// Chunks that passed their integrity check and decoded.
    pub chunks_ok: usize,
    /// Chunks dropped for a CRC mismatch.
    pub chunks_skipped: usize,
    /// Records delivered downstream.
    pub records_yielded: u64,
    /// Records inside CRC-failed chunks.
    pub records_lost_corrupt: u64,
    /// Records announced by a final chunk the stream ends mid-way
    /// through.
    pub records_lost_truncated: u64,
    /// Records whose bytes frame-checked but do not parse (e.g. an
    /// out-of-range carrier index).
    pub records_invalid: u64,
    /// Bytes discarded while hunting for the next chunk boundary.
    pub bytes_skipped: u64,
    /// Times the reader lost framing and had to scan for [`CHUNK_MAGIC`].
    pub resync_scans: usize,
    /// Whether the stream ended mid-chunk.
    pub truncated_tail: bool,
}

impl IngestReport {
    /// Every record the stream's surviving chunk headers announced:
    /// yielded + lost to corruption + lost to truncation + unparseable.
    pub fn records_accounted(&self) -> u64 {
        self.records_yielded
            + self.records_lost_corrupt
            + self.records_lost_truncated
            + self.records_invalid
    }

    /// True when nothing at all had to be skipped or given up on.
    pub fn is_pristine(&self) -> bool {
        self.chunks_skipped == 0
            && self.bytes_skipped == 0
            && self.records_invalid == 0
            && !self.truncated_tail
            && self.resync_scans == 0
    }

    /// Account the salvage outcome into a registry under the `ingest.*`
    /// keys (`ingest.chunks_skipped` is the frames-failed-CRC count).
    pub fn record_counters(&self, reg: &mut CounterRegistry) {
        reg.add("ingest.chunks_ok", self.chunks_ok as u64);
        reg.add("ingest.chunks_skipped", self.chunks_skipped as u64);
        reg.add("ingest.records_yielded", self.records_yielded);
        reg.add("ingest.records_lost_corrupt", self.records_lost_corrupt);
        reg.add("ingest.records_lost_truncated", self.records_lost_truncated);
        reg.add("ingest.records_invalid", self.records_invalid);
        reg.add("ingest.bytes_skipped", self.bytes_skipped);
        reg.add("ingest.resync_scans", self.resync_scans as u64);
    }
}

/// One chunk's fate during a tolerant salvage pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkVerdict {
    /// Byte offset of the chunk (its header) in the stream.
    pub offset: u64,
    /// Records the chunk's header announced.
    pub records: u64,
    /// What happened: `"ok"`, `"skipped_crc"`, `"skipped_bad_count"`,
    /// or `"truncated_tail"`.
    pub verdict: String,
}

/// Per-chunk salvage outcomes, in stream order — the frame-level
/// companion to [`IngestReport`]'s totals, and what a replayable trace
/// records so a divergence can name the exact frame that salvaged
/// differently.
///
/// Logging is observational only: [`salvage_logged`] and [`salvage`]
/// return byte-identical records and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SalvageLog {
    /// One verdict per chunk the pass framed, in stream order.
    pub chunks: Vec<ChunkVerdict>,
}

impl SalvageLog {
    fn push(&mut self, offset: usize, records: usize, verdict: &str) {
        self.chunks.push(ChunkVerdict {
            offset: offset as u64,
            records: records as u64,
            verdict: verdict.into(),
        });
    }

    /// Verdict counts as `(ok, skipped, truncated)`.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut ok = 0;
        let mut skipped = 0;
        let mut truncated = 0;
        for c in &self.chunks {
            match c.verdict.as_str() {
                "ok" => ok += 1,
                "truncated_tail" => truncated += 1,
                _ => skipped += 1,
            }
        }
        (ok, skipped, truncated)
    }
}

/// Reads a CDR stream chunk by chunk.
pub struct CdrReader<R: Read> {
    inner: R,
    header_read: bool,
    version: u8,
    /// Byte offset of the next unread position (for error reporting).
    offset: u64,
    /// Records decoded so far.
    records_read: u64,
}

impl<R: Read> CdrReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> CdrReader<R> {
        CdrReader {
            inner,
            header_read: false,
            version: 0,
            offset: 0,
            records_read: 0,
        }
    }

    /// Total records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Stream version, once the header has been read (0 before).
    pub fn version(&self) -> u8 {
        self.version
    }

    fn read_header(&mut self) -> Result<bool> {
        let mut header = [0u8; 5];
        match read_exact_or_eof(&mut self.inner, &mut header)? {
            0 => return Ok(false), // empty stream = empty trace
            5 => {}
            n => {
                return Err(Error::Decode {
                    offset: Some(n as u64),
                    why: "truncated stream header".into(),
                })
            }
        }
        // Irrefutable destructuring of the fixed-size header: no
        // slice-length panic path.
        let [m0, m1, m2, m3, version] = header;
        if [m0, m1, m2, m3] != *STREAM_MAGIC {
            return Err(Error::Decode {
                offset: Some(0),
                why: "bad stream magic (expected CDRS)".into(),
            });
        }
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(Error::UnsupportedVersion { found: version });
        }
        self.version = version;
        self.offset = 5;
        self.header_read = true;
        Ok(true)
    }

    /// Read the next chunk. `Ok(None)` at a clean end of stream;
    /// `Err(Error::Decode { .. })` on a corrupt or truncated stream,
    /// `Err(Error::ChecksumMismatch { .. })` when a v2 chunk fails its
    /// CRC. Strict: use [`Self::read_to_end_tolerant`] to salvage
    /// damaged streams instead.
    pub fn read_chunk(&mut self) -> Result<Option<Vec<CdrRecord>>> {
        if !self.header_read && !self.read_header()? {
            return Ok(None);
        }
        let chunk_offset = self.offset;
        if self.version == VERSION_V2 {
            let mut chunk_header = [0u8; CHUNK_HEADER_LEN];
            match read_exact_or_eof(&mut self.inner, &mut chunk_header)? {
                0 => return Ok(None),
                n if n == CHUNK_HEADER_LEN => {}
                n => {
                    return Err(Error::Decode {
                        offset: Some(chunk_offset + n as u64),
                        why: format!("truncated chunk header ({n} of {CHUNK_HEADER_LEN} bytes)"),
                    })
                }
            }
            // Irrefutable destructuring of the fixed-size header: no
            // slice-length panic path (lint rule L4).
            let [g0, g1, g2, g3, n0, n1, n2, n3, c0, c1, c2, c3] = chunk_header;
            if [g0, g1, g2, g3] != *CHUNK_MAGIC {
                return Err(Error::Decode {
                    offset: Some(chunk_offset),
                    why: "bad chunk magic (expected CHNK)".into(),
                });
            }
            self.offset += CHUNK_HEADER_LEN as u64;
            let expected_crc = u32::from_le_bytes([c0, c1, c2, c3]);
            let count = u32::from_le_bytes([n0, n1, n2, n3]) as usize;
            return self.read_body(count, chunk_offset, Some(expected_crc));
        }
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut len_buf)? {
            0 => return Ok(None),
            4 => {}
            n => {
                return Err(Error::Decode {
                    offset: Some(chunk_offset + n as u64),
                    why: format!("truncated chunk length ({n} of 4 bytes)"),
                })
            }
        }
        self.offset += 4;
        let count = u32::from_le_bytes(len_buf) as usize;
        self.read_body(count, chunk_offset, None)
    }

    fn read_body(
        &mut self,
        count: usize,
        chunk_offset: u64,
        expected_crc: Option<u32>,
    ) -> Result<Option<Vec<CdrRecord>>> {
        if count > MAX_CHUNK_RECORDS {
            return Err(Error::Decode {
                offset: Some(chunk_offset),
                why: format!("implausible chunk record count {count}"),
            });
        }
        let body_len = count * RECORD_LEN;
        let mut body = vec![0u8; body_len];
        let got = read_exact_or_eof(&mut self.inner, &mut body)?;
        if got != body_len {
            return Err(Error::Decode {
                offset: Some(self.offset + got as u64),
                why: format!("truncated chunk body ({got} of {body_len} bytes)"),
            });
        }
        self.offset += body_len as u64;
        if let Some(expected) = expected_crc {
            let found = crc32(&body);
            if found != expected {
                return Err(Error::ChecksumMismatch {
                    offset: chunk_offset,
                    expected,
                    found,
                });
            }
        }
        // Reconstruct an in-memory-codec buffer: header + body.
        let mut buf = Vec::with_capacity(6 + body_len);
        buf.extend_from_slice(b"CDR1");
        buf.push(1);
        buf.push(RECORD_LEN as u8);
        buf.extend_from_slice(&body);
        let records = BinaryCodec::decode(&buf)?;
        self.records_read += records.len() as u64;
        Ok(Some(records))
    }

    /// Drain the whole stream into memory. Strict: errors out at the
    /// first integrity problem.
    pub fn read_to_end(&mut self) -> Result<Vec<CdrRecord>> {
        let mut out = Vec::new();
        while let Some(chunk) = self.read_chunk()? {
            out.extend(chunk);
        }
        Ok(out)
    }

    /// Drain the whole stream, salvaging everything salvageable.
    ///
    /// This is the ingest path for data of unknown integrity: CRC-failed
    /// chunks are skipped, framing damage triggers a scan for the next
    /// chunk boundary, a truncated tail is reported rather than fatal.
    /// The only `Err` this returns is a real I/O failure from the
    /// underlying reader — *no byte content* can make it fail or panic.
    pub fn read_to_end_tolerant(mut self) -> Result<(Vec<CdrRecord>, IngestReport)> {
        let mut buf = Vec::new();
        self.inner
            .read_to_end(&mut buf) // lint:allow(L6): salvage is an explicit whole-stream in-memory pass; resync scanning needs the full byte buffer
            .map_err(|e| Error::Io(e.to_string()))?;
        Ok(salvage(&buf))
    }
}

/// Tolerant decode of a complete in-memory stream. See
/// [`CdrReader::read_to_end_tolerant`].
pub fn salvage(buf: &[u8]) -> (Vec<CdrRecord>, IngestReport) {
    salvage_impl(buf, None)
}

/// [`salvage`], additionally returning the per-chunk [`SalvageLog`].
/// Observational: records and report are byte-identical to `salvage`'s.
pub fn salvage_logged(buf: &[u8]) -> (Vec<CdrRecord>, IngestReport, SalvageLog) {
    let mut log = SalvageLog::default();
    let (out, report) = salvage_impl(buf, Some(&mut log));
    (out, report, log)
}

fn salvage_impl(buf: &[u8], mut log: Option<&mut SalvageLog>) -> (Vec<CdrRecord>, IngestReport) {
    let mut report = IngestReport::default();
    let mut out = Vec::new();
    if buf.is_empty() {
        return (out, report);
    }
    if buf.len() < 5 || buf.get(..4) != Some(STREAM_MAGIC.as_slice()) {
        // Unrecognizable header: hunt for v2 chunks anyway — framing
        // magic lets us salvage a stream whose first bytes were mangled.
        report.bytes_skipped += salvage_v2(buf, 0, &mut out, &mut report, log.as_deref_mut());
        return (out, report);
    }
    let version = buf.get(4).copied().unwrap_or(0);
    report.version = version;
    match version {
        VERSION_V1 => salvage_v1(buf, &mut out, &mut report, log.as_deref_mut()),
        VERSION_V2 => {
            let skipped = salvage_v2(buf, 5, &mut out, &mut report, log.as_deref_mut());
            report.bytes_skipped += skipped;
        }
        _ => {
            // Unknown version byte: same recovery as a mangled header.
            report.version = 0;
            report.bytes_skipped +=
                salvage_v2(buf, 5, &mut out, &mut report, log.as_deref_mut()) + 5;
        }
    }
    (out, report)
}

/// v1 has no framing to resynchronize on: decode chunks until the first
/// inconsistency, then stop.
fn salvage_v1(
    buf: &[u8],
    out: &mut Vec<CdrRecord>,
    report: &mut IngestReport,
    mut log: Option<&mut SalvageLog>,
) {
    let mut pos = 5usize;
    while pos < buf.len() {
        // Panic-free framing read: `None` ⇔ fewer than 4 bytes remain.
        let Some(count) = le_u32_at(buf, pos) else {
            report.truncated_tail = true;
            report.bytes_skipped += (buf.len() - pos) as u64;
            return;
        };
        let count = count as usize;
        if count > MAX_CHUNK_RECORDS {
            // Garbage length word; nothing downstream is trustworthy.
            report.bytes_skipped += (buf.len() - pos) as u64;
            return;
        }
        let chunk_start = pos;
        pos += 4;
        let body_len = count * RECORD_LEN;
        if buf.len() - pos < body_len {
            report.truncated_tail = true;
            report.records_lost_truncated += count as u64;
            report.bytes_skipped += (buf.len() - pos) as u64;
            if let Some(log) = log.as_deref_mut() {
                log.push(chunk_start, count, "truncated_tail");
            }
            return;
        }
        // In-bounds by the length check above; `get` keeps the salvage
        // path panic-free even so.
        decode_rows(buf.get(pos..pos + body_len).unwrap_or_default(), out, report);
        report.chunks_ok += 1;
        if let Some(log) = log.as_deref_mut() {
            log.push(chunk_start, count, "ok");
        }
        pos += body_len;
    }
}

/// v2 salvage starting at `start`; returns bytes skipped while hunting
/// for chunk boundaries.
fn salvage_v2(
    buf: &[u8],
    start: usize,
    out: &mut Vec<CdrRecord>,
    report: &mut IngestReport,
    mut log: Option<&mut SalvageLog>,
) -> u64 {
    let mut skipped = 0u64;
    let mut pos = start;
    while pos < buf.len() {
        // Establish framing: either we are on a chunk boundary or we
        // scan forward to the next CHNK magic.
        if buf.get(pos..pos + 4) != Some(CHUNK_MAGIC.as_slice()) {
            match find_magic(buf, pos + 1) {
                Some(next) => {
                    report.resync_scans += 1;
                    skipped += (next - pos) as u64;
                    pos = next;
                }
                None => {
                    skipped += (buf.len() - pos) as u64;
                    return skipped;
                }
            }
            continue;
        }
        if buf.len() - pos < CHUNK_HEADER_LEN {
            // The stream ends inside a chunk header; the record count is
            // unreadable so only bytes can be accounted.
            report.truncated_tail = true;
            skipped += (buf.len() - pos) as u64;
            return skipped;
        }
        let (Some(count), Some(expected)) = (le_u32_at(buf, pos + 4), le_u32_at(buf, pos + 8))
        else {
            // Unreachable given the header-length check above, but the
            // salvage path stays panic-free by construction (rule L4).
            report.truncated_tail = true;
            skipped += (buf.len() - pos) as u64;
            return skipped;
        };
        let count = count as usize;
        if count > MAX_CHUNK_RECORDS {
            // A false CHNK inside garbage: step past the magic, rescan.
            skipped += 4;
            pos += 4;
            continue;
        }
        let body_start = pos + CHUNK_HEADER_LEN;
        let body_len = count * RECORD_LEN;
        if buf.len() - body_start < body_len {
            if let Some(next) = find_magic(buf, pos + 4) {
                // Another chunk begins before this one's declared end:
                // the count field itself is damaged. Skip to the next
                // boundary.
                report.chunks_skipped += 1;
                report.resync_scans += 1;
                if let Some(log) = log.as_deref_mut() {
                    log.push(pos, count, "skipped_bad_count");
                }
                skipped += (next - pos) as u64;
                pos = next;
                continue;
            }
            report.truncated_tail = true;
            report.records_lost_truncated += count as u64;
            if let Some(log) = log.as_deref_mut() {
                log.push(pos, count, "truncated_tail");
            }
            skipped += (buf.len() - pos) as u64;
            return skipped;
        }
        let Some(body) = buf.get(body_start..body_start + body_len) else {
            // Unreachable given the length check above, but the salvage
            // path stays panic-free by construction.
            skipped += (buf.len() - pos) as u64;
            return skipped;
        };
        if crc32(body) != expected {
            report.chunks_skipped += 1;
            report.records_lost_corrupt += count as u64;
            if let Some(log) = log.as_deref_mut() {
                log.push(pos, count, "skipped_crc");
            }
            pos = body_start + body_len;
            continue;
        }
        decode_rows(body, out, report);
        report.chunks_ok += 1;
        if let Some(log) = log.as_deref_mut() {
            log.push(pos, count, "ok");
        }
        pos = body_start + body_len;
    }
    skipped
}

/// Panic-free little-endian `u32` at `at`: `None` when fewer than four
/// bytes remain (or the offset overflows). The salvage path uses these
/// instead of `try_into().expect(..)` so no byte content or framing
/// damage can reach a panic (rule L4).
#[inline]
fn le_u32_at(buf: &[u8], at: usize) -> Option<u32> {
    match buf.get(at..at.checked_add(4)?)? {
        &[a, b, c, d] => Some(u32::from_le_bytes([a, b, c, d])),
        _ => None,
    }
}

/// Panic-free little-endian `u64` at `at`; see [`le_u32_at`].
#[inline]
fn le_u64_at(buf: &[u8], at: usize) -> Option<u64> {
    match buf.get(at..at.checked_add(8)?)? {
        &[a, b, c, d, e, f, g, h] => Some(u64::from_le_bytes([a, b, c, d, e, f, g, h])),
        _ => None,
    }
}

/// First occurrence of [`CHUNK_MAGIC`] at or after `from`.
fn find_magic(buf: &[u8], from: usize) -> Option<usize> {
    buf.get(from..)?
        .windows(4)
        .position(|w| w == CHUNK_MAGIC)
        .map(|i| from + i)
}

/// Decode frame-checked record rows leniently: an unparseable row is
/// counted, not fatal, and non-positive durations are *kept* — deciding
/// what to do with malformed-but-decodable records is the cleaner's
/// job, and dropping them here would hide them from its quarantine.
fn decode_rows(body: &[u8], out: &mut Vec<CdrRecord>, report: &mut IngestReport) {
    for row in body.chunks_exact(RECORD_LEN) {
        // `chunks_exact` guarantees 26 bytes, but every read below is
        // still panic-free (rule L4): a short row counts as invalid.
        let (Some(car), Some(station), Some(&sector), Some(&carrier_byte), Some(start), Some(end)) = (
            le_u32_at(row, 0),
            le_u32_at(row, 4),
            row.get(8),
            row.get(9),
            le_u64_at(row, 10),
            le_u64_at(row, 18),
        ) else {
            report.records_invalid += 1;
            continue;
        };
        let carrier = match Carrier::from_index(carrier_byte as usize) {
            Some(c) => c,
            None => {
                report.records_invalid += 1;
                continue;
            }
        };
        out.push(CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), sector, carrier),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        });
        report.records_yielded += 1;
    }
}

/// Read as many bytes as available up to `buf.len()`; returns the byte
/// count (0 = clean EOF before anything was read).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while let Some(window) = buf.get_mut(filled..).filter(|w| !w.is_empty()) {
        match r.read(window) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Convenience: write a whole record slice to a file.
pub fn write_file(path: &std::path::Path, records: &[CdrRecord]) -> Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = CdrWriter::new(std::io::BufWriter::new(file));
    w.write_all(records)?;
    let (_, n) = w.finish()?;
    Ok(n)
}

/// Convenience: read a whole trace file into memory.
pub fn read_file(path: &std::path::Path) -> Result<Vec<CdrRecord>> {
    let file = std::fs::File::open(path)?;
    CdrReader::new(std::io::BufReader::new(file)).read_to_end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, CarId, Carrier, CellId, Timestamp};

    fn records(n: usize) -> Vec<CdrRecord> {
        (0..n)
            .map(|i| CdrRecord {
                car: CarId(i as u32 % 97),
                cell: CellId::new(
                    BaseStationId(i as u32 % 13),
                    (i % 3) as u8,
                    Carrier::from_index(i % 5).expect("valid"),
                ),
                start: Timestamp::from_secs(i as u64 * 100),
                end: Timestamp::from_secs(i as u64 * 100 + 60),
            })
            .collect()
    }

    #[test]
    fn round_trip_in_memory() {
        let recs = records(1_000);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(128);
        w.write_all(&recs).unwrap();
        let (bytes, n) = w.finish().unwrap();
        assert_eq!(n, 1_000);
        // 5 header + 8 chunks × (12 + k*26).
        assert_eq!(bytes.len(), 5 + 8 * 12 + 1_000 * 26);
        let back = CdrReader::new(&bytes[..]).read_to_end().unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn legacy_v1_round_trip() {
        let recs = records(1_000);
        let mut w = CdrWriter::new(Vec::new())
            .with_legacy_v1()
            .with_chunk_records(128);
        w.write_all(&recs).unwrap();
        let (bytes, n) = w.finish().unwrap();
        assert_eq!(n, 1_000);
        // 5 header + 8 chunks × (4 + k*26): the v1 layout, byte for byte.
        assert_eq!(bytes.len(), 5 + 8 * 4 + 1_000 * 26);
        assert_eq!(bytes[4], VERSION_V1);
        let mut r = CdrReader::new(&bytes[..]);
        let back = r.read_to_end().unwrap();
        assert_eq!(r.version(), VERSION_V1);
        assert_eq!(back, recs);
        // The tolerant path reads v1 too.
        let (back, report) = CdrReader::new(&bytes[..]).read_to_end_tolerant().unwrap();
        assert_eq!(back, recs);
        assert!(report.is_pristine());
        assert_eq!(report.version, VERSION_V1);
    }

    #[test]
    fn chunked_reading_yields_all_records() {
        let recs = records(300);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(100);
        w.write_all(&recs).unwrap();
        let (bytes, _) = w.finish().unwrap();
        let mut r = CdrReader::new(&bytes[..]);
        let mut chunks = 0;
        let mut total = 0;
        while let Some(chunk) = r.read_chunk().unwrap() {
            chunks += 1;
            total += chunk.len();
        }
        assert_eq!(chunks, 3);
        assert_eq!(total, 300);
        assert_eq!(r.records_read(), 300);
    }

    #[test]
    fn empty_stream_and_empty_trace() {
        // Nothing written at all: clean empty trace.
        let back = CdrReader::new(&[][..]).read_to_end().unwrap();
        assert!(back.is_empty());
        // Writer with zero records still emits a valid (header-only)
        // stream — in both formats.
        for legacy in [false, true] {
            let w = CdrWriter::new(Vec::new());
            let w = if legacy { w.with_legacy_v1() } else { w };
            let (bytes, n) = w.finish().unwrap();
            assert_eq!(n, 0);
            assert_eq!(bytes.len(), 5, "header-only stream");
            let back = CdrReader::new(&bytes[..]).read_to_end().unwrap();
            assert!(back.is_empty());
            let (back, report) = CdrReader::new(&bytes[..]).read_to_end_tolerant().unwrap();
            assert!(back.is_empty());
            assert!(report.is_pristine());
        }
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let recs = records(100);
        let mut w = CdrWriter::new(Vec::new());
        w.write_all(&recs).unwrap();
        let (bytes, _) = w.finish().unwrap();
        // Chop mid-chunk.
        let cut = &bytes[..bytes.len() - 13];
        let err = CdrReader::new(cut).read_to_end().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Chop mid-header.
        let err = CdrReader::new(&bytes[..3]).read_to_end().unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = CdrWriter::new(Vec::new());
        w.write_all(&records(10)).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        bytes[0] = b'X';
        assert!(CdrReader::new(&bytes[..]).read_to_end().is_err());
    }

    #[test]
    fn unknown_version_rejected_strictly() {
        let mut w = CdrWriter::new(Vec::new());
        w.write_all(&records(10)).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        bytes[4] = 9;
        let err = CdrReader::new(&bytes[..]).read_to_end().unwrap_err();
        assert!(matches!(err, Error::UnsupportedVersion { found: 9 }));
    }

    #[test]
    fn checksum_mismatch_detected_strictly() {
        let recs = records(64);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(32);
        w.write_all(&recs).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        // Flip one body byte in the first chunk (header is 5 + 12).
        bytes[20] ^= 0xFF;
        let err = CdrReader::new(&bytes[..]).read_to_end().unwrap_err();
        assert!(matches!(err, Error::ChecksumMismatch { .. }), "{err}");
    }

    #[test]
    fn tolerant_reader_skips_corrupt_chunk_and_resynchronizes() {
        let recs = records(300);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(100);
        w.write_all(&recs).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        // Damage a body byte of the middle chunk. Offsets: header 5,
        // chunk = 12 + 100*26 = 2612.
        let chunk = 12 + 100 * 26;
        bytes[5 + chunk + 12 + 40] ^= 0x5A;
        let (back, report) = CdrReader::new(&bytes[..]).read_to_end_tolerant().unwrap();
        assert_eq!(back.len(), 200);
        assert_eq!(report.chunks_ok, 2);
        assert_eq!(report.chunks_skipped, 1);
        assert_eq!(report.records_lost_corrupt, 100);
        assert_eq!(report.records_yielded, 200);
        assert_eq!(report.records_accounted(), 300);
        // First and third chunks arrive intact.
        assert_eq!(&back[..100], &recs[..100]);
        assert_eq!(&back[100..], &recs[200..]);
    }

    #[test]
    fn tolerant_reader_reports_truncated_tail() {
        let recs = records(250);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(100);
        w.write_all(&recs).unwrap();
        let (bytes, _) = w.finish().unwrap();
        // Cut into the final (50-record) chunk's body.
        let cut = &bytes[..bytes.len() - 49];
        let (back, report) = CdrReader::new(cut).read_to_end_tolerant().unwrap();
        assert_eq!(back.len(), 200);
        assert!(report.truncated_tail);
        assert_eq!(report.records_lost_truncated, 50);
        assert_eq!(report.records_accounted(), 250);
    }

    #[test]
    fn tolerant_reader_survives_garbage() {
        // Pure noise, no header at all.
        let noise: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2_654_435_761) >> 8) as u8)
            .collect();
        let (back, report) = CdrReader::new(&noise[..]).read_to_end_tolerant().unwrap();
        assert!(back.is_empty() || report.records_yielded == back.len() as u64);
        assert_eq!(report.version, 0);
    }

    #[test]
    fn salvage_logged_is_observationally_identical_and_names_frames() {
        let recs = records(300);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(100);
        w.write_all(&recs).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        // Damage the middle chunk's body, cut into the final chunk.
        let chunk = 12 + 100 * 26;
        bytes[5 + chunk + 12 + 40] ^= 0x5A;
        bytes.truncate(bytes.len() - 49);

        let (plain, plain_report) = salvage(&bytes);
        let (logged, logged_report, log) = salvage_logged(&bytes);
        assert_eq!(plain, logged);
        assert_eq!(plain_report, logged_report);
        // One verdict per framed chunk, in stream order, naming fates.
        assert_eq!(log.chunks.len(), 3);
        assert_eq!(log.chunks[0].verdict, "ok");
        assert_eq!(log.chunks[1].verdict, "skipped_crc");
        assert_eq!(log.chunks[1].offset, 5 + chunk as u64);
        assert_eq!(log.chunks[2].verdict, "truncated_tail");
        assert_eq!(log.tally(), (1, 1, 1));
        assert!(log.chunks.windows(2).all(|w| w[0].offset < w[1].offset));
        // Verdict record counts reconcile with the ingest totals.
        assert_eq!(
            log.chunks.iter().map(|c| c.records).sum::<u64>(),
            logged_report.records_accounted()
        );
    }

    #[test]
    fn crc32_known_answer() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn file_round_trip() {
        let recs = records(500);
        let path = std::env::temp_dir().join(format!(
            "conncar-io-test-{}.cdrs",
            std::process::id()
        ));
        let n = write_file(&path, &recs).unwrap();
        assert_eq!(n, 500);
        let back = read_file(&path).unwrap();
        assert_eq!(back, recs);
        let _ = std::fs::remove_file(&path);
    }
}

//! Streaming CDR I/O over `std::io` readers and writers.
//!
//! The in-memory codecs in [`crate::codec`] are fine for test-sized
//! traces; a 90-day million-car study is tens of gigabytes, which must
//! stream. This module frames the binary format into length-prefixed
//! chunks so a reader can process a trace of any size with bounded
//! memory, and tolerates (reports, does not panic on) truncated tails —
//! collection pipelines get cut off mid-write all the time.
//!
//! ```text
//! file   := header chunk*
//! header := "CDRS" u8 version
//! chunk  := u32 record_count | record_count × record   (26 B each)
//! ```

use crate::codec::BinaryCodec;
use crate::record::CdrRecord;
use bytes::Bytes;
use conncar_types::{Error, Result};
use std::io::{Read, Write};

const STREAM_MAGIC: &[u8; 4] = b"CDRS";
const STREAM_VERSION: u8 = 1;
/// Records per chunk: ~64 k records ≈ 1.7 MB buffered.
const DEFAULT_CHUNK: usize = 65_536;

/// Writes a CDR stream chunk by chunk.
pub struct CdrWriter<W: Write> {
    inner: W,
    buffer: Vec<CdrRecord>,
    chunk_records: usize,
    records_written: u64,
    header_written: bool,
}

impl<W: Write> CdrWriter<W> {
    /// Wrap a writer with the default chunk size.
    pub fn new(inner: W) -> CdrWriter<W> {
        CdrWriter {
            inner,
            buffer: Vec::with_capacity(DEFAULT_CHUNK),
            chunk_records: DEFAULT_CHUNK,
            records_written: 0,
            header_written: false,
        }
    }

    /// Override the chunk size (testing / memory tuning). Must be ≥ 1.
    pub fn with_chunk_records(mut self, n: usize) -> CdrWriter<W> {
        self.chunk_records = n.max(1);
        self
    }

    /// Queue one record; flushes a chunk when the buffer fills.
    pub fn write_record(&mut self, record: CdrRecord) -> Result<()> {
        self.buffer.push(record);
        if self.buffer.len() >= self.chunk_records {
            self.flush_chunk()?;
        }
        Ok(())
    }

    /// Queue many records.
    pub fn write_all(&mut self, records: &[CdrRecord]) -> Result<()> {
        for r in records {
            self.write_record(*r)?;
        }
        Ok(())
    }

    /// Flush remaining records and return the inner writer plus the
    /// total record count.
    pub fn finish(mut self) -> Result<(W, u64)> {
        self.flush_chunk()?;
        self.inner.flush()?;
        Ok((self.inner, self.records_written))
    }

    fn flush_chunk(&mut self) -> Result<()> {
        if !self.header_written {
            self.inner.write_all(STREAM_MAGIC)?;
            self.inner.write_all(&[STREAM_VERSION])?;
            self.header_written = true;
        }
        if self.buffer.is_empty() {
            return Ok(());
        }
        // Reuse the in-memory codec for the chunk body; strip its own
        // 6-byte header (the stream header replaces it).
        let body: Bytes = BinaryCodec::encode(&self.buffer);
        self.inner
            .write_all(&(self.buffer.len() as u32).to_le_bytes())?;
        self.inner.write_all(&body[6..])?;
        self.records_written += self.buffer.len() as u64;
        self.buffer.clear();
        Ok(())
    }
}

/// Reads a CDR stream chunk by chunk.
pub struct CdrReader<R: Read> {
    inner: R,
    header_read: bool,
    /// Records decoded so far.
    records_read: u64,
}

impl<R: Read> CdrReader<R> {
    /// Wrap a reader.
    pub fn new(inner: R) -> CdrReader<R> {
        CdrReader {
            inner,
            header_read: false,
            records_read: 0,
        }
    }

    /// Total records decoded so far.
    pub fn records_read(&self) -> u64 {
        self.records_read
    }

    /// Read the next chunk. `Ok(None)` at a clean end of stream;
    /// `Err(Error::Decode { .. })` on a corrupt or truncated stream.
    pub fn read_chunk(&mut self) -> Result<Option<Vec<CdrRecord>>> {
        if !self.header_read {
            let mut header = [0u8; 5];
            match read_exact_or_eof(&mut self.inner, &mut header)? {
                0 => return Ok(None), // empty stream = empty trace
                5 => {}
                n => {
                    return Err(Error::Decode {
                        offset: Some(n as u64),
                        why: "truncated stream header".into(),
                    })
                }
            }
            if &header[..4] != STREAM_MAGIC {
                return Err(Error::Decode {
                    offset: Some(0),
                    why: "bad stream magic (expected CDRS)".into(),
                });
            }
            if header[4] != STREAM_VERSION {
                return Err(Error::Decode {
                    offset: Some(4),
                    why: format!("unsupported stream version {}", header[4]),
                });
            }
            self.header_read = true;
        }
        let mut len_buf = [0u8; 4];
        match read_exact_or_eof(&mut self.inner, &mut len_buf)? {
            0 => return Ok(None),
            4 => {}
            n => {
                return Err(Error::Decode {
                    offset: Some(self.records_read),
                    why: format!("truncated chunk length ({n} of 4 bytes)"),
                })
            }
        }
        let count = u32::from_le_bytes(len_buf) as usize;
        // Reconstruct an in-memory-codec buffer: header + body.
        let mut buf = Vec::with_capacity(6 + count * 26);
        buf.extend_from_slice(b"CDR1");
        buf.push(1);
        buf.push(26);
        let body_len = count * 26;
        let mut body = vec![0u8; body_len];
        let got = read_exact_or_eof(&mut self.inner, &mut body)?;
        if got != body_len {
            return Err(Error::Decode {
                offset: Some(self.records_read),
                why: format!("truncated chunk body ({got} of {body_len} bytes)"),
            });
        }
        buf.extend_from_slice(&body);
        let records = BinaryCodec::decode(&buf)?;
        self.records_read += records.len() as u64;
        Ok(Some(records))
    }

    /// Drain the whole stream into memory.
    pub fn read_to_end(&mut self) -> Result<Vec<CdrRecord>> {
        let mut out = Vec::new();
        while let Some(chunk) = self.read_chunk()? {
            out.extend(chunk);
        }
        Ok(out)
    }
}

/// Read as many bytes as available up to `buf.len()`; returns the byte
/// count (0 = clean EOF before anything was read).
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

/// Convenience: write a whole record slice to a file.
pub fn write_file(path: &std::path::Path, records: &[CdrRecord]) -> Result<u64> {
    let file = std::fs::File::create(path)?;
    let mut w = CdrWriter::new(std::io::BufWriter::new(file));
    w.write_all(records)?;
    let (_, n) = w.finish()?;
    Ok(n)
}

/// Convenience: read a whole trace file into memory.
pub fn read_file(path: &std::path::Path) -> Result<Vec<CdrRecord>> {
    let file = std::fs::File::open(path)?;
    CdrReader::new(std::io::BufReader::new(file)).read_to_end()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, CarId, Carrier, CellId, Timestamp};

    fn records(n: usize) -> Vec<CdrRecord> {
        (0..n)
            .map(|i| CdrRecord {
                car: CarId(i as u32 % 97),
                cell: CellId::new(
                    BaseStationId(i as u32 % 13),
                    (i % 3) as u8,
                    Carrier::from_index(i % 5).expect("valid"),
                ),
                start: Timestamp::from_secs(i as u64 * 100),
                end: Timestamp::from_secs(i as u64 * 100 + 60),
            })
            .collect()
    }

    #[test]
    fn round_trip_in_memory() {
        let recs = records(1_000);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(128);
        w.write_all(&recs).unwrap();
        let (bytes, n) = w.finish().unwrap();
        assert_eq!(n, 1_000);
        // 5 header + 8 chunks × (4 + k*26).
        assert_eq!(bytes.len(), 5 + 8 * 4 + 1_000 * 26);
        let back = CdrReader::new(&bytes[..]).read_to_end().unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn chunked_reading_yields_all_records() {
        let recs = records(300);
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(100);
        w.write_all(&recs).unwrap();
        let (bytes, _) = w.finish().unwrap();
        let mut r = CdrReader::new(&bytes[..]);
        let mut chunks = 0;
        let mut total = 0;
        while let Some(chunk) = r.read_chunk().unwrap() {
            chunks += 1;
            total += chunk.len();
        }
        assert_eq!(chunks, 3);
        assert_eq!(total, 300);
        assert_eq!(r.records_read(), 300);
    }

    #[test]
    fn empty_stream_and_empty_trace() {
        // Nothing written at all: clean empty trace.
        let back = CdrReader::new(&[][..]).read_to_end().unwrap();
        assert!(back.is_empty());
        // Writer with zero records still emits a valid (header-only)
        // stream.
        let w = CdrWriter::new(Vec::new());
        let (bytes, n) = w.finish().unwrap();
        assert_eq!(n, 0);
        let back = CdrReader::new(&bytes[..]).read_to_end().unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn truncated_stream_errors_cleanly() {
        let recs = records(100);
        let mut w = CdrWriter::new(Vec::new());
        w.write_all(&recs).unwrap();
        let (bytes, _) = w.finish().unwrap();
        // Chop mid-chunk.
        let cut = &bytes[..bytes.len() - 13];
        let err = CdrReader::new(cut).read_to_end().unwrap_err();
        assert!(err.to_string().contains("truncated"), "{err}");
        // Chop mid-header.
        let err = CdrReader::new(&bytes[..3]).read_to_end().unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn bad_magic_rejected() {
        let mut w = CdrWriter::new(Vec::new());
        w.write_all(&records(10)).unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        bytes[0] = b'X';
        assert!(CdrReader::new(&bytes[..]).read_to_end().is_err());
    }

    #[test]
    fn file_round_trip() {
        let recs = records(500);
        let path = std::env::temp_dir().join(format!(
            "conncar-io-test-{}.cdrs",
            std::process::id()
        ));
        let n = write_file(&path, &recs).unwrap();
        assert_eq!(n, 500);
        let back = read_file(&path).unwrap();
        assert_eq!(back, recs);
        let _ = std::fs::remove_file(&path);
    }
}

//! §3's pre-processing: drop the exact-one-hour glitch records and
//! (at analysis time) truncate per-cell connections to 600 s.
//!
//! The paper is careful to keep the two steps distinct: erroneous
//! records are *removed* during pre-processing, while truncation is an
//! *analysis-time* transformation applied "during the data analysis" to
//! mitigate sticky modems. The [`Cleaner`] does the removal;
//! [`truncate_records`] is the transformation, used by the Figure 3 and
//! Figure 9 analyses to produce their full-vs-truncated pairs.

use crate::record::{CdrDataset, CdrRecord};
use conncar_types::Duration;
use serde::{Deserialize, Serialize};

/// Cleaning parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleanConfig {
    /// Records with exactly this duration are presumed to be broken
    /// periodic-reporting artifacts and dropped. Paper: 1 hour.
    pub glitch_duration: Duration,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            glitch_duration: Duration::from_hours(1),
        }
    }
}

/// What cleaning removed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanReport {
    /// Records dropped for having exactly the glitch duration.
    pub dropped_glitches: usize,
    /// Records dropped for being malformed (non-positive duration).
    pub dropped_malformed: usize,
}

/// The pre-processing stage.
#[derive(Debug, Clone, Default)]
pub struct Cleaner {
    cfg: CleanConfig,
}

impl Cleaner {
    /// Build a cleaner.
    pub fn new(cfg: CleanConfig) -> Cleaner {
        Cleaner { cfg }
    }

    /// Remove erroneous records, returning the cleaned dataset and a
    /// report of what went.
    pub fn clean(&self, dirty: &CdrDataset) -> (CdrDataset, CleanReport) {
        let mut report = CleanReport::default();
        let kept: Vec<CdrRecord> = dirty
            .records()
            .iter()
            .filter(|r| {
                if !r.is_valid() {
                    report.dropped_malformed += 1;
                    false
                } else if r.duration() == self.cfg.glitch_duration {
                    report.dropped_glitches += 1;
                    false
                } else {
                    true
                }
            })
            .copied()
            .collect();
        (dirty.with_records(kept), report)
    }
}

/// Analysis-time truncation: cap every record's duration at `cap`.
///
/// This is the paper's "we also truncate long connections to a single
/// cell to 600 seconds" (§3) — applied on the fly by analyses that need
/// the truncated view, never mutating the stored dataset.
pub fn truncate_records(records: &[CdrRecord], cap: Duration) -> Vec<CdrRecord> {
    records
        .iter()
        .map(|r| {
            if r.duration() > cap {
                CdrRecord {
                    end: r.start + cap,
                    ..*r
                }
            } else {
                *r
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{
        BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp,
    };

    fn rec(start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(1),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn drops_exactly_one_hour() {
        let dirty = ds(vec![rec(0, 3_600), rec(10_000, 3_599), rec(20_000, 3_601)]);
        let (clean, report) = Cleaner::default().clean(&dirty);
        assert_eq!(report.dropped_glitches, 1);
        assert_eq!(clean.len(), 2);
        assert!(clean
            .records()
            .iter()
            .all(|r| r.duration().as_secs() != 3_600));
    }

    #[test]
    fn drops_malformed() {
        let mut bad = rec(100, 10);
        bad.end = bad.start;
        let dirty = ds(vec![bad, rec(0, 50)]);
        let (clean, report) = Cleaner::default().clean(&dirty);
        assert_eq!(report.dropped_malformed, 1);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn custom_glitch_duration() {
        let cleaner = Cleaner::new(CleanConfig {
            glitch_duration: Duration::from_secs(100),
        });
        let dirty = ds(vec![rec(0, 100), rec(500, 3_600)]);
        let (clean, report) = cleaner.clean(&dirty);
        assert_eq!(report.dropped_glitches, 1);
        assert_eq!(clean.records()[0].duration().as_secs(), 3_600);
    }

    #[test]
    fn truncation_caps_only_long_records() {
        let records = vec![rec(0, 120), rec(1_000, 600), rec(3_000, 4_000)];
        let truncated = truncate_records(&records, Duration::from_secs(600));
        assert_eq!(truncated[0].duration().as_secs(), 120);
        assert_eq!(truncated[1].duration().as_secs(), 600);
        assert_eq!(truncated[2].duration().as_secs(), 600);
        assert_eq!(truncated[2].start, records[2].start);
        // Original slice untouched.
        assert_eq!(records[2].duration().as_secs(), 4_000);
    }

    #[test]
    fn clean_then_inject_round_trip_recovers_ground_truth() {
        // End-to-end: dirty = inject(clean); cleaning must remove every
        // hour glitch and nothing else (loss and sticky damage are
        // handled elsewhere: loss is unrecoverable, sticky is mitigated
        // by truncation).
        use crate::faults::{FaultConfig, FaultInjector};
        let truth = ds((0..500).map(|i| rec(i * 1_000, 90 + i % 300)).collect());
        let cfg = FaultConfig {
            hour_glitch_p: 0.05,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            ..Default::default()
        };
        let (dirty, injected) = FaultInjector::new(cfg, 3).inject(&truth);
        let (cleaned, report) = Cleaner::default().clean(&dirty);
        assert_eq!(report.dropped_glitches, injected.hour_glitches);
        // Everything that survives cleaning is a ground-truth record.
        assert_eq!(cleaned.len() + injected.hour_glitches, truth.len());
        for r in cleaned.records() {
            assert!(truth.records().contains(r));
        }
    }
}

//! §3's pre-processing: drop the exact-one-hour glitch records and
//! (at analysis time) truncate per-cell connections to 600 s.
//!
//! The paper is careful to keep the two steps distinct: erroneous
//! records are *removed* during pre-processing, while truncation is an
//! *analysis-time* transformation applied "during the data analysis" to
//! mitigate sticky modems. The [`Cleaner`] does the removal;
//! [`truncate_records`] is the transformation, used by the Figure 3 and
//! Figure 9 analyses to produce their full-vs-truncated pairs.

use crate::io::{salvage, IngestReport};
use crate::record::{CdrDataset, CdrRecord};
use conncar_obs::{CounterRegistry, Span};
use conncar_types::{CellId, Duration, Error, Result, StudyPeriod};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cleaning parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleanConfig {
    /// Records with exactly this duration are presumed to be broken
    /// periodic-reporting artifacts and dropped. Paper: 1 hour.
    pub glitch_duration: Duration,
    /// Drop exact re-deliveries of a record already seen (same car,
    /// cell, start *and* end).
    pub dedup: bool,
    /// Drop records nested inside another record for the same car and
    /// cell (ghost partial reports). Off by default: ordinary sticky
    /// overlap is the paper's truncation concern, not a removal one.
    pub resolve_overlaps: bool,
}

impl Default for CleanConfig {
    fn default() -> Self {
        CleanConfig {
            glitch_duration: Duration::from_hours(1),
            dedup: true,
            resolve_overlaps: false,
        }
    }
}

/// What cleaning removed, by stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CleanReport {
    /// Records dropped for having exactly the glitch duration.
    pub dropped_glitches: usize,
    /// Records dropped for being malformed (non-positive duration).
    pub dropped_malformed: usize,
    /// Exact re-deliveries dropped by the dedup stage.
    pub dropped_duplicates: usize,
    /// Nested same-car-same-cell records dropped by overlap resolution.
    pub dropped_overlaps: usize,
}

impl CleanReport {
    /// Total records removed across all stages.
    pub fn dropped_total(&self) -> usize {
        self.dropped_glitches
            + self.dropped_malformed
            + self.dropped_duplicates
            + self.dropped_overlaps
    }

    /// Absorb another report's counts (streaming builds clean one
    /// car-aligned chunk at a time and sum the per-chunk reports; every
    /// stage is per-car-local, so the sum equals the batch report).
    pub fn merge(&mut self, other: &CleanReport) {
        self.dropped_glitches += other.dropped_glitches;
        self.dropped_malformed += other.dropped_malformed;
        self.dropped_duplicates += other.dropped_duplicates;
        self.dropped_overlaps += other.dropped_overlaps;
    }

    /// Account the per-stage drop counts into a registry under the
    /// `clean.*` keys.
    pub fn record_counters(&self, reg: &mut CounterRegistry) {
        reg.add("clean.dropped_malformed", self.dropped_malformed as u64);
        reg.add("clean.dropped_duplicates", self.dropped_duplicates as u64);
        reg.add("clean.dropped_glitches", self.dropped_glitches as u64);
        reg.add("clean.dropped_overlaps", self.dropped_overlaps as u64);
    }
}

/// Why a record was pulled out of the dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// Non-positive duration (e.g. a skewed modem clock).
    Malformed,
    /// Exact re-delivery of an already-seen record.
    Duplicate,
    /// Exactly the configured glitch duration.
    Glitch,
    /// Nested inside another record for the same car and cell.
    Overlap,
}

/// A rejected record together with the stage that rejected it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuarantinedRecord {
    /// The record as it arrived.
    pub record: CdrRecord,
    /// Which stage rejected it.
    pub reason: RejectReason,
}

/// Holding pen for rejected records: nothing the cleaner removes is
/// destroyed, so fault-recovery fidelity can be audited after the fact.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Quarantine {
    entries: Vec<QuarantinedRecord>,
}

impl Quarantine {
    /// All quarantined records, in rejection order.
    pub fn entries(&self) -> &[QuarantinedRecord] {
        &self.entries
    }

    /// Number of quarantined records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was rejected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// How many records a particular stage rejected.
    pub fn count(&self, reason: RejectReason) -> usize {
        self.entries.iter().filter(|e| e.reason == reason).count()
    }

    /// Account the per-class rejection counts into a registry under the
    /// `quarantine.*` keys.
    pub fn record_counters(&self, reg: &mut CounterRegistry) {
        reg.add("quarantine.malformed", self.count(RejectReason::Malformed) as u64);
        reg.add("quarantine.duplicate", self.count(RejectReason::Duplicate) as u64);
        reg.add("quarantine.glitch", self.count(RejectReason::Glitch) as u64);
        reg.add("quarantine.overlap", self.count(RejectReason::Overlap) as u64);
    }

    /// Append another quarantine's entries, preserving their rejection
    /// order (the streaming build concatenates per-chunk quarantines in
    /// chunk order).
    pub fn merge(&mut self, other: Quarantine) {
        self.entries.extend(other.entries);
    }

    fn push(&mut self, record: CdrRecord, reason: RejectReason) {
        self.entries.push(QuarantinedRecord { record, reason });
    }
}

/// Everything [`Cleaner::clean_full`] produces.
#[derive(Debug, Clone)]
pub struct CleanOutcome {
    /// The cleaned dataset.
    pub dataset: CdrDataset,
    /// Per-stage drop counts.
    pub report: CleanReport,
    /// The rejected records themselves.
    pub quarantine: Quarantine,
}

/// Everything [`Cleaner::clean_stream`] produces: byte-level salvage
/// accounting from the tolerant ingest plus the staged-clean outcome
/// over whatever was salvaged.
#[derive(Debug, Clone)]
pub struct StreamCleanOutcome {
    /// What the tolerant reader recovered and what it gave up on.
    pub ingest: IngestReport,
    /// The staged clean over the salvaged records.
    pub outcome: CleanOutcome,
}

/// The pre-processing stage, as a staged pipeline:
///
/// 1. **validate** — drop records whose duration is non-positive
///    (skewed modem clocks, decode damage);
/// 2. **dedup** — drop exact re-deliveries;
/// 3. **glitch** — drop the paper's exactly-one-hour artifacts;
/// 4. **overlap-resolve** (opt-in) — drop ghost records nested inside
///    another record for the same car and cell.
///
/// Stage order matters and is load-bearing: validation must precede
/// dedup so a skewed copy of a duplicated record cannot shield its twin,
/// and dedup must precede overlap resolution so resolution never sees
/// two identical records. With the later stages at their defaults and
/// legacy-only faults in play, drop counts are identical to the old
/// single-pass cleaner.
#[derive(Debug, Clone, Default)]
pub struct Cleaner {
    cfg: CleanConfig,
    /// Identity of the run (trace id) this cleaner is working for, if
    /// known; total-loss errors carry it so a failure seen in CI names
    /// the exact trace that reproduces it.
    run_id: Option<String>,
}

impl Cleaner {
    /// Build a cleaner.
    pub fn new(cfg: CleanConfig) -> Cleaner {
        Cleaner { cfg, run_id: None }
    }

    /// Tag this cleaner with the originating run/trace identity. Errors
    /// raised from [`Self::clean_stream`] then name the run, turning
    /// "no records salvageable" into a one-command reproduction.
    pub fn for_run(mut self, run_id: impl Into<String>) -> Cleaner {
        self.run_id = Some(run_id.into());
        self
    }

    /// The configuration.
    pub fn config(&self) -> &CleanConfig {
        &self.cfg
    }

    /// Remove erroneous records, returning the cleaned dataset and a
    /// report of what went. Convenience wrapper over
    /// [`Self::clean_full`] for callers that don't need the quarantine.
    pub fn clean(&self, dirty: &CdrDataset) -> (CdrDataset, CleanReport) {
        let outcome = self.clean_full(dirty);
        (outcome.dataset, outcome.report)
    }

    /// The whole ingest path in one call: tolerantly salvage raw stream
    /// bytes, then run the full staged clean over what survived.
    ///
    /// Byte-level damage (CRC failures, truncated frames, framing loss)
    /// is accounted in the returned [`IngestReport`]; record-level
    /// damage that decodes but fails validation (e.g. a skewed clock in
    /// a frame-checked row) flows into the [`Quarantine`], never a
    /// panic. The only `Err` is [`Error::Clean`], returned when a
    /// non-empty stream yields *nothing* salvageable — total loss is an
    /// error, partial loss is accounting.
    pub fn clean_stream(
        &self,
        bytes: &[u8],
        period: StudyPeriod,
    ) -> Result<StreamCleanOutcome> {
        let (records, ingest) = salvage(bytes);
        // A pristine header-only stream is a legitimate empty trace;
        // an empty yield from a *damaged* stream is total loss.
        if records.is_empty() && !bytes.is_empty() && !ingest.is_pristine() {
            let run = match &self.run_id {
                Some(id) => format!(" [run {id}]"),
                None => String::new(),
            };
            return Err(Error::Clean {
                stage: "salvage",
                why: format!(
                    "no records salvageable from {} bytes{run} ({} lost corrupt, {} lost \
                     truncated, {} invalid, {} bytes skipped)",
                    bytes.len(),
                    ingest.records_lost_corrupt,
                    ingest.records_lost_truncated,
                    ingest.records_invalid,
                    ingest.bytes_skipped,
                ),
            });
        }
        let outcome = self.clean_full(&CdrDataset::new(period, records));
        Ok(StreamCleanOutcome { ingest, outcome })
    }

    /// Run the full staged pipeline, keeping every rejected record in a
    /// [`Quarantine`].
    pub fn clean_full(&self, dirty: &CdrDataset) -> CleanOutcome {
        let mut report = CleanReport::default();
        let mut quarantine = Quarantine::default();
        let mut kept = self.stage_validate(dirty.records(), &mut report, &mut quarantine);
        kept = self.stage_dedup(kept, &mut report, &mut quarantine);
        kept = self.stage_glitch(kept, &mut report, &mut quarantine);
        kept = self.stage_overlaps(kept, &mut report, &mut quarantine);
        CleanOutcome {
            dataset: dirty.with_records(kept),
            report,
            quarantine,
        }
    }

    /// [`Cleaner::clean_full`] with one child span per stage. Each
    /// stage's item count is the number of records *entering* it (every
    /// stage examines its whole input, whatever it drops), so the spans
    /// stay nonzero on clean data and the CI zero-item gate holds.
    pub fn clean_full_traced(&self, dirty: &CdrDataset, span: &mut Span<'_>) -> CleanOutcome {
        let mut report = CleanReport::default();
        let mut quarantine = Quarantine::default();
        span.set_items(dirty.len() as u64);
        let mut kept = span.child("clean/validate", |s| {
            s.set_items(dirty.len() as u64);
            self.stage_validate(dirty.records(), &mut report, &mut quarantine)
        });
        let entering = kept.len() as u64;
        kept = span.child("clean/dedup", |s| {
            s.set_items(entering);
            self.stage_dedup(kept, &mut report, &mut quarantine)
        });
        let entering = kept.len() as u64;
        kept = span.child("clean/glitch", |s| {
            s.set_items(entering);
            self.stage_glitch(kept, &mut report, &mut quarantine)
        });
        let entering = kept.len() as u64;
        kept = span.child("clean/overlap", |s| {
            s.set_items(entering);
            self.stage_overlaps(kept, &mut report, &mut quarantine)
        });
        CleanOutcome {
            dataset: dirty.with_records(kept),
            report,
            quarantine,
        }
    }

    /// Stage 1: validate — drop records with non-positive durations.
    fn stage_validate(
        &self,
        records: &[CdrRecord],
        report: &mut CleanReport,
        quarantine: &mut Quarantine,
    ) -> Vec<CdrRecord> {
        let mut kept: Vec<CdrRecord> = Vec::with_capacity(records.len());
        for r in records {
            if r.is_valid() {
                kept.push(*r);
            } else {
                report.dropped_malformed += 1;
                quarantine.push(*r, RejectReason::Malformed);
            }
        }
        kept
    }

    /// Stage 2: dedup. The dataset is canonically sorted by
    /// (car, start, cell), so exact duplicates share a key run; the
    /// runs are tiny, making the seen-ends scan effectively O(n).
    fn stage_dedup(
        &self,
        kept: Vec<CdrRecord>,
        report: &mut CleanReport,
        quarantine: &mut Quarantine,
    ) -> Vec<CdrRecord> {
        if !self.cfg.dedup {
            return kept;
        }
        let mut deduped: Vec<CdrRecord> = Vec::with_capacity(kept.len());
        let mut run_key: Option<(u32, u64, CellId)> = None;
        let mut run_ends: Vec<u64> = Vec::new();
        for r in kept {
            let key = (r.car.0, r.start.as_secs(), r.cell);
            if run_key != Some(key) {
                run_key = Some(key);
                run_ends.clear();
            }
            let end = r.end.as_secs();
            if run_ends.contains(&end) {
                report.dropped_duplicates += 1;
                quarantine.push(r, RejectReason::Duplicate);
            } else {
                run_ends.push(end);
                deduped.push(r);
            }
        }
        deduped
    }

    /// Stage 3: glitch-drop.
    fn stage_glitch(
        &self,
        kept: Vec<CdrRecord>,
        report: &mut CleanReport,
        quarantine: &mut Quarantine,
    ) -> Vec<CdrRecord> {
        let mut after_glitch: Vec<CdrRecord> = Vec::with_capacity(kept.len());
        for r in kept {
            if r.duration() == self.cfg.glitch_duration {
                report.dropped_glitches += 1;
                quarantine.push(r, RejectReason::Glitch);
            } else {
                after_glitch.push(r);
            }
        }
        after_glitch
    }

    /// Stage 4: overlap-resolve. Within one car, records arrive in
    /// start order; per cell, a record whose end does not extend past
    /// everything seen before it is nested inside an earlier record.
    /// Survivors strictly extend the frontier, so a second pass would
    /// drop nothing: the stage is idempotent.
    fn stage_overlaps(
        &self,
        kept: Vec<CdrRecord>,
        report: &mut CleanReport,
        quarantine: &mut Quarantine,
    ) -> Vec<CdrRecord> {
        if !self.cfg.resolve_overlaps {
            return kept;
        }
        let mut resolved: Vec<CdrRecord> = Vec::with_capacity(kept.len());
        let mut frontier: BTreeMap<(u32, CellId), u64> = BTreeMap::new();
        let mut current_car: Option<u32> = None;
        for r in kept {
            if current_car != Some(r.car.0) {
                current_car = Some(r.car.0);
                frontier.clear();
            }
            let max_end = frontier.entry((r.car.0, r.cell)).or_insert(0);
            if *max_end > 0 && r.end.as_secs() <= *max_end {
                report.dropped_overlaps += 1;
                quarantine.push(r, RejectReason::Overlap);
            } else {
                *max_end = r.end.as_secs();
                resolved.push(r);
            }
        }
        resolved
    }
}

/// Analysis-time truncation: cap every record's duration at `cap`.
///
/// This is the paper's "we also truncate long connections to a single
/// cell to 600 seconds" (§3) — applied on the fly by analyses that need
/// the truncated view, never mutating the stored dataset.
pub fn truncate_records(records: &[CdrRecord], cap: Duration) -> Vec<CdrRecord> {
    records
        .iter()
        .map(|r| {
            if r.duration() > cap {
                CdrRecord {
                    end: r.start + cap,
                    ..*r
                }
            } else {
                *r
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{
        BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp,
    };

    fn rec(start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(1),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn drops_exactly_one_hour() {
        let dirty = ds(vec![rec(0, 3_600), rec(10_000, 3_599), rec(20_000, 3_601)]);
        let (clean, report) = Cleaner::default().clean(&dirty);
        assert_eq!(report.dropped_glitches, 1);
        assert_eq!(clean.len(), 2);
        assert!(clean
            .records()
            .iter()
            .all(|r| r.duration().as_secs() != 3_600));
    }

    #[test]
    fn drops_malformed() {
        let mut bad = rec(100, 10);
        bad.end = bad.start;
        let dirty = ds(vec![bad, rec(0, 50)]);
        let (clean, report) = Cleaner::default().clean(&dirty);
        assert_eq!(report.dropped_malformed, 1);
        assert_eq!(clean.len(), 1);
    }

    #[test]
    fn custom_glitch_duration() {
        let cleaner = Cleaner::new(CleanConfig {
            glitch_duration: Duration::from_secs(100),
            ..CleanConfig::default()
        });
        let dirty = ds(vec![rec(0, 100), rec(500, 3_600)]);
        let (clean, report) = cleaner.clean(&dirty);
        assert_eq!(report.dropped_glitches, 1);
        assert_eq!(clean.records()[0].duration().as_secs(), 3_600);
    }

    #[test]
    fn truncation_caps_only_long_records() {
        let records = vec![rec(0, 120), rec(1_000, 600), rec(3_000, 4_000)];
        let truncated = truncate_records(&records, Duration::from_secs(600));
        assert_eq!(truncated[0].duration().as_secs(), 120);
        assert_eq!(truncated[1].duration().as_secs(), 600);
        assert_eq!(truncated[2].duration().as_secs(), 600);
        assert_eq!(truncated[2].start, records[2].start);
        // Original slice untouched.
        assert_eq!(records[2].duration().as_secs(), 4_000);
    }

    #[test]
    fn staged_pipeline_matches_legacy_single_pass() {
        // Strict-superset check: on data carrying only the legacy fault
        // classes, the staged cleaner must keep the same records and
        // report the same counts as the old single-pass implementation
        // (replicated inline here), record for record.
        use crate::faults::{FaultConfig, FaultInjector};
        use conncar_types::{CarId, CellId};
        let truth = ds((0..2_000)
            .map(|i| {
                let mut r = rec((i % 600) * 977, 60 + i % 900);
                r.car = CarId((i % 37) as u32);
                r.cell = CellId::new(BaseStationId((i % 11) as u32), 0, Carrier::C3);
                r
            })
            .collect());
        let cfg = FaultConfig {
            hour_glitch_p: 0.05,
            loss_days: vec![2, 4],
            loss_fraction: 0.4,
            sticky_p: 0.1,
            ..FaultConfig::default()
        };
        let (dirty, _) = FaultInjector::new(cfg, 9).inject(&truth);

        let cleaner = Cleaner::default();
        let (staged, staged_report) = cleaner.clean(&dirty);

        let glitch = cleaner.config().glitch_duration;
        let mut legacy_glitches = 0;
        let mut legacy_malformed = 0;
        let legacy: Vec<CdrRecord> = dirty
            .records()
            .iter()
            .filter(|r| {
                if !r.is_valid() {
                    legacy_malformed += 1;
                    false
                } else if r.duration() == glitch {
                    legacy_glitches += 1;
                    false
                } else {
                    true
                }
            })
            .copied()
            .collect();
        assert_eq!(staged_report.dropped_glitches, legacy_glitches);
        assert_eq!(staged_report.dropped_malformed, legacy_malformed);
        assert_eq!(staged_report.dropped_duplicates, 0);
        assert_eq!(staged_report.dropped_overlaps, 0);
        assert_eq!(staged.records(), &legacy[..]);
    }

    #[test]
    fn dedup_drops_each_extra_copy_once() {
        let a = rec(100, 50);
        let b = rec(100, 60); // same key run, different end: not a dup
        let c = rec(900, 50);
        let dirty = ds(vec![a, a, b, a, c]);
        let outcome = Cleaner::default().clean_full(&dirty);
        assert_eq!(outcome.report.dropped_duplicates, 2);
        assert_eq!(outcome.dataset.len(), 3);
        assert_eq!(outcome.quarantine.count(RejectReason::Duplicate), 2);
        // Dedup can be turned off.
        let cleaner = Cleaner::new(CleanConfig {
            dedup: false,
            ..CleanConfig::default()
        });
        let (kept, report) = cleaner.clean(&dirty);
        assert_eq!(report.dropped_duplicates, 0);
        assert_eq!(kept.len(), 5);
    }

    #[test]
    fn overlap_resolution_drops_nested_records_and_is_idempotent() {
        let host = rec(1_000, 600);
        let nested = rec(1_200, 100); // strictly inside host
        let touching = rec(1_700, 100); // starts later, extends past: kept
        let other_car = {
            let mut r = rec(1_200, 100);
            r.car = conncar_types::CarId(2);
            r
        };
        let dirty = ds(vec![host, nested, touching, other_car]);
        let cleaner = Cleaner::new(CleanConfig {
            resolve_overlaps: true,
            ..CleanConfig::default()
        });
        let outcome = cleaner.clean_full(&dirty);
        assert_eq!(outcome.report.dropped_overlaps, 1);
        assert_eq!(outcome.dataset.len(), 3);
        assert_eq!(outcome.quarantine.count(RejectReason::Overlap), 1);
        assert!(!outcome
            .dataset
            .records()
            .iter()
            .any(|r| *r == nested && r.car == nested.car));
        // Idempotent: cleaning the cleaned output drops nothing.
        let again = cleaner.clean_full(&outcome.dataset);
        assert_eq!(again.report, CleanReport::default());
        assert_eq!(again.dataset.records(), outcome.dataset.records());
    }

    #[test]
    fn quarantine_holds_exactly_what_was_dropped() {
        let mut skewed = rec(5_000, 10);
        skewed.end = skewed.start; // zero duration: malformed
        let dup = rec(100, 50);
        let dirty = ds(vec![dup, dup, skewed, rec(0, 3_600), rec(9_000, 70)]);
        let outcome = Cleaner::default().clean_full(&dirty);
        assert_eq!(outcome.quarantine.len(), outcome.report.dropped_total());
        assert_eq!(outcome.quarantine.count(RejectReason::Malformed), 1);
        assert_eq!(outcome.quarantine.count(RejectReason::Duplicate), 1);
        assert_eq!(outcome.quarantine.count(RejectReason::Glitch), 1);
        assert_eq!(outcome.quarantine.count(RejectReason::Overlap), 0);
        assert_eq!(outcome.dataset.len() + outcome.quarantine.len(), dirty.len());
        // The quarantined records are the dropped ones, verbatim.
        for q in outcome.quarantine.entries() {
            assert!(dirty.records().contains(&q.record));
        }
    }

    #[test]
    fn traced_clean_matches_untraced_and_reports_stage_items() {
        use conncar_obs::NullClock;
        let mut skewed = rec(5_000, 10);
        skewed.end = skewed.start;
        let dup = rec(100, 50);
        let dirty = ds(vec![dup, dup, skewed, rec(0, 3_600), rec(9_000, 70)]);
        let cleaner = Cleaner::default();
        let plain = cleaner.clean_full(&dirty);

        let clock = NullClock;
        let mut span = Span::enter(&clock, "clean");
        let traced = cleaner.clean_full_traced(&dirty, &mut span);
        let tree = span.finish();

        assert_eq!(traced.dataset.records(), plain.dataset.records());
        assert_eq!(traced.report, plain.report);
        assert_eq!(traced.quarantine, plain.quarantine);
        // One child per stage, items = records entering that stage.
        assert_eq!(tree.items, 5);
        let names: Vec<&str> = tree.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["clean/validate", "clean/dedup", "clean/glitch", "clean/overlap"]
        );
        assert_eq!(tree.find("clean/validate").unwrap().items, 5);
        assert_eq!(tree.find("clean/dedup").unwrap().items, 4); // skewed gone
        assert_eq!(tree.find("clean/glitch").unwrap().items, 3); // dup gone
        assert_eq!(tree.find("clean/overlap").unwrap().items, 2); // glitch gone
    }

    #[test]
    fn clean_counters_mirror_report_and_quarantine() {
        let mut skewed = rec(5_000, 10);
        skewed.end = skewed.start;
        let dup = rec(100, 50);
        let dirty = ds(vec![dup, dup, skewed, rec(0, 3_600), rec(9_000, 70)]);
        let outcome = Cleaner::default().clean_full(&dirty);
        let mut reg = conncar_obs::CounterRegistry::new();
        outcome.report.record_counters(&mut reg);
        outcome.quarantine.record_counters(&mut reg);
        assert_eq!(reg.get("clean.dropped_malformed"), 1);
        assert_eq!(reg.get("clean.dropped_duplicates"), 1);
        assert_eq!(reg.get("clean.dropped_glitches"), 1);
        assert_eq!(reg.get("clean.dropped_overlaps"), 0);
        // Quarantine classes agree with the drop counters per stage.
        assert_eq!(reg.get("quarantine.malformed"), 1);
        assert_eq!(reg.get("quarantine.duplicate"), 1);
        assert_eq!(reg.get("quarantine.glitch"), 1);
        assert_eq!(reg.get("quarantine.overlap"), 0);
    }

    #[test]
    fn clean_then_inject_round_trip_recovers_ground_truth() {
        // End-to-end: dirty = inject(clean); cleaning must remove every
        // hour glitch and nothing else (loss and sticky damage are
        // handled elsewhere: loss is unrecoverable, sticky is mitigated
        // by truncation).
        use crate::faults::{FaultConfig, FaultInjector};
        let truth = ds((0..500).map(|i| rec(i * 1_000, 90 + i % 300)).collect());
        let cfg = FaultConfig {
            hour_glitch_p: 0.05,
            loss_days: vec![],
            loss_fraction: 0.0,
            sticky_p: 0.0,
            ..Default::default()
        };
        let (dirty, injected) = FaultInjector::new(cfg, 3).inject(&truth);
        let (cleaned, report) = Cleaner::default().clean(&dirty);
        assert_eq!(report.dropped_glitches, injected.hour_glitches);
        // Everything that survives cleaning is a ground-truth record.
        assert_eq!(cleaned.len() + injected.hour_glitches, truth.len());
        for r in cleaned.records() {
            assert!(truth.records().contains(r));
        }
    }

    /// Regression: empty input, pristine empty streams, and all-corrupt
    /// streams are three different things. Only the last is an error —
    /// and once the cleaner knows its run identity, the error names it.
    #[test]
    fn clean_stream_distinguishes_empty_from_total_loss() {
        use crate::io::CdrWriter;
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();

        // Zero bytes: a missing trace is an empty trace, not total loss.
        let out = Cleaner::default().clean_stream(&[], period).unwrap();
        assert!(out.outcome.dataset.is_empty());
        assert!(out.ingest.is_pristine());

        // A pristine header-only stream: a legitimate empty run.
        let (bytes, n) = CdrWriter::new(Vec::new()).finish().unwrap();
        assert_eq!(n, 0);
        let out = Cleaner::default().clean_stream(&bytes, period).unwrap();
        assert!(out.outcome.dataset.is_empty());
        assert!(out.ingest.is_pristine());

        // Every chunk corrupt: total loss, a hard error.
        let mut w = CdrWriter::new(Vec::new()).with_chunk_records(8);
        w.write_all(&(0..16).map(|i| rec(i * 100, 50)).collect::<Vec<_>>())
            .unwrap();
        let (mut bytes, _) = w.finish().unwrap();
        // Flip a body byte in both chunks (header 5, chunk = 12 + 8*26).
        let chunk = 12 + 8 * 26;
        bytes[5 + 12] ^= 0xFF;
        bytes[5 + chunk + 12] ^= 0xFF;
        let err = Cleaner::default().clean_stream(&bytes, period).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("no records salvageable"), "{msg}");
        assert!(msg.contains("16 lost corrupt"), "{msg}");
        // Without a run identity the error stays anonymous…
        assert!(!msg.contains("[run "), "{msg}");
        // …with one, it names the exact trace that reproduces it.
        let err = Cleaner::default()
            .for_run("f00dfacecafe0042")
            .clean_stream(&bytes, period)
            .unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("[run f00dfacecafe0042]"), "{msg}");
    }
}

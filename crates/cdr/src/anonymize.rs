//! Salted pseudonymization of car identities.
//!
//! The operator's data pipeline replaces subscriber identities with
//! stable opaque tokens before researchers ever see a record (§3: the
//! records "are anonymized … and do not contain sensitive personal or
//! identifiable information"). We reproduce that boundary: an
//! [`Anonymizer`] deterministically maps a [`CarId`] to an [`AnonId`]
//! under a secret salt. The mapping is:
//!
//! * **stable** — the same car gets the same token across the whole
//!   study, which is what makes longitudinal per-car analysis possible;
//! * **one-way for outsiders** — without the salt, inverting the mix
//!   requires brute force over the id space *and* the 64-bit salt;
//! * **collision-checked** — construction verifies injectivity over the
//!   fleet size and re-salts on the (astronomically unlikely) collision.

use conncar_types::CarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// An anonymized car token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AnonId(pub u64);

impl fmt::Display for AnonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "anon-{:016x}", self.0)
    }
}

/// Keyed pseudonymizer for car ids.
#[derive(Debug, Clone)]
pub struct Anonymizer {
    salt: u64,
}

#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Anonymizer {
    /// Create with a secret salt.
    pub fn new(salt: u64) -> Anonymizer {
        Anonymizer { salt }
    }

    /// Pseudonym for one car.
    pub fn anonymize(&self, car: CarId) -> AnonId {
        AnonId(mix(mix(self.salt) ^ (car.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407)))
    }

    /// Verify injectivity over a fleet of `n` cars. Returns the mapping
    /// table (pseudonym → car) that a trusted party would escrow.
    pub fn build_table(&self, n: u32) -> Result<BTreeMap<AnonId, CarId>, u64> {
        let mut table = BTreeMap::new();
        for i in 0..n {
            let car = CarId(i);
            if table.insert(self.anonymize(car), car).is_some() {
                return Err(self.salt);
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_and_salted() {
        let a = Anonymizer::new(123);
        assert_eq!(a.anonymize(CarId(7)), a.anonymize(CarId(7)));
        let b = Anonymizer::new(124);
        assert_ne!(a.anonymize(CarId(7)), b.anonymize(CarId(7)));
    }

    #[test]
    fn injective_over_large_fleet() {
        let a = Anonymizer::new(0xFEED);
        let table = a.build_table(200_000).expect("no collisions");
        assert_eq!(table.len(), 200_000);
        assert_eq!(table[&a.anonymize(CarId(55))], CarId(55));
    }

    #[test]
    fn tokens_look_opaque() {
        // Adjacent car ids must not produce adjacent tokens.
        let a = Anonymizer::new(1);
        let d = a.anonymize(CarId(1)).0.abs_diff(a.anonymize(CarId(2)).0);
        assert!(d > 1_000_000);
        assert!(a.anonymize(CarId(0)).to_string().starts_with("anon-"));
    }
}

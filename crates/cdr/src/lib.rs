//! # conncar-cdr
//!
//! The Call Detail Record pipeline — the data plane of the study.
//!
//! The paper works from "anonymized call detail records" describing
//! radio-level connections: which (anonymized) car connected to which
//! cell, when, and for how long — *not* data volumes (§3). This crate
//! provides that representation and everything the paper's methodology
//! section does to it:
//!
//! * [`record`] — the typed CDR and the dataset container;
//! * [`anonymize`] — salted pseudonymization of car identities;
//! * [`codec`] — a compact binary codec (length-checked, versioned
//!   magic) and a CSV codec for interchange;
//! * [`faults`] — injection of the *real-world artifacts the paper had
//!   to clean*: records lasting exactly one hour (broken periodic
//!   reporting), whole days of partial data loss, sticky modems whose
//!   disconnects never got recorded — plus the wider collection-plane
//!   taxonomy (duplicates, nested overlaps, skewed modem clocks, and
//!   byte-level wire damage to the encoded stream);
//! * [`clean`] — §3's pre-processing as a staged pipeline (validate →
//!   dedup → glitch-drop → overlap-resolve) with per-stage counts and a
//!   quarantine of everything removed; truncate per-cell connections at
//!   600 s during analysis;
//! * [`session`] — §3's session aggregation: concatenate connections
//!   ≤ 30 s apart into aggregate sessions, and the looser 10-minute-gap
//!   *mobility sessions* used for the handover analysis of §4.5;
//! * [`io`] — chunked streaming reader/writer so traces larger than
//!   memory can be produced and consumed with bounded buffering; v2
//!   streams carry a per-chunk CRC so corruption is skipped-and-reported
//!   ([`IngestReport`]) rather than delivered.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Corrupt input is routine on this crate's ingest path: recoverable
// failures must flow into IngestReport/Quarantine (lint rule L4), so
// unwrap is banned outright in non-test code.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod anonymize;
pub mod clean;
pub mod codec;
pub mod faults;
pub mod io;
pub mod record;
pub mod session;

pub use anonymize::{AnonId, Anonymizer};
pub use clean::{
    truncate_records, CleanConfig, CleanOutcome, CleanReport, Cleaner, Quarantine,
    QuarantinedRecord, RejectReason, StreamCleanOutcome,
};
pub use codec::{BinaryCodec, CsvCodec};
pub use faults::{FaultConfig, FaultInjector, FaultReport, FaultStream, RealizedFaults, WireEvent};
pub use io::{
    crc32, salvage, salvage_logged, CdrReader, CdrWriter, ChunkVerdict, IngestReport, SalvageLog,
};
pub use record::{CdrDataset, CdrRecord, StreamDigest};
pub use session::{AggregateSession, SessionConfig, Sessionizer};

//! The Call Detail Record and the dataset container.

use conncar_radio::RadioConnection;
use conncar_types::{CarId, CellId, Duration, StudyPeriod, Timestamp};
use serde::{Deserialize, Serialize};

/// One radio-level connection record.
///
/// Field-for-field what the paper's data provides: "times and durations
/// of connections, as well as radio cells that they connect to, but not
/// data volumes" (§3). The carrier and radio technology are recoverable
/// from [`CellId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CdrRecord {
    /// Anonymized car identity (stable pseudonym).
    pub car: CarId,
    /// The serving cell.
    pub cell: CellId,
    /// Connection setup time.
    pub start: Timestamp,
    /// Connection release time (exclusive).
    pub end: Timestamp,
}

impl CdrRecord {
    /// Record duration.
    #[inline]
    pub fn duration(&self) -> Duration {
        self.end - self.start
    }

    /// Whether the record is well-formed (positive duration).
    #[inline]
    pub fn is_valid(&self) -> bool {
        self.end > self.start
    }
}

impl From<RadioConnection> for CdrRecord {
    fn from(c: RadioConnection) -> CdrRecord {
        CdrRecord {
            car: c.car,
            cell: c.cell,
            start: c.start,
            end: c.end,
        }
    }
}

/// An in-memory CDR dataset: records in canonical (car, start, cell)
/// order plus the study period they cover.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CdrDataset {
    period: StudyPeriod,
    records: Vec<CdrRecord>,
}

impl CdrDataset {
    /// Build a dataset, sorting records into canonical order.
    pub fn new(period: StudyPeriod, mut records: Vec<CdrRecord>) -> CdrDataset {
        records.sort_by_key(|r| (r.car, r.start, r.cell));
        CdrDataset { period, records }
    }

    /// Build from radio connections.
    pub fn from_connections(period: StudyPeriod, conns: Vec<RadioConnection>) -> CdrDataset {
        CdrDataset::new(period, conns.into_iter().map(CdrRecord::from).collect())
    }

    /// The study period.
    pub fn period(&self) -> StudyPeriod {
        self.period
    }

    /// All records in canonical order.
    pub fn records(&self) -> &[CdrRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the dataset holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterate per-car slices (records are grouped by car in canonical
    /// order).
    pub fn by_car(&self) -> impl Iterator<Item = (CarId, &[CdrRecord])> {
        ByCar {
            records: &self.records,
        }
    }

    /// Number of distinct cars present.
    pub fn car_count(&self) -> usize {
        self.by_car().count()
    }

    /// Number of distinct cells present.
    pub fn cell_count(&self) -> usize {
        let mut cells: Vec<CellId> = self.records.iter().map(|r| r.cell).collect();
        cells.sort();
        cells.dedup();
        cells.len()
    }

    /// Replace the record vector (used by cleaning/fault stages), which
    /// re-sorts into canonical order.
    pub fn with_records(&self, records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(self.period, records)
    }

    /// FNV-1a 64 fingerprint of the dataset's content: the period plus
    /// every record field, in canonical order. Two datasets digest
    /// equal iff they compare equal, so a replay can assert stage-level
    /// equivalence without shipping the full record vector.
    pub fn content_digest(&self) -> u64 {
        let mut h = conncar_types::Fnv64::new();
        h.update_u64(self.period.start_day().index() as u64);
        h.update_u64(self.period.days() as u64);
        h.update_u64(self.records.len() as u64);
        for r in &self.records {
            h.update_u64(r.car.0 as u64);
            h.update_u64(r.cell.station.0 as u64);
            h.update_u64(r.cell.sector as u64);
            h.update_u64(r.cell.carrier.index() as u64);
            h.update_u64(r.start.as_secs());
            h.update_u64(r.end.as_secs());
        }
        h.finish()
    }
}

/// Incremental FNV-1a 64 fingerprint over a dataset delivered as a
/// stream of canonical, car-disjoint chunks (the out-of-core build
/// path), equal for equal record streams without ever holding the whole
/// dataset.
///
/// Deliberately *not* byte-compatible with
/// [`CdrDataset::content_digest`]: that form hashes the record count
/// before the records — impossible one chunk at a time — so the stream
/// form hashes it last. Streamed recordings and their replays both use
/// this form, so stage-divergence detection is unaffected.
#[derive(Debug, Clone)]
pub struct StreamDigest {
    h: conncar_types::Fnv64,
    count: u64,
}

impl StreamDigest {
    /// Start a digest over `period`.
    pub fn new(period: StudyPeriod) -> StreamDigest {
        let mut h = conncar_types::Fnv64::new();
        h.update_u64(period.start_day().index() as u64);
        h.update_u64(period.days() as u64);
        StreamDigest { h, count: 0 }
    }

    /// Fold one chunk of canonical-order records into the digest.
    /// Chunks must arrive in stream order; concatenated they must form
    /// the canonical record sequence.
    pub fn update(&mut self, records: &[CdrRecord]) {
        for r in records {
            self.h.update_u64(r.car.0 as u64);
            self.h.update_u64(r.cell.station.0 as u64);
            self.h.update_u64(r.cell.sector as u64);
            self.h.update_u64(r.cell.carrier.index() as u64);
            self.h.update_u64(r.start.as_secs());
            self.h.update_u64(r.end.as_secs());
        }
        self.count += records.len() as u64;
    }

    /// Records folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Seal the digest (hashes the total record count last).
    pub fn finish(mut self) -> u64 {
        self.h.update_u64(self.count);
        self.h.finish()
    }
}

struct ByCar<'a> {
    records: &'a [CdrRecord],
}

impl<'a> Iterator for ByCar<'a> {
    type Item = (CarId, &'a [CdrRecord]);

    fn next(&mut self) -> Option<Self::Item> {
        let first = self.records.first()?;
        let car = first.car;
        let end = self
            .records
            .iter()
            .position(|r| r.car != car)
            .unwrap_or(self.records.len());
        let (head, tail) = self.records.split_at(end);
        self.records = tail;
        Some((car, head))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek};

    fn rec(car: u32, station: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    fn period() -> StudyPeriod {
        StudyPeriod::new(DayOfWeek::Monday, 7).unwrap()
    }

    #[test]
    fn canonical_ordering() {
        let ds = CdrDataset::new(
            period(),
            vec![rec(2, 1, 0, 10), rec(1, 1, 100, 110), rec(1, 2, 0, 10)],
        );
        let cars: Vec<u32> = ds.records().iter().map(|r| r.car.0).collect();
        assert_eq!(cars, vec![1, 1, 2]);
        assert_eq!(ds.records()[0].start.as_secs(), 0);
    }

    #[test]
    fn by_car_groups() {
        let ds = CdrDataset::new(
            period(),
            vec![
                rec(1, 1, 0, 10),
                rec(1, 2, 20, 30),
                rec(3, 1, 0, 10),
                rec(7, 9, 5, 6),
            ],
        );
        let groups: Vec<(u32, usize)> = ds.by_car().map(|(c, rs)| (c.0, rs.len())).collect();
        assert_eq!(groups, vec![(1, 2), (3, 1), (7, 1)]);
        assert_eq!(ds.car_count(), 3);
    }

    #[test]
    fn cell_count_dedups() {
        let ds = CdrDataset::new(
            period(),
            vec![rec(1, 1, 0, 10), rec(2, 1, 0, 10), rec(3, 4, 0, 10)],
        );
        assert_eq!(ds.cell_count(), 2);
    }

    #[test]
    fn empty_dataset() {
        let ds = CdrDataset::new(period(), Vec::new());
        assert!(ds.is_empty());
        assert_eq!(ds.by_car().count(), 0);
        assert_eq!(ds.cell_count(), 0);
    }

    #[test]
    fn content_digest_tracks_equality() {
        let a = CdrDataset::new(period(), vec![rec(1, 1, 0, 10), rec(2, 1, 5, 15)]);
        // Same records in a different input order: canonical sort makes
        // the datasets equal, so the digests match.
        let b = CdrDataset::new(period(), vec![rec(2, 1, 5, 15), rec(1, 1, 0, 10)]);
        assert_eq!(a, b);
        assert_eq!(a.content_digest(), b.content_digest());
        // Any field change moves the digest.
        let c = CdrDataset::new(period(), vec![rec(1, 1, 0, 11), rec(2, 1, 5, 15)]);
        assert_ne!(a.content_digest(), c.content_digest());
        // Empty differs from non-empty.
        assert_ne!(
            CdrDataset::new(period(), vec![]).content_digest(),
            a.content_digest()
        );
    }

    #[test]
    fn stream_digest_is_chunking_invariant() {
        let records = vec![
            rec(1, 1, 0, 10),
            rec(1, 2, 20, 30),
            rec(3, 1, 0, 10),
            rec(7, 9, 5, 6),
        ];
        let whole = {
            let mut d = StreamDigest::new(period());
            d.update(&records);
            d.finish()
        };
        for split in [0usize, 1, 2, 4] {
            let mut d = StreamDigest::new(period());
            d.update(&records[..split]);
            d.update(&records[split..]);
            assert_eq!(d.count(), records.len() as u64);
            assert_eq!(d.finish(), whole, "split at {split}");
        }
        // Sensitive to content and to count, like content_digest.
        let mut moved = StreamDigest::new(period());
        moved.update(&[rec(1, 1, 0, 11)]);
        moved.update(&records[1..]);
        assert_ne!(moved.finish(), whole);
        let mut short = StreamDigest::new(period());
        short.update(&records[..3]);
        assert_ne!(short.finish(), whole);
    }

    #[test]
    fn record_validity_and_duration() {
        let r = rec(1, 1, 10, 130);
        assert!(r.is_valid());
        assert_eq!(r.duration().as_secs(), 120);
        let bad = rec(1, 1, 10, 10);
        assert!(!bad.is_valid());
    }
}

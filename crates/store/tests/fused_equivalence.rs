//! Property tests: the fused executor is indistinguishable from the
//! per-analysis passes.
//!
//! Satellite requirement: for fuzzed datasets and filters, a
//! [`FusedPass`] carrying a per-car folder and a (cell, bin) triple
//! folder returns exactly what the standalone kernels return — across
//! shard counts 1, 2, 7, 64 *and* worker-thread counts 1, 2, 8 (swept
//! with [`set_worker_threads`]), with the shared scan's row accounting
//! counting the table once.

use conncar_cdr::{CdrDataset, CdrRecord};
use conncar_store::{kernels, set_worker_threads, CdrStore, Filter, FusedPass, RecordKind};
use conncar_types::{
    BaseStationId, CarId, Carrier, CellId, DayOfWeek, Duration, StudyPeriod, Timestamp,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 64];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Raw fuzzed rows → a dataset over a one-week period.
fn dataset(raw: &[(u32, u32, u64, u64)]) -> CdrDataset {
    let records: Vec<CdrRecord> = raw
        .iter()
        .map(|&(car, station, start, dur)| CdrRecord {
            car: CarId(car),
            cell: CellId::new(
                BaseStationId(station),
                (station % 3) as u8,
                if station % 2 == 0 { Carrier::C3 } else { Carrier::C1 },
            ),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        })
        .collect();
    CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
}

/// One car's selected rows as plain tuples, comparable across the
/// materialized, view and fused paths.
type Row = (CellId, u64, u64);

/// Run a fused pass with one per-car row collector and one (cell, bin)
/// triple folder; return both results plus the pass's rows-scanned.
fn fused_outputs(
    store: &CdrStore,
    filter: &Filter,
    bin_limit: u64,
) -> (Vec<(CarId, Vec<Row>)>, Vec<(CellId, u64, CarId)>, u64) {
    let mut pass = FusedPass::new(store, filter.clone());
    let rows_h = pass.add_per_car(
        "rows",
        Vec::new,
        |acc: &mut Vec<(CarId, Vec<Row>)>, v| {
            let mut rows = Vec::with_capacity(v.len());
            v.for_each_selected(|i| rows.push((v.cells[i], v.starts[i], v.ends[i])));
            acc.push((v.car, rows));
        },
        |mut a: Vec<(CarId, Vec<Row>)>, mut b| {
            a.append(&mut b);
            a
        },
    );
    let triples_h = pass.add_cell_bin_triples("triples", bin_limit);
    let mut out = pass.run();
    let scanned = out.stats().rows_scanned;
    let mut per_car = out.take(rows_h);
    per_car.sort_by_key(|&(car, _)| car);
    (per_car, out.take(triples_h), scanned)
}

proptest! {
    #[test]
    fn fused_pass_equals_per_analysis_passes(
        raw in collection::vec((0u32..120, 0u32..24, 0u64..590_000, 1u64..3_000), 0..160),
        car in 0u32..120,
        w in (0u64..500_000, 1u64..200_000),
        filtered in any::<bool>(),
    ) {
        let ds = dataset(&raw);
        let filter = if filtered {
            Filter::all()
                .cars(vec![CarId(car), CarId(car / 2), CarId(car / 3)])
                .window(Timestamp::from_secs(w.0), Timestamp::from_secs(w.0 + w.1))
                .kind(RecordKind::ShorterThan(Duration::from_secs(1_500)))
        } else {
            Filter::all()
        };
        let bin_limit = ds.period().total_bins();

        // Baseline: the standalone kernels at one shard, one thread.
        set_worker_threads(1);
        let base = CdrStore::build(&ds, 1);
        let (per_car_base, _) = kernels::fold_per_car(&base, &filter, |_, records| {
            records
                .iter()
                .map(|r| (r.cell, r.start.as_secs(), r.end.as_secs()))
                .collect::<Vec<Row>>()
        });
        let (triples_base, _) = kernels::cell_bin_car_triples(&base, &filter, bin_limit);

        for &shards in &SHARD_COUNTS {
            let store = CdrStore::build(&ds, shards);
            for &threads in &THREAD_COUNTS {
                set_worker_threads(threads);
                let ctx = format!("shards={shards} threads={threads}");

                // The view kernel agrees with the materialized kernel.
                let (per_car_views, _) = kernels::fold_per_car_views(&store, &filter, |v| {
                    let mut rows = Vec::with_capacity(v.len());
                    v.for_each_selected(|i| rows.push((v.cells[i], v.starts[i], v.ends[i])));
                    rows
                });
                prop_assert_eq!(&per_car_views, &per_car_base, "views {}", &ctx);

                // The fused pass agrees with both standalone kernels and
                // scans each row exactly once for all its folders.
                let (per_car_fused, triples_fused, scanned) =
                    fused_outputs(&store, &filter, bin_limit);
                prop_assert_eq!(&per_car_fused, &per_car_base, "fused per-car {}", &ctx);
                prop_assert_eq!(&triples_fused, &triples_base, "fused triples {}", &ctx);
                // A car set narrows the walk through the car directory,
                // so exact full-scan accounting holds only unfiltered.
                if !filtered {
                    prop_assert_eq!(scanned as usize, ds.len(), "rows scanned {}", &ctx);
                }
            }
        }
        set_worker_threads(0);
    }
}

/// Deterministic (non-fuzzed) sweep kept as a fast smoke for the same
/// invariant, so a proptest shrink never hides the basic case.
#[test]
fn fused_smoke_over_shards_and_threads() {
    let raw: Vec<(u32, u32, u64, u64)> = (0..400)
        .map(|i| {
            (
                i % 37,
                i % 24,
                u64::from(i) * 1_499 % 590_000,
                1 + u64::from(i * 7 % 2_900),
            )
        })
        .collect();
    let ds = dataset(&raw);
    let bin_limit = ds.period().total_bins();
    set_worker_threads(1);
    let base = CdrStore::build(&ds, 1);
    let (triples_base, _) = kernels::cell_bin_car_triples(&base, &Filter::all(), bin_limit);
    assert!(!triples_base.is_empty());
    for &shards in &SHARD_COUNTS {
        let store = CdrStore::build(&ds, shards);
        for &threads in &THREAD_COUNTS {
            set_worker_threads(threads);
            let (_, triples, scanned) = fused_outputs(&store, &Filter::all(), bin_limit);
            assert_eq!(triples, triples_base, "shards={shards} threads={threads}");
            assert_eq!(scanned as usize, ds.len());
        }
    }
    set_worker_threads(0);
}

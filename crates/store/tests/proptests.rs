//! Property tests: the store is a lossless re-layout of its input.
//!
//! Satellite requirement: build → full-scan query returns exactly the
//! input record multiset, regardless of shard count (1, 2, 7, 64) —
//! and no filter's result depends on how the data was sharded.

use conncar_cdr::{CdrDataset, CdrRecord};
use conncar_store::{CdrStore, Filter, RecordKind};
use conncar_types::{
    BaseStationId, CarId, Carrier, CellId, DayOfWeek, Duration, StudyPeriod, Timestamp,
};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 64];

/// Raw fuzzed rows → a dataset over a one-week period.
fn dataset(raw: &[(u32, u32, u64, u64)]) -> CdrDataset {
    let records: Vec<CdrRecord> = raw
        .iter()
        .map(|&(car, station, start, dur)| CdrRecord {
            car: CarId(car),
            cell: CellId::new(
                BaseStationId(station),
                (station % 3) as u8,
                if station % 2 == 0 { Carrier::C3 } else { Carrier::C1 },
            ),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        })
        .collect();
    CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
}

proptest! {
    #[test]
    fn full_scan_is_the_exact_input_multiset(
        raw in collection::vec((0u32..120, 0u32..24, 0u64..590_000, 1u64..3_000), 0..160),
        sidx in 0usize..4,
    ) {
        let ds = dataset(&raw);
        let store = CdrStore::build(&ds, SHARD_COUNTS[sidx]);
        let (got, stats) = store.collect(&Filter::all());
        // CdrDataset::new canonicalizes order, so multiset equality over
        // the input is exact Vec equality against the dataset's records.
        prop_assert_eq!(got.as_slice(), ds.records());
        prop_assert_eq!(stats.rows_scanned as usize, ds.len());
        prop_assert_eq!(stats.rows_matched as usize, ds.len());
        let (n, _) = store.count(&Filter::all());
        prop_assert_eq!(n as usize, ds.len());
    }

    #[test]
    fn sharding_never_changes_a_filtered_result(
        raw in collection::vec((0u32..120, 0u32..24, 0u64..590_000, 1u64..3_000), 0..160),
        car in 0u32..120,
        w in (0u64..500_000, 1u64..200_000),
    ) {
        let ds = dataset(&raw);
        let filter = Filter::all()
            .cars(vec![CarId(car), CarId(car / 2)])
            .window(Timestamp::from_secs(w.0), Timestamp::from_secs(w.0 + w.1))
            .kind(RecordKind::ShorterThan(Duration::from_secs(1_500)));
        let baseline = CdrStore::build(&ds, SHARD_COUNTS[0]).collect(&filter).0;
        // The baseline must agree with a naive filter of the flat records.
        let naive: Vec<CdrRecord> = ds.records().iter().copied().filter(|r| filter.matches(r)).collect();
        prop_assert_eq!(baseline.as_slice(), naive.as_slice());
        for &shards in &SHARD_COUNTS[1..] {
            let (got, _) = CdrStore::build(&ds, shards).collect(&filter);
            prop_assert_eq!(got.as_slice(), baseline.as_slice());
        }
    }
}

//! One shard of the store: struct-of-arrays columns plus its indexes.
//!
//! A shard owns every record of the cars hashed to it, in the dataset's
//! canonical `(car, start, cell)` order. The four row attributes live in
//! parallel column vectors — scans that only touch time and duration
//! never pull car or cell ids through the cache. Three indexes ride on
//! top, all invariant-checked in the crate's tests:
//!
//! * **car directory** — `(car, first_row, rows)` spans, ascending by
//!   car; groups are contiguous because rows are in canonical order;
//! * **cell postings** — for each distinct cell, the ascending row ids
//!   that connect to it;
//! * **time index** — a permutation of row ids sorted by start second,
//!   with the shard's `[min_start, max_end)` envelope for pruning.

use conncar_cdr::CdrRecord;
use conncar_types::{CarId, CellId};

/// A contiguous run of rows belonging to one car.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarGroup {
    /// The car every row in the span belongs to.
    pub car: CarId,
    /// First row id of the span.
    pub first: u32,
    /// Number of rows in the span.
    pub rows: u32,
}

/// The ascending row ids connecting to one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPostings {
    /// The cell.
    pub cell: CellId,
    /// Row ids, ascending.
    pub rows: Vec<u32>,
}

/// One shard: columns in canonical row order plus indexes.
#[derive(Debug, Clone, Default)]
pub struct Shard {
    pub(crate) cars: Vec<CarId>,
    pub(crate) cells: Vec<CellId>,
    pub(crate) starts: Vec<u64>,
    pub(crate) ends: Vec<u64>,
    pub(crate) car_dir: Vec<CarGroup>,
    pub(crate) cell_dir: Vec<CellPostings>,
    pub(crate) time_index: Vec<u32>,
    pub(crate) min_start: u64,
    pub(crate) max_end: u64,
}

impl Shard {
    /// Build a shard from records already in canonical order.
    pub(crate) fn build(records: &[&CdrRecord]) -> Shard {
        let n = records.len();
        let mut shard = Shard {
            cars: Vec::with_capacity(n),
            cells: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            car_dir: Vec::new(),
            cell_dir: Vec::new(),
            time_index: Vec::with_capacity(n),
            min_start: u64::MAX,
            max_end: 0,
        };
        for (row, r) in records.iter().enumerate() {
            shard.cars.push(r.car);
            shard.cells.push(r.cell);
            let (s, e) = (r.start.as_secs(), r.end.as_secs());
            shard.starts.push(s);
            shard.ends.push(e);
            shard.min_start = shard.min_start.min(s);
            shard.max_end = shard.max_end.max(e);
            match shard.car_dir.last_mut() {
                Some(g) if g.car == r.car => g.rows += 1,
                _ => shard.car_dir.push(CarGroup {
                    car: r.car,
                    first: row as u32,
                    rows: 1,
                }),
            }
        }
        // Cell postings: sort (cell, row) pairs, then group.
        let mut pairs: Vec<(CellId, u32)> = shard
            .cells
            .iter()
            .enumerate()
            .map(|(row, &cell)| (cell, row as u32))
            .collect();
        pairs.sort_unstable();
        for (cell, row) in pairs {
            match shard.cell_dir.last_mut() {
                Some(p) if p.cell == cell => p.rows.push(row),
                _ => shard.cell_dir.push(CellPostings {
                    cell,
                    rows: vec![row],
                }),
            }
        }
        // Time index: permutation sorted by (start, row).
        shard.time_index = (0..n as u32).collect();
        shard.time_index.sort_by_key(|&row| (shard.starts[row as usize], row));
        shard
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.cars.len()
    }

    /// Whether the shard holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cars.is_empty()
    }

    /// Materialize one row back into a [`CdrRecord`].
    #[inline]
    pub fn record(&self, row: usize) -> CdrRecord {
        CdrRecord {
            car: self.cars[row],
            cell: self.cells[row],
            start: conncar_types::Timestamp::from_secs(self.starts[row]),
            end: conncar_types::Timestamp::from_secs(self.ends[row]),
        }
    }

    /// Materialize `rows` consecutive rows starting at `first` into
    /// `buf` — the whole-group path for folders that want records but
    /// whose filter has no row predicate.
    #[inline]
    pub(crate) fn materialize_range(&self, first: usize, rows: usize, buf: &mut Vec<CdrRecord>) {
        buf.reserve(rows);
        for row in first..first + rows {
            buf.push(self.record(row));
        }
    }

    /// The per-car row spans, ascending by car.
    #[inline]
    pub fn car_groups(&self) -> &[CarGroup] {
        &self.car_dir
    }

    /// The per-cell postings, ascending by cell.
    #[inline]
    pub fn cell_postings(&self) -> &[CellPostings] {
        &self.cell_dir
    }

    /// Earliest start second in the shard (`u64::MAX` when empty).
    #[inline]
    pub fn min_start(&self) -> u64 {
        self.min_start
    }

    /// Latest end second in the shard (0 when empty).
    #[inline]
    pub fn max_end(&self) -> u64 {
        self.max_end
    }

    /// The row-id permutation sorted by start second.
    #[inline]
    pub fn time_index(&self) -> &[u32] {
        &self.time_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier, Timestamp};

    fn rec(car: u32, station: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    fn shard(records: &[CdrRecord]) -> Shard {
        Shard::build(&records.iter().collect::<Vec<_>>())
    }

    #[test]
    fn columns_round_trip_rows() {
        let records = vec![rec(1, 1, 0, 10), rec(1, 2, 20, 30), rec(5, 1, 5, 15)];
        let s = shard(&records);
        assert_eq!(s.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(s.record(i), *r);
        }
    }

    #[test]
    fn car_directory_spans_are_contiguous_and_exhaustive() {
        let records = vec![
            rec(1, 1, 0, 10),
            rec(1, 2, 20, 30),
            rec(3, 1, 0, 10),
            rec(7, 9, 5, 6),
        ];
        let s = shard(&records);
        let groups: Vec<(u32, u32, u32)> = s
            .car_groups()
            .iter()
            .map(|g| (g.car.0, g.first, g.rows))
            .collect();
        assert_eq!(groups, vec![(1, 0, 2), (3, 2, 1), (7, 3, 1)]);
        let covered: u32 = s.car_groups().iter().map(|g| g.rows).sum();
        assert_eq!(covered as usize, s.len());
    }

    #[test]
    fn cell_postings_are_sorted_and_complete() {
        let records = vec![rec(1, 2, 0, 10), rec(1, 1, 20, 30), rec(3, 2, 1, 4)];
        let s = shard(&records);
        let cells: Vec<u32> = s.cell_postings().iter().map(|p| p.cell.station.0).collect();
        assert_eq!(cells, vec![1, 2]);
        let total: usize = s.cell_postings().iter().map(|p| p.rows.len()).sum();
        assert_eq!(total, s.len());
        for p in s.cell_postings() {
            assert!(p.rows.windows(2).all(|w| w[0] < w[1]));
            for &row in &p.rows {
                assert_eq!(s.cells[row as usize], p.cell);
            }
        }
    }

    #[test]
    fn time_index_sorts_by_start_and_envelope_bounds() {
        let records = vec![rec(1, 1, 50, 60), rec(1, 1, 10, 95), rec(2, 1, 30, 40)];
        let s = shard(&records);
        let starts: Vec<u64> = s
            .time_index()
            .iter()
            .map(|&row| s.starts[row as usize])
            .collect();
        assert_eq!(starts, vec![10, 30, 50]);
        assert_eq!(s.min_start(), 10);
        assert_eq!(s.max_end(), 95);
    }

    #[test]
    fn empty_shard_envelope() {
        let s = shard(&[]);
        assert!(s.is_empty());
        assert_eq!(s.min_start(), u64::MAX);
        assert_eq!(s.max_end(), 0);
        assert!(s.car_groups().is_empty());
    }
}

//! One shard of the store: columns plus indexes, in one of two
//! physical representations.
//!
//! A shard owns every record of the cars hashed to it, in the dataset's
//! canonical `(car, start, cell)` order (by global row id). Two layouts
//! exist behind the same public surface:
//!
//! * **flat** ([`FlatCols`], the batch-build layout) — four parallel
//!   column vectors plus three indexes: the **cell postings** (for each
//!   distinct cell, the ascending row ids that connect to it) and the
//!   **time index** (a row-id permutation sorted by start second).
//! * **packed** ([`crate::packed::PackedCols`], the streaming-append
//!   layout) — time-partitioned segments with dictionary-coded cells,
//!   delta-packed starts and bitpacked durations. Kernels decode one
//!   car group at a time, fused into the scan; the full columns are
//!   never inflated. Packed shards carry no cell postings or time
//!   index (those return empty), so row-predicate queries fall back to
//!   group scans — same results, different `QueryStats`.
//!
//! Both representations share the **car directory** — `(car,
//! first_row, rows)` spans ascending by car — and the `[min_start,
//! max_end)` envelope used for shard pruning; every invariant is
//! checked in the crate's tests.

use crate::packed::{Epoch, GroupScratch, PackedCols};
use conncar_cdr::CdrRecord;
use conncar_types::{CarId, CellId, Error, Result};

/// A contiguous run of rows belonging to one car.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarGroup {
    /// The car every row in the span belongs to.
    pub car: CarId,
    /// First row id of the span.
    pub first: u32,
    /// Number of rows in the span.
    pub rows: u32,
}

/// The ascending row ids connecting to one cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellPostings {
    /// The cell.
    pub cell: CellId,
    /// Row ids, ascending.
    pub rows: Vec<u32>,
}

/// The flat (batch-built) representation: parallel column vectors plus
/// the cell and time indexes.
#[derive(Debug, Clone, Default)]
pub(crate) struct FlatCols {
    pub(crate) cars: Vec<CarId>,
    pub(crate) cells: Vec<CellId>,
    pub(crate) starts: Vec<u64>,
    pub(crate) ends: Vec<u64>,
    pub(crate) cell_dir: Vec<CellPostings>,
    pub(crate) time_index: Vec<u32>,
}

/// Which physical layout a shard's rows live in.
#[derive(Debug, Clone)]
pub(crate) enum Repr {
    /// Flat columns (batch build).
    Flat(FlatCols),
    /// Segment-encoded epochs (streaming append).
    Packed(PackedCols),
}

/// One shard: rows in canonical order behind one of two layouts.
#[derive(Debug, Clone)]
pub struct Shard {
    pub(crate) repr: Repr,
    pub(crate) car_dir: Vec<CarGroup>,
    pub(crate) min_start: u64,
    pub(crate) max_end: u64,
}

impl Default for Shard {
    fn default() -> Shard {
        Shard {
            repr: Repr::Flat(FlatCols::default()),
            car_dir: Vec::new(),
            min_start: u64::MAX,
            max_end: 0,
        }
    }
}

impl Shard {
    /// Build a flat shard from records already in canonical order.
    pub(crate) fn build(records: &[&CdrRecord]) -> Shard {
        let n = records.len();
        let mut shard = Shard::default();
        let mut f = FlatCols {
            cars: Vec::with_capacity(n),
            cells: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            cell_dir: Vec::new(),
            time_index: Vec::with_capacity(n),
        };
        for (row, r) in records.iter().enumerate() {
            f.cars.push(r.car);
            f.cells.push(r.cell);
            let (s, e) = (r.start.as_secs(), r.end.as_secs());
            f.starts.push(s);
            f.ends.push(e);
            shard.min_start = shard.min_start.min(s);
            shard.max_end = shard.max_end.max(e);
            match shard.car_dir.last_mut() {
                Some(g) if g.car == r.car => g.rows += 1,
                _ => shard.car_dir.push(CarGroup {
                    car: r.car,
                    first: row as u32,
                    rows: 1,
                }),
            }
        }
        // Cell postings: sort (cell, row) pairs, then group.
        let mut pairs: Vec<(CellId, u32)> = f
            .cells
            .iter()
            .enumerate()
            .map(|(row, &cell)| (cell, row as u32))
            .collect();
        pairs.sort_unstable();
        for (cell, row) in pairs {
            match f.cell_dir.last_mut() {
                Some(p) if p.cell == cell => p.rows.push(row),
                _ => f.cell_dir.push(CellPostings {
                    cell,
                    rows: vec![row],
                }),
            }
        }
        // Time index: permutation sorted by (start, row).
        f.time_index = (0..n as u32).collect();
        f.time_index.sort_by_key(|&row| (f.starts[row as usize], row));
        shard.repr = Repr::Flat(f);
        shard
    }

    /// An empty shard in the packed (appendable) representation.
    pub(crate) fn packed_empty() -> Shard {
        Shard {
            repr: Repr::Packed(PackedCols::default()),
            ..Shard::default()
        }
    }

    /// The flat columns, when this shard is flat.
    #[inline]
    pub(crate) fn flat(&self) -> Option<&FlatCols> {
        match &self.repr {
            Repr::Flat(f) => Some(f),
            Repr::Packed(_) => None,
        }
    }

    /// The packed columns, when this shard is packed.
    #[inline]
    pub(crate) fn packed(&self) -> Option<&PackedCols> {
        match &self.repr {
            Repr::Flat(_) => None,
            Repr::Packed(p) => Some(p),
        }
    }

    /// Append one chunk's rows (canonical order, cars strictly after
    /// every car already present) as a pre-encoded epoch. Streaming
    /// misuse surfaces as a typed [`Error::StoreAppend`], never a panic.
    pub(crate) fn append_epoch(
        &mut self,
        epoch: Epoch,
        groups: Vec<CarGroup>,
        min_start: u64,
        max_end: u64,
    ) -> Result<()> {
        let Repr::Packed(p) = &mut self.repr else {
            return Err(Error::StoreAppend {
                what: "repr",
                why: "cannot append an epoch to a flat (batch-built) shard".into(),
            });
        };
        if epoch.first_row as usize != p.rows {
            return Err(Error::StoreAppend {
                what: "row_offset",
                why: format!(
                    "epoch starts at row {} but the shard holds {} rows",
                    epoch.first_row, p.rows
                ),
            });
        }
        if let (Some(last), Some(first)) = (self.car_dir.last(), groups.first()) {
            if first.car <= last.car {
                return Err(Error::StoreAppend {
                    what: "car_order",
                    why: format!(
                        "epoch begins with car {} but car {} was already appended",
                        first.car.0, last.car.0
                    ),
                });
            }
        }
        p.rows += epoch.rows as usize;
        p.epochs.push(epoch);
        self.car_dir.extend(groups);
        self.min_start = self.min_start.min(min_start);
        self.max_end = self.max_end.max(max_end);
        Ok(())
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Flat(f) => f.cars.len(),
            Repr::Packed(p) => p.rows,
        }
    }

    /// Whether the shard holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialize one row back into a [`CdrRecord`].
    ///
    /// Flat shards read the columns directly. Packed shards decode the
    /// whole car group containing the row (the slow compatibility path;
    /// scans decode each group once instead).
    #[inline]
    pub fn record(&self, row: usize) -> CdrRecord {
        match &self.repr {
            Repr::Flat(f) => CdrRecord {
                car: f.cars[row],
                cell: f.cells[row],
                start: conncar_types::Timestamp::from_secs(f.starts[row]),
                end: conncar_types::Timestamp::from_secs(f.ends[row]),
            },
            Repr::Packed(p) => {
                let g = self.group_of(row);
                let mut scratch = GroupScratch::default();
                scratch.decode_group(p, &g);
                let i = row - g.first as usize;
                CdrRecord {
                    car: g.car,
                    cell: scratch.cells[i],
                    start: conncar_types::Timestamp::from_secs(scratch.starts[i]),
                    end: conncar_types::Timestamp::from_secs(scratch.ends[i]),
                }
            }
        }
    }

    /// The car group containing global row id `row`.
    fn group_of(&self, row: usize) -> CarGroup {
        let i = self.car_dir.partition_point(|g| g.first as usize <= row);
        self.car_dir[i - 1]
    }

    /// Materialize `rows` consecutive rows starting at `first` into
    /// `buf` — the whole-group path for folders that want records but
    /// whose filter has no row predicate.
    pub(crate) fn materialize_range(&self, first: usize, rows: usize, buf: &mut Vec<CdrRecord>) {
        buf.reserve(rows);
        match &self.repr {
            Repr::Flat(_) => {
                for row in first..first + rows {
                    buf.push(self.record(row));
                }
            }
            Repr::Packed(p) => {
                // Decode each covering car group once, then copy the
                // covered sub-range.
                let mut scratch = GroupScratch::default();
                let mut row = first;
                let end = first + rows;
                while row < end {
                    let g = self.group_of(row);
                    scratch.decode_group(p, &g);
                    let g0 = g.first as usize;
                    let hi = end.min(g0 + g.rows as usize);
                    for i in row - g0..hi - g0 {
                        buf.push(CdrRecord {
                            car: g.car,
                            cell: scratch.cells[i],
                            start: conncar_types::Timestamp::from_secs(scratch.starts[i]),
                            end: conncar_types::Timestamp::from_secs(scratch.ends[i]),
                        });
                    }
                    row = hi;
                }
            }
        }
    }

    /// The per-car row spans, ascending by car.
    #[inline]
    pub fn car_groups(&self) -> &[CarGroup] {
        &self.car_dir
    }

    /// The per-cell postings, ascending by cell (empty for packed
    /// shards, which carry no cell index).
    #[inline]
    pub fn cell_postings(&self) -> &[CellPostings] {
        match &self.repr {
            Repr::Flat(f) => &f.cell_dir,
            Repr::Packed(_) => &[],
        }
    }

    /// Earliest start second in the shard (`u64::MAX` when empty).
    #[inline]
    pub fn min_start(&self) -> u64 {
        self.min_start
    }

    /// Latest end second in the shard (0 when empty).
    #[inline]
    pub fn max_end(&self) -> u64 {
        self.max_end
    }

    /// The row-id permutation sorted by start second (empty for packed
    /// shards, which carry no time index).
    #[inline]
    pub fn time_index(&self) -> &[u32] {
        match &self.repr {
            Repr::Flat(f) => &f.time_index,
            Repr::Packed(_) => &[],
        }
    }

    /// Heap bytes held by this shard's row encodings (columns and
    /// per-segment encodings; excludes the shared car directory).
    pub fn encoded_bytes(&self) -> usize {
        match &self.repr {
            Repr::Flat(f) => {
                f.cars.len() * std::mem::size_of::<CarId>()
                    + f.cells.len() * std::mem::size_of::<CellId>()
                    + (f.starts.len() + f.ends.len()) * 8
                    + f.time_index.len() * 4
                    + f
                        .cell_dir
                        .iter()
                        .map(|p| p.rows.len() * 4 + std::mem::size_of::<CellPostings>())
                        .sum::<usize>()
            }
            Repr::Packed(p) => p.heap_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier, Timestamp};

    fn rec(car: u32, station: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    fn shard(records: &[CdrRecord]) -> Shard {
        Shard::build(&records.iter().collect::<Vec<_>>())
    }

    /// A packed shard holding `records` as one epoch.
    fn packed_shard(records: &[CdrRecord]) -> Shard {
        let mut s = Shard::packed_empty();
        append_records(&mut s, records).unwrap();
        s
    }

    /// Append `records` (canonical order) as one epoch.
    fn append_records(s: &mut Shard, records: &[CdrRecord]) -> conncar_types::Result<()> {
        let refs: Vec<&CdrRecord> = records.iter().collect();
        let first_row = s.len() as u32;
        let epoch = Epoch::build(&refs, first_row, 3_600);
        let mut groups: Vec<CarGroup> = Vec::new();
        let (mut lo, mut hi) = (u64::MAX, 0u64);
        for (i, r) in refs.iter().enumerate() {
            lo = lo.min(r.start.as_secs());
            hi = hi.max(r.end.as_secs());
            match groups.last_mut() {
                Some(g) if g.car == r.car => g.rows += 1,
                _ => groups.push(CarGroup {
                    car: r.car,
                    first: first_row + i as u32,
                    rows: 1,
                }),
            }
        }
        s.append_epoch(epoch, groups, lo, hi)
    }

    #[test]
    fn columns_round_trip_rows() {
        let records = vec![rec(1, 1, 0, 10), rec(1, 2, 20, 30), rec(5, 1, 5, 15)];
        for s in [shard(&records), packed_shard(&records)] {
            assert_eq!(s.len(), 3);
            for (i, r) in records.iter().enumerate() {
                assert_eq!(s.record(i), *r);
            }
        }
    }

    #[test]
    fn car_directory_spans_are_contiguous_and_exhaustive() {
        let records = vec![
            rec(1, 1, 0, 10),
            rec(1, 2, 20, 30),
            rec(3, 1, 0, 10),
            rec(7, 9, 5, 6),
        ];
        for s in [shard(&records), packed_shard(&records)] {
            let groups: Vec<(u32, u32, u32)> = s
                .car_groups()
                .iter()
                .map(|g| (g.car.0, g.first, g.rows))
                .collect();
            assert_eq!(groups, vec![(1, 0, 2), (3, 2, 1), (7, 3, 1)]);
            let covered: u32 = s.car_groups().iter().map(|g| g.rows).sum();
            assert_eq!(covered as usize, s.len());
        }
    }

    #[test]
    fn cell_postings_are_sorted_and_complete() {
        let records = vec![rec(1, 2, 0, 10), rec(1, 1, 20, 30), rec(3, 2, 1, 4)];
        let s = shard(&records);
        let cells: Vec<u32> = s.cell_postings().iter().map(|p| p.cell.station.0).collect();
        assert_eq!(cells, vec![1, 2]);
        let total: usize = s.cell_postings().iter().map(|p| p.rows.len()).sum();
        assert_eq!(total, s.len());
        for p in s.cell_postings() {
            assert!(p.rows.windows(2).all(|w| w[0] < w[1]));
            for &row in &p.rows {
                assert_eq!(s.record(row as usize).cell, p.cell);
            }
        }
    }

    #[test]
    fn time_index_sorts_by_start_and_envelope_bounds() {
        let records = vec![rec(1, 1, 50, 60), rec(1, 1, 10, 95), rec(2, 1, 30, 40)];
        let s = shard(&records);
        let starts: Vec<u64> = s
            .time_index()
            .iter()
            .map(|&row| s.record(row as usize).start.as_secs())
            .collect();
        assert_eq!(starts, vec![10, 30, 50]);
        assert_eq!(s.min_start(), 10);
        assert_eq!(s.max_end(), 95);
    }

    #[test]
    fn packed_shard_skips_row_indexes_but_keeps_envelope() {
        let records = vec![rec(1, 1, 50, 60), rec(1, 1, 10, 95), rec(2, 1, 30, 40)];
        // Canonical order within a shard is (car, start, cell).
        let mut sorted = records.clone();
        sorted.sort_by_key(|r| (r.car, r.start, r.cell));
        let s = packed_shard(&sorted);
        assert!(s.cell_postings().is_empty());
        assert!(s.time_index().is_empty());
        assert_eq!(s.min_start(), 10);
        assert_eq!(s.max_end(), 95);
    }

    #[test]
    fn append_rejects_out_of_order_cars() {
        let mut s = Shard::packed_empty();
        append_records(&mut s, &[rec(5, 1, 0, 10)]).unwrap();
        let err = append_records(&mut s, &[rec(3, 1, 0, 10)]).unwrap_err();
        assert!(
            matches!(err, Error::StoreAppend { what: "car_order", .. }),
            "{err}"
        );
    }

    #[test]
    fn append_rejects_flat_shards_and_bad_offsets() {
        let mut s = shard(&[rec(1, 1, 0, 10)]);
        let err = append_records(&mut s, &[rec(2, 1, 0, 10)]).unwrap_err();
        assert!(matches!(err, Error::StoreAppend { what: "repr", .. }), "{err}");

        let mut s = Shard::packed_empty();
        let epoch = Epoch::build(&[], 7, 3_600);
        let err = s.append_epoch(epoch, Vec::new(), u64::MAX, 0).unwrap_err();
        assert!(
            matches!(err, Error::StoreAppend { what: "row_offset", .. }),
            "{err}"
        );
    }

    #[test]
    fn materialize_range_spans_group_boundaries() {
        let records = vec![
            rec(1, 1, 0, 10),
            rec(1, 2, 20, 30),
            rec(3, 1, 0, 10),
            rec(7, 9, 5, 6),
        ];
        for s in [shard(&records), packed_shard(&records)] {
            let mut buf = Vec::new();
            s.materialize_range(1, 3, &mut buf);
            assert_eq!(buf, records[1..4]);
        }
    }

    #[test]
    fn empty_shard_envelope() {
        for s in [shard(&[]), Shard::packed_empty()] {
            assert!(s.is_empty());
            assert_eq!(s.min_start(), u64::MAX);
            assert_eq!(s.max_end(), 0);
            assert!(s.car_groups().is_empty());
            assert_eq!(s.encoded_bytes(), 0);
        }
    }
}

//! Compact segment encodings for streamed (appended) shards.
//!
//! A shard built by the streaming path ([`crate::StoreBuilder`]) does
//! not hold four flat column vectors; it holds **epochs** (one per
//! appended chunk) of time-partitioned **segments**, each segment
//! encoding its rows compactly:
//!
//! * **dictionary-coded cells** — the segment's distinct `CellId`s in a
//!   sorted dictionary, rows store fixed-width indexes into it;
//! * **delta-packed starts** — start seconds are stored as offsets from
//!   the segment's base (`bucket * segment_secs`), so their width is
//!   bounded by `log2(segment_secs)` no matter how long the study is;
//! * **bitpacked durations** — `end - start` at the segment's own
//!   maximum width.
//!
//! Decoding is *fused into the scan*: kernels decode one car group at a
//! time into a reusable [`GroupScratch`] and hand the columns to the
//! same zero-materialization `CarView` folders the flat representation
//! feeds. The full columns are never inflated.
//!
//! Layout invariants (checked by this module's tests):
//!
//! * a car's rows live in exactly one epoch (chunks carry disjoint,
//!   ascending car ranges);
//! * within a segment, rows keep the canonical `(car, start, cell)`
//!   order restricted to that segment, so spans are contiguous and
//!   ascending by car;
//! * a car's canonical row sequence is the concatenation of its
//!   per-segment runs in segment (= time bucket) order, because the
//!   bucket of a start second is monotone in the start second.

use conncar_cdr::CdrRecord;
use conncar_types::{CarId, CellId};

use crate::columns::CarGroup;

/// A fixed-width bitpacked vector of `u64` values.
///
/// Width 0 encodes the all-zeros vector in no words at all. A value may
/// straddle two words; `get` stitches the halves back together.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedInts {
    width: u32,
    mask: u64,
    len: usize,
    words: Vec<u64>,
}

impl PackedInts {
    /// Pack `values` at the smallest width that holds their maximum.
    pub(crate) fn pack(values: &[u64]) -> PackedInts {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = 64 - max.leading_zeros();
        let mask = if width == 0 { 0 } else { u64::MAX >> (64 - width) };
        let mut words = Vec::new();
        if width > 0 {
            words.resize((values.len() * width as usize).div_ceil(64), 0u64);
            for (i, &v) in values.iter().enumerate() {
                let bit = i * width as usize;
                let (w, off) = (bit >> 6, (bit & 63) as u32);
                words[w] |= v << off;
                let have = 64 - off;
                if have < width {
                    words[w + 1] |= v >> have;
                }
            }
        }
        PackedInts {
            width,
            mask,
            len: values.len(),
            words,
        }
    }

    /// Number of packed values.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// The value at index `i` (0 for any index when width is 0).
    #[inline]
    pub(crate) fn get(&self, i: usize) -> u64 {
        if self.width == 0 {
            return 0;
        }
        let bit = i * self.width as usize;
        let (w, off) = (bit >> 6, (bit & 63) as u32);
        let lo = self.words[w] >> off;
        let have = 64 - off;
        let v = if have >= self.width {
            lo
        } else {
            lo | (self.words[w + 1] << have)
        };
        v & self.mask
    }

    /// Bits per value.
    #[inline]
    pub(crate) fn width(&self) -> u32 {
        self.width
    }

    /// Heap bytes held by the packed words.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.words.len() * 8
    }
}

/// A contiguous run of one car's rows inside a segment
/// (segment-local row offsets).
#[derive(Debug, Clone, Copy)]
pub(crate) struct SegSpan {
    pub(crate) car: CarId,
    pub(crate) first: u32,
    pub(crate) rows: u32,
}

/// One time partition of an epoch: rows whose start second falls in
/// `[base, base + segment_secs)`, compactly encoded.
#[derive(Debug, Clone)]
pub(crate) struct Segment {
    /// First second of the segment's time bucket.
    pub(crate) base: u64,
    /// Per-car runs, ascending by car, covering every row once.
    pub(crate) spans: Vec<SegSpan>,
    /// Sorted distinct cells of the segment.
    pub(crate) dict: Vec<CellId>,
    /// Per-row index into `dict`.
    pub(crate) cell_idx: PackedInts,
    /// Per-row `start - base`.
    pub(crate) start_off: PackedInts,
    /// Per-row `end - start`.
    pub(crate) durations: PackedInts,
}

impl Segment {
    /// Encode one bucket's rows (already in canonical order restricted
    /// to this bucket).
    fn build(base: u64, rows: &[&CdrRecord]) -> Segment {
        let mut dict: Vec<CellId> = rows.iter().map(|r| r.cell).collect();
        dict.sort_unstable();
        dict.dedup();
        // `partition_point` of `< cell` is the cell's index because the
        // dictionary contains every row's cell: no unwrap needed.
        let cell_idx: Vec<u64> = rows
            .iter()
            .map(|r| dict.partition_point(|c| *c < r.cell) as u64)
            .collect();
        let start_off: Vec<u64> = rows.iter().map(|r| r.start.as_secs() - base).collect();
        let durations: Vec<u64> = rows
            .iter()
            .map(|r| r.end.as_secs().saturating_sub(r.start.as_secs()))
            .collect();
        let mut spans: Vec<SegSpan> = Vec::new();
        for (i, r) in rows.iter().enumerate() {
            match spans.last_mut() {
                Some(s) if s.car == r.car => s.rows += 1,
                _ => spans.push(SegSpan {
                    car: r.car,
                    first: i as u32,
                    rows: 1,
                }),
            }
        }
        Segment {
            base,
            spans,
            dict,
            cell_idx: PackedInts::pack(&cell_idx),
            start_off: PackedInts::pack(&start_off),
            durations: PackedInts::pack(&durations),
        }
    }

    /// Heap bytes held by the segment's encodings.
    fn heap_bytes(&self) -> usize {
        self.spans.len() * std::mem::size_of::<SegSpan>()
            + self.dict.len() * std::mem::size_of::<CellId>()
            + self.cell_idx.heap_bytes()
            + self.start_off.heap_bytes()
            + self.durations.heap_bytes()
    }
}

/// One appended chunk's rows in one shard: the segments its records
/// fell into, plus the global row-id range they occupy.
#[derive(Debug, Clone)]
pub(crate) struct Epoch {
    /// Global row id of the epoch's first row in the shard.
    pub(crate) first_row: u32,
    /// Rows in the epoch.
    pub(crate) rows: u32,
    /// Time partitions, ascending by `base`.
    pub(crate) segments: Vec<Segment>,
}

impl Epoch {
    /// Encode one chunk's rows for one shard. `rows` must be in
    /// canonical `(car, start, cell)` order; `segment_secs` must be
    /// non-zero (validated by the builder).
    pub(crate) fn build(rows: &[&CdrRecord], first_row: u32, segment_secs: u64) -> Epoch {
        // Bucket rows by start-time partition, preserving relative
        // order within each bucket (BTreeMap: deterministic, lint L1).
        let mut buckets: std::collections::BTreeMap<u64, Vec<&CdrRecord>> =
            std::collections::BTreeMap::new();
        for r in rows {
            buckets
                .entry(r.start.as_secs() / segment_secs)
                .or_default()
                .push(r);
        }
        Epoch {
            first_row,
            rows: rows.len() as u32,
            segments: buckets
                .into_iter()
                .map(|(bucket, rs)| Segment::build(bucket * segment_secs, &rs))
                .collect(),
        }
    }

    /// Decode one car's full run (canonical order) into `scratch`.
    ///
    /// Per-segment runs concatenate in segment order: the time bucket of
    /// a start second is monotone in the start second, and rows within a
    /// bucket keep their canonical relative order, so the concatenation
    /// *is* the car's canonical `(start, cell)` sequence.
    pub(crate) fn decode_car(&self, car: CarId, scratch: &mut GroupScratch) {
        scratch.cells.clear();
        scratch.starts.clear();
        scratch.ends.clear();
        for seg in &self.segments {
            if let Ok(si) = seg.spans.binary_search_by_key(&car, |s| s.car) {
                let sp = seg.spans[si];
                let (r0, r1) = (sp.first as usize, (sp.first + sp.rows) as usize);
                for i in r0..r1 {
                    let cell = seg.dict[seg.cell_idx.get(i) as usize];
                    let start = seg.base + seg.start_off.get(i);
                    scratch.cells.push(cell);
                    scratch.starts.push(start);
                    scratch.ends.push(start + seg.durations.get(i));
                }
            }
        }
    }
}

/// The packed (streamed) shard representation: epochs of segments.
#[derive(Debug, Clone, Default)]
pub(crate) struct PackedCols {
    /// Total rows across all epochs.
    pub(crate) rows: usize,
    /// Appended epochs, ascending by `first_row`.
    pub(crate) epochs: Vec<Epoch>,
}

impl PackedCols {
    /// The epoch containing global row id `row`, if any.
    #[inline]
    pub(crate) fn epoch_of(&self, row: u32) -> Option<&Epoch> {
        let i = self.epochs.partition_point(|e| e.first_row <= row);
        self.epochs.get(i.wrapping_sub(1))
    }

    /// Heap bytes held by all segment encodings.
    pub(crate) fn heap_bytes(&self) -> usize {
        self.epochs
            .iter()
            .map(|e| e.segments.iter().map(Segment::heap_bytes).sum::<usize>())
            .sum()
    }
}

/// Reusable decode buffers for one car group: the three column vectors
/// plus a group-local selection bitmap. One scratch per shard walk —
/// capacity is retained across groups, so steady-state decoding
/// allocates nothing.
#[derive(Debug, Default)]
pub(crate) struct GroupScratch {
    pub(crate) cells: Vec<CellId>,
    pub(crate) starts: Vec<u64>,
    pub(crate) ends: Vec<u64>,
    pub(crate) bits: Vec<u64>,
}

impl GroupScratch {
    /// Decode the car group `g` from packed columns. The group must
    /// belong to `packed` (guaranteed by the shard's car directory).
    pub(crate) fn decode_group(&mut self, packed: &PackedCols, g: &CarGroup) {
        match packed.epoch_of(g.first) {
            Some(epoch) => epoch.decode_car(g.car, self),
            None => {
                self.cells.clear();
                self.starts.clear();
                self.ends.clear();
            }
        }
        debug_assert_eq!(self.cells.len(), g.rows as usize);
    }

    /// Rebuild the group-local selection bitmap from a row predicate.
    pub(crate) fn fill_bits(&mut self, row_matches: impl Fn(CellId, u64, u64) -> bool) {
        let n = self.cells.len();
        self.bits.clear();
        self.bits.resize(n.div_ceil(64), 0);
        for i in 0..n {
            if row_matches(self.cells[i], self.starts[i], self.ends[i]) {
                self.bits[i >> 6] |= 1u64 << (i & 63);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier, Timestamp};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    #[test]
    fn packed_ints_round_trip() {
        let cases: &[Vec<u64>] = &[
            vec![],
            vec![0, 0, 0],
            vec![1],
            vec![5, 0, 63, 64, 1023],
            (0..200).map(|i| i * 37 % 1021).collect(),
            vec![u64::MAX, 0, u64::MAX / 2],
        ];
        for values in cases {
            let p = PackedInts::pack(values);
            assert_eq!(p.len(), values.len());
            for (i, &v) in values.iter().enumerate() {
                assert_eq!(p.get(i), v, "i={i} width={}", p.width());
            }
        }
    }

    #[test]
    fn packed_ints_zero_width_holds_no_words() {
        let p = PackedInts::pack(&[0; 1000]);
        assert_eq!(p.width(), 0);
        assert_eq!(p.heap_bytes(), 0);
        assert_eq!(p.get(999), 0);
    }

    #[test]
    fn epoch_decodes_every_car_in_canonical_order() {
        // Canonical (car, start, cell) order; starts span 3 buckets of
        // 100 s each.
        let mut records = Vec::new();
        for car in [2u32, 5, 9] {
            for k in 0..7u64 {
                records.push(rec(car, (k % 3) as u32, k * 40 + u64::from(car), 30 + k));
            }
        }
        let refs: Vec<&CdrRecord> = records.iter().collect();
        let epoch = Epoch::build(&refs, 0, 100);
        assert_eq!(epoch.rows as usize, records.len());
        let mut scratch = GroupScratch::default();
        for car in [2u32, 5, 9] {
            epoch.decode_car(CarId(car), &mut scratch);
            let want: Vec<&&CdrRecord> = refs.iter().filter(|r| r.car == CarId(car)).collect();
            assert_eq!(scratch.cells.len(), want.len());
            for (i, r) in want.iter().enumerate() {
                assert_eq!(scratch.cells[i], r.cell);
                assert_eq!(scratch.starts[i], r.start.as_secs());
                assert_eq!(scratch.ends[i], r.end.as_secs());
            }
        }
        // A car the epoch has never seen decodes to nothing.
        epoch.decode_car(CarId(777), &mut scratch);
        assert!(scratch.cells.is_empty());
    }

    #[test]
    fn segment_offsets_stay_narrow() {
        // Starts near the end of a long study: the delta packing keeps
        // start widths bounded by the segment length, not the horizon.
        let far = 89 * 86_400;
        let records: Vec<CdrRecord> = (0..50)
            .map(|i| rec(1, i % 4, far + u64::from(i) * 100, 60))
            .collect();
        let refs: Vec<&CdrRecord> = records.iter().collect();
        let epoch = Epoch::build(&refs, 0, 86_400);
        for seg in &epoch.segments {
            assert!(seg.start_off.width() <= 17, "width {}", seg.start_off.width());
        }
        let mut scratch = GroupScratch::default();
        epoch.decode_car(CarId(1), &mut scratch);
        assert_eq!(scratch.starts[0], far);
    }

    #[test]
    fn epoch_of_routes_rows() {
        let a: Vec<CdrRecord> = (0..4).map(|i| rec(1, 0, i * 10, 5)).collect();
        let b: Vec<CdrRecord> = (0..3).map(|i| rec(8, 0, i * 10, 5)).collect();
        let p = PackedCols {
            rows: 7,
            epochs: vec![
                Epoch::build(&a.iter().collect::<Vec<_>>(), 0, 100),
                Epoch::build(&b.iter().collect::<Vec<_>>(), 4, 100),
            ],
        };
        assert_eq!(p.epoch_of(0).map(|e| e.first_row), Some(0));
        assert_eq!(p.epoch_of(3).map(|e| e.first_row), Some(0));
        assert_eq!(p.epoch_of(4).map(|e| e.first_row), Some(4));
        assert_eq!(p.epoch_of(6).map(|e| e.first_row), Some(4));
    }

    #[test]
    fn fill_bits_marks_matching_rows() {
        let records: Vec<CdrRecord> = (0..70).map(|i| rec(3, 0, i * 10, 5)).collect();
        let refs: Vec<&CdrRecord> = records.iter().collect();
        let epoch = Epoch::build(&refs, 0, 1_000);
        let mut scratch = GroupScratch::default();
        epoch.decode_car(CarId(3), &mut scratch);
        scratch.fill_bits(|_c, s, _e| s >= 300);
        let selected: usize = (0..70)
            .filter(|&i| (scratch.bits[i >> 6] >> (i & 63)) & 1 == 1)
            .count();
        assert_eq!(selected, records.iter().filter(|r| r.start.as_secs() >= 300).count());
    }
}

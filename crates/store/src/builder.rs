//! Bounded-memory streaming construction of a [`CdrStore`].
//!
//! The batch path ([`CdrStore::build`]) needs the whole cleaned dataset
//! resident before it lays out columns. The streaming path accepts the
//! dataset as **chunks** — each a [`CdrDataset`] covering a disjoint,
//! ascending range of car ids — and appends every chunk into
//! time-partitioned, compactly encoded shard segments
//! ([`crate::packed`]) as it arrives. Peak memory is one chunk plus the
//! (much smaller) encoded store, not the full flat table.
//!
//! Append contract, enforced with typed [`Error::StoreAppend`] values
//! rather than panics:
//!
//! * every chunk carries the period the builder was opened with;
//! * chunk car ranges are strictly ascending across calls (the fleet
//!   generator's natural emission order), which is what keeps each
//!   shard's car directory sorted and every query byte-identical to
//!   the batch build;
//! * `segment_secs` is non-zero.
//!
//! The finished store is indistinguishable from a batch build to every
//! query kernel (same records, same canonical order, same car
//! routing); only the physical representation — and therefore the
//! index-vs-full-scan mix in `QueryStats` — differs.

use crate::columns::{CarGroup, Shard};
use crate::packed::Epoch;
use crate::store::{shard_slot, CdrStore, ShardBuildStats};
use conncar_cdr::{CdrDataset, CdrRecord};
use conncar_obs::{MonotonicClock, SharedClock};
use conncar_types::{CarId, Error, Result, StudyPeriod};
use std::sync::Arc;

/// One shard's encoded increment for a chunk, built in parallel and
/// applied serially.
struct PreparedEpoch {
    shard: usize,
    epoch: Epoch,
    groups: Vec<CarGroup>,
    min_start: u64,
    max_end: u64,
    wall_ns: u64,
}

/// Streaming (append-path) builder for a [`CdrStore`].
///
/// ```
/// use conncar_cdr::CdrDataset;
/// use conncar_store::{Filter, StoreBuilder};
/// use conncar_types::{DayOfWeek, StudyPeriod};
///
/// let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
/// let mut b = StoreBuilder::new(period, 4, 24 * 3600).unwrap();
/// b.append_chunk(&CdrDataset::new(period, vec![])).unwrap();
/// let store = b.finish();
/// assert_eq!(store.count(&Filter::all()).0, 0);
/// ```
#[derive(Debug)]
pub struct StoreBuilder {
    period: StudyPeriod,
    segment_secs: u64,
    shards: Vec<Shard>,
    build_stats: Vec<ShardBuildStats>,
    len: usize,
    last_car: Option<CarId>,
    clock: SharedClock,
}

impl StoreBuilder {
    /// Open a builder for `period` with an explicit shard count
    /// (clamped to at least 1) and segment length in seconds.
    pub fn new(period: StudyPeriod, shards: usize, segment_secs: u64) -> Result<StoreBuilder> {
        StoreBuilder::with_clock(period, shards, segment_secs, Arc::new(MonotonicClock::new()))
    }

    /// [`StoreBuilder::new`] with an injected clock (determinism tests
    /// pass a `NullClock`; instrumented runs share one run-wide clock).
    pub fn with_clock(
        period: StudyPeriod,
        shards: usize,
        segment_secs: u64,
        clock: SharedClock,
    ) -> Result<StoreBuilder> {
        if segment_secs == 0 {
            return Err(Error::StoreAppend {
                what: "segment_secs",
                why: "segment length must be at least one second".into(),
            });
        }
        let shard_count = shards.max(1);
        Ok(StoreBuilder {
            period,
            segment_secs,
            shards: (0..shard_count).map(|_| Shard::packed_empty()).collect(),
            build_stats: vec![ShardBuildStats::default(); shard_count],
            len: 0,
            last_car: None,
            clock,
        })
    }

    /// Rows appended so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one chunk: a canonical-order dataset whose cars all come
    /// strictly after every car appended before. Each shard's share of
    /// the chunk becomes one encoded epoch (shards encode in parallel).
    pub fn append_chunk(&mut self, chunk: &CdrDataset) -> Result<()> {
        if chunk.period() != self.period {
            return Err(Error::StoreAppend {
                what: "period",
                why: format!(
                    "chunk period {:?} differs from the builder's {:?}",
                    chunk.period(),
                    self.period
                ),
            });
        }
        let records = chunk.records();
        let (Some(first), Some(last)) = (records.first(), records.last()) else {
            return Ok(());
        };
        if let Some(seen) = self.last_car {
            if first.car <= seen {
                return Err(Error::StoreAppend {
                    what: "car_order",
                    why: format!(
                        "chunk starts at car {} but car {} was already appended",
                        first.car.0, seen.0
                    ),
                });
            }
        }
        let shard_count = self.shards.len();
        let mut buckets: Vec<Vec<&CdrRecord>> = vec![Vec::new(); shard_count];
        for r in records {
            buckets[shard_slot(r.car, shard_count)].push(r);
        }
        // Encode every non-empty shard's epoch in parallel (pure), then
        // apply serially in shard order.
        let shards = &self.shards;
        let segment_secs = self.segment_secs;
        let clock = &self.clock;
        let prepared: Vec<Option<PreparedEpoch>> = crate::exec::par_map(shard_count, |i| {
            let rows = &buckets[i];
            if rows.is_empty() {
                return None;
            }
            let t0 = clock.now_nanos();
            let first_row = shards[i].len() as u32;
            let epoch = Epoch::build(rows, first_row, segment_secs);
            let mut groups: Vec<CarGroup> = Vec::new();
            let (mut lo, mut hi) = (u64::MAX, 0u64);
            for (k, r) in rows.iter().enumerate() {
                lo = lo.min(r.start.as_secs());
                hi = hi.max(r.end.as_secs());
                match groups.last_mut() {
                    Some(g) if g.car == r.car => g.rows += 1,
                    _ => groups.push(CarGroup {
                        car: r.car,
                        first: first_row + k as u32,
                        rows: 1,
                    }),
                }
            }
            Some(PreparedEpoch {
                shard: i,
                epoch,
                groups,
                min_start: lo,
                max_end: hi,
                wall_ns: clock.now_nanos().saturating_sub(t0),
            })
        });
        for prep in prepared.into_iter().flatten() {
            let rows = u64::from(prep.epoch.rows);
            self.shards[prep.shard].append_epoch(
                prep.epoch,
                prep.groups,
                prep.min_start,
                prep.max_end,
            )?;
            self.build_stats[prep.shard].rows += rows;
            self.build_stats[prep.shard].wall_ns += prep.wall_ns;
        }
        self.len += records.len();
        self.last_car = Some(last.car);
        Ok(())
    }

    /// Seal the builder into an immutable, queryable [`CdrStore`].
    pub fn finish(self) -> CdrStore {
        CdrStore::from_parts(
            self.period,
            self.shards,
            self.len,
            self.clock,
            self.build_stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Filter;
    use conncar_types::{BaseStationId, Carrier, CellId, DayOfWeek, Timestamp};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn period() -> StudyPeriod {
        StudyPeriod::new(DayOfWeek::Monday, 7).unwrap()
    }

    fn sample(cars: std::ops::Range<u32>) -> Vec<CdrRecord> {
        cars.flat_map(|c| {
            (0..5u64).map(move |i| {
                rec(c, c % 6, (u64::from(c) * 7919 + i * 3671) % 500_000, 20 + i * 97)
            })
        })
        .collect()
    }

    /// Build the same records both ways and return (streamed, batch).
    fn both(records: Vec<CdrRecord>, shards: usize, chunk_cars: u32) -> (CdrStore, CdrStore) {
        let ds = CdrDataset::new(period(), records.clone());
        let batch = CdrStore::build(&ds, shards);
        let mut b = StoreBuilder::new(period(), shards, 24 * 3600).unwrap();
        let max_car = records.iter().map(|r| r.car.0).max().unwrap_or(0);
        let mut lo = 0u32;
        while lo <= max_car {
            let hi = lo.saturating_add(chunk_cars);
            let chunk: Vec<CdrRecord> = records
                .iter()
                .filter(|r| r.car.0 >= lo && r.car.0 < hi)
                .copied()
                .collect();
            b.append_chunk(&CdrDataset::new(period(), chunk)).unwrap();
            lo = hi;
        }
        (b.finish(), batch)
    }

    #[test]
    fn streamed_store_matches_batch_collect() {
        for shards in [1, 2, 7] {
            for chunk_cars in [3, 10, 100] {
                let (streamed, batch) = both(sample(0..30), shards, chunk_cars);
                assert_eq!(streamed.len(), batch.len());
                let (a, _) = streamed.collect(&Filter::all());
                let (b, _) = batch.collect(&Filter::all());
                assert_eq!(a, b, "shards={shards} chunk_cars={chunk_cars}");
            }
        }
    }

    #[test]
    fn streamed_store_matches_batch_under_filters() {
        let (streamed, batch) = both(sample(0..40), 4, 7);
        let filters = [
            Filter::all().car(CarId(13)),
            Filter::all().cars(vec![CarId(1), CarId(22), CarId(39)]),
            Filter::all().window(Timestamp::from_secs(50_000), Timestamp::from_secs(300_000)),
            Filter::all().cell(CellId::new(BaseStationId(2), 0, Carrier::C3)),
            Filter::all()
                .carrier(Carrier::C3)
                .window(Timestamp::from_secs(0), Timestamp::from_secs(100_000)),
        ];
        for f in &filters {
            let (a, sa) = streamed.collect(f);
            let (b, sb) = batch.collect(f);
            assert_eq!(a, b, "filter={f:?}");
            // Same rows matched even though the index mix differs.
            assert_eq!(sa.rows_matched, sb.rows_matched, "filter={f:?}");
        }
    }

    #[test]
    fn streamed_views_match_batch_views() {
        use crate::kernels::fold_per_car_views;
        let (streamed, batch) = both(sample(0..25), 3, 4);
        for f in [
            Filter::all(),
            Filter::all().window(Timestamp::from_secs(10_000), Timestamp::from_secs(400_000)),
        ] {
            let (a, _) = fold_per_car_views(&streamed, &f, |v| {
                let mut out = Vec::new();
                v.for_each_selected(|i| out.push((v.cells[i], v.starts[i], v.ends[i])));
                out
            });
            let (b, _) = fold_per_car_views(&batch, &f, |v| {
                let mut out = Vec::new();
                v.for_each_selected(|i| out.push((v.cells[i], v.starts[i], v.ends[i])));
                out
            });
            assert_eq!(a, b);
        }
    }

    #[test]
    fn append_rejects_regressing_chunks() {
        let mut b = StoreBuilder::new(period(), 2, 3600).unwrap();
        b.append_chunk(&CdrDataset::new(period(), sample(10..20))).unwrap();
        let err = b
            .append_chunk(&CdrDataset::new(period(), sample(5..8)))
            .unwrap_err();
        assert!(
            matches!(err, Error::StoreAppend { what: "car_order", .. }),
            "{err}"
        );
        // Equal car id is rejected too (ranges must be disjoint).
        let err = b
            .append_chunk(&CdrDataset::new(period(), sample(19..21)))
            .unwrap_err();
        assert!(matches!(err, Error::StoreAppend { what: "car_order", .. }), "{err}");
    }

    #[test]
    fn append_rejects_wrong_period() {
        let mut b = StoreBuilder::new(period(), 2, 3600).unwrap();
        let other = StudyPeriod::new(DayOfWeek::Tuesday, 3).unwrap();
        let err = b
            .append_chunk(&CdrDataset::new(other, sample(0..2)))
            .unwrap_err();
        assert!(matches!(err, Error::StoreAppend { what: "period", .. }), "{err}");
    }

    #[test]
    fn zero_segment_secs_is_rejected() {
        let err = StoreBuilder::new(period(), 2, 0).unwrap_err();
        assert!(
            matches!(err, Error::StoreAppend { what: "segment_secs", .. }),
            "{err}"
        );
    }

    #[test]
    fn empty_chunks_are_noops() {
        let mut b = StoreBuilder::new(period(), 3, 3600).unwrap();
        b.append_chunk(&CdrDataset::new(period(), vec![])).unwrap();
        assert!(b.is_empty());
        b.append_chunk(&CdrDataset::new(period(), sample(0..5))).unwrap();
        b.append_chunk(&CdrDataset::new(period(), vec![])).unwrap();
        let store = b.finish();
        assert_eq!(store.len(), 25);
    }

    #[test]
    fn packed_store_is_smaller_than_flat() {
        let records = sample(0..200);
        let (streamed, batch) = both(records, 4, 50);
        let packed: usize = streamed.shards().iter().map(Shard::encoded_bytes).sum();
        let flat: usize = batch.shards().iter().map(Shard::encoded_bytes).sum();
        assert!(
            packed * 2 < flat,
            "packed {packed} B should be well under half of flat {flat} B"
        );
    }

    #[test]
    fn build_stats_cover_all_rows() {
        let (streamed, _) = both(sample(0..30), 4, 10);
        let total: u64 = streamed.build_stats().iter().map(|s| s.rows).sum();
        assert_eq!(total as usize, streamed.len());
    }
}

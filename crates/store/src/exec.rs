//! Parallel shard execution on scoped threads.
//!
//! The store has no external thread-pool dependency: workers are scoped
//! `std::thread` spawns claiming shard ids from an atomic cursor
//! (work-stealing over uneven shards). Each task writes its result into
//! its own slot, so the caller always sees results in task order and
//! can merge deterministically no matter how work was scheduled.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads for `tasks` independent tasks: the machine's
/// parallelism capped by the task count, overridable (mostly for tests
/// and benches) with `CONNCAR_STORE_THREADS`.
pub(crate) fn workers_for(tasks: usize) -> usize {
    let hw = std::env::var("CONNCAR_STORE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
    hw.min(tasks).max(1)
}

/// Run `f(0..tasks)` across up to [`workers_for`] threads and return the
/// results in task order. Falls back to a plain sequential map when one
/// worker suffices, so single-core machines pay no synchronization.
pub(crate) fn par_map<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers_for(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let task = cursor.fetch_add(1, Ordering::Relaxed);
                if task >= tasks {
                    break;
                }
                let out = f(task);
                *slots[task].lock().expect("unpoisoned result slot") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("unpoisoned result slot")
                .expect("every task ran")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        let out = par_map(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = par_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_bounded_by_tasks() {
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(1_000) >= 1);
    }
}

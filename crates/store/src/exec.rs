//! Parallel shard execution on scoped threads.
//!
//! The store has no external thread-pool dependency: workers are scoped
//! `std::thread` spawns claiming shard ids from an atomic cursor
//! (work-stealing over uneven shards). Each worker keeps its results in
//! a thread-local vector tagged with the task id; the caller scatters
//! them into a pre-sized slot vector after joining, so results always
//! come back in task order and merge deterministically no matter how
//! work was scheduled — without a lock per task.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Cached `CONNCAR_STORE_THREADS` parse: the env var is process-wide
/// configuration, so it is read once and memoized instead of re-parsed
/// on every `par_map` call.
fn env_threads() -> Option<usize> {
    static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_THREADS.get_or_init(|| {
        std::env::var("CONNCAR_STORE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// Cached machine parallelism (the syscall behind
/// `available_parallelism` is not free either).
fn machine_threads() -> usize {
    static MACHINE_THREADS: OnceLock<usize> = OnceLock::new();
    *MACHINE_THREADS.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Runtime worker-count override; 0 means "no override". Takes
/// precedence over the (once-cached) env var, so tests and benches can
/// sweep thread counts within one process.
static OVERRIDE_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Force the store's worker-thread count at runtime (`0` clears the
/// override). `CONNCAR_STORE_THREADS` is read once per process and
/// cached, so equivalence tests that sweep thread counts use this knob
/// instead of mutating the environment.
pub fn set_worker_threads(n: usize) {
    OVERRIDE_THREADS.store(n, Ordering::Relaxed);
}

/// Number of worker threads for `tasks` independent tasks: the machine's
/// parallelism capped by the task count, overridable with
/// [`set_worker_threads`] or the `CONNCAR_STORE_THREADS` env var.
pub(crate) fn workers_for(tasks: usize) -> usize {
    let hw = match OVERRIDE_THREADS.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(machine_threads),
        n => n,
    };
    hw.min(tasks).max(1)
}

/// Run `f(0..tasks)` across up to [`workers_for`] threads and return the
/// results in task order. Falls back to a plain sequential map when one
/// worker suffices, so single-core machines pay no synchronization.
pub(crate) fn par_map<T, F>(tasks: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers_for(tasks);
    if workers <= 1 {
        return (0..tasks).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    // Write-once slots, pre-sized: each task id is claimed by exactly
    // one worker (the atomic cursor hands it out once), carried home in
    // that worker's local vector, and scattered here after the join —
    // no Mutex, no per-task lock traffic.
    let mut slots: Vec<Option<T>> = Vec::with_capacity(tasks);
    slots.resize_with(tasks, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut done: Vec<(usize, T)> = Vec::new();
                    loop {
                        let task = cursor.fetch_add(1, Ordering::Relaxed);
                        if task >= tasks {
                            break;
                        }
                        done.push((task, f(task)));
                    }
                    done
                })
            })
            .collect();
        for handle in handles {
            let done = handle
                .join()
                .unwrap_or_else(|panic| std::panic::resume_unwind(panic));
            for (task, out) in done {
                debug_assert!(slots[task].is_none(), "task claimed twice");
                slots[task] = Some(out);
            }
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.expect("every task ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        let out = par_map(64, |i| i * i);
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_tasks_is_fine() {
        let out: Vec<usize> = par_map(0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_count_is_bounded_by_tasks() {
        assert_eq!(workers_for(1), 1);
        assert!(workers_for(1_000) >= 1);
    }

    #[test]
    fn override_forces_worker_count() {
        set_worker_threads(3);
        assert_eq!(workers_for(1_000), 3);
        let out = par_map(100, |i| i + 1);
        assert_eq!(out, (1..=100).collect::<Vec<_>>());
        set_worker_threads(0);
        assert_eq!(workers_for(1), 1);
    }
}

//! Shared-scan execution: N *independently filtered* queries, one pass
//! over the store.
//!
//! [`crate::fused::FusedPass`] fuses folders that share a single
//! filter — exactly what a fixed analysis bundle needs, and exactly
//! what an ad-hoc query batch does not have: a serving front-end admits
//! point lookups, cell scans and full-table folds concurrently, each
//! with its own predicate. [`SharedScan`] is the generalization. Every
//! registered folder carries its **own** [`Filter`]; the scan plans
//! each query individually, takes the **union** of the shard sets the
//! plans need, and walks each union shard exactly once — every query
//! that needs the shard sweeps it back to back while its columns are
//! cache-hot, the same shard-resident schedule `FusedPass` uses for its
//! folders. A shard needed by five concurrent queries is read once, not
//! five times; a shard no query needs is never touched.
//!
//! Determinism is inherited wholesale: within a shard each query's
//! folder sees the identical [`CarView`] sequence it would have seen
//! running alone (the per-query walk applies the per-query filter), and
//! per-shard accumulators merge in ascending shard order on the caller
//! thread. The result of a shared scan is therefore *defined* to be the
//! same function of the data as running every query in its own pass —
//! asserted byte-for-byte by `conncar-serve`'s scheduler property
//! tests.
//!
//! Two kinds of accounting come back:
//!
//! * **per-query stats** — what each query's standalone execution would
//!   have reported (rows scanned after its own index narrowing, rows
//!   matched, shards its plan needed vs pruned), so admission-level
//!   `QueryStats` attribution survives fusion;
//! * **pass stats** — what the shared scan physically did: each union
//!   shard counted once, its columns read once. The ratio
//!   `Σ per-query shards_scanned / pass shards_scanned` is the
//!   scan-sharing win the serve bench gates on.

use crate::fused::{counted_owned, Acc, CarFolder, DynFolder, FolderHandle};
use crate::kernels::{expand_bins, walk_shard, CarView};
use crate::query::{keys, Filter, QueryStats};
use crate::store::CdrStore;
use conncar_obs::CounterRegistry;
use conncar_types::{CarId, CellId};
use std::marker::PhantomData;

/// A shared-scan batch under construction: register any number of
/// (filter, folder) pairs, then [`SharedScan::run`] walks the union of
/// their shard plans once.
pub struct SharedScan<'p> {
    store: &'p CdrStore,
    names: Vec<String>,
    filters: Vec<Filter>,
    folders: Vec<Box<dyn DynFolder + 'p>>,
}

impl<'p> SharedScan<'p> {
    /// Start an empty batch over `store`.
    pub fn new(store: &'p CdrStore) -> SharedScan<'p> {
        SharedScan {
            store,
            names: Vec::new(),
            filters: Vec::new(),
            folders: Vec::new(),
        }
    }

    /// The store the batch will scan.
    pub fn store(&self) -> &'p CdrStore {
        self.store
    }

    /// Number of queries registered so far.
    pub fn query_count(&self) -> usize {
        self.folders.len()
    }

    fn add_folder<A, I, F, D, M>(
        &mut self,
        name: &str,
        filter: Filter,
        init: I,
        fold: F,
        done: D,
        merge: M,
    ) -> FolderHandle<A>
    where
        A: Send + 'static,
        I: Fn() -> A + Sync + 'p,
        F: Fn(&mut A, &CarView<'_>) + Sync + 'p,
        D: Fn(&mut A) + Sync + 'p,
        M: Fn(A, A) -> A + Sync + 'p,
    {
        self.names.push(name.to_string());
        self.filters.push(filter);
        self.folders.push(Box::new(CarFolder {
            init,
            fold,
            done,
            merge,
            _acc: PhantomData,
        }));
        FolderHandle {
            idx: self.folders.len() - 1,
            _acc: PhantomData,
        }
    }

    /// Register a per-car folder behind its own `filter`: `fold`
    /// consumes each matching car's [`CarView`] (canonical order within
    /// a shard, the view's selection bitmap already reflects `filter`),
    /// `merge` combines per-shard accumulators in ascending shard
    /// order.
    pub fn add_per_car<A, I, F, M>(
        &mut self,
        name: &str,
        filter: Filter,
        init: I,
        fold: F,
        merge: M,
    ) -> FolderHandle<A>
    where
        A: Send + 'static,
        I: Fn() -> A + Sync + 'p,
        F: Fn(&mut A, &CarView<'_>) + Sync + 'p,
        M: Fn(A, A) -> A + Sync + 'p,
    {
        self.add_folder(name, filter, init, fold, |_| {}, merge)
    }

    /// Register the deduplicated, globally sorted `(cell, bin, car)`
    /// relation behind its own `filter` — the per-query twin of
    /// [`crate::fused::FusedPass::add_cell_bin_triples`], with the same
    /// per-shard sort+dedup / sorted-merge construction.
    pub fn add_cell_bin_triples(
        &mut self,
        name: &str,
        filter: Filter,
        bin_limit: u64,
    ) -> FolderHandle<Vec<(CellId, u64, CarId)>> {
        self.add_folder(
            name,
            filter,
            Vec::new,
            move |acc: &mut Vec<(CellId, u64, CarId)>, view: &CarView<'_>| {
                expand_bins(view, bin_limit, |cell, bin, car| acc.push((cell, bin, car)));
            },
            |acc: &mut Vec<(CellId, u64, CarId)>| {
                acc.sort_unstable();
                acc.dedup();
            },
            crate::fused::merge_sorted,
        )
    }

    /// Execute the batch: plan every query, walk each shard of the
    /// union of the plans exactly once (shards in parallel, queries
    /// swept shard-resident in registration order), and merge each
    /// query's per-shard accumulators in ascending shard order.
    pub fn run(self) -> SharedOutputs {
        let SharedScan {
            store,
            names,
            filters,
            folders,
        } = self;
        let t0 = store.clock().now_nanos();

        // Per-query planning, exactly as standalone execution would do
        // it, then the union of every plan's shard set.
        let plans: Vec<(Vec<usize>, u32)> =
            filters.iter().map(|f| store.plan_shards(f)).collect();
        let mut union: Vec<usize> = plans.iter().flat_map(|(ids, _)| ids.iter().copied()).collect();
        union.sort_unstable();
        union.dedup();
        // Which queries participate in each union shard, registration
        // order (= admission order, so sweeps are deterministic).
        let participants: Vec<Vec<usize>> = union
            .iter()
            .map(|sid| {
                plans
                    .iter()
                    .enumerate()
                    .filter(|(_, (ids, _))| ids.binary_search(sid).is_ok())
                    .map(|(q, _)| q)
                    .collect()
            })
            .collect();

        // One physical walk per union shard; within it, each
        // participating query sweeps the (cache-hot) columns under its
        // own filter — identical view sequence to a standalone pass.
        let per_shard: Vec<Vec<(usize, Acc, QueryStats)>> =
            crate::exec::par_map(union.len(), |u| {
                participants[u]
                    .iter()
                    .map(|&q| {
                        let mut acc = folders[q].init();
                        let stats = walk_shard(store, union[u], &filters[q], |view| {
                            folders[q].fold(&mut acc, view)
                        });
                        folders[q].shard_done(&mut acc);
                        (q, acc, stats)
                    })
                    .collect()
            });

        // Merge in ascending shard order; account per-query and
        // physical stats through the same registry path as every other
        // kernel.
        let mut query_regs: Vec<CounterRegistry> = plans
            .iter()
            .map(|(_, pruned)| {
                let mut reg = CounterRegistry::new();
                reg.add(keys::SHARDS_PRUNED, u64::from(*pruned));
                reg
            })
            .collect();
        let mut pass_reg = CounterRegistry::new();
        pass_reg.add(
            keys::SHARDS_PRUNED,
            (store.shard_count() - union.len()) as u64,
        );
        let mut merged: Vec<Option<Acc>> = folders.iter().map(|_| None).collect();
        for (u, shard_results) in per_shard.into_iter().enumerate() {
            pass_reg.add(keys::SHARDS_SCANNED, 1);
            pass_reg.add(
                keys::ROWS_SCANNED,
                store.shards()[union[u]].len() as u64,
            );
            for (q, acc, stats) in shard_results {
                stats.record_into(&mut query_regs[q]);
                merged[q] = Some(match merged[q].take() {
                    None => acc,
                    Some(prev) => folders[q].merge(prev, acc),
                });
            }
        }
        pass_reg.add(
            keys::SCAN_NANOS,
            store.clock().now_nanos().saturating_sub(t0),
        );

        // Queries whose plans pruned everything still yield their init
        // value, exactly like an empty standalone pass.
        let results: Vec<Option<Acc>> = merged
            .into_iter()
            .zip(folders.iter())
            .map(|(slot, folder)| Some(slot.unwrap_or_else(|| folder.init())))
            .collect();
        let query_stats = query_regs.iter().map(QueryStats::from_registry).collect();
        SharedOutputs {
            names,
            results,
            query_stats,
            pass_stats: QueryStats::from_registry(&pass_reg),
        }
    }
}

/// The results of one shared scan: typed per-query outputs claimed
/// through their handles, per-query attribution stats, and the
/// physical pass stats.
pub struct SharedOutputs {
    names: Vec<String>,
    results: Vec<Option<Acc>>,
    query_stats: Vec<QueryStats>,
    pass_stats: QueryStats,
}

impl SharedOutputs {
    /// Claim one query's merged accumulator. Panics if claimed twice or
    /// through a handle from a different batch layout.
    pub fn take<A: 'static>(&mut self, handle: FolderHandle<A>) -> A {
        let acc = self.results[handle.idx]
            .take()
            .expect("query result already claimed");
        counted_owned::<A>(acc).acc
    }

    /// What each query's standalone execution would have reported
    /// (registration order): rows scanned under its own narrowing, rows
    /// matched, shards its plan needed vs pruned. `scan_nanos` is zero —
    /// wall time belongs to the pass, not any one query.
    pub fn query_stats(&self) -> &[QueryStats] {
        &self.query_stats
    }

    /// What the shared scan physically did: each union shard counted
    /// (and its columns read) once, however many queries swept it.
    pub fn pass_stats(&self) -> QueryStats {
        self.pass_stats
    }

    /// Registered query names, registration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{cell_bin_car_triples, fold_per_car_views};
    use conncar_cdr::{CdrDataset, CdrRecord};
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod, Timestamp};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn sample_ds() -> CdrDataset {
        let records = (0..500)
            .map(|i| rec(i % 37, i % 9, (i as u64 * 3301) % 450_000, 25 + (i as u64 % 1_100)))
            .collect();
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    fn count_folder<'p>(
        scan: &mut SharedScan<'p>,
        name: &str,
        filter: Filter,
    ) -> FolderHandle<u64> {
        scan.add_per_car(
            name,
            filter,
            || 0u64,
            |n, v| *n += v.selected_count() as u64,
            |a, b| a + b,
        )
    }

    #[test]
    fn shared_scan_matches_standalone_passes() {
        let ds = sample_ds();
        let bin_limit = ds.period().total_bins();
        let filters = [
            Filter::all(),
            Filter::all().car(CarId(3)),
            Filter::all().window(Timestamp::from_secs(40_000), Timestamp::from_secs(200_000)),
            Filter::all().cell(CellId::new(BaseStationId(4), 0, Carrier::C3)),
        ];
        for shards in [1, 2, 7, 64] {
            let store = CdrStore::build(&ds, shards);
            let mut scan = SharedScan::new(&store);
            let counts: Vec<FolderHandle<u64>> = filters
                .iter()
                .enumerate()
                .map(|(i, f)| count_folder(&mut scan, &format!("count-{i}"), f.clone()))
                .collect();
            let sums = scan.add_per_car(
                "sums",
                filters[2].clone(),
                Vec::new,
                |acc: &mut Vec<(CarId, u64)>, v| {
                    let mut sum = 0u64;
                    v.for_each_selected(|i| sum += v.ends[i] - v.starts[i]);
                    acc.push((v.car, sum));
                },
                |mut a: Vec<(CarId, u64)>, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            let triples = scan.add_cell_bin_triples("triples", filters[1].clone(), bin_limit);
            assert_eq!(scan.query_count(), 6);
            let mut out = scan.run();

            for (h, f) in counts.into_iter().zip(filters.iter()) {
                let (want, _) = store.count(f);
                assert_eq!(out.take(h), want, "shards={shards} filter={f:?}");
            }
            let mut got_sums = out.take(sums);
            got_sums.sort_by_key(|&(car, _)| car);
            let (want_sums, _) = fold_per_car_views(&store, &filters[2], |v| {
                let mut sum = 0u64;
                v.for_each_selected(|i| sum += v.ends[i] - v.starts[i]);
                sum
            });
            assert_eq!(got_sums, want_sums, "shards={shards}");
            let (want_triples, _) = cell_bin_car_triples(&store, &filters[1], bin_limit);
            assert_eq!(out.take(triples), want_triples, "shards={shards}");
        }
    }

    #[test]
    fn per_query_stats_mirror_standalone_execution() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 16);
        let filters = [
            Filter::all().car(CarId(5)),
            Filter::all(),
            Filter::all().window(Timestamp::from_secs(600_000), Timestamp::from_secs(700_000)),
        ];
        let mut scan = SharedScan::new(&store);
        for (i, f) in filters.iter().enumerate() {
            count_folder(&mut scan, &format!("q{i}"), f.clone());
        }
        let out = scan.run();
        for (f, got) in filters.iter().zip(out.query_stats()) {
            // Standalone reference over the view kernels (same walk).
            let (_, want) = crate::kernels::fold_views(
                &store,
                f,
                || 0u64,
                |n, v| *n += v.selected_count() as u64,
                |a, b| a + b,
            );
            assert_eq!(got.rows_scanned, want.rows_scanned, "{f:?}");
            assert_eq!(got.rows_matched, want.rows_matched, "{f:?}");
            assert_eq!(got.shards_scanned, want.shards_scanned, "{f:?}");
            assert_eq!(got.shards_pruned, want.shards_pruned, "{f:?}");
            assert_eq!(got.scan_nanos, 0, "{f:?}");
        }
    }

    #[test]
    fn pass_counts_each_union_shard_once() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 16);
        // Three point queries and two full scans: the union is every
        // non-empty shard, but each is physically scanned once.
        let mut scan = SharedScan::new(&store);
        for (i, car) in [3u32, 5, 7].iter().enumerate() {
            count_folder(&mut scan, &format!("point-{i}"), Filter::all().car(CarId(*car)));
        }
        count_folder(&mut scan, "scan-0", Filter::all());
        count_folder(&mut scan, "scan-1", Filter::all());
        let out = scan.run();
        let pass = out.pass_stats();
        let naive_shards: u64 = out
            .query_stats()
            .iter()
            .map(|s| u64::from(s.shards_scanned))
            .sum();
        assert_eq!(
            u64::from(pass.shards_scanned) + u64::from(pass.shards_pruned),
            store.shard_count() as u64
        );
        // Two full scans alone already need every union shard twice.
        assert!(
            naive_shards >= 2 * u64::from(pass.shards_scanned),
            "naive {naive_shards} vs shared {}",
            pass.shards_scanned
        );
        // Physical rows: each union shard's columns pulled once.
        let union_rows: u64 = store
            .shards()
            .iter()
            .filter(|s| !s.is_empty())
            .map(|s| s.len() as u64)
            .sum();
        assert_eq!(pass.rows_scanned, union_rows);
    }

    #[test]
    fn shards_no_query_needs_are_never_walked() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 32);
        let mut scan = SharedScan::new(&store);
        count_folder(&mut scan, "point", Filter::all().car(CarId(11)));
        let out = scan.run();
        assert_eq!(out.pass_stats().shards_scanned, 1);
        assert_eq!(
            out.pass_stats().shards_pruned,
            store.shard_count() as u32 - 1
        );
    }

    #[test]
    fn empty_batch_and_fully_pruned_queries() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 4);
        let scan = SharedScan::new(&store);
        let out = scan.run();
        assert_eq!(out.pass_stats().shards_scanned, 0);

        let mut scan = SharedScan::new(&store);
        let h = count_folder(
            &mut scan,
            "pruned",
            Filter::all().window(Timestamp::from_secs(600_000), Timestamp::from_secs(700_000)),
        );
        let mut out = scan.run();
        assert_eq!(out.take(h), 0);
        assert_eq!(out.pass_stats().shards_scanned, 0);
        assert_eq!(out.query_stats()[0].shards_scanned, 0);
    }
}

//! # conncar-store
//!
//! A sharded, columnar store for cleaned CDR data, plus the small query
//! engine the §4 analyses run on.
//!
//! The paper's pipeline is a sequence of full-trace scans over 1.1B
//! records: session concatenation, 600 s truncation, 15-minute PRB
//! bins, busy-cell classification. The seed reproduction expressed each
//! of those as a fresh pass over a flat `Vec<CdrRecord>`; this crate is
//! the first step from "batch script" to "serving system":
//!
//! * [`CdrStore`] — the cleaned dataset re-laid-out once into
//!   struct-of-arrays **shards** keyed by a hash of the car id, each
//!   shard carrying a car directory, per-cell row postings and a
//!   start-time-sorted index ([`columns::Shard`]);
//! * [`Filter`] — typed predicates (car, cell, carrier, time window,
//!   duration kind) that the planner turns into shard pruning and index
//!   lookups instead of full scans;
//! * scan/fold execution ([`CdrStore::scan_fold`]) — shards scanned in
//!   parallel on scoped threads, per-shard accumulators merged in shard
//!   order so every result is deterministic regardless of thread count;
//! * group-by kernels ([`kernels`]) — the per-car session walk and the
//!   per-(cell, 15-min-bin) distinct-car count that the temporal,
//!   segmentation, duration and concurrency analyses are built from.
//!   The fast variants are *zero-materialization*: folders read per-car
//!   [`CarView`] column slices (plus a per-shard selection bitmap) in
//!   place instead of rebuilding `CdrRecord`s row by row;
//! * the fused executor ([`fused::FusedPass`]) — registers N per-car
//!   and (cell, bin) folders and drives them all in **one** pass over
//!   each shard, so a batch of analyses reads the table once instead of
//!   once per figure — merging in shard order exactly like the
//!   single-query kernels;
//! * [`QueryStats`] — rows scanned/matched, shards pruned, index vs
//!   full scans and scan wall time, so the cost of every analysis is
//!   observable. Query execution accounts into a
//!   [`conncar_obs::CounterRegistry`] under the [`query::keys`]
//!   namespace; `QueryStats` is the thin projection of those counters,
//!   and all wall time is read from the store's injected
//!   [`conncar_obs::Clock`] (never from an ambient clock).
//!
//! Shard count never changes results, only parallelism: the store's
//! query results are byte-identical to the legacy flat scans (enforced
//! by the workspace equivalence tests and a multiset property test over
//! shard counts 1, 2, 7 and 64).
//!
//! ```
//! use conncar_cdr::CdrDataset;
//! use conncar_store::{CdrStore, Filter};
//! use conncar_types::{DayOfWeek, StudyPeriod};
//!
//! let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), vec![]);
//! let store = CdrStore::build(&ds, 4);
//! let (n, stats) = store.count(&Filter::all());
//! assert_eq!(n, 0);
//! assert_eq!(stats.rows_scanned, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
pub mod columns;
mod exec;
pub mod fused;
pub mod kernels;
mod packed;
pub mod query;
pub mod shared;
mod store;

pub use builder::StoreBuilder;
pub use exec::set_worker_threads;
pub use fused::{FolderHandle, FusedOutputs, FusedPass};
pub use shared::{SharedOutputs, SharedScan};
pub use kernels::CarView;
pub use query::{Filter, QueryStats, RecordKind};
pub use store::{CdrStore, ShardBuildStats};

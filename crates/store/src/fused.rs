//! Multi-query fusion: N folders, one pass over the store.
//!
//! Each figure of §4 is an aggregation over the same cleaned CDR table.
//! Run separately, every analysis re-reads every shard — the dominant
//! cost on a table that no longer fits in cache. A [`FusedPass`]
//! registers any number of per-car folders (and (cell, bin) expansions)
//! up front and drives them all during **one** walk of each shard: the
//! columns are pulled through the cache once, and every folder sees the
//! same [`CarView`] in the same canonical order it would have seen in
//! its own [`fold_views`](crate::kernels::fold_views) pass.
//!
//! Determinism survives fusion for the same reason it holds for the
//! single-query kernels: folders never observe scheduling. Within a
//! shard, views arrive in canonical row order; across shards, each
//! folder's per-shard accumulators are merged in ascending shard order
//! after all workers join. The fused result is therefore *defined* to
//! be the same function of the data as N independent passes — the
//! equivalence is asserted byte-for-byte by the store's property tests.
//!
//! ```
//! use conncar_cdr::CdrDataset;
//! use conncar_store::{fused::FusedPass, CdrStore, Filter};
//! use conncar_types::{DayOfWeek, StudyPeriod};
//!
//! let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), vec![]);
//! let store = CdrStore::build(&ds, 4);
//! let mut pass = FusedPass::new(&store, Filter::all());
//! let rows = pass.add_per_car("rows", || 0u64, |n, v| *n += v.selected_count() as u64, |a, b| a + b);
//! let triples = pass.add_cell_bin_triples("triples", u64::MAX);
//! let mut out = pass.run();
//! assert_eq!(out.take(rows), 0);
//! assert!(out.take(triples).is_empty());
//! ```

use crate::kernels::{expand_bins, walk_shard, CarView};
use crate::query::{keys, Filter, QueryStats};
use crate::store::CdrStore;
use conncar_obs::CounterRegistry;
use conncar_types::{CarId, CellId};
use std::any::Any;
use std::marker::PhantomData;

/// A type-erased per-shard accumulator in flight.
pub(crate) type Acc = Box<dyn Any + Send>;

/// Wrapper pairing a folder's accumulator with its consumed-view count
/// (the per-folder `items` figure reported to telemetry).
pub(crate) struct Counted<A> {
    pub(crate) acc: A,
    pub(crate) items: u64,
}

pub(crate) fn counted_mut<A: 'static>(acc: &mut Acc) -> &mut Counted<A> {
    acc.downcast_mut::<Counted<A>>()
        .expect("fused accumulator type mismatch")
}

pub(crate) fn counted_owned<A: 'static>(acc: Acc) -> Counted<A> {
    *acc.downcast::<Counted<A>>()
        .unwrap_or_else(|_| panic!("fused accumulator type mismatch"))
}

/// Object-safe folder driven by the fused walk. All methods are called
/// deterministically: `fold` in canonical view order within a shard,
/// `shard_done` once per shard after its walk, `merge` in ascending
/// shard order on the caller thread.
pub(crate) trait DynFolder: Sync {
    fn init(&self) -> Acc;
    fn fold(&self, acc: &mut Acc, view: &CarView<'_>);
    fn shard_done(&self, acc: &mut Acc);
    fn merge(&self, a: Acc, b: Acc) -> Acc;
    fn items(&self, acc: &Acc) -> u64;
}

/// The one concrete folder shape: closures over an accumulator `A`.
/// (Cell-bin folders are car folders whose fold closure expands bins.)
pub(crate) struct CarFolder<A, I, F, D, M> {
    pub(crate) init: I,
    pub(crate) fold: F,
    pub(crate) done: D,
    pub(crate) merge: M,
    pub(crate) _acc: PhantomData<fn() -> A>,
}

impl<A, I, F, D, M> DynFolder for CarFolder<A, I, F, D, M>
where
    A: Send + 'static,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &CarView<'_>) + Sync,
    D: Fn(&mut A) + Sync,
    M: Fn(A, A) -> A + Sync,
{
    fn init(&self) -> Acc {
        Box::new(Counted {
            acc: (self.init)(),
            items: 0,
        })
    }

    fn fold(&self, acc: &mut Acc, view: &CarView<'_>) {
        let c = counted_mut::<A>(acc);
        c.items += 1;
        (self.fold)(&mut c.acc, view);
    }

    fn shard_done(&self, acc: &mut Acc) {
        (self.done)(&mut counted_mut::<A>(acc).acc);
    }

    fn merge(&self, a: Acc, b: Acc) -> Acc {
        let (a, b) = (counted_owned::<A>(a), counted_owned::<A>(b));
        Box::new(Counted {
            acc: (self.merge)(a.acc, b.acc),
            items: a.items + b.items,
        })
    }

    fn items(&self, acc: &Acc) -> u64 {
        acc.downcast_ref::<Counted<A>>()
            .expect("fused accumulator type mismatch")
            .items
    }
}

/// Typed claim ticket for one registered folder's result.
#[derive(Debug)]
pub struct FolderHandle<A> {
    pub(crate) idx: usize,
    pub(crate) _acc: PhantomData<fn() -> A>,
}

/// A multi-query pass under construction: register folders against one
/// store and filter, then [`FusedPass::run`] walks every shard once.
pub struct FusedPass<'p> {
    store: &'p CdrStore,
    filter: Filter,
    names: Vec<String>,
    folders: Vec<Box<dyn DynFolder + 'p>>,
}

impl<'p> FusedPass<'p> {
    /// Start a pass over `store` with one shared `filter`.
    pub fn new(store: &'p CdrStore, filter: Filter) -> FusedPass<'p> {
        FusedPass {
            store,
            filter,
            names: Vec::new(),
            folders: Vec::new(),
        }
    }

    /// The store the pass will walk (handy for reading its period or
    /// clock while registering folders).
    pub fn store(&self) -> &'p CdrStore {
        self.store
    }

    /// Number of folders registered so far.
    pub fn folder_count(&self) -> usize {
        self.folders.len()
    }

    fn add_folder<A, I, F, D, M>(&mut self, name: &str, init: I, fold: F, done: D, merge: M) -> FolderHandle<A>
    where
        A: Send + 'static,
        I: Fn() -> A + Sync + 'p,
        F: Fn(&mut A, &CarView<'_>) + Sync + 'p,
        D: Fn(&mut A) + Sync + 'p,
        M: Fn(A, A) -> A + Sync + 'p,
    {
        self.names.push(name.to_string());
        self.folders.push(Box::new(CarFolder {
            init,
            fold,
            done,
            merge,
            _acc: PhantomData,
        }));
        FolderHandle {
            idx: self.folders.len() - 1,
            _acc: PhantomData,
        }
    }

    /// Register a per-car folder: `fold` consumes each car's
    /// [`CarView`] (canonical order within a shard), `merge` combines
    /// per-shard accumulators in ascending shard order.
    pub fn add_per_car<A, I, F, M>(&mut self, name: &str, init: I, fold: F, merge: M) -> FolderHandle<A>
    where
        A: Send + 'static,
        I: Fn() -> A + Sync + 'p,
        F: Fn(&mut A, &CarView<'_>) + Sync + 'p,
        M: Fn(A, A) -> A + Sync + 'p,
    {
        self.add_folder(name, init, fold, |_| {}, merge)
    }

    /// Register a (cell, 15-min bin, car) folder: every selected row is
    /// expanded over the bins it covers (ascending, `bin < bin_limit`)
    /// and fed to `fold`. Duplicates are *not* removed — a car touching
    /// one cell twice in a bin yields two calls; use
    /// [`FusedPass::add_cell_bin_triples`] for the deduplicated
    /// relation.
    pub fn add_cell_bins<A, I, F, M>(
        &mut self,
        name: &str,
        bin_limit: u64,
        init: I,
        fold: F,
        merge: M,
    ) -> FolderHandle<A>
    where
        A: Send + 'static,
        I: Fn() -> A + Sync + 'p,
        F: Fn(&mut A, CellId, u64, CarId) + Sync + 'p,
        M: Fn(A, A) -> A + Sync + 'p,
    {
        self.add_folder(
            name,
            init,
            move |acc: &mut A, view: &CarView<'_>| {
                expand_bins(view, bin_limit, |cell, bin, car| fold(acc, cell, bin, car));
            },
            |_| {},
            merge,
        )
    }

    /// Register the deduplicated, globally sorted
    /// `(cell, bin, car)` relation (§4.4 concurrency). Each shard sorts
    /// and dedups its own expansion in `shard_done` — valid because a
    /// car's rows live in exactly one shard, so duplicates can never
    /// cross shards — and the shard-order merge is a sorted merge, so
    /// the final vector is byte-identical to a global sort + dedup.
    pub fn add_cell_bin_triples(
        &mut self,
        name: &str,
        bin_limit: u64,
    ) -> FolderHandle<Vec<(CellId, u64, CarId)>> {
        self.add_folder(
            name,
            Vec::new,
            move |acc: &mut Vec<(CellId, u64, CarId)>, view: &CarView<'_>| {
                expand_bins(view, bin_limit, |cell, bin, car| acc.push((cell, bin, car)));
            },
            |acc: &mut Vec<(CellId, u64, CarId)>| {
                acc.sort_unstable();
                acc.dedup();
            },
            merge_sorted,
        )
    }

    /// Walk every unpruned shard once (shards in parallel, views in
    /// canonical order), feed all folders, then merge per-shard
    /// accumulators in ascending shard order. Accounting flows through
    /// the same [`CounterRegistry`] path as every other kernel: the
    /// table is read once, so `rows_scanned` counts each row once no
    /// matter how many folders consumed it.
    ///
    /// Folders are driven shard-resident, not view-interleaved: each
    /// folder sweeps the whole shard in turn while its columns are
    /// still cache-hot from the first sweep. Alternating folders per
    /// view would evict every folder's working set (its accumulators,
    /// any model tables its fold closure reads) a few hundred times
    /// per shard; one sweep per folder keeps the shard — a small
    /// fraction of the table — as the only shared traffic. Either
    /// schedule shows every folder the identical view sequence, so
    /// the choice is invisible to results.
    pub fn run(self) -> FusedOutputs {
        let FusedPass {
            store,
            filter,
            names,
            folders,
        } = self;
        let t0 = store.clock().now_nanos();
        let (shard_ids, pruned) = store.plan_shards(&filter);
        let per_shard: Vec<(Vec<Acc>, QueryStats)> = crate::exec::par_map(shard_ids.len(), |i| {
            let mut accs: Vec<Acc> = folders.iter().map(|f| f.init()).collect();
            // The shard is read once for all folders: the first sweep
            // (whose stats stand for the pass) pulls the columns in,
            // the rest run out of cache.
            let mut stats: Option<QueryStats> = None;
            for (folder, acc) in folders.iter().zip(accs.iter_mut()) {
                let s = walk_shard(store, shard_ids[i], &filter, |view| folder.fold(acc, view));
                stats.get_or_insert(s);
                folder.shard_done(acc);
            }
            let stats =
                stats.unwrap_or_else(|| walk_shard(store, shard_ids[i], &filter, |_| {}));
            (accs, stats)
        });
        // One accounting path: per-shard stats land in a registry and
        // the returned view is derived from it.
        let mut reg = CounterRegistry::new();
        reg.add(keys::SHARDS_PRUNED, u64::from(pruned));
        let mut merged: Vec<Option<Acc>> = folders.iter().map(|_| None).collect();
        for (accs, s) in per_shard {
            s.record_into(&mut reg);
            for ((slot, folder), acc) in merged.iter_mut().zip(folders.iter()).zip(accs) {
                *slot = Some(match slot.take() {
                    None => acc,
                    Some(prev) => folder.merge(prev, acc),
                });
            }
        }
        reg.add(
            keys::SCAN_NANOS,
            store.clock().now_nanos().saturating_sub(t0),
        );
        // An empty plan (everything pruned) still yields every folder
        // its init value.
        let results: Vec<Option<Acc>> = merged
            .into_iter()
            .zip(folders.iter())
            .map(|(slot, folder)| Some(slot.unwrap_or_else(|| folder.init())))
            .collect();
        let items = results
            .iter()
            .zip(folders.iter())
            .map(|(slot, folder)| folder.items(slot.as_ref().expect("just filled")))
            .collect();
        FusedOutputs {
            names,
            items,
            results,
            stats: QueryStats::from_registry(&reg),
        }
    }
}

/// Merge two sorted vectors into one sorted vector (stable: ties take
/// the left element first).
pub(crate) fn merge_sorted<T: Ord>(a: Vec<T>, b: Vec<T>) -> Vec<T> {
    if a.is_empty() {
        return b;
    }
    if b.is_empty() {
        return a;
    }
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut ai = a.into_iter().peekable();
    let mut bi = b.into_iter().peekable();
    loop {
        match (ai.peek(), bi.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    out.push(ai.next().expect("peeked"));
                } else {
                    out.push(bi.next().expect("peeked"));
                }
            }
            (Some(_), None) => {
                out.extend(ai);
                return out;
            }
            (None, _) => {
                out.extend(bi);
                return out;
            }
        }
    }
}

/// The results of one fused pass: typed folder outputs claimed through
/// their handles, plus the pass-wide [`QueryStats`].
pub struct FusedOutputs {
    names: Vec<String>,
    items: Vec<u64>,
    results: Vec<Option<Acc>>,
    stats: QueryStats,
}

impl FusedOutputs {
    /// Cost of the whole pass (the table was read once for all folders).
    pub fn stats(&self) -> QueryStats {
        self.stats
    }

    /// Claim one folder's merged accumulator. Panics if claimed twice
    /// or if the handle came from a different pass with an
    /// incompatible folder layout.
    pub fn take<A: 'static>(&mut self, handle: FolderHandle<A>) -> A {
        let acc = self.results[handle.idx]
            .take()
            .expect("folder result already claimed");
        counted_owned::<A>(acc).acc
    }

    /// Per-folder `(name, views folded)` telemetry, registration order.
    pub fn folder_items(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.items.iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{cell_bin_car_triples, fold_per_car_views};
    use conncar_cdr::{CdrDataset, CdrRecord};
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod, Timestamp};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn sample_ds() -> CdrDataset {
        let records = (0..400)
            .map(|i| rec(i % 31, i % 7, (i as u64 * 2741) % 400_000, 15 + (i as u64 % 1_200)))
            .collect();
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn fused_matches_individual_passes() {
        let ds = sample_ds();
        let bin_limit = ds.period().total_bins();
        for shards in [1, 2, 7, 64] {
            let store = CdrStore::build(&ds, shards);

            let mut pass = FusedPass::new(&store, Filter::all());
            let sums = pass.add_per_car(
                "sums",
                Vec::new,
                |acc: &mut Vec<(CarId, u64)>, v| {
                    let mut sum = 0u64;
                    v.for_each_selected(|i| sum += v.ends[i] - v.starts[i]);
                    acc.push((v.car, sum));
                },
                |mut a: Vec<(CarId, u64)>, mut b| {
                    a.append(&mut b);
                    a
                },
            );
            let counts = pass.add_per_car(
                "counts",
                || 0u64,
                |n, v| *n += v.selected_count() as u64,
                |a, b| a + b,
            );
            let triples = pass.add_cell_bin_triples("triples", bin_limit);
            let mut out = pass.run();

            let mut got_sums = out.take(sums);
            got_sums.sort_by_key(|&(car, _)| car);
            let (want_sums, want_stats) = fold_per_car_views(&store, &Filter::all(), |v| {
                let mut sum = 0u64;
                v.for_each_selected(|i| sum += v.ends[i] - v.starts[i]);
                sum
            });
            assert_eq!(got_sums, want_sums, "shards={shards}");

            assert_eq!(out.take(counts), 400);

            let (want_triples, _) = cell_bin_car_triples(&store, &Filter::all(), bin_limit);
            assert_eq!(out.take(triples), want_triples, "shards={shards}");

            // The table was read once: rows_scanned counts each row
            // once, not once per folder.
            assert_eq!(out.stats().rows_scanned, want_stats.rows_scanned);
            let items: Vec<(String, u64)> = out
                .folder_items()
                .map(|(n, i)| (n.to_string(), i))
                .collect();
            assert_eq!(items.len(), 3);
            assert!(items.iter().all(|&(_, i)| i > 0), "shards={shards}");
        }
    }

    #[test]
    fn fused_respects_filters() {
        let ds = sample_ds();
        let filter = Filter::all().window(
            Timestamp::from_secs(50_000),
            Timestamp::from_secs(250_000),
        );
        for shards in [1, 5] {
            let store = CdrStore::build(&ds, shards);
            let mut pass = FusedPass::new(&store, filter.clone());
            let n = pass.add_per_car("n", || 0u64, |n, v| *n += v.selected_count() as u64, |a, b| a + b);
            let mut out = pass.run();
            let (want, _) = store.count(&filter);
            assert_eq!(out.take(n), want);
        }
    }

    #[test]
    fn empty_pass_and_empty_store() {
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), vec![]);
        let store = CdrStore::build(&ds, 4);
        let mut pass = FusedPass::new(&store, Filter::all());
        assert_eq!(pass.folder_count(), 0);
        let h = pass.add_per_car("n", || 7u64, |_, _| {}, |a, _| a);
        let mut out = pass.run();
        assert_eq!(out.take(h), 7);
        assert_eq!(out.stats().rows_scanned, 0);
    }

    #[test]
    fn merge_sorted_is_a_merge() {
        assert_eq!(merge_sorted(vec![1, 3, 5], vec![2, 3, 6]), vec![1, 2, 3, 3, 5, 6]);
        assert_eq!(merge_sorted(Vec::<u32>::new(), vec![1]), vec![1]);
        assert_eq!(merge_sorted(vec![1], Vec::<u32>::new()), vec![1]);
    }
}

//! Group-by aggregation kernels the analyses are built from.
//!
//! Two access patterns dominate §4: the **per-car session walk** (Figure
//! 3's connected time, Figure 5/6's busy profiles, Figure 9's
//! durations) and the **per-(cell, 15-minute-bin) distinct-car count**
//! (Figures 8, 10 and 11). Both are provided here as streaming kernels
//! over the sharded store, with deterministic shard-order merges, so
//! rewired analyses share one scan implementation instead of each
//! re-walking a flat record vector.

use crate::query::{keys, Filter, QueryStats};
use crate::store::CdrStore;
use conncar_cdr::CdrRecord;
use conncar_obs::CounterRegistry;
use conncar_types::{BinIndex, CarId, CellId};

/// Walk every car's matching records in canonical order and fold each
/// car's slice through `f`. Cars whose records are all filtered away are
/// skipped, mirroring `CdrDataset::by_car` (which never yields empty
/// groups). Shards run in parallel; the result is sorted by car and
/// identical for any shard or thread count.
pub fn fold_per_car<A, F>(store: &CdrStore, filter: &Filter, f: F) -> (Vec<(CarId, A)>, QueryStats)
where
    A: Send,
    F: Fn(CarId, &[CdrRecord]) -> A + Sync,
{
    let t0 = store.clock().now_nanos();
    let (shard_ids, pruned) = store.plan_shards(filter);
    // The car directory narrows the walk when a car set is present;
    // otherwise every group (hence every row) is visited.
    let narrowed = filter.car_set().is_some();
    let per_shard: Vec<(Vec<(CarId, A)>, QueryStats)> =
        crate::exec::par_map(shard_ids.len(), |i| {
            let shard = &store.shards()[shard_ids[i]];
            let mut out: Vec<(CarId, A)> = Vec::new();
            let mut stats = QueryStats {
                shards_scanned: 1,
                index_scans: u32::from(narrowed),
                full_scans: u32::from(!narrowed),
                ..QueryStats::default()
            };
            let mut buf: Vec<CdrRecord> = Vec::new();
            for g in shard.car_groups() {
                if !filter.car_matches(g.car) {
                    // Directory skip: these rows are never touched.
                    continue;
                }
                buf.clear();
                stats.rows_scanned += g.rows as u64;
                for row in g.first..g.first + g.rows {
                    let row = row as usize;
                    if filter.row_matches(shard.cells[row], shard.starts[row], shard.ends[row]) {
                        buf.push(shard.record(row));
                    }
                }
                stats.rows_matched += buf.len() as u64;
                if !buf.is_empty() {
                    out.push((g.car, f(g.car, &buf)));
                }
            }
            (out, stats)
        });
    // Same single accounting path as `scan_fold`: per-shard stats land
    // in a registry and the returned view is derived from it.
    let mut reg = CounterRegistry::new();
    reg.add(keys::SHARDS_PRUNED, u64::from(pruned));
    let mut merged: Vec<(CarId, A)> = Vec::new();
    for (part, s) in per_shard {
        s.record_into(&mut reg);
        merged.extend(part);
    }
    // Cars are shard-disjoint, so this sort is a permutation with all
    // keys distinct — deterministic whatever the shard layout was.
    merged.sort_by_key(|&(car, _)| car);
    reg.add(
        keys::SCAN_NANOS,
        store.clock().now_nanos().saturating_sub(t0),
    );
    (merged, QueryStats::from_registry(&reg))
}

/// Expand every matching record into the deduplicated, globally sorted
/// `(cell, 15-min bin, car)` triples with `bin < bin_limit` — the §4.4
/// concurrency relation ("cars are concurrent if their connections
/// straddle a 15-minute time bin"). Byte-identical to expanding the flat
/// record vector and sorting, for any shard count.
pub fn cell_bin_car_triples(
    store: &CdrStore,
    filter: &Filter,
    bin_limit: u64,
) -> (Vec<(CellId, u64, CarId)>, QueryStats) {
    let (mut triples, stats) = store.scan_fold(
        filter,
        Vec::new,
        |acc: &mut Vec<(CellId, u64, CarId)>, r| {
            for bin in BinIndex::covering(r.start, r.end) {
                if bin.0 < bin_limit {
                    acc.push((r.cell, bin.0, r.car));
                }
            }
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    // Cells cross shards, so deduplication must be global.
    triples.sort();
    triples.dedup();
    (triples, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrDataset;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod, Timestamp};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn sample_ds() -> CdrDataset {
        let records = (0..300)
            .map(|i| rec(i % 23, i % 6, (i as u64 * 3671) % 500_000, 20 + (i as u64 % 1_500)))
            .collect();
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn per_car_walk_matches_by_car() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 7);
        let (got, stats) = fold_per_car(&store, &Filter::all(), |_car, records| {
            records.iter().map(|r| r.duration().as_secs()).sum::<u64>()
        });
        let want: Vec<(CarId, u64)> = ds
            .by_car()
            .map(|(car, records)| {
                (car, records.iter().map(|r| r.duration().as_secs()).sum())
            })
            .collect();
        assert_eq!(got, want);
        assert_eq!(stats.rows_scanned, 300);
    }

    #[test]
    fn per_car_walk_sees_records_in_canonical_order() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 5);
        let (got, _) = fold_per_car(&store, &Filter::all(), |_car, records| {
            records
                .windows(2)
                .all(|w| (w[0].start, w[0].cell) <= (w[1].start, w[1].cell))
        });
        assert!(got.iter().all(|&(_, ordered)| ordered));
    }

    #[test]
    fn per_car_walk_skips_fully_filtered_cars() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 3);
        let filter = Filter::all().car(CarId(4));
        let (got, stats) = fold_per_car(&store, &filter, |_car, records| records.len());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, CarId(4));
        // Only car 4's directory span was walked.
        assert_eq!(stats.rows_scanned, got[0].1 as u64);
    }

    #[test]
    fn triples_match_flat_expansion() {
        let ds = sample_ds();
        let bin_limit = ds.period().total_bins();
        let mut want: Vec<(CellId, u64, CarId)> = Vec::new();
        for r in ds.records() {
            for bin in BinIndex::covering(r.start, r.end) {
                if bin.0 < bin_limit {
                    want.push((r.cell, bin.0, r.car));
                }
            }
        }
        want.sort();
        want.dedup();
        for shards in [1, 2, 7, 64] {
            let store = CdrStore::build(&ds, shards);
            let (got, _) = cell_bin_car_triples(&store, &Filter::all(), bin_limit);
            assert_eq!(got, want, "shards={shards}");
        }
    }

    #[test]
    fn empty_store_kernels() {
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), vec![]);
        let store = CdrStore::build(&ds, 4);
        let (walk, _) = fold_per_car(&store, &Filter::all(), |_c, r| r.len());
        assert!(walk.is_empty());
        let (triples, _) = cell_bin_car_triples(&store, &Filter::all(), u64::MAX);
        assert!(triples.is_empty());
    }
}

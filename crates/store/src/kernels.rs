//! Group-by aggregation kernels the analyses are built from.
//!
//! Two access patterns dominate §4: the **per-car session walk** (Figure
//! 3's connected time, Figure 5/6's busy profiles, Figure 9's
//! durations) and the **per-(cell, 15-minute-bin) distinct-car count**
//! (Figures 8, 10 and 11). Both are provided here as streaming kernels
//! over the sharded store, with deterministic shard-order merges, so
//! rewired analyses share one scan implementation instead of each
//! re-walking a flat record vector.
//!
//! Two folder contracts coexist:
//!
//! * **column views** ([`CarView`]) — the fast path. The folder reads
//!   the shard's column slices in place; nothing is materialized. Row
//!   predicates are evaluated once per shard into a selection bitmap
//!   (after index narrowing), not once per folder per row.
//! * **materialized slices** ([`fold_per_car`]) — the compatibility
//!   path for folders that want `&[CdrRecord]`. It pays one
//!   [`columns::Shard::record`](crate::columns::Shard::record) call per
//!   row.

use crate::columns::Shard;
use crate::packed::{GroupScratch, PackedCols};
use crate::query::{keys, Filter, QueryStats, RowSelection};
use crate::store::CdrStore;
use conncar_cdr::CdrRecord;
use conncar_obs::CounterRegistry;
use conncar_types::{BinIndex, CarId, CellId};

/// A zero-materialization view of one car's rows inside a shard.
///
/// The three column slices are parallel and in canonical `(start, cell)`
/// order for the car. When the filter carries a row predicate, a
/// shard-wide selection bitmap says which rows qualify; folders iterate
/// with [`CarView::for_each_selected`] (or check
/// [`CarView::all_selected`] and take the tight slice loop).
#[derive(Debug, Clone, Copy)]
pub struct CarView<'a> {
    /// The car every row belongs to.
    pub car: CarId,
    /// Cell per row.
    pub cells: &'a [CellId],
    /// Start second per row.
    pub starts: &'a [u64],
    /// End second per row.
    pub ends: &'a [u64],
    /// Shard-wide selection bitmap (`None` = every row selected).
    bits: Option<&'a [u64]>,
    /// This group's first row id in the shard (bit offset).
    first: usize,
}

impl CarView<'_> {
    /// Rows in the group (selected or not).
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the group holds no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Whether every row is selected (no row predicate in the filter).
    #[inline]
    pub fn all_selected(&self) -> bool {
        self.bits.is_none()
    }

    /// Whether row `i` (group-relative) passed the filter.
    #[inline]
    pub fn is_selected(&self, i: usize) -> bool {
        match self.bits {
            None => true,
            Some(words) => {
                let b = self.first + i;
                (words[b >> 6] >> (b & 63)) & 1 == 1
            }
        }
    }

    /// Number of selected rows.
    pub fn selected_count(&self) -> usize {
        match self.bits {
            None => self.len(),
            Some(words) => popcount_range(words, self.first, self.first + self.len()),
        }
    }

    /// Visit each selected row index (group-relative), ascending.
    #[inline]
    pub fn for_each_selected(&self, mut f: impl FnMut(usize)) {
        match self.bits {
            None => (0..self.len()).for_each(f),
            Some(words) => {
                for i in 0..self.len() {
                    let b = self.first + i;
                    if (words[b >> 6] >> (b & 63)) & 1 == 1 {
                        f(i);
                    }
                }
            }
        }
    }
}

/// Population count of `words` over the bit range `[lo, hi)`.
fn popcount_range(words: &[u64], lo: usize, hi: usize) -> usize {
    if lo >= hi {
        return 0;
    }
    let (w0, w1) = (lo >> 6, (hi - 1) >> 6);
    let lo_mask = !0u64 << (lo & 63);
    let hi_mask = !0u64 >> (63 - ((hi - 1) & 63));
    if w0 == w1 {
        return (words[w0] & lo_mask & hi_mask).count_ones() as usize;
    }
    let mut n = (words[w0] & lo_mask).count_ones() as usize;
    for w in &words[w0 + 1..w1] {
        n += w.count_ones() as usize;
    }
    n + (words[w1] & hi_mask).count_ones() as usize
}

/// Evaluate the filter's row predicate once over one shard, narrowed by
/// the cheapest index first ([`CdrStore::select_rows`]): the bitmap (or
/// `None` when there is no row predicate at all) plus whether an index
/// did the narrowing.
fn build_selection(store: &CdrStore, shard_id: usize, filter: &Filter) -> (Option<Vec<u64>>, bool) {
    if !filter.has_row_predicate() {
        return (None, false);
    }
    let shard = &store.shards()[shard_id];
    let Some(f) = shard.flat() else {
        // Packed shards build group-local selections during decode
        // (see `walk_shard_packed`), never a shard-wide bitmap.
        return (None, false);
    };
    let mut bits = vec![0u64; (shard.len() + 63) / 64];
    let test = |row: usize, bits: &mut Vec<u64>| {
        if filter.row_matches(f.cells[row], f.starts[row], f.ends[row]) {
            bits[row >> 6] |= 1u64 << (row & 63);
        }
    };
    match store.select_rows(shard_id, filter) {
        RowSelection::All => {
            for row in 0..shard.len() {
                test(row, &mut bits);
            }
            (Some(bits), false)
        }
        RowSelection::Rows(rows) => {
            for &row in &rows {
                test(row as usize, &mut bits);
            }
            (Some(bits), true)
        }
    }
}

/// Walk one shard's car groups in row order, feeding each non-empty
/// selection to `visit` as a [`CarView`]. Accounting mirrors
/// [`fold_per_car`]: rows of directory-skipped cars are never counted.
pub(crate) fn walk_shard(
    store: &CdrStore,
    shard_id: usize,
    filter: &Filter,
    mut visit: impl FnMut(&CarView<'_>),
) -> QueryStats {
    let shard = &store.shards()[shard_id];
    if let Some(p) = shard.packed() {
        return walk_shard_packed(shard, p, filter, visit);
    }
    let (bits, index_narrowed) = build_selection(store, shard_id, filter);
    let narrowed = filter.car_set().is_some() || index_narrowed;
    let mut stats = QueryStats {
        shards_scanned: 1,
        index_scans: u32::from(narrowed),
        full_scans: u32::from(!narrowed),
        ..QueryStats::default()
    };
    let Some(f) = shard.flat() else {
        return stats;
    };
    for g in shard.car_groups() {
        if !filter.car_matches(g.car) {
            continue;
        }
        stats.rows_scanned += u64::from(g.rows);
        let (r0, r1) = (g.first as usize, (g.first + g.rows) as usize);
        let view = CarView {
            car: g.car,
            cells: &f.cells[r0..r1],
            starts: &f.starts[r0..r1],
            ends: &f.ends[r0..r1],
            bits: bits.as_deref(),
            first: r0,
        };
        let selected = view.selected_count();
        stats.rows_matched += selected as u64;
        if selected > 0 {
            visit(&view);
        }
    }
    stats
}

/// [`walk_shard`] over a packed shard: decode one car group at a time
/// into a reusable scratch (decode fused into the scan — the full
/// columns are never inflated) and evaluate the row predicate into a
/// group-local bitmap. Row accounting is identical to the flat walk;
/// packed shards have no row indexes, so only a car set counts as
/// index narrowing.
fn walk_shard_packed(
    shard: &Shard,
    packed: &PackedCols,
    filter: &Filter,
    mut visit: impl FnMut(&CarView<'_>),
) -> QueryStats {
    let narrowed = filter.car_set().is_some();
    let mut stats = QueryStats {
        shards_scanned: 1,
        index_scans: u32::from(narrowed),
        full_scans: u32::from(!narrowed),
        ..QueryStats::default()
    };
    let predicated = filter.has_row_predicate();
    let mut scratch = GroupScratch::default();
    for g in shard.car_groups() {
        if !filter.car_matches(g.car) {
            continue;
        }
        stats.rows_scanned += u64::from(g.rows);
        scratch.decode_group(packed, g);
        if predicated {
            scratch.fill_bits(|cell, s, e| filter.row_matches(cell, s, e));
        }
        let view = CarView {
            car: g.car,
            cells: &scratch.cells,
            starts: &scratch.starts,
            ends: &scratch.ends,
            bits: predicated.then_some(scratch.bits.as_slice()),
            first: 0,
        };
        let selected = view.selected_count();
        stats.rows_matched += selected as u64;
        if selected > 0 {
            visit(&view);
        }
    }
    stats
}

/// Fold [`CarView`]s through per-shard accumulators, shards in
/// parallel, merged in ascending shard order — deterministic for any
/// shard or thread count, and nothing is materialized.
pub fn fold_views<A, I, F, M>(
    store: &CdrStore,
    filter: &Filter,
    init: I,
    fold: F,
    merge: M,
) -> (A, QueryStats)
where
    A: Send,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, &CarView<'_>) + Sync,
    M: Fn(A, A) -> A,
{
    let t0 = store.clock().now_nanos();
    let (shard_ids, pruned) = store.plan_shards(filter);
    let per_shard: Vec<(A, QueryStats)> = crate::exec::par_map(shard_ids.len(), |i| {
        let mut acc = init();
        let stats = walk_shard(store, shard_ids[i], filter, |v| fold(&mut acc, v));
        (acc, stats)
    });
    // Same single accounting path as `scan_fold`: per-shard stats land
    // in a registry and the returned view is derived from it.
    let mut reg = CounterRegistry::new();
    reg.add(keys::SHARDS_PRUNED, u64::from(pruned));
    let mut out = init();
    for (acc, s) in per_shard {
        s.record_into(&mut reg);
        out = merge(out, acc);
    }
    reg.add(
        keys::SCAN_NANOS,
        store.clock().now_nanos().saturating_sub(t0),
    );
    (out, QueryStats::from_registry(&reg))
}

/// Per-car fold over column views: `f` maps each car's view to an
/// aggregate; the result is sorted by car and identical for any shard
/// or thread count. The zero-materialization successor of
/// [`fold_per_car`].
pub fn fold_per_car_views<A, F>(
    store: &CdrStore,
    filter: &Filter,
    f: F,
) -> (Vec<(CarId, A)>, QueryStats)
where
    A: Send,
    F: Fn(&CarView<'_>) -> A + Sync,
{
    let (mut merged, stats) = fold_views(
        store,
        filter,
        Vec::new,
        |acc: &mut Vec<(CarId, A)>, v| acc.push((v.car, f(v))),
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    // Cars are shard-disjoint, so this sort is a permutation with all
    // keys distinct — deterministic whatever the shard layout was.
    merged.sort_by_key(|&(car, _)| car);
    (merged, stats)
}

/// Walk every car's matching records in canonical order and fold each
/// car's slice through `f`. Cars whose records are all filtered away are
/// skipped, mirroring `CdrDataset::by_car` (which never yields empty
/// groups). Shards run in parallel; the result is sorted by car and
/// identical for any shard or thread count.
///
/// This kernel materializes `CdrRecord`s; prefer
/// [`fold_per_car_views`] where the folder can read columns directly.
pub fn fold_per_car<A, F>(store: &CdrStore, filter: &Filter, f: F) -> (Vec<(CarId, A)>, QueryStats)
where
    A: Send,
    F: Fn(CarId, &[CdrRecord]) -> A + Sync,
{
    let t0 = store.clock().now_nanos();
    let (shard_ids, pruned) = store.plan_shards(filter);
    // The car directory narrows the walk when a car set is present;
    // otherwise every group (hence every row) is visited.
    let narrowed = filter.car_set().is_some();
    // Fast path: no row predicate means every row of a matching car
    // qualifies — materialize the whole group straight from the
    // columns, skipping the per-row `row_matches` branch entirely.
    let whole_groups = !filter.has_row_predicate();
    let per_shard: Vec<(Vec<(CarId, A)>, QueryStats)> =
        crate::exec::par_map(shard_ids.len(), |i| {
            let shard = &store.shards()[shard_ids[i]];
            let mut out: Vec<(CarId, A)> = Vec::new();
            let mut stats = QueryStats {
                shards_scanned: 1,
                index_scans: u32::from(narrowed),
                full_scans: u32::from(!narrowed),
                ..QueryStats::default()
            };
            let mut buf: Vec<CdrRecord> = Vec::new();
            let mut tmp: Vec<CdrRecord> = Vec::new();
            for g in shard.car_groups() {
                if !filter.car_matches(g.car) {
                    // Directory skip: these rows are never touched.
                    continue;
                }
                buf.clear();
                stats.rows_scanned += u64::from(g.rows);
                if whole_groups {
                    shard.materialize_range(g.first as usize, g.rows as usize, &mut buf);
                } else if let Some(f) = shard.flat() {
                    for row in g.first..g.first + g.rows {
                        let row = row as usize;
                        if filter.row_matches(f.cells[row], f.starts[row], f.ends[row]) {
                            buf.push(shard.record(row));
                        }
                    }
                } else {
                    // Packed: decode the group once, then filter.
                    tmp.clear();
                    shard.materialize_range(g.first as usize, g.rows as usize, &mut tmp);
                    buf.extend(
                        tmp.iter()
                            .filter(|r| filter.row_matches(r.cell, r.start.as_secs(), r.end.as_secs()))
                            .copied(),
                    );
                }
                stats.rows_matched += buf.len() as u64;
                if !buf.is_empty() {
                    out.push((g.car, f(g.car, &buf)));
                }
            }
            (out, stats)
        });
    // Same single accounting path as `scan_fold`: per-shard stats land
    // in a registry and the returned view is derived from it.
    let mut reg = CounterRegistry::new();
    reg.add(keys::SHARDS_PRUNED, u64::from(pruned));
    let mut merged: Vec<(CarId, A)> = Vec::new();
    for (part, s) in per_shard {
        s.record_into(&mut reg);
        merged.extend(part);
    }
    // Cars are shard-disjoint, so this sort is a permutation with all
    // keys distinct — deterministic whatever the shard layout was.
    merged.sort_by_key(|&(car, _)| car);
    reg.add(
        keys::SCAN_NANOS,
        store.clock().now_nanos().saturating_sub(t0),
    );
    (merged, QueryStats::from_registry(&reg))
}

/// Expand every matching record into the deduplicated, globally sorted
/// `(cell, 15-min bin, car)` triples with `bin < bin_limit` — the §4.4
/// concurrency relation ("cars are concurrent if their connections
/// straddle a 15-minute time bin"). Byte-identical to expanding the flat
/// record vector and sorting, for any shard count.
///
/// Runs as a single-folder [`crate::fused::FusedPass`], so the
/// standalone call and the fused executor share one implementation:
/// per-shard expansion from the columns, per-shard `sort_unstable` +
/// `dedup` (duplicates only arise within a car, and a car lives in
/// exactly one shard), then a sorted merge in shard order.
pub fn cell_bin_car_triples(
    store: &CdrStore,
    filter: &Filter,
    bin_limit: u64,
) -> (Vec<(CellId, u64, CarId)>, QueryStats) {
    let mut pass = crate::fused::FusedPass::new(store, filter.clone());
    let h = pass.add_cell_bin_triples("cell_bin_car_triples", bin_limit);
    let mut out = pass.run();
    let stats = out.stats();
    (out.take(h), stats)
}

/// Shared expansion: feed every `(cell, bin, car)` of one selected view
/// row to `emit`, bins ascending, stopping at `bin_limit`.
#[inline]
pub(crate) fn expand_bins(
    view: &CarView<'_>,
    bin_limit: u64,
    mut emit: impl FnMut(CellId, u64, CarId),
) {
    view.for_each_selected(|i| {
        for bin in BinIndex::covering(
            conncar_types::Timestamp::from_secs(view.starts[i]),
            conncar_types::Timestamp::from_secs(view.ends[i]),
        ) {
            // Bins come out ascending, so the limit is a break, not a
            // filter — same set as `bin.0 < bin_limit` over all bins.
            if bin.0 >= bin_limit {
                break;
            }
            emit(view.cells[i], bin.0, view.car);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrDataset;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek, StudyPeriod, Timestamp};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn sample_ds() -> CdrDataset {
        let records = (0..300)
            .map(|i| rec(i % 23, i % 6, (i as u64 * 3671) % 500_000, 20 + (i as u64 % 1_500)))
            .collect();
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn per_car_walk_matches_by_car() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 7);
        let (got, stats) = fold_per_car(&store, &Filter::all(), |_car, records| {
            records.iter().map(|r| r.duration().as_secs()).sum::<u64>()
        });
        let want: Vec<(CarId, u64)> = ds
            .by_car()
            .map(|(car, records)| {
                (car, records.iter().map(|r| r.duration().as_secs()).sum())
            })
            .collect();
        assert_eq!(got, want);
        assert_eq!(stats.rows_scanned, 300);
    }

    #[test]
    fn per_car_walk_sees_records_in_canonical_order() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 5);
        let (got, _) = fold_per_car(&store, &Filter::all(), |_car, records| {
            records
                .windows(2)
                .all(|w| (w[0].start, w[0].cell) <= (w[1].start, w[1].cell))
        });
        assert!(got.iter().all(|&(_, ordered)| ordered));
    }

    #[test]
    fn per_car_walk_skips_fully_filtered_cars() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 3);
        let filter = Filter::all().car(CarId(4));
        let (got, stats) = fold_per_car(&store, &filter, |_car, records| records.len());
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].0, CarId(4));
        // Only car 4's directory span was walked.
        assert_eq!(stats.rows_scanned, got[0].1 as u64);
    }

    #[test]
    fn view_walk_matches_materialized_walk() {
        let ds = sample_ds();
        let filters = [
            Filter::all(),
            Filter::all().car(CarId(4)),
            Filter::all().window(Timestamp::from_secs(100_000), Timestamp::from_secs(300_000)),
            Filter::all().cell(CellId::new(BaseStationId(2), 0, Carrier::C3)),
        ];
        for filter in &filters {
            for shards in [1, 4, 16] {
                let store = CdrStore::build(&ds, shards);
                let (want, ws) = fold_per_car(&store, filter, |_car, records| {
                    records.iter().map(|r| r.duration().as_secs()).sum::<u64>()
                });
                let (got, gs) = fold_per_car_views(&store, filter, |v| {
                    let mut sum = 0u64;
                    v.for_each_selected(|i| sum += v.ends[i].saturating_sub(v.starts[i]));
                    sum
                });
                assert_eq!(got, want, "shards={shards} filter={filter:?}");
                assert_eq!(gs.rows_matched, ws.rows_matched);
            }
        }
    }

    #[test]
    fn view_selection_bitmap_agrees_with_row_predicate() {
        let ds = sample_ds();
        let store = CdrStore::build(&ds, 4);
        let filter =
            Filter::all().window(Timestamp::from_secs(50_000), Timestamp::from_secs(250_000));
        let (views, _) = fold_per_car_views(&store, &filter, |v| {
            let mut selected = Vec::new();
            for i in 0..v.len() {
                assert_eq!(
                    v.is_selected(i),
                    filter.row_matches(v.cells[i], v.starts[i], v.ends[i])
                );
                if v.is_selected(i) {
                    selected.push(i);
                }
            }
            let mut visited = Vec::new();
            v.for_each_selected(|i| visited.push(i));
            assert_eq!(visited, selected);
            assert_eq!(v.selected_count(), selected.len());
            selected.len()
        });
        let total: usize = views.iter().map(|&(_, n)| n).sum();
        let (expect, _) = store.count(&filter);
        assert_eq!(total as u64, expect);
    }

    #[test]
    fn triples_match_flat_expansion() {
        let ds = sample_ds();
        let bin_limit = ds.period().total_bins();
        let mut want: Vec<(CellId, u64, CarId)> = Vec::new();
        for r in ds.records() {
            for bin in BinIndex::covering(r.start, r.end) {
                if bin.0 < bin_limit {
                    want.push((r.cell, bin.0, r.car));
                }
            }
        }
        want.sort();
        want.dedup();
        for shards in [1, 2, 7, 64] {
            let store = CdrStore::build(&ds, shards);
            let (got, _) = cell_bin_car_triples(&store, &Filter::all(), bin_limit);
            assert_eq!(got, want, "shards={shards}");
        }
    }

    #[test]
    fn empty_store_kernels() {
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), vec![]);
        let store = CdrStore::build(&ds, 4);
        let (walk, _) = fold_per_car(&store, &Filter::all(), |_c, r| r.len());
        assert!(walk.is_empty());
        let (views, _) = fold_per_car_views(&store, &Filter::all(), |v| v.len());
        assert!(views.is_empty());
        let (triples, _) = cell_bin_car_triples(&store, &Filter::all(), u64::MAX);
        assert!(triples.is_empty());
    }
}

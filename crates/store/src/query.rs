//! Typed predicates, the scan planner, and query statistics.
//!
//! A [`Filter`] names *what* rows qualify; the planner decides *how* to
//! reach them — whole shards are pruned through the car-hash and the
//! time envelope, and inside a shard the car directory, cell postings
//! or time index narrow the candidate rows before the residual
//! predicate runs. Every query reports a [`QueryStats`], so "how much
//! did this analysis actually read" is always observable.

use crate::store::CdrStore;
use conncar_cdr::CdrRecord;
use conncar_obs::CounterRegistry;
use conncar_types::{CarId, Carrier, CellId, Duration, Timestamp};
use serde::{Deserialize, Serialize};

/// Well-known counter keys the query engine accounts under. One
/// namespace, one accounting path: [`QueryStats`] is a thin view over a
/// [`CounterRegistry`] populated with these keys, and run-level
/// telemetry absorbs the same keys, so the two can never disagree.
pub mod keys {
    /// Rows the engine examined (after index narrowing).
    pub const ROWS_SCANNED: &str = "store.rows_scanned";
    /// Rows that passed the full predicate.
    pub const ROWS_MATCHED: &str = "store.rows_matched";
    /// Shards skipped entirely by car-hash or time-envelope pruning.
    pub const SHARDS_PRUNED: &str = "store.shards_pruned";
    /// Shards actually scanned.
    pub const SHARDS_SCANNED: &str = "store.shards_scanned";
    /// Shard scans narrowed by an index (car directory, cell postings
    /// or time index).
    pub const INDEX_SCANS: &str = "store.index_scans";
    /// Shard scans that had to visit every row.
    pub const FULL_SCANS: &str = "store.full_scans";
    /// Wall nanoseconds across whole queries (plan + scan + merge).
    pub const SCAN_NANOS: &str = "store.scan_nanos";
}

/// Duration-class predicate: the store's notion of a record *kind*.
///
/// CDRs carry no explicit type tag; what the analyses distinguish is
/// duration classes — ordinary connections vs the long sticky-modem
/// tails that §3 truncates at 600 s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RecordKind {
    /// Every record.
    #[default]
    Any,
    /// Records strictly shorter than the bound.
    ShorterThan(Duration),
    /// Records at least as long as the bound (the sticky tail).
    AtLeast(Duration),
}

impl RecordKind {
    #[inline]
    fn matches(self, start_secs: u64, end_secs: u64) -> bool {
        let dur = end_secs.saturating_sub(start_secs);
        match self {
            RecordKind::Any => true,
            RecordKind::ShorterThan(d) => dur < d.as_secs(),
            RecordKind::AtLeast(d) => dur >= d.as_secs(),
        }
    }
}

/// A typed row predicate. Build with the fluent constructors; an empty
/// filter ([`Filter::all`]) matches every record.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Filter {
    /// Qualifying cars (sorted, deduplicated). `None` = every car.
    cars: Option<Vec<CarId>>,
    /// Qualifying cells (sorted, deduplicated). `None` = every cell.
    cells: Option<Vec<CellId>>,
    /// Qualifying carrier. `None` = every carrier.
    carrier: Option<Carrier>,
    /// Half-open `[start, end)` second window a record must *overlap*.
    window: Option<(u64, u64)>,
    /// Duration class.
    kind: RecordKind,
}

impl Filter {
    /// The match-everything filter.
    pub fn all() -> Filter {
        Filter::default()
    }

    /// Restrict to a single car.
    pub fn car(self, car: CarId) -> Filter {
        self.cars(vec![car])
    }

    /// Restrict to a set of cars.
    pub fn cars(mut self, mut cars: Vec<CarId>) -> Filter {
        cars.sort_unstable();
        cars.dedup();
        self.cars = Some(cars);
        self
    }

    /// Restrict to a single cell.
    pub fn cell(self, cell: CellId) -> Filter {
        self.cells(vec![cell])
    }

    /// Restrict to a set of cells.
    pub fn cells(mut self, mut cells: Vec<CellId>) -> Filter {
        cells.sort_unstable();
        cells.dedup();
        self.cells = Some(cells);
        self
    }

    /// Restrict to one frequency carrier.
    pub fn carrier(mut self, carrier: Carrier) -> Filter {
        self.carrier = Some(carrier);
        self
    }

    /// Restrict to records overlapping the half-open window `[start, end)`.
    pub fn window(mut self, start: Timestamp, end: Timestamp) -> Filter {
        self.window = Some((start.as_secs(), end.as_secs()));
        self
    }

    /// Restrict to a duration class.
    pub fn kind(mut self, kind: RecordKind) -> Filter {
        self.kind = kind;
        self
    }

    /// The car set, if restricted.
    pub fn car_set(&self) -> Option<&[CarId]> {
        self.cars.as_deref()
    }

    /// The cell set, if restricted.
    pub fn cell_set(&self) -> Option<&[CellId]> {
        self.cells.as_deref()
    }

    /// The carrier restriction, if any.
    pub fn carrier_restriction(&self) -> Option<Carrier> {
        self.carrier
    }

    /// The half-open `[start, end)` second window, if restricted.
    pub fn window_bounds(&self) -> Option<(u64, u64)> {
        self.window
    }

    /// The duration-class restriction.
    pub fn kind_restriction(&self) -> RecordKind {
        self.kind
    }

    /// Reject filters that can never match a record: an inverted or
    /// empty time window (`start >= end` of a half-open interval) and
    /// explicitly empty car or cell sets. Such filters are almost
    /// always caller bugs — a swapped argument pair, an empty id list
    /// from an upstream lookup — and before this check they silently
    /// returned empty results. Query admission calls this before any
    /// scan is planned.
    pub fn validate(&self) -> conncar_types::Result<()> {
        if let Some((ws, we)) = self.window {
            if ws >= we {
                return Err(conncar_types::Error::InvalidFilter {
                    what: "window",
                    why: format!(
                        "half-open window [{ws}, {we}) is {}",
                        if ws == we { "empty" } else { "inverted" }
                    ),
                });
            }
        }
        if matches!(self.cars.as_deref(), Some([])) {
            return Err(conncar_types::Error::InvalidFilter {
                what: "cars",
                why: "car set is empty; omit the predicate to match every car".into(),
            });
        }
        if matches!(self.cells.as_deref(), Some([])) {
            return Err(conncar_types::Error::InvalidFilter {
                what: "cells",
                why: "cell set is empty; omit the predicate to match every cell".into(),
            });
        }
        Ok(())
    }

    /// Whether the filter matches everything (no predicate set).
    pub fn is_all(&self) -> bool {
        self.cars.is_none()
            && self.cells.is_none()
            && self.carrier.is_none()
            && self.window.is_none()
            && self.kind == RecordKind::Any
    }

    /// Whether any *row-level* predicate is set (anything beyond the
    /// car set). Without one, every row of a matching car qualifies, so
    /// kernels skip per-row predicate evaluation entirely.
    pub fn has_row_predicate(&self) -> bool {
        self.cells.is_some()
            || self.carrier.is_some()
            || self.window.is_some()
            || self.kind != RecordKind::Any
    }

    /// Whether a car passes the car predicate alone.
    #[inline]
    pub(crate) fn car_matches(&self, car: CarId) -> bool {
        match &self.cars {
            None => true,
            Some(cars) => cars.binary_search(&car).is_ok(),
        }
    }

    /// The residual row predicate (everything except the car set).
    #[inline]
    pub(crate) fn row_matches(&self, cell: CellId, start_secs: u64, end_secs: u64) -> bool {
        if let Some(cells) = &self.cells {
            if cells.binary_search(&cell).is_err() {
                return false;
            }
        }
        if let Some(carrier) = self.carrier {
            if cell.carrier != carrier {
                return false;
            }
        }
        if let Some((ws, we)) = self.window {
            // Overlap of half-open intervals.
            if start_secs >= we || end_secs <= ws {
                return false;
            }
        }
        self.kind.matches(start_secs, end_secs)
    }

    /// Full predicate over a materialized record.
    #[inline]
    pub fn matches(&self, r: &CdrRecord) -> bool {
        self.car_matches(r.car) && self.row_matches(r.cell, r.start.as_secs(), r.end.as_secs())
    }

    /// The half-open window, if restricted.
    pub(crate) fn window_secs(&self) -> Option<(u64, u64)> {
        self.window
    }
}

/// What one query execution cost.
///
/// A thin view over the [`keys`] counters: query execution accounts
/// into a [`CounterRegistry`] and this struct is derived from it
/// ([`QueryStats::from_registry`]), so the registry is the single
/// source of truth and `QueryStats` is the ergonomic projection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryStats {
    /// Rows the engine examined (after index narrowing).
    pub rows_scanned: u64,
    /// Rows that passed the full predicate.
    pub rows_matched: u64,
    /// Shards skipped entirely by car-hash or time-envelope pruning.
    pub shards_pruned: u32,
    /// Shards actually scanned.
    pub shards_scanned: u32,
    /// Shard scans narrowed by an index (car directory, cell postings
    /// or time index) instead of visiting every row.
    pub index_scans: u32,
    /// Shard scans that visited every row.
    pub full_scans: u32,
    /// Wall-clock nanoseconds of the whole query (plan + scan + merge),
    /// read from the store's injected clock.
    pub scan_nanos: u64,
}

impl QueryStats {
    /// Project the [`keys`] counters of a registry into a stats view.
    pub fn from_registry(reg: &CounterRegistry) -> QueryStats {
        QueryStats {
            rows_scanned: reg.get(keys::ROWS_SCANNED),
            rows_matched: reg.get(keys::ROWS_MATCHED),
            shards_pruned: conncar_types::saturating_u32(reg.get(keys::SHARDS_PRUNED)),
            shards_scanned: conncar_types::saturating_u32(reg.get(keys::SHARDS_SCANNED)),
            index_scans: conncar_types::saturating_u32(reg.get(keys::INDEX_SCANS)),
            full_scans: conncar_types::saturating_u32(reg.get(keys::FULL_SCANS)),
            scan_nanos: reg.get(keys::SCAN_NANOS),
        }
    }

    /// Account this view's values into a registry under the [`keys`]
    /// names (the inverse of [`QueryStats::from_registry`]).
    pub fn record_into(&self, reg: &mut CounterRegistry) {
        reg.add(keys::ROWS_SCANNED, self.rows_scanned);
        reg.add(keys::ROWS_MATCHED, self.rows_matched);
        reg.add(keys::SHARDS_PRUNED, u64::from(self.shards_pruned));
        reg.add(keys::SHARDS_SCANNED, u64::from(self.shards_scanned));
        reg.add(keys::INDEX_SCANS, u64::from(self.index_scans));
        reg.add(keys::FULL_SCANS, u64::from(self.full_scans));
        reg.add(keys::SCAN_NANOS, self.scan_nanos);
    }

    /// Fold another stats record into this one (nanos add; a sequence of
    /// queries reports its total cost).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_matched += other.rows_matched;
        self.shards_pruned += other.shards_pruned;
        self.shards_scanned += other.shards_scanned;
        self.index_scans += other.index_scans;
        self.full_scans += other.full_scans;
        self.scan_nanos += other.scan_nanos;
    }

    /// Scan throughput in rows per second (0 when no time elapsed).
    pub fn rows_per_sec(&self) -> f64 {
        if self.scan_nanos == 0 {
            0.0
        } else {
            self.rows_scanned as f64 * 1e9 / self.scan_nanos as f64
        }
    }
}

/// Which rows of one shard a plan visits.
pub(crate) enum RowSelection {
    /// Every row, in row order.
    All,
    /// An explicit ascending row-id list from an index.
    Rows(Vec<u32>),
}

impl CdrStore {
    /// Shard ids the filter cannot prune, in ascending order, plus the
    /// pruned count.
    pub(crate) fn plan_shards(&self, filter: &Filter) -> (Vec<usize>, u32) {
        let mut keep: Vec<usize> = Vec::with_capacity(self.shard_count());
        let mut pruned = 0u32;
        // Car-hash pruning: with a car set, only the shards those cars
        // hash to can hold matches.
        let car_shards: Option<Vec<usize>> = filter.car_set().map(|cars| {
            let mut ids: Vec<usize> = cars.iter().map(|&c| self.shard_of(c)).collect();
            ids.sort_unstable();
            ids.dedup();
            ids
        });
        for id in 0..self.shard_count() {
            let shard = &self.shards()[id];
            let mut keep_this = !shard.is_empty();
            if let Some(ids) = &car_shards {
                keep_this &= ids.binary_search(&id).is_ok();
            }
            if let Some((ws, we)) = filter.window_secs() {
                // No row can overlap the window if the whole envelope
                // misses it.
                keep_this &= shard.min_start() < we && shard.max_end() > ws;
            }
            if keep_this {
                keep.push(id);
            } else {
                pruned += 1;
            }
        }
        (keep, pruned)
    }

    /// Choose the cheapest index path into one shard for this filter.
    pub(crate) fn select_rows(&self, shard_id: usize, filter: &Filter) -> RowSelection {
        let shard = &self.shards()[shard_id];
        if let Some(cars) = filter.car_set() {
            // Car directory: contiguous spans, ascending car — rows come
            // out ascending because cars are visited in sorted order.
            let mut rows: Vec<u32> = Vec::new();
            for &car in cars {
                if let Ok(i) = shard.car_groups().binary_search_by_key(&car, |g| g.car) {
                    let g = shard.car_groups()[i];
                    rows.extend(g.first..g.first + g.rows);
                }
            }
            return RowSelection::Rows(rows);
        }
        // The remaining paths need the flat row indexes; packed shards
        // carry none, so their row predicates run as residual filters
        // over a full group scan.
        let Some(f) = shard.flat() else {
            return RowSelection::All;
        };
        if let Some(cells) = &filter.cells {
            // Cell postings: union the per-cell lists, restore row order.
            let mut rows: Vec<u32> = Vec::new();
            for cell in cells {
                if let Ok(i) = shard
                    .cell_postings()
                    .binary_search_by_key(cell, |p| p.cell)
                {
                    rows.extend_from_slice(&shard.cell_postings()[i].rows);
                }
            }
            rows.sort_unstable();
            return RowSelection::Rows(rows);
        }
        if let Some((ws, we)) = filter.window_secs() {
            // Time index: rows starting at/after the window end can never
            // overlap it; check the rest, restore row order.
            let idx = shard.time_index();
            let cut = idx.partition_point(|&row| f.starts[row as usize] < we);
            let mut rows: Vec<u32> = idx[..cut]
                .iter()
                .copied()
                .filter(|&row| f.ends[row as usize] > ws)
                .collect();
            rows.sort_unstable();
            return RowSelection::Rows(rows);
        }
        RowSelection::All
    }

    /// Scan every matching row of one shard in row order, feeding the
    /// accumulator. Returns per-shard stats (no wall time).
    pub(crate) fn scan_shard<A>(
        &self,
        shard_id: usize,
        filter: &Filter,
        acc: &mut A,
        fold: &(impl Fn(&mut A, CdrRecord) + ?Sized),
    ) -> QueryStats {
        let shard = &self.shards()[shard_id];
        if let Some(p) = shard.packed() {
            return scan_shard_packed(shard, p, filter, acc, fold);
        }
        let mut stats = QueryStats {
            shards_scanned: 1,
            ..QueryStats::default()
        };
        let Some(f) = shard.flat() else {
            return stats;
        };
        let mut visit = |row: usize| {
            stats.rows_scanned += 1;
            let (cell, s, e) = (f.cells[row], f.starts[row], f.ends[row]);
            if filter.car_matches(f.cars[row]) && filter.row_matches(cell, s, e) {
                stats.rows_matched += 1;
                fold(acc, shard.record(row));
            }
        };
        match self.select_rows(shard_id, filter) {
            RowSelection::All => {
                stats.full_scans = 1;
                (0..shard.len()).for_each(&mut visit);
            }
            RowSelection::Rows(rows) => {
                stats.index_scans = 1;
                rows.iter().for_each(|&r| visit(r as usize));
            }
        }
        stats
    }

    /// The core query: fold every matching record, shards in parallel.
    ///
    /// `init` seeds one accumulator per scanned shard, `fold` consumes
    /// records in canonical row order within a shard, and `merge`
    /// combines per-shard accumulators *in ascending shard order* — so
    /// the result is deterministic for any thread count.
    pub fn scan_fold<A, I, F, M>(&self, filter: &Filter, init: I, fold: F, merge: M) -> (A, QueryStats)
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, CdrRecord) + Sync,
        M: Fn(A, A) -> A,
    {
        let t0 = self.clock().now_nanos();
        let (shard_ids, pruned) = self.plan_shards(filter);
        let per_shard: Vec<(A, QueryStats)> = crate::exec::par_map(shard_ids.len(), |i| {
            let mut acc = init();
            let stats = self.scan_shard(shard_ids[i], filter, &mut acc, &fold);
            (acc, stats)
        });
        // One accounting path: per-shard stats land in a counter
        // registry and the returned view is derived from it.
        let mut reg = CounterRegistry::new();
        reg.add(keys::SHARDS_PRUNED, u64::from(pruned));
        let mut out = init();
        for (acc, s) in per_shard {
            s.record_into(&mut reg);
            out = merge(out, acc);
        }
        reg.add(
            keys::SCAN_NANOS,
            self.clock().now_nanos().saturating_sub(t0),
        );
        (out, QueryStats::from_registry(&reg))
    }

    /// Collect matching records in the dataset's canonical
    /// `(car, start, cell)` order.
    pub fn collect(&self, filter: &Filter) -> (Vec<CdrRecord>, QueryStats) {
        let (mut records, stats) = self.scan_fold(
            filter,
            Vec::new,
            |acc: &mut Vec<CdrRecord>, r| acc.push(r),
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        // Shards are car-disjoint and internally canonical; one stable
        // sort restores the global canonical order.
        records.sort_by_key(|r| (r.car, r.start, r.cell));
        (records, stats)
    }

    /// Count matching records.
    pub fn count(&self, filter: &Filter) -> (u64, QueryStats) {
        self.scan_fold(filter, || 0u64, |n, _| *n += 1, |a, b| a + b)
    }
}

/// [`CdrStore::scan_shard`] over a packed shard: walk the car
/// directory in row order, decode each visited group once (decode
/// fused into the scan), and run the residual predicate per row. With
/// a car set the directory narrows the walk (an index scan); otherwise
/// every row is visited, exactly like the flat full scan.
fn scan_shard_packed<A>(
    shard: &crate::columns::Shard,
    packed: &crate::packed::PackedCols,
    filter: &Filter,
    acc: &mut A,
    fold: &(impl Fn(&mut A, CdrRecord) + ?Sized),
) -> QueryStats {
    let narrowed = filter.car_set().is_some();
    let mut stats = QueryStats {
        shards_scanned: 1,
        index_scans: u32::from(narrowed),
        full_scans: u32::from(!narrowed),
        ..QueryStats::default()
    };
    let mut scratch = crate::packed::GroupScratch::default();
    for g in shard.car_groups() {
        if !filter.car_matches(g.car) {
            continue;
        }
        scratch.decode_group(packed, g);
        for i in 0..scratch.cells.len() {
            stats.rows_scanned += 1;
            let (cell, s, e) = (scratch.cells[i], scratch.starts[i], scratch.ends[i]);
            if filter.row_matches(cell, s, e) {
                stats.rows_matched += 1;
                fold(
                    acc,
                    CdrRecord {
                        car: g.car,
                        cell,
                        start: Timestamp::from_secs(s),
                        end: Timestamp::from_secs(e),
                    },
                );
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrDataset;
    use conncar_types::{BaseStationId, DayOfWeek, StudyPeriod};

    fn rec(car: u32, station: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn store(records: Vec<CdrRecord>, shards: usize) -> CdrStore {
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records);
        CdrStore::build(&ds, shards)
    }

    fn sample() -> Vec<CdrRecord> {
        (0..200)
            .map(|i| rec(i % 17, i % 5, (i as u64 * 977) % 500_000, 30 + (i as u64 * 7) % 900))
            .collect()
    }

    #[test]
    fn all_filter_matches_everything() {
        let s = store(sample(), 7);
        let (n, stats) = s.count(&Filter::all());
        assert_eq!(n, 200);
        assert_eq!(stats.rows_scanned, 200);
        assert_eq!(stats.rows_matched, 200);
        assert_eq!(
            stats.shards_scanned + stats.shards_pruned,
            s.shard_count() as u32
        );
    }

    #[test]
    fn car_filter_prunes_shards_and_uses_directory() {
        let s = store(sample(), 16);
        let (records, stats) = s.collect(&Filter::all().car(CarId(3)));
        assert!(!records.is_empty());
        assert!(records.iter().all(|r| r.car == CarId(3)));
        // Only the one shard holding car 3 is scanned.
        assert_eq!(stats.shards_scanned, 1);
        assert!(stats.shards_pruned >= 1);
        // The directory narrowed the scan to exactly the matches.
        assert_eq!(stats.rows_scanned, stats.rows_matched);
    }

    #[test]
    fn window_filter_matches_naive_overlap() {
        let s = store(sample(), 4);
        let (w0, w1) = (Timestamp::from_secs(100_000), Timestamp::from_secs(200_000));
        let (got, _) = s.collect(&Filter::all().window(w0, w1));
        let naive: Vec<CdrRecord> = {
            let (mut all, _) = s.collect(&Filter::all());
            all.retain(|r| r.start < w1 && r.end > w0);
            all
        };
        assert_eq!(got, naive);
        assert!(!got.is_empty());
    }

    #[test]
    fn empty_window_prunes_everything() {
        let s = store(sample(), 4);
        let (n, stats) = s.count(&Filter::all().window(
            Timestamp::from_secs(600_000),
            Timestamp::from_secs(700_000),
        ));
        assert_eq!(n, 0);
        assert_eq!(stats.shards_scanned, 0);
        assert_eq!(stats.shards_pruned, s.shard_count() as u32);
        assert_eq!(stats.rows_scanned, 0);
    }

    #[test]
    fn cell_filter_uses_postings() {
        let s = store(sample(), 3);
        let cell = CellId::new(BaseStationId(2), 0, Carrier::C3);
        let (records, stats) = s.collect(&Filter::all().cell(cell));
        assert!(records.iter().all(|r| r.cell == cell));
        assert_eq!(stats.rows_scanned, stats.rows_matched);
        let (all, _) = s.collect(&Filter::all());
        assert_eq!(
            records.len(),
            all.iter().filter(|r| r.cell == cell).count()
        );
    }

    #[test]
    fn kind_filter_splits_durations() {
        let s = store(sample(), 5);
        let cap = Duration::from_secs(600);
        let (short, _) = s.count(&Filter::all().kind(RecordKind::ShorterThan(cap)));
        let (long, _) = s.count(&Filter::all().kind(RecordKind::AtLeast(cap)));
        assert_eq!(short + long, 200);
        assert!(short > 0 && long > 0);
    }

    #[test]
    fn carrier_filter() {
        let s = store(sample(), 2);
        let (n, _) = s.count(&Filter::all().carrier(Carrier::C3));
        assert_eq!(n, 200);
        let (n, _) = s.count(&Filter::all().carrier(Carrier::C1));
        assert_eq!(n, 0);
    }

    #[test]
    fn combined_filters_compose() {
        let s = store(sample(), 8);
        let f = Filter::all()
            .cars(vec![CarId(1), CarId(2), CarId(3)])
            .window(Timestamp::from_secs(0), Timestamp::from_secs(300_000))
            .kind(RecordKind::ShorterThan(Duration::from_secs(700)));
        let (got, _) = s.collect(&f);
        let (all, _) = s.collect(&Filter::all());
        let naive: Vec<CdrRecord> = all.into_iter().filter(|r| f.matches(r)).collect();
        assert_eq!(got, naive);
    }

    #[test]
    fn stats_absorb_and_throughput() {
        let mut a = QueryStats {
            rows_scanned: 10,
            rows_matched: 5,
            shards_pruned: 1,
            shards_scanned: 2,
            index_scans: 1,
            full_scans: 1,
            scan_nanos: 1_000_000_000,
        };
        let b = a;
        a.absorb(&b);
        assert_eq!(a.rows_scanned, 20);
        assert_eq!(a.index_scans, 2);
        assert_eq!(a.full_scans, 2);
        assert_eq!(a.scan_nanos, 2_000_000_000);
        assert!((a.rows_per_sec() - 10.0).abs() < 1e-9);
        assert_eq!(QueryStats::default().rows_per_sec(), 0.0);
    }

    #[test]
    fn stats_round_trip_through_registry() {
        let a = QueryStats {
            rows_scanned: 10,
            rows_matched: 5,
            shards_pruned: 1,
            shards_scanned: 2,
            index_scans: 2,
            full_scans: 0,
            scan_nanos: 42,
        };
        let mut reg = CounterRegistry::new();
        a.record_into(&mut reg);
        a.record_into(&mut reg);
        let doubled = QueryStats::from_registry(&reg);
        let mut expect = a;
        expect.absorb(&a);
        assert_eq!(doubled, expect);
    }

    #[test]
    fn validate_rejects_inverted_window() {
        let f = Filter::all().window(Timestamp::from_secs(200), Timestamp::from_secs(100));
        let err = f.validate().unwrap_err();
        assert!(
            matches!(err, conncar_types::Error::InvalidFilter { what: "window", .. }),
            "{err}"
        );
        assert!(err.to_string().contains("inverted"), "{err}");
    }

    #[test]
    fn validate_rejects_empty_window() {
        let f = Filter::all().window(Timestamp::from_secs(100), Timestamp::from_secs(100));
        let err = f.validate().unwrap_err();
        assert!(
            matches!(err, conncar_types::Error::InvalidFilter { what: "window", .. }),
            "{err}"
        );
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn validate_rejects_empty_car_set() {
        let err = Filter::all().cars(vec![]).validate().unwrap_err();
        assert!(
            matches!(err, conncar_types::Error::InvalidFilter { what: "cars", .. }),
            "{err}"
        );
    }

    #[test]
    fn validate_rejects_empty_cell_set() {
        let err = Filter::all().cells(vec![]).validate().unwrap_err();
        assert!(
            matches!(err, conncar_types::Error::InvalidFilter { what: "cells", .. }),
            "{err}"
        );
    }

    #[test]
    fn validate_accepts_well_formed_filters() {
        assert!(Filter::all().validate().is_ok());
        let f = Filter::all()
            .car(CarId(1))
            .cell(CellId::new(BaseStationId(2), 0, Carrier::C3))
            .window(Timestamp::from_secs(0), Timestamp::from_secs(1))
            .kind(RecordKind::AtLeast(Duration::from_secs(600)));
        assert!(f.validate().is_ok());
    }

    #[test]
    fn accessors_expose_every_predicate() {
        let f = Filter::all()
            .cars(vec![CarId(2), CarId(1)])
            .cells(vec![CellId::new(BaseStationId(9), 1, Carrier::C2)])
            .carrier(Carrier::C2)
            .window(Timestamp::from_secs(5), Timestamp::from_secs(9))
            .kind(RecordKind::ShorterThan(Duration::from_secs(600)));
        assert_eq!(f.car_set(), Some(&[CarId(1), CarId(2)][..]));
        assert_eq!(f.cell_set().map(<[CellId]>::len), Some(1));
        assert_eq!(f.carrier_restriction(), Some(Carrier::C2));
        assert_eq!(f.window_bounds(), Some((5, 9)));
        assert_eq!(
            f.kind_restriction(),
            RecordKind::ShorterThan(Duration::from_secs(600))
        );
    }

    #[test]
    fn scans_classify_index_vs_full() {
        let s = store(sample(), 4);
        // No predicate: every scanned shard visits every row.
        let (_, stats) = s.count(&Filter::all());
        assert_eq!(stats.index_scans, 0);
        assert_eq!(stats.full_scans, stats.shards_scanned);
        // Car predicate: the directory narrows every scan.
        let (_, stats) = s.count(&Filter::all().car(CarId(3)));
        assert_eq!(stats.full_scans, 0);
        assert_eq!(stats.index_scans, stats.shards_scanned);
    }
}

//! The sharded store itself: build-once layout and shard routing.

use crate::columns::Shard;
use conncar_cdr::{CdrDataset, CdrRecord};
use conncar_obs::{Clock, MonotonicClock, SharedClock, SpanRecord};
use conncar_types::{CarId, StudyPeriod};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default upper bound on the automatic shard count.
const MAX_AUTO_SHARDS: usize = 64;

/// Process-wide store build counter: every [`CdrStore::build`] claims
/// the next generation number. Result caches key on
/// `(request digest, generation)`, so results computed against one
/// build can never be served for another — a rebuilt (re-cleaned,
/// re-sharded) dataset invalidates every cached answer without the
/// cache having to see the data. Identity only: generations never
/// appear in query results or telemetry artifacts.
static NEXT_GENERATION: AtomicU64 = AtomicU64::new(1);

/// What building one shard cost (telemetry for the store-build span).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardBuildStats {
    /// Rows laid out into this shard.
    pub rows: u64,
    /// Wall nanoseconds spent building this shard's columns and
    /// indexes (zero under a `NullClock`).
    pub wall_ns: u64,
}

/// A sharded, columnar copy of one cleaned [`CdrDataset`].
///
/// Built once after cleaning; immutable afterwards. Records are
/// partitioned by a hash of the car id, so every car's whole history
/// lives in exactly one shard — per-car group-bys never cross shard
/// boundaries and per-shard distinct-car counts add up exactly.
#[derive(Debug, Clone)]
pub struct CdrStore {
    period: StudyPeriod,
    shards: Vec<Shard>,
    len: usize,
    /// The injected clock every query's `scan_nanos` is read from.
    /// Never ambient: determinism tests swap in a `NullClock` and the
    /// whole query layer reports zero wall time, byte-identically.
    clock: SharedClock,
    build_stats: Vec<ShardBuildStats>,
    /// This build's generation number (see [`NEXT_GENERATION`]).
    /// Clones share it: they are views of the same laid-out data.
    generation: u64,
}

impl CdrStore {
    /// Build a store with an explicit shard count (clamped to at least
    /// 1), timing queries against the real monotonic clock.
    ///
    /// The dataset's canonical `(car, start, cell)` order is preserved
    /// within each shard, which is what keeps the car directory
    /// contiguous and store scans byte-compatible with legacy scans.
    pub fn build(ds: &CdrDataset, shards: usize) -> CdrStore {
        CdrStore::build_with_clock(ds, shards, Arc::new(MonotonicClock::new()))
    }

    /// Build with an injected clock (determinism tests pass a
    /// `NullClock`; instrumented runs share one run-wide clock).
    pub fn build_with_clock(ds: &CdrDataset, shards: usize, clock: SharedClock) -> CdrStore {
        let shard_count = shards.max(1);
        let mut buckets: Vec<Vec<&CdrRecord>> = vec![Vec::new(); shard_count];
        for r in ds.records() {
            buckets[shard_slot(r.car, shard_count)].push(r);
        }
        let built = crate::exec::par_map(shard_count, |i| {
            let t0 = clock.now_nanos();
            let shard = Shard::build(&buckets[i]);
            let stats = ShardBuildStats {
                rows: buckets[i].len() as u64,
                wall_ns: clock.now_nanos().saturating_sub(t0),
            };
            (shard, stats)
        });
        let (shards, build_stats) = built.into_iter().unzip();
        CdrStore {
            period: ds.period(),
            len: ds.len(),
            shards,
            clock,
            build_stats,
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Assemble a store from already-laid-out shards (the streaming
    /// [`crate::StoreBuilder`] path). Claims a fresh generation, like
    /// every batch build.
    pub(crate) fn from_parts(
        period: StudyPeriod,
        shards: Vec<Shard>,
        len: usize,
        clock: SharedClock,
        build_stats: Vec<ShardBuildStats>,
    ) -> CdrStore {
        CdrStore {
            period,
            shards,
            len,
            clock,
            build_stats,
            generation: NEXT_GENERATION.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Build with a shard count sized to the machine and the dataset:
    /// roughly four tasks per available core (so work-stealing can level
    /// uneven shards), capped at 64 and at one shard per 1024 rows.
    pub fn build_auto(ds: &CdrDataset) -> CdrStore {
        CdrStore::build_auto_with_clock(ds, Arc::new(MonotonicClock::new()))
    }

    /// [`CdrStore::build_auto`] with an injected clock.
    pub fn build_auto_with_clock(ds: &CdrDataset, clock: SharedClock) -> CdrStore {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let by_rows = (ds.len() / 1024).max(1);
        let shards = (cores * 4).min(MAX_AUTO_SHARDS).min(by_rows);
        CdrStore::build_with_clock(ds, shards, clock)
    }

    /// The clock queries are timed against.
    #[inline]
    pub fn clock(&self) -> &dyn Clock {
        &*self.clock
    }

    /// A cloneable handle to the same injected clock, for layers (e.g.
    /// the serve-plane metrics) that must share the store's time source.
    pub fn shared_clock(&self) -> SharedClock {
        Arc::clone(&self.clock)
    }

    /// This build's generation number: unique per [`CdrStore::build`]
    /// within the process, monotonically increasing. The cache-key
    /// half that ties a cached result to the exact store build it was
    /// computed against.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Per-shard build cost, in shard-id order.
    pub fn build_stats(&self) -> &[ShardBuildStats] {
        &self.build_stats
    }

    /// The store-build stage as a pre-timed span subtree: one child per
    /// shard, items = rows laid out.
    pub fn build_span(&self) -> SpanRecord {
        let mut root = SpanRecord::leaf("store_build", 0, self.len as u64);
        for (id, s) in self.build_stats.iter().enumerate() {
            root.wall_ns += s.wall_ns;
            root.children
                .push(SpanRecord::leaf(&format!("shard-{id}"), s.wall_ns, s.rows));
        }
        root
    }

    /// The study period the stored records belong to.
    #[inline]
    pub fn period(&self) -> StudyPeriod {
        self.period
    }

    /// Total number of stored records.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of shards.
    #[inline]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard-id order.
    #[inline]
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The shard a car's records live in.
    #[inline]
    pub fn shard_of(&self, car: CarId) -> usize {
        shard_slot(car, self.shards.len())
    }
}

/// Route a car id to a shard: a splitmix64-style finalizer over the raw
/// id, reduced modulo the shard count. The multiply-xorshift rounds
/// scatter the sequential fleet ids evenly; plain `id % shards` would
/// stripe consecutive cars and make shard loads correlate with persona
/// assignment order.
#[inline]
pub(crate) fn shard_slot(car: CarId, shards: usize) -> usize {
    let mut z = car.0 as u64;
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{BaseStationId, Carrier, CellId, DayOfWeek, Timestamp};

    fn rec(car: u32, start: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(car % 7), 0, Carrier::C3),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + 60),
        }
    }

    fn dataset(cars: u32, per_car: u64) -> CdrDataset {
        let records = (0..cars)
            .flat_map(|c| (0..per_car).map(move |i| rec(c, i * 1000)))
            .collect();
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn build_partitions_every_record_once() {
        let ds = dataset(50, 4);
        let store = CdrStore::build(&ds, 9);
        assert_eq!(store.len(), 200);
        assert_eq!(store.shard_count(), 9);
        let total: usize = store.shards().iter().map(|s| s.len()).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn every_car_lives_in_exactly_one_shard() {
        let ds = dataset(50, 4);
        let store = CdrStore::build(&ds, 9);
        for (id, shard) in store.shards().iter().enumerate() {
            for g in shard.car_groups() {
                assert_eq!(store.shard_of(g.car), id);
            }
        }
    }

    #[test]
    fn shard_order_is_canonical_within_each_shard() {
        let ds = dataset(30, 5);
        let store = CdrStore::build(&ds, 4);
        for shard in store.shards() {
            for w in 0..shard.len().saturating_sub(1) {
                let (a, b) = (shard.record(w), shard.record(w + 1));
                assert!((a.car, a.start, a.cell) <= (b.car, b.start, b.cell));
            }
        }
    }

    #[test]
    fn zero_shards_is_clamped() {
        let ds = dataset(3, 1);
        let store = CdrStore::build(&ds, 0);
        assert_eq!(store.shard_count(), 1);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn hash_scatters_sequential_ids() {
        // Sequential fleet ids should not all stripe into the same few
        // shards: with 1000 cars over 8 shards, every shard gets some.
        let counts = (0..1000u32).fold([0usize; 8], |mut acc, id| {
            acc[shard_slot(CarId(id), 8)] += 1;
            acc
        });
        assert!(counts.iter().all(|&n| n > 60), "skewed: {counts:?}");
    }

    #[test]
    fn generations_are_unique_and_increasing() {
        let ds = dataset(5, 2);
        let a = CdrStore::build(&ds, 2);
        let b = CdrStore::build(&ds, 2);
        assert!(b.generation() > a.generation());
        // A clone is a view of the same build, not a new one.
        assert_eq!(a.clone().generation(), a.generation());
    }

    #[test]
    fn build_auto_bounds() {
        let ds = dataset(10, 2);
        let store = CdrStore::build_auto(&ds);
        assert!(store.shard_count() >= 1);
        assert!(store.shard_count() <= MAX_AUTO_SHARDS);
        assert_eq!(store.len(), 20);
    }
}

//! 15-minute time bins.
//!
//! The paper's network-load accounting is quarter-hour based throughout:
//! a cell is *busy* in a bin when its average PRB utilization over those
//! 15 minutes exceeds 80% (§4.3); concurrent cars are counted per bin
//! (§4.4); and the k-means clustering of Figure 11 operates on 96-element
//! vectors — one slot per bin of a day.
//!
//! Three indexing schemes appear in the analyses and each gets a type:
//!
//! * [`BinIndex`] — a bin's absolute position within the whole study
//!   (`timestamp / 900`);
//! * [`DayBin`] — a bin's position within *a* day (`0..96`), used for the
//!   daily profile vectors of Figure 11;
//! * [`WeekBin`] — a bin's position within *a* week (`0..672`), used for
//!   the weekly concurrency profiles of Figure 10.

use crate::time::{DayOfWeek, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per 15-minute bin.
pub const BIN_SECONDS: u64 = 900;
/// Bins per day: 96.
pub const BINS_PER_DAY: usize = 96;
/// Bins per week: 672.
pub const BINS_PER_WEEK: usize = 7 * BINS_PER_DAY;

/// Absolute 15-minute bin index from the study epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct BinIndex(pub u64);

impl BinIndex {
    /// The bin containing `t`.
    #[inline]
    pub const fn containing(t: Timestamp) -> BinIndex {
        BinIndex(t.as_secs() / BIN_SECONDS)
    }

    /// First instant of this bin.
    #[inline]
    pub const fn start(self) -> Timestamp {
        Timestamp::from_secs(self.0 * BIN_SECONDS)
    }

    /// First instant *after* this bin.
    #[inline]
    pub const fn end(self) -> Timestamp {
        Timestamp::from_secs((self.0 + 1) * BIN_SECONDS)
    }

    /// The study-day this bin belongs to.
    #[inline]
    pub const fn day(self) -> u64 {
        self.0 / BINS_PER_DAY as u64
    }

    /// Position within its day.
    #[inline]
    pub const fn day_bin(self) -> DayBin {
        // lint:allow(L3): mod-96 reduced; BINS_PER_DAY is a compile-time constant < 2^16
        DayBin((self.0 % BINS_PER_DAY as u64) as u16)
    }

    /// Position within its week, given the weekday of study day 0.
    ///
    /// `WeekBin` 0 is always Monday 00:00; if the study started on a
    /// Wednesday, absolute bin 0 maps to the Wednesday slot.
    pub const fn week_bin(self, study_start: DayOfWeek) -> WeekBin {
        let day_in_week = (self.day() as usize + study_start.index()) % 7;
        // lint:allow(L3): day_in_week < 7 and the bin is mod-96 reduced, so the sum is < 672
        WeekBin((day_in_week * BINS_PER_DAY) as u16 + (self.0 % BINS_PER_DAY as u64) as u16)
    }

    /// The next bin.
    #[inline]
    pub const fn next(self) -> BinIndex {
        BinIndex(self.0 + 1)
    }

    /// Total number of bins covering `days` whole days.
    #[inline]
    pub const fn count_for_days(days: u64) -> u64 {
        days * BINS_PER_DAY as u64
    }

    /// Iterate over every bin that a half-open interval
    /// `[start, end)` overlaps. An empty interval yields nothing.
    pub fn covering(
        start: Timestamp,
        end: Timestamp,
    ) -> impl Iterator<Item = BinIndex> + Clone + 'static {
        let first = start.as_secs() / BIN_SECONDS;
        // end is exclusive: an interval ending exactly on a boundary does
        // not touch the next bin.
        let last = if end.as_secs() <= start.as_secs() {
            first // empty range below
        } else {
            (end.as_secs() - 1) / BIN_SECONDS + 1
        };
        let empty = end.as_secs() <= start.as_secs();
        (first..last).filter(move |_| !empty).map(BinIndex)
    }

    /// How many seconds of the half-open interval `[start, end)` fall
    /// inside this bin.
    pub fn overlap_secs(self, start: Timestamp, end: Timestamp) -> u64 {
        let bs = self.start().as_secs();
        let be = self.end().as_secs();
        let s = start.as_secs().max(bs);
        let e = end.as_secs().min(be);
        e.saturating_sub(s)
    }
}

impl fmt::Display for BinIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bin#{}@{}", self.0, self.start())
    }
}

/// A bin's position within a day: `0..96`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct DayBin(pub u16);

impl DayBin {
    /// Construct, panicking outside `0..96` (programmer error).
    #[inline]
    pub fn new(i: u16) -> DayBin {
        assert!((i as usize) < BINS_PER_DAY, "day bin {i} out of range");
        DayBin(i)
    }

    /// The bin covering `hour:minute`.
    #[inline]
    pub fn at(hour: u8, minute: u8) -> DayBin {
        DayBin(u16::from(hour) * 4 + u16::from(minute) / 15)
    }

    /// Index `0..96`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Hour of day this bin starts in.
    #[inline]
    pub const fn hour(self) -> u8 {
        (self.0 / 4) as u8
    }

    /// Minute within the hour this bin starts at (0, 15, 30 or 45).
    #[inline]
    pub const fn minute(self) -> u8 {
        ((self.0 % 4) * 15) as u8
    }

    /// All 96 bins of a day in order.
    pub fn all() -> impl Iterator<Item = DayBin> {
        // lint:allow(L3): BINS_PER_DAY is a compile-time constant (96), well under 2^16
        (0..BINS_PER_DAY as u16).map(DayBin)
    }
}

impl fmt::Display for DayBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02}:{:02}", self.hour(), self.minute())
    }
}

/// A bin's position within a week: `0..672`, Monday 00:00 first.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct WeekBin(pub u16);

impl WeekBin {
    /// Construct, panicking outside `0..672` (programmer error).
    #[inline]
    pub fn new(i: u16) -> WeekBin {
        assert!((i as usize) < BINS_PER_WEEK, "week bin {i} out of range");
        WeekBin(i)
    }

    /// Index `0..672`.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The weekday of this bin.
    #[inline]
    pub const fn day(self) -> DayOfWeek {
        DayOfWeek::from_index((self.0 as usize) / BINS_PER_DAY)
    }

    /// The within-day bin.
    #[inline]
    pub const fn day_bin(self) -> DayBin {
        // lint:allow(L3): mod-96 reduced; BINS_PER_DAY is a compile-time constant < 2^16
        DayBin((self.0 as usize % BINS_PER_DAY) as u16)
    }

    /// All 672 bins of a week in order.
    pub fn all() -> impl Iterator<Item = WeekBin> {
        // lint:allow(L3): BINS_PER_WEEK is a compile-time constant (672), well under 2^16
        (0..BINS_PER_WEEK as u16).map(WeekBin)
    }
}

impl fmt::Display for WeekBin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.day().abbrev(), self.day_bin())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{Duration, SECONDS_PER_DAY};

    #[test]
    fn bin_containment_and_bounds() {
        let t = Timestamp::from_secs(900);
        let b = BinIndex::containing(t);
        assert_eq!(b.0, 1);
        assert_eq!(b.start(), t);
        assert_eq!(b.end(), Timestamp::from_secs(1_800));
        // Instant just before a boundary belongs to the earlier bin.
        assert_eq!(BinIndex::containing(Timestamp::from_secs(899)).0, 0);
    }

    #[test]
    fn day_decomposition() {
        let b = BinIndex((SECONDS_PER_DAY / BIN_SECONDS) * 2 + 5);
        assert_eq!(b.day(), 2);
        assert_eq!(b.day_bin().index(), 5);
    }

    #[test]
    fn week_bin_accounts_for_study_start() {
        // Study starts Wednesday: absolute bin 0 lands in Wednesday's slots.
        let b = BinIndex(0);
        let wb = b.week_bin(DayOfWeek::Wednesday);
        assert_eq!(wb.day(), DayOfWeek::Wednesday);
        assert_eq!(wb.day_bin().index(), 0);
        // Five days later it is Monday again.
        let b5 = BinIndex(BinIndex::count_for_days(5));
        assert_eq!(b5.week_bin(DayOfWeek::Wednesday).day(), DayOfWeek::Monday);
    }

    #[test]
    fn covering_iterates_overlapped_bins() {
        let s = Timestamp::from_secs(850);
        let e = Timestamp::from_secs(1_900);
        let bins: Vec<u64> = BinIndex::covering(s, e).map(|b| b.0).collect();
        assert_eq!(bins, vec![0, 1, 2]);
        // Interval ending exactly on a boundary excludes the next bin.
        let bins: Vec<u64> = BinIndex::covering(Timestamp::from_secs(0), Timestamp::from_secs(900))
            .map(|b| b.0)
            .collect();
        assert_eq!(bins, vec![0]);
        // Empty interval yields nothing.
        assert_eq!(BinIndex::covering(e, s).count(), 0);
        assert_eq!(BinIndex::covering(s, s).count(), 0);
    }

    #[test]
    fn overlap_secs_clips_to_bin() {
        let b = BinIndex(1); // [900, 1800)
        assert_eq!(
            b.overlap_secs(Timestamp::from_secs(0), Timestamp::from_secs(10_000)),
            900
        );
        assert_eq!(
            b.overlap_secs(Timestamp::from_secs(1_000), Timestamp::from_secs(1_100)),
            100
        );
        assert_eq!(
            b.overlap_secs(Timestamp::from_secs(0), Timestamp::from_secs(900)),
            0
        );
        assert_eq!(
            b.overlap_secs(Timestamp::from_secs(1_750), Timestamp::from_secs(5_000)),
            50
        );
    }

    #[test]
    fn overlap_sums_to_interval_length() {
        let s = Timestamp::from_secs(123);
        let e = Timestamp::from_secs(4_567);
        let total: u64 = BinIndex::covering(s, e).map(|b| b.overlap_secs(s, e)).sum();
        assert_eq!(total, (e - s).as_secs());
        let _ = Duration::ZERO;
    }

    #[test]
    fn day_bin_clock() {
        let b = DayBin::at(14, 45);
        assert_eq!(b.index(), 14 * 4 + 3);
        assert_eq!(b.hour(), 14);
        assert_eq!(b.minute(), 45);
        assert_eq!(b.to_string(), "14:45");
        assert_eq!(DayBin::all().count(), 96);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn day_bin_range_checked() {
        DayBin::new(96);
    }

    #[test]
    fn week_bin_clock() {
        let wb = WeekBin::new((BINS_PER_DAY + 4) as u16);
        assert_eq!(wb.day(), DayOfWeek::Tuesday);
        assert_eq!(wb.day_bin().index(), 4);
        assert_eq!(wb.to_string(), "Tue 01:00");
        assert_eq!(WeekBin::all().count(), 672);
    }
}

//! Strongly-typed identifiers for cars and network elements.
//!
//! The paper's data set identifies each connected car by an anonymized
//! token and each radio cell by its network identity. We use integer
//! newtypes: they are cheap to copy and hash, and the type system stops a
//! `CarId` from ever being used where a `CellId` is expected — the classic
//! units mistake in trace-analysis code.
//!
//! A cell's identity also encodes its *position in the radio hierarchy*:
//! base station → sector → carrier. [`CellId`] packs those three
//! coordinates so analyses can classify a handover (inter-base-station vs
//! inter-sector vs inter-carrier, §4.5) from the two cell ids alone.

use crate::carrier::Carrier;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An anonymized connected-car identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct CarId(pub u32);

impl CarId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "car-{:07}", self.0)
    }
}

/// A base station (eNodeB / NodeB) identifier.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct BaseStationId(pub u32);

impl BaseStationId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BaseStationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bs-{:05}", self.0)
    }
}

/// A sector: one antenna direction of one base station.
///
/// Typical deployments put 3 sectors on a station, ~120° each (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SectorId {
    /// The owning base station.
    pub station: BaseStationId,
    /// Sector index within the station, `0..sectors_per_station`.
    pub sector: u8,
}

impl fmt::Display for SectorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/s{}", self.station, self.sector)
    }
}

/// A radio cell: one (base station, sector, carrier) triple.
///
/// This is the unit the paper calls "a radio" or "a cell" — the thing a
/// car connects to, whose PRB utilization is measured, and between which
/// handovers occur.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CellId {
    /// The owning base station.
    pub station: BaseStationId,
    /// Sector index within the station.
    pub sector: u8,
    /// The frequency carrier this cell radiates on.
    pub carrier: Carrier,
}

impl CellId {
    /// Construct a cell id from its hierarchy coordinates.
    #[inline]
    pub const fn new(station: BaseStationId, sector: u8, carrier: Carrier) -> CellId {
        CellId {
            station,
            sector,
            carrier,
        }
    }

    /// The sector this cell belongs to.
    #[inline]
    pub const fn sector_id(self) -> SectorId {
        SectorId {
            station: self.station,
            sector: self.sector,
        }
    }

    /// Classify the relationship between two *distinct* cells, which is
    /// exactly the handover taxonomy of §4.5. Returns `None` when the two
    /// ids are equal (no handover).
    pub fn handover_kind(self, other: CellId) -> Option<HandoverKind> {
        if self == other {
            return None;
        }
        Some(if self.station != other.station {
            HandoverKind::InterBaseStation
        } else if self.sector != other.sector {
            HandoverKind::InterSector
        } else if self.carrier.rat() != other.carrier.rat() {
            // Same sector, different carrier *and* different radio
            // technology (3G vs 4G).
            HandoverKind::InterRat
        } else {
            HandoverKind::InterCarrier
        })
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/s{}/{}", self.station, self.sector, self.carrier)
    }
}

/// The four handover types the paper distinguishes in §4.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandoverKind {
    /// Across base stations — the dominant kind for moving cars.
    InterBaseStation,
    /// Between sectors of the same base station.
    InterSector,
    /// Between carriers of the same sector (same radio technology).
    InterCarrier,
    /// Between radio technologies (3G ↔ 4G) in the same sector.
    InterRat,
}

impl HandoverKind {
    /// All four kinds, in the order the paper lists them.
    pub const ALL: [HandoverKind; 4] = [
        HandoverKind::InterBaseStation,
        HandoverKind::InterSector,
        HandoverKind::InterCarrier,
        HandoverKind::InterRat,
    ];

    /// Human-readable label.
    pub const fn label(self) -> &'static str {
        match self {
            HandoverKind::InterBaseStation => "inter-base-station",
            HandoverKind::InterSector => "inter-sector",
            HandoverKind::InterCarrier => "inter-carrier",
            HandoverKind::InterRat => "inter-RAT",
        }
    }
}

impl fmt::Display for HandoverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carrier::Carrier;

    fn cell(st: u32, sec: u8, ca: Carrier) -> CellId {
        CellId::new(BaseStationId(st), sec, ca)
    }

    #[test]
    fn display_formats() {
        assert_eq!(CarId(7).to_string(), "car-0000007");
        assert_eq!(BaseStationId(12).to_string(), "bs-00012");
        let c = cell(12, 2, Carrier::C3);
        assert_eq!(c.to_string(), "bs-00012/s2/C3");
        assert_eq!(c.sector_id().to_string(), "bs-00012/s2");
    }

    #[test]
    fn handover_taxonomy() {
        let a = cell(1, 0, Carrier::C3);
        assert_eq!(a.handover_kind(a), None);
        assert_eq!(
            a.handover_kind(cell(2, 0, Carrier::C3)),
            Some(HandoverKind::InterBaseStation)
        );
        assert_eq!(
            a.handover_kind(cell(1, 1, Carrier::C3)),
            Some(HandoverKind::InterSector)
        );
        assert_eq!(
            a.handover_kind(cell(1, 0, Carrier::C4)),
            Some(HandoverKind::InterCarrier)
        );
        // C2 is the 3G carrier in our model; same sector, RAT change.
        assert_eq!(
            a.handover_kind(cell(1, 0, Carrier::C2)),
            Some(HandoverKind::InterRat)
        );
    }

    #[test]
    fn handover_is_symmetric_in_kind() {
        let a = cell(1, 0, Carrier::C1);
        let b = cell(1, 2, Carrier::C1);
        assert_eq!(a.handover_kind(b), b.handover_kind(a));
    }

    #[test]
    fn cell_ordering_groups_by_station() {
        let mut cells = [cell(2, 0, Carrier::C1),
            cell(1, 1, Carrier::C1),
            cell(1, 0, Carrier::C4)];
        cells.sort();
        assert_eq!(cells[0].station, BaseStationId(1));
        assert_eq!(cells[2].station, BaseStationId(2));
    }
}

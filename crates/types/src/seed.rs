//! Deterministic seed derivation.
//!
//! Every stochastic component of the workspace — fleet personas, trip
//! jitter, radio noise, fault injection — draws its randomness from a
//! seed derived with [`SeedSplitter`] from one root seed. Same root seed
//! ⇒ bit-identical synthetic CDRs, analyses and reports, which is what
//! makes the experiment harness reviewable.
//!
//! Derivation is a small keyed mixing function (SplitMix64 over the
//! root seed, a domain label hash, and an index). It is *not*
//! cryptographic — it only needs to decorrelate streams — but it is
//! stable by construction: the constants below are frozen and covered by
//! regression tests, so derived seeds never change across releases.

/// Derives independent, reproducible sub-seeds from a root seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSplitter {
    root: u64,
}

/// SplitMix64 finalizer; the standard constants from Steele et al.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to turn domain labels into integers.
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl SeedSplitter {
    /// Wrap a root seed.
    #[inline]
    pub const fn new(root: u64) -> SeedSplitter {
        SeedSplitter { root }
    }

    /// The root seed.
    #[inline]
    pub const fn root(self) -> u64 {
        self.root
    }

    /// Seed for a named domain ("fleet", "radio-noise", ...).
    pub fn domain(self, label: &str) -> u64 {
        splitmix64(self.root ^ fnv1a(label.as_bytes()))
    }

    /// Seed for the `index`-th member of a named domain (e.g. one car).
    pub fn domain_indexed(self, label: &str, index: u64) -> u64 {
        splitmix64(self.domain(label).wrapping_add(splitmix64(index)))
    }

    /// A child splitter rooted at a named domain, for components that
    /// themselves need several streams.
    pub fn child(self, label: &str) -> SeedSplitter {
        SeedSplitter {
            root: self.domain(label),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let a = SeedSplitter::new(42);
        let b = SeedSplitter::new(42);
        assert_eq!(a.domain("fleet"), b.domain("fleet"));
        assert_eq!(a.domain_indexed("car", 7), b.domain_indexed("car", 7));
        assert_eq!(a.child("x").domain("y"), b.child("x").domain("y"));
    }

    #[test]
    fn domains_decorrelate() {
        let s = SeedSplitter::new(42);
        assert_ne!(s.domain("fleet"), s.domain("radio"));
        assert_ne!(s.domain("fleet"), SeedSplitter::new(43).domain("fleet"));
    }

    #[test]
    fn indexed_streams_are_distinct() {
        let s = SeedSplitter::new(7);
        let seeds: HashSet<u64> = (0..10_000).map(|i| s.domain_indexed("car", i)).collect();
        assert_eq!(seeds.len(), 10_000, "collisions in 10k derived seeds");
    }

    #[test]
    fn frozen_values() {
        // Regression pin: these exact values must never change, or
        // every "same seed, same output" promise breaks silently.
        let s = SeedSplitter::new(0xDEAD_BEEF);
        assert_eq!(s.domain("fleet"), 10_308_301_297_285_963_829);
        assert_eq!(s.domain_indexed("car", 0), 5_990_932_912_063_643_150);
    }

    #[test]
    fn zero_root_is_usable() {
        let s = SeedSplitter::new(0);
        assert_ne!(s.domain("a"), 0);
        assert_ne!(s.domain("a"), s.domain("b"));
    }
}

//! Frequency carriers and radio access technologies.
//!
//! The paper observes the study population connecting over **five
//! carriers**, anonymized as C1…C5 (§4.6, Table 3). The physical details
//! are not disclosed, so this model assigns each anonymous carrier a
//! plausible US-market identity chosen to reproduce the *behavioral*
//! facts the paper reports:
//!
//! * C1 — low-band LTE coverage layer (700 MHz, 10 MHz wide). Deployed
//!   everywhere; used when nothing better is available → high car reach,
//!   moderate time share.
//! * C2 — the 3G/UMTS layer (850 MHz, 5 MHz equivalent). Legacy fallback
//!   → high reach, small time share, and the endpoint of inter-RAT
//!   handovers.
//! * C3 — mid-band LTE workhorse (AWS 1700/2100 MHz, 20 MHz). Widest
//!   bandwidth and broad deployment → carries ~half of connected time.
//! * C4 — mid-band LTE secondary (PCS 1900 MHz, 15 MHz). Deployed at a
//!   subset of stations → ~80% car reach, ~20% time share.
//! * C5 — a *new* band (WCS 2300 MHz) that the OEM's legacy modems do not
//!   support; only a handful of cars ever touch it (0.006% in the paper).
//!
//! The identification is a modeling device: analyses only depend on the
//! carrier *label*, its RAT, and its PRB capacity.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Radio access technology of a carrier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rat {
    /// 3G / UMTS.
    Umts,
    /// 4G / LTE.
    Lte,
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Rat::Umts => "3G",
            Rat::Lte => "4G",
        })
    }
}

/// One of the five anonymous frequency carriers of §4.6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Carrier {
    C1,
    C2,
    C3,
    C4,
    C5,
}

/// All carriers in label order, matching Table 3's columns.
pub const ALL_CARRIERS: [Carrier; 5] = [
    Carrier::C1,
    Carrier::C2,
    Carrier::C3,
    Carrier::C4,
    Carrier::C5,
];

impl Carrier {
    /// Column index in Table 3 (C1 = 0 … C5 = 4).
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            Carrier::C1 => 0,
            Carrier::C2 => 1,
            Carrier::C3 => 2,
            Carrier::C4 => 3,
            Carrier::C5 => 4,
        }
    }

    /// Inverse of [`Carrier::index`].
    pub const fn from_index(i: usize) -> Option<Carrier> {
        match i {
            0 => Some(Carrier::C1),
            1 => Some(Carrier::C2),
            2 => Some(Carrier::C3),
            3 => Some(Carrier::C4),
            4 => Some(Carrier::C5),
            _ => None,
        }
    }

    /// The radio technology of this carrier. C2 is the 3G layer; all
    /// other carriers are LTE.
    #[inline]
    pub const fn rat(self) -> Rat {
        match self {
            Carrier::C2 => Rat::Umts,
            _ => Rat::Lte,
        }
    }

    /// Nominal center frequency in MHz (modeled identity, see module doc).
    pub const fn frequency_mhz(self) -> u32 {
        match self {
            Carrier::C1 => 700,
            Carrier::C2 => 850,
            Carrier::C3 => 1_700,
            Carrier::C4 => 1_900,
            Carrier::C5 => 2_300,
        }
    }

    /// Channel bandwidth in MHz.
    pub const fn bandwidth_mhz(self) -> u32 {
        match self {
            Carrier::C1 => 10,
            Carrier::C2 => 5,
            Carrier::C3 => 20,
            Carrier::C4 => 15,
            Carrier::C5 => 10,
        }
    }

    /// Downlink Physical Resource Blocks per subframe for this bandwidth.
    ///
    /// LTE defines 50/75/100 PRBs for 10/15/20 MHz. UMTS has no PRB
    /// concept; we model C2 with a 25-"PRB" capacity equivalent so the
    /// same utilization accounting covers both RATs.
    pub const fn prb_capacity(self) -> u32 {
        match self {
            Carrier::C1 => 50,
            Carrier::C2 => 25,
            Carrier::C3 => 100,
            Carrier::C4 => 75,
            Carrier::C5 => 50,
        }
    }

    /// Peak downlink throughput in Mbit/s a single user can draw from an
    /// otherwise-idle cell of this carrier. Scaled from bandwidth with a
    /// conservative spectral efficiency (~3.7 bit/s/Hz for LTE 2×2 MIMO,
    /// lower for UMTS).
    pub const fn peak_throughput_mbps(self) -> u32 {
        match self {
            Carrier::C1 => 37,
            Carrier::C2 => 7,
            Carrier::C3 => 75,
            Carrier::C4 => 55,
            Carrier::C5 => 37,
        }
    }

    /// Relative attachment preference when several carriers are adequate:
    /// the network steers traffic onto the mid-band LTE layers (C3/C4
    /// share top priority and split load), keeps the low band as a
    /// coverage layer, and treats 3G as last resort.
    pub const fn selection_priority(self) -> u8 {
        match self {
            Carrier::C3 => 5,
            Carrier::C4 => 5,
            Carrier::C5 => 4,
            Carrier::C1 => 2,
            Carrier::C2 => 1,
        }
    }
}

impl fmt::Display for Carrier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.index() + 1)
    }
}

/// Which carriers a car's modem can attach to.
///
/// §4.6: "Connected car modems of this OEM predominantly have the
/// capability to use carriers C1–C4, and only a few C5 connections are
/// registered." A capability set is a tiny bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ModemCapability {
    mask: u8,
}

impl ModemCapability {
    /// The empty capability set (useful as a fold seed).
    pub const NONE: ModemCapability = ModemCapability { mask: 0 };

    /// The OEM's standard modem: C1–C4, no C5.
    pub const STANDARD: ModemCapability = ModemCapability { mask: 0b0_1111 };

    /// A newer modem revision that also supports the C5 band.
    pub const FULL: ModemCapability = ModemCapability { mask: 0b1_1111 };

    /// An early 3G-only modem: C2 only.
    pub const UMTS_ONLY: ModemCapability = ModemCapability { mask: 0b0_0010 };

    /// Build a capability set from an iterator of carriers.
    pub fn from_carriers<I: IntoIterator<Item = Carrier>>(carriers: I) -> ModemCapability {
        let mut mask = 0u8;
        for c in carriers {
            mask |= 1 << c.index();
        }
        ModemCapability { mask }
    }

    /// Whether this modem can attach to `carrier`.
    #[inline]
    pub const fn supports(self, carrier: Carrier) -> bool {
        self.mask & (1 << carrier.index()) != 0
    }

    /// Add support for a carrier.
    #[inline]
    pub const fn with(self, carrier: Carrier) -> ModemCapability {
        ModemCapability {
            mask: self.mask | (1 << carrier.index()),
        }
    }

    /// Number of supported carriers.
    #[inline]
    pub const fn count(self) -> u32 {
        self.mask.count_ones()
    }

    /// Iterate over the supported carriers in label order.
    pub fn iter(self) -> impl Iterator<Item = Carrier> {
        ALL_CARRIERS.into_iter().filter(move |c| self.supports(*c))
    }

    /// True if no carrier is supported.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.mask == 0
    }
}

impl fmt::Display for ModemCapability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for c in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        for c in ALL_CARRIERS {
            assert_eq!(Carrier::from_index(c.index()), Some(c));
        }
        assert_eq!(Carrier::from_index(5), None);
    }

    #[test]
    fn rats() {
        assert_eq!(Carrier::C2.rat(), Rat::Umts);
        for c in [Carrier::C1, Carrier::C3, Carrier::C4, Carrier::C5] {
            assert_eq!(c.rat(), Rat::Lte);
        }
    }

    #[test]
    fn prb_capacity_tracks_bandwidth() {
        // LTE carriers: 5 PRB per MHz.
        for c in [Carrier::C1, Carrier::C3, Carrier::C4, Carrier::C5] {
            assert_eq!(c.prb_capacity(), c.bandwidth_mhz() * 5);
        }
    }

    #[test]
    fn c3_is_most_preferred() {
        let mut by_priority = ALL_CARRIERS;
        by_priority.sort_by_key(|c| std::cmp::Reverse(c.selection_priority()));
        assert_eq!(by_priority[0], Carrier::C3);
        assert_eq!(by_priority[4], Carrier::C2);
    }

    #[test]
    fn capability_masks() {
        assert!(ModemCapability::STANDARD.supports(Carrier::C1));
        assert!(ModemCapability::STANDARD.supports(Carrier::C4));
        assert!(!ModemCapability::STANDARD.supports(Carrier::C5));
        assert!(ModemCapability::FULL.supports(Carrier::C5));
        assert_eq!(ModemCapability::STANDARD.count(), 4);
        assert_eq!(ModemCapability::UMTS_ONLY.count(), 1);
        assert!(ModemCapability::NONE.is_empty());
    }

    #[test]
    fn capability_from_carriers() {
        let cap = ModemCapability::from_carriers([Carrier::C1, Carrier::C3]);
        assert!(cap.supports(Carrier::C1));
        assert!(!cap.supports(Carrier::C2));
        assert!(cap.supports(Carrier::C3));
        assert_eq!(cap.with(Carrier::C2).count(), 3);
        let collected: Vec<_> = cap.iter().collect();
        assert_eq!(collected, vec![Carrier::C1, Carrier::C3]);
    }

    #[test]
    fn capability_display() {
        assert_eq!(ModemCapability::STANDARD.to_string(), "{C1,C2,C3,C4}");
        assert_eq!(ModemCapability::NONE.to_string(), "{}");
    }

    #[test]
    fn display_labels() {
        assert_eq!(Carrier::C1.to_string(), "C1");
        assert_eq!(Carrier::C5.to_string(), "C5");
        assert_eq!(Rat::Umts.to_string(), "3G");
        assert_eq!(Rat::Lte.to_string(), "4G");
    }
}

//! The study period: a contiguous run of days over which CDRs are
//! collected and analyzed.

use crate::bins::{BinIndex, BINS_PER_DAY};
use crate::time::{DayOfWeek, Duration, Timestamp, SECONDS_PER_DAY};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A contiguous study window of whole days.
///
/// The paper analyzes a 90-day period in 2017 (§3). The period knows the
/// weekday of its first day, which anchors all weekday-grouped statistics
/// (Table 1) and 24×7 matrices (Figures 4, 5, 10, 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StudyPeriod {
    /// Weekday of study day 0.
    start_day: DayOfWeek,
    /// Number of days in the study; at least 1.
    days: u32,
}

impl StudyPeriod {
    /// The paper's configuration: 90 days. We anchor day 0 on a Monday,
    /// which the paper does not specify; the choice only rotates weekly
    /// plots.
    pub const PAPER: StudyPeriod = StudyPeriod {
        start_day: DayOfWeek::Monday,
        days: 90,
    };

    /// Construct a period of `days` days starting on `start_day`.
    pub fn new(start_day: DayOfWeek, days: u32) -> crate::Result<StudyPeriod> {
        if days == 0 {
            return Err(crate::Error::EmptyStudyPeriod);
        }
        Ok(StudyPeriod { start_day, days })
    }

    /// Number of days in the period.
    #[inline]
    pub const fn days(self) -> u32 {
        self.days
    }

    /// Weekday of day 0.
    #[inline]
    pub const fn start_day(self) -> DayOfWeek {
        self.start_day
    }

    /// First instant of the period.
    #[inline]
    pub const fn start(self) -> Timestamp {
        Timestamp::EPOCH
    }

    /// First instant *after* the period.
    #[inline]
    pub const fn end(self) -> Timestamp {
        Timestamp::from_secs(self.days as u64 * SECONDS_PER_DAY)
    }

    /// Total wall-clock length.
    #[inline]
    pub const fn duration(self) -> Duration {
        Duration::from_secs(self.days as u64 * SECONDS_PER_DAY)
    }

    /// Whether `t` falls inside the period.
    #[inline]
    pub fn contains(self, t: Timestamp) -> bool {
        t >= self.start() && t < self.end()
    }

    /// Clamp a half-open interval to the period; `None` if disjoint.
    pub fn clip(self, start: Timestamp, end: Timestamp) -> Option<(Timestamp, Timestamp)> {
        let s = start.max(self.start());
        let e = end.min(self.end());
        (s < e).then_some((s, e))
    }

    /// The weekday of study day `day`.
    #[inline]
    pub const fn weekday_of(self, day: u64) -> DayOfWeek {
        self.start_day.plus(day as usize)
    }

    /// Iterate over `(day_index, weekday)` for every day of the study.
    pub fn iter_days(self) -> impl Iterator<Item = (u64, DayOfWeek)> {
        let start = self.start_day;
        (0..self.days as u64).map(move |d| (d, start.plus(d as usize)))
    }

    /// Total number of 15-minute bins in the period.
    #[inline]
    pub const fn total_bins(self) -> u64 {
        self.days as u64 * BINS_PER_DAY as u64
    }

    /// Iterate over every absolute bin in the period.
    pub fn iter_bins(self) -> impl Iterator<Item = BinIndex> {
        (0..self.total_bins()).map(BinIndex)
    }

    /// Number of whole weeks fully contained in the period.
    #[inline]
    pub const fn whole_weeks(self) -> u32 {
        self.days / 7
    }
}

impl fmt::Display for StudyPeriod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} days from {}", self.days, self.start_day.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_period() {
        let p = StudyPeriod::PAPER;
        assert_eq!(p.days(), 90);
        assert_eq!(p.whole_weeks(), 12);
        assert_eq!(p.total_bins(), 90 * 96);
        assert_eq!(p.end().as_secs(), 90 * SECONDS_PER_DAY);
    }

    #[test]
    fn rejects_empty() {
        assert!(StudyPeriod::new(DayOfWeek::Monday, 0).is_err());
    }

    #[test]
    fn weekday_rotation() {
        let p = StudyPeriod::new(DayOfWeek::Friday, 10).unwrap();
        assert_eq!(p.weekday_of(0), DayOfWeek::Friday);
        assert_eq!(p.weekday_of(1), DayOfWeek::Saturday);
        assert_eq!(p.weekday_of(3), DayOfWeek::Monday);
        let days: Vec<_> = p.iter_days().collect();
        assert_eq!(days.len(), 10);
        assert_eq!(days[9], (9, DayOfWeek::Sunday));
    }

    #[test]
    fn containment_and_clipping() {
        let p = StudyPeriod::new(DayOfWeek::Monday, 2).unwrap();
        assert!(p.contains(Timestamp::from_secs(0)));
        assert!(!p.contains(p.end()));
        // Interval straddling the end is clipped.
        let (s, e) = p
            .clip(
                Timestamp::from_day_hms(1, 23, 0, 0),
                Timestamp::from_day_hms(2, 1, 0, 0),
            )
            .unwrap();
        assert_eq!(s, Timestamp::from_day_hms(1, 23, 0, 0));
        assert_eq!(e, p.end());
        // Fully outside → None.
        assert!(p.clip(p.end(), p.end() + Duration::from_hours(1)).is_none());
    }

    #[test]
    fn bin_iteration() {
        let p = StudyPeriod::new(DayOfWeek::Monday, 1).unwrap();
        assert_eq!(p.iter_bins().count(), 96);
    }
}

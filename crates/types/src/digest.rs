//! Content digests for golden artifacts and trace identity.
//!
//! FNV-1a in its 64-bit form: tiny, dependency-free, and — unlike a
//! `DefaultHasher` — *specified*, so a digest written into a golden
//! fixture today still matches the same bytes under any future
//! toolchain. These digests fingerprint artifacts for equality checks
//! (replay-and-diff, golden corpora); they are not collision-resistant
//! and must never gate anything security-relevant.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a 64 over a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// A digest rendered the way fixtures store it: 16 lowercase hex digits.
pub fn fnv1a64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Incremental FNV-1a 64 hasher, for digesting an artifact in pieces
/// without concatenating it first.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Fnv64 {
    /// Start a fresh digest.
    pub fn new() -> Fnv64 {
        Fnv64 { state: FNV_OFFSET }
    }

    /// Fold `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Fold a `u64` in as eight little-endian bytes (fixed-width, so
    /// adjacent fields cannot alias across a boundary ambiguity).
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest so far, as 16 lowercase hex digits.
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answers() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_one_shot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
        assert_eq!(h.finish_hex(), fnv1a64_hex(b"foobar"));
    }

    #[test]
    fn u64_folding_is_fixed_width() {
        let mut a = Fnv64::new();
        a.update_u64(0x0102);
        a.update_u64(0x03);
        let mut b = Fnv64::new();
        b.update_u64(0x01);
        b.update_u64(0x0203);
        assert_ne!(a.finish(), b.finish(), "field boundary aliased");
    }

    #[test]
    fn hex_is_sixteen_lowercase_digits() {
        let hex = fnv1a64_hex(b"conncar");
        assert_eq!(hex.len(), 16);
        assert!(hex.chars().all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
    }
}

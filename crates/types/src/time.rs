//! Simulation time: timestamps, durations, days of week and time zones.
//!
//! All time is anchored to the **study epoch**: midnight UTC at the start
//! of day 0 of the study period. [`Timestamp`] counts whole seconds from
//! that epoch; [`Duration`] is a span of whole seconds. Sub-second
//! resolution is intentionally unsupported — the Call Detail Records the
//! paper works from carry second-granularity connect/disconnect times, and
//! integer seconds keep all derived statistics exactly reproducible.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// Seconds in one minute.
pub const SECONDS_PER_MINUTE: u64 = 60;
/// Seconds in one hour.
pub const SECONDS_PER_HOUR: u64 = 3_600;
/// Seconds in one day.
pub const SECONDS_PER_DAY: u64 = 86_400;
/// Seconds in one week.
pub const SECONDS_PER_WEEK: u64 = 7 * SECONDS_PER_DAY;

/// Saturating `u64 → u32` narrowing for counts that are structurally
/// bounded far below `u32::MAX` (study-day counts, seconds of day, bin
/// totals). Lint rule L3 bans raw `as` narrowing on time quantities;
/// this is the audited front door, and it saturates so an impossible
/// overflow degrades visibly instead of wrapping.
#[inline]
pub const fn saturating_u32(v: u64) -> u32 {
    if v > u32::MAX as u64 {
        u32::MAX
    } else {
        v as u32
    }
}

/// Hour-of-day (`0..=23`) from an absolute hour count since the epoch.
/// The input is reduced mod 24, so the result always fits its `u8`.
#[inline]
pub const fn hour_of_day_from_hours(hours_abs: u64) -> u8 {
    // lint:allow(L3): mod-24 reduced on the same line; always fits u8
    (hours_abs % 24) as u8
}

/// Whole seconds from a fractional hour count, saturating exactly like
/// a float `as` cast (NaN and negatives → 0, huge values → `u32::MAX`):
/// the audited constructor behind schedule anchors expressed in civil
/// hours (e.g. `7.25` → `26_100`).
#[inline]
pub fn secs_from_hours_f64(hours: f64) -> u32 {
    // lint:allow(L3): the saturating float `as` cast is this constructor's documented contract
    (hours * SECONDS_PER_HOUR as f64) as u32
}

/// A point in simulation time: whole seconds since the study epoch
/// (midnight UTC of study day 0).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Timestamp(u64);

impl Timestamp {
    /// The study epoch itself (second 0).
    pub const EPOCH: Timestamp = Timestamp(0);

    /// Construct from raw seconds since the epoch.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Construct from a (day index, seconds within that day) pair.
    ///
    /// `within_day` may exceed a day; it simply adds on.
    #[inline]
    pub const fn from_day_and_secs(day: u64, within_day: u64) -> Self {
        Timestamp(day * SECONDS_PER_DAY + within_day)
    }

    /// Construct from day index plus hour/minute/second of that day.
    #[inline]
    pub const fn from_day_hms(day: u64, hour: u64, min: u64, sec: u64) -> Self {
        Timestamp(day * SECONDS_PER_DAY + hour * SECONDS_PER_HOUR + min * SECONDS_PER_MINUTE + sec)
    }

    /// Raw seconds since the epoch.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The study-day index this instant falls on (UTC).
    #[inline]
    pub const fn day(self) -> u64 {
        self.0 / SECONDS_PER_DAY
    }

    /// Seconds elapsed since UTC midnight of the current day.
    #[inline]
    pub const fn secs_of_day(self) -> u64 {
        self.0 % SECONDS_PER_DAY
    }

    /// Hour of the UTC day, `0..=23`.
    #[inline]
    pub const fn hour_of_day(self) -> u8 {
        // lint:allow(L3): secs_of_day < 86_400, so the quotient is < 24
        (self.secs_of_day() / SECONDS_PER_HOUR) as u8
    }

    /// Saturating subtraction producing a [`Duration`].
    #[inline]
    pub const fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration::from_secs(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    #[inline]
    pub fn checked_add(self, d: Duration) -> Option<Timestamp> {
        self.0.checked_add(d.as_secs()).map(Timestamp)
    }

    /// The instant `n` whole days after this one.
    #[inline]
    pub const fn plus_days(self, n: u64) -> Timestamp {
        Timestamp(self.0 + n * SECONDS_PER_DAY)
    }

    /// Minimum of two timestamps.
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two timestamps.
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = self.day();
        let s = self.secs_of_day();
        write!(
            f,
            "d{:02} {:02}:{:02}:{:02}",
            d,
            s / SECONDS_PER_HOUR,
            (s % SECONDS_PER_HOUR) / SECONDS_PER_MINUTE,
            s % SECONDS_PER_MINUTE
        )
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

/// A span of simulation time in whole seconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Duration(u64);

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Duration(secs)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(mins: u64) -> Self {
        Duration(mins * SECONDS_PER_MINUTE)
    }

    /// Construct from whole hours.
    #[inline]
    pub const fn from_hours(hours: u64) -> Self {
        Duration(hours * SECONDS_PER_HOUR)
    }

    /// Construct from whole days.
    #[inline]
    pub const fn from_days(days: u64) -> Self {
        Duration(days * SECONDS_PER_DAY)
    }

    /// Whole seconds in this span.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// This span expressed in (possibly fractional) hours.
    #[inline]
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / SECONDS_PER_HOUR as f64
    }

    /// Saturating subtraction.
    #[inline]
    pub const fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }

    /// Minimum of two durations.
    #[inline]
    pub fn min(self, other: Duration) -> Duration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Maximum of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// True when zero seconds long.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < SECONDS_PER_MINUTE {
            write!(f, "{}s", self.0)
        } else if self.0 < SECONDS_PER_HOUR {
            write!(f, "{}m{:02}s", self.0 / 60, self.0 % 60)
        } else {
            write!(
                f,
                "{}h{:02}m{:02}s",
                self.0 / SECONDS_PER_HOUR,
                (self.0 % SECONDS_PER_HOUR) / 60,
                self.0 % 60
            )
        }
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        Duration(iter.map(|d| d.0).sum())
    }
}

/// Day of the week, used to group the per-weekday statistics of Table 1
/// and to shade the 24×7 matrices of Figures 4 and 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DayOfWeek {
    Monday,
    Tuesday,
    Wednesday,
    Thursday,
    Friday,
    Saturday,
    Sunday,
}

impl DayOfWeek {
    /// All seven days, Monday first (the paper renders weeks M..S).
    pub const ALL: [DayOfWeek; 7] = [
        DayOfWeek::Monday,
        DayOfWeek::Tuesday,
        DayOfWeek::Wednesday,
        DayOfWeek::Thursday,
        DayOfWeek::Friday,
        DayOfWeek::Saturday,
        DayOfWeek::Sunday,
    ];

    /// Index with Monday = 0 .. Sunday = 6.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            DayOfWeek::Monday => 0,
            DayOfWeek::Tuesday => 1,
            DayOfWeek::Wednesday => 2,
            DayOfWeek::Thursday => 3,
            DayOfWeek::Friday => 4,
            DayOfWeek::Saturday => 5,
            DayOfWeek::Sunday => 6,
        }
    }

    /// Inverse of [`DayOfWeek::index`]; `i` is taken modulo 7.
    #[inline]
    pub const fn from_index(i: usize) -> DayOfWeek {
        match i % 7 {
            0 => DayOfWeek::Monday,
            1 => DayOfWeek::Tuesday,
            2 => DayOfWeek::Wednesday,
            3 => DayOfWeek::Thursday,
            4 => DayOfWeek::Friday,
            5 => DayOfWeek::Saturday,
            _ => DayOfWeek::Sunday,
        }
    }

    /// The day `n` days later.
    #[inline]
    pub const fn plus(self, n: usize) -> DayOfWeek {
        DayOfWeek::from_index(self.index() + n)
    }

    /// Saturday or Sunday.
    #[inline]
    pub const fn is_weekend(self) -> bool {
        matches!(self, DayOfWeek::Saturday | DayOfWeek::Sunday)
    }

    /// Monday through Friday.
    #[inline]
    pub const fn is_weekday(self) -> bool {
        !self.is_weekend()
    }

    /// Three-letter English abbreviation.
    pub const fn abbrev(self) -> &'static str {
        match self {
            DayOfWeek::Monday => "Mon",
            DayOfWeek::Tuesday => "Tue",
            DayOfWeek::Wednesday => "Wed",
            DayOfWeek::Thursday => "Thu",
            DayOfWeek::Friday => "Fri",
            DayOfWeek::Saturday => "Sat",
            DayOfWeek::Sunday => "Sun",
        }
    }

    /// Full English name, as used in Table 1 rows.
    pub const fn name(self) -> &'static str {
        match self {
            DayOfWeek::Monday => "Monday",
            DayOfWeek::Tuesday => "Tuesday",
            DayOfWeek::Wednesday => "Wednesday",
            DayOfWeek::Thursday => "Thursday",
            DayOfWeek::Friday => "Friday",
            DayOfWeek::Saturday => "Saturday",
            DayOfWeek::Sunday => "Sunday",
        }
    }
}

impl fmt::Display for DayOfWeek {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fixed offset from UTC in whole hours.
///
/// The study population spans the continental United States; the paper
/// renders each car's 24×7 matrix "in respective local times" (§4.2), so
/// cars carry a [`TimeZone`] and analyses convert before binning by hour.
/// Daylight-saving transitions are deliberately not modeled: the source
/// study covers one 90-day window and the analyses bin at hour
/// granularity, where a 1-hour civil shift has no qualitative effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TimeZone {
    /// Offset from UTC in hours; negative is west of Greenwich.
    offset_hours: i8,
}

impl TimeZone {
    /// Coordinated Universal Time.
    pub const UTC: TimeZone = TimeZone { offset_hours: 0 };
    /// US Eastern (standard) time.
    pub const US_EASTERN: TimeZone = TimeZone { offset_hours: -5 };
    /// US Central (standard) time.
    pub const US_CENTRAL: TimeZone = TimeZone { offset_hours: -6 };
    /// US Mountain (standard) time.
    pub const US_MOUNTAIN: TimeZone = TimeZone { offset_hours: -7 };
    /// US Pacific (standard) time.
    pub const US_PACIFIC: TimeZone = TimeZone { offset_hours: -8 };

    /// The four continental US zones, east to west.
    pub const CONTINENTAL_US: [TimeZone; 4] = [
        TimeZone::US_EASTERN,
        TimeZone::US_CENTRAL,
        TimeZone::US_MOUNTAIN,
        TimeZone::US_PACIFIC,
    ];

    /// Construct from a whole-hour UTC offset. Offsets outside ±14 h do
    /// not exist in the real world and are rejected.
    pub fn from_offset_hours(offset_hours: i8) -> crate::Result<TimeZone> {
        if !(-14..=14).contains(&offset_hours) {
            return Err(crate::Error::InvalidTimeZone { offset_hours });
        }
        Ok(TimeZone { offset_hours })
    }

    /// The UTC offset in hours.
    #[inline]
    pub const fn offset_hours(self) -> i8 {
        self.offset_hours
    }

    /// The UTC offset in seconds.
    #[inline]
    pub const fn offset_secs(self) -> i64 {
        self.offset_hours as i64 * SECONDS_PER_HOUR as i64
    }

    /// Convert a UTC instant to civil local time in this zone.
    ///
    /// Instants that would fall before the (local) epoch are clamped to
    /// local second 0; with US-westward offsets this only affects the
    /// first few hours of study day 0.
    pub fn to_local(self, t: Timestamp) -> LocalTime {
        let shifted = (t.as_secs() as i64 + self.offset_secs()).max(0) as u64;
        LocalTime {
            secs_since_local_epoch: shifted,
        }
    }
}

impl fmt::Display for TimeZone {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "UTC{:+03}", self.offset_hours)
    }
}

/// A civil local time produced by [`TimeZone::to_local`].
///
/// Measured in seconds since *local* midnight of study day 0; exposes the
/// local day index, weekday-relative hour, etc. used to place an event in
/// a 24×7 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalTime {
    secs_since_local_epoch: u64,
}

impl LocalTime {
    /// Local day index (0-based).
    #[inline]
    pub const fn day(self) -> u64 {
        self.secs_since_local_epoch / SECONDS_PER_DAY
    }

    /// Hour of the local day, `0..=23`.
    #[inline]
    pub const fn hour(self) -> u8 {
        // lint:allow(L3): mod-86_400 then /3_600 bounds the value below 24
        ((self.secs_since_local_epoch % SECONDS_PER_DAY) / SECONDS_PER_HOUR) as u8
    }

    /// Seconds since local midnight.
    #[inline]
    pub const fn secs_of_day(self) -> u64 {
        self.secs_since_local_epoch % SECONDS_PER_DAY
    }

    /// Raw seconds since the local epoch.
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.secs_since_local_epoch
    }
}

/// A time of day with second resolution, `00:00:00 ..= 23:59:59`,
/// independent of any particular day. Used to express schedule anchors
/// (commute departure times, busy-hour window edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct TimeOfDay(u32);

impl TimeOfDay {
    /// Midnight.
    pub const MIDNIGHT: TimeOfDay = TimeOfDay(0);

    /// Construct from hour/minute/second; values are validated.
    pub fn new(hour: u32, min: u32, sec: u32) -> crate::Result<TimeOfDay> {
        if hour > 23 || min > 59 || sec > 59 {
            return Err(crate::Error::InvalidTimeOfDay { hour, min, sec });
        }
        Ok(TimeOfDay(hour * 3_600 + min * 60 + sec))
    }

    /// Construct from seconds after midnight, wrapping at 24 h.
    #[inline]
    pub const fn from_secs_wrapping(secs: u64) -> TimeOfDay {
        // lint:allow(L3): wrapping is the constructor's contract; mod-86_400 fits u32
        TimeOfDay((secs % SECONDS_PER_DAY) as u32)
    }

    /// Seconds after midnight.
    #[inline]
    pub const fn as_secs(self) -> u32 {
        self.0
    }

    /// Hour component, `0..=23`.
    #[inline]
    pub const fn hour(self) -> u8 {
        (self.0 / 3_600) as u8
    }
}

impl fmt::Display for TimeOfDay {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02}:{:02}:{:02}",
            self.0 / 3_600,
            (self.0 % 3_600) / 60,
            self.0 % 60
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_decomposition() {
        let t = Timestamp::from_day_hms(3, 14, 30, 15);
        assert_eq!(t.day(), 3);
        assert_eq!(t.hour_of_day(), 14);
        assert_eq!(t.secs_of_day(), 14 * 3_600 + 30 * 60 + 15);
        assert_eq!(t.to_string(), "d03 14:30:15");
    }

    #[test]
    fn timestamp_arithmetic() {
        let a = Timestamp::from_secs(100);
        let b = a + Duration::from_secs(50);
        assert_eq!(b.as_secs(), 150);
        assert_eq!(b - a, Duration::from_secs(50));
        assert_eq!(a.saturating_since(b), Duration::ZERO);
        assert_eq!(b.saturating_since(a), Duration::from_secs(50));
        assert_eq!(a.plus_days(2).as_secs(), 100 + 2 * SECONDS_PER_DAY);
    }

    #[test]
    fn duration_display_units() {
        assert_eq!(Duration::from_secs(42).to_string(), "42s");
        assert_eq!(Duration::from_secs(105).to_string(), "1m45s");
        assert_eq!(Duration::from_secs(3_725).to_string(), "1h02m05s");
    }

    #[test]
    fn duration_conversions() {
        assert_eq!(Duration::from_mins(10).as_secs(), 600);
        assert_eq!(Duration::from_hours(2).as_secs(), 7_200);
        assert_eq!(Duration::from_days(1).as_secs(), SECONDS_PER_DAY);
        assert!((Duration::from_secs(5_400).as_hours_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn duration_sum() {
        let total: Duration = [10u64, 20, 30]
            .iter()
            .map(|&s| Duration::from_secs(s))
            .sum();
        assert_eq!(total, Duration::from_secs(60));
    }

    #[test]
    fn day_of_week_round_trip() {
        for (i, d) in DayOfWeek::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
            assert_eq!(DayOfWeek::from_index(i), *d);
        }
        assert_eq!(DayOfWeek::Sunday.plus(1), DayOfWeek::Monday);
        assert_eq!(DayOfWeek::Friday.plus(10), DayOfWeek::Monday);
    }

    #[test]
    fn weekend_classification() {
        assert!(DayOfWeek::Saturday.is_weekend());
        assert!(DayOfWeek::Sunday.is_weekend());
        assert!(DayOfWeek::Monday.is_weekday());
        assert!(DayOfWeek::Friday.is_weekday());
    }

    #[test]
    fn timezone_local_conversion() {
        // 02:00 UTC on day 1 is 21:00 local on day 0 in US Eastern.
        let t = Timestamp::from_day_hms(1, 2, 0, 0);
        let local = TimeZone::US_EASTERN.to_local(t);
        assert_eq!(local.day(), 0);
        assert_eq!(local.hour(), 21);
    }

    #[test]
    fn timezone_clamps_before_epoch() {
        let t = Timestamp::from_day_hms(0, 1, 0, 0);
        let local = TimeZone::US_PACIFIC.to_local(t);
        assert_eq!(local.as_secs(), 0);
    }

    #[test]
    fn timezone_validation() {
        assert!(TimeZone::from_offset_hours(-8).is_ok());
        assert!(TimeZone::from_offset_hours(15).is_err());
        assert!(TimeZone::from_offset_hours(-15).is_err());
    }

    #[test]
    fn time_of_day_validation_and_display() {
        let t = TimeOfDay::new(20, 45, 0).unwrap();
        assert_eq!(t.to_string(), "20:45:00");
        assert_eq!(t.hour(), 20);
        assert!(TimeOfDay::new(24, 0, 0).is_err());
        assert!(TimeOfDay::new(0, 60, 0).is_err());
        assert!(TimeOfDay::new(0, 0, 60).is_err());
    }

    #[test]
    fn time_of_day_wrapping() {
        let t = TimeOfDay::from_secs_wrapping(SECONDS_PER_DAY + 61);
        assert_eq!(t.as_secs(), 61);
    }
}

//! Error type shared across the workspace.

use std::fmt;

/// Convenient result alias using [`Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the conncar crates.
///
/// Kept as a single flat enum: the workspace's failure modes are few and
/// mostly configuration or decode problems, and a flat enum keeps
/// matching simple for callers (the smoltcp "simplicity and robustness"
/// school rather than per-crate error ladders).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// A study period with zero days.
    EmptyStudyPeriod,
    /// A UTC offset outside the real-world ±14 h range.
    InvalidTimeZone {
        /// The rejected offset.
        offset_hours: i8,
    },
    /// An out-of-range civil time of day.
    InvalidTimeOfDay {
        /// Hour component.
        hour: u32,
        /// Minute component.
        min: u32,
        /// Second component.
        sec: u32,
    },
    /// A configuration value outside its documented domain.
    InvalidConfig {
        /// Which parameter was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
    /// A malformed record was encountered while decoding a CDR stream.
    Decode {
        /// Byte or line offset of the problem, when known.
        offset: Option<u64>,
        /// Description of the malformation.
        why: String,
    },
    /// A chunk failed its integrity check while reading a CDR stream.
    ChecksumMismatch {
        /// Byte offset of the chunk whose checksum failed.
        offset: u64,
        /// Checksum recorded in the stream.
        expected: u32,
        /// Checksum computed over the received bytes.
        found: u32,
    },
    /// A CDR stream declared a format version this build cannot read.
    UnsupportedVersion {
        /// The version byte found in the stream header.
        found: u8,
    },
    /// An I/O error, stringified to keep `Error: Clone + PartialEq`.
    Io(String),
    /// An analysis was asked to run on data it cannot work with
    /// (e.g. clustering an empty set of cells).
    EmptyInput {
        /// The analysis that had nothing to consume.
        analysis: &'static str,
    },
    /// A query filter that can never match any record — an inverted
    /// time window or an explicitly empty id set. Rejected at query
    /// admission instead of silently returning an empty result.
    InvalidFilter {
        /// Which predicate was rejected.
        what: &'static str,
        /// Why it was rejected.
        why: String,
    },
    /// A query service refused admission because its bounded queue was
    /// full. Back off and retry; results already computed are
    /// unaffected.
    Overloaded {
        /// Requests already queued when this one arrived.
        queued: usize,
        /// The admission bound that was hit.
        limit: usize,
    },
    /// A shared lock was poisoned: some thread panicked while holding
    /// it, so the state it protects can no longer be trusted. Callers
    /// degrade (refuse the request, stop the scheduler) instead of
    /// cascading the panic through `.unwrap()` — lint rule L5 bans the
    /// latter outside the sanctioned recovery helper in
    /// `crates/serve/src/sync.rs`.
    Poisoned {
        /// Which lock was found poisoned, e.g. `serve.ServiceState`.
        what: &'static str,
    },
    /// A streaming store append was used out of contract: chunks must
    /// arrive in ascending, non-overlapping car-id ranges against the
    /// period the builder was opened with. Surfaced as a typed error
    /// instead of a panic so a misbehaving driver cannot take down the
    /// build (lint rule L7 discipline).
    StoreAppend {
        /// Which append invariant was violated.
        what: &'static str,
        /// Why the chunk was rejected.
        why: String,
    },
    /// The ingest→clean pipeline could not produce a usable dataset
    /// from a byte stream: the input carried data, but nothing
    /// salvageable survived to be cleaned. Partial damage is *not* an
    /// error — it lands in `IngestReport`/`Quarantine` accounting; this
    /// variant is reserved for total loss.
    Clean {
        /// Which pipeline stage gave up.
        stage: &'static str,
        /// Description of the failure.
        why: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EmptyStudyPeriod => write!(f, "study period must contain at least one day"),
            Error::InvalidTimeZone { offset_hours } => {
                write!(f, "UTC offset {offset_hours:+} h is outside ±14 h")
            }
            Error::InvalidTimeOfDay { hour, min, sec } => {
                write!(f, "invalid time of day {hour:02}:{min:02}:{sec:02}")
            }
            Error::InvalidConfig { what, why } => write!(f, "invalid config `{what}`: {why}"),
            Error::Decode { offset, why } => match offset {
                Some(o) => write!(f, "decode error at offset {o}: {why}"),
                None => write!(f, "decode error: {why}"),
            },
            Error::ChecksumMismatch {
                offset,
                expected,
                found,
            } => write!(
                f,
                "checksum mismatch at offset {offset}: expected {expected:#010x}, found {found:#010x}"
            ),
            Error::UnsupportedVersion { found } => {
                write!(f, "unsupported stream version {found}")
            }
            Error::InvalidFilter { what, why } => {
                write!(f, "invalid filter `{what}`: {why}")
            }
            Error::Overloaded { queued, limit } => write!(
                f,
                "query service overloaded: {queued} requests queued (limit {limit})"
            ),
            Error::Io(msg) => write!(f, "I/O error: {msg}"),
            Error::Poisoned { what } => {
                write!(f, "lock `{what}` poisoned by a panicked thread")
            }
            Error::EmptyInput { analysis } => {
                write!(f, "analysis `{analysis}` received no input data")
            }
            Error::Clean { stage, why } => {
                write!(f, "clean pipeline failed at stage `{stage}`: {why}")
            }
            Error::StoreAppend { what, why } => {
                write!(f, "store append rejected `{what}`: {why}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::EmptyStudyPeriod.to_string(),
            "study period must contain at least one day"
        );
        assert!(Error::InvalidTimeZone { offset_hours: 15 }
            .to_string()
            .contains("+15"));
        let e = Error::Decode {
            offset: Some(42),
            why: "truncated".into(),
        };
        assert!(e.to_string().contains("offset 42"));
        let e = Error::Decode {
            offset: None,
            why: "bad magic".into(),
        };
        assert!(e.to_string().contains("bad magic"));
        let e = Error::ChecksumMismatch {
            offset: 5,
            expected: 0xDEAD_BEEF,
            found: 0,
        };
        assert!(e.to_string().contains("0xdeadbeef"), "{e}");
        assert!(Error::UnsupportedVersion { found: 9 }
            .to_string()
            .contains("version 9"));
        let e = Error::Clean {
            stage: "salvage",
            why: "nothing salvageable".into(),
        };
        assert!(e.to_string().contains("salvage"), "{e}");
        let e = Error::InvalidFilter {
            what: "window",
            why: "start 9 is not before end 3".into(),
        };
        assert!(e.to_string().contains("invalid filter `window`"), "{e}");
        let e = Error::Overloaded {
            queued: 128,
            limit: 128,
        };
        assert!(e.to_string().contains("limit 128"), "{e}");
        let e = Error::Poisoned {
            what: "serve.ServiceState",
        };
        assert!(e.to_string().contains("serve.ServiceState"), "{e}");
        let e = Error::StoreAppend {
            what: "car_order",
            why: "chunk starts at car 4 but car 9 was already appended".into(),
        };
        assert!(e.to_string().contains("store append rejected `car_order`"), "{e}");
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: Error = io.into();
        assert!(matches!(e, Error::Io(_)));
        assert!(e.to_string().contains("nope"));
    }
}

//! # conncar-types
//!
//! Core domain types shared by every crate in the `conncar` workspace,
//! a reproduction of *"Connected cars in cellular network: A measurement
//! study"* (IMC 2017).
//!
//! The types here deliberately mirror the vocabulary of the paper's §3
//! ("Data set and methodology"):
//!
//! * a **car** is a vehicle equipped with a cellular 3G/4G modem
//!   ([`CarId`]);
//! * a **cell** (or *radio*) is one directional antenna on one frequency
//!   **carrier** ([`CellId`], [`Carrier`]);
//! * a **sector** groups the cells of one base station pointing the same
//!   direction ([`SectorId`]);
//! * a **base station** hosts 3–12+ cells ([`BaseStationId`]);
//! * the **study period** is a contiguous run of days — 90 in the paper —
//!   over which Call Detail Records are collected ([`StudyPeriod`]);
//! * network load is accounted in **15-minute bins** ([`BinIndex`],
//!   [`DayBin`], [`WeekBin`]) because that is the granularity at which the
//!   paper classifies cells as busy (`U_PRB > 80%`).
//!
//! All simulation time is measured in whole seconds from the study epoch
//! (midnight UTC of day 0) — radio-level events in the source data have
//! second resolution, and whole seconds keep every computation exact and
//! platform-independent.
//!
//! This crate has no dependencies besides `serde` and is `#![forbid(unsafe_code)]`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bins;
pub mod carrier;
pub mod digest;
pub mod error;
pub mod id;
pub mod period;
pub mod seed;
pub mod time;

pub use bins::{BinIndex, DayBin, WeekBin, BINS_PER_DAY, BINS_PER_WEEK, BIN_SECONDS};
pub use carrier::{Carrier, ModemCapability, Rat, ALL_CARRIERS};
pub use digest::{fnv1a64, fnv1a64_hex, Fnv64};
pub use error::{Error, Result};
pub use id::{BaseStationId, CarId, CellId, SectorId};
pub use period::StudyPeriod;
pub use seed::SeedSplitter;
pub use time::{
    hour_of_day_from_hours, saturating_u32, secs_from_hours_f64, DayOfWeek, Duration, LocalTime,
    TimeOfDay, TimeZone, Timestamp, SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_MINUTE,
    SECONDS_PER_WEEK,
};

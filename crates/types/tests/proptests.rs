//! Property tests over the foundational types: time/bin arithmetic laws
//! that every analysis silently relies on.

use conncar_types::{
    BinIndex, DayBin, DayOfWeek, Duration, SeedSplitter, StudyPeriod, TimeOfDay, TimeZone,
    Timestamp, BINS_PER_DAY, BIN_SECONDS, SECONDS_PER_DAY,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn bin_covering_partitions_intervals(
        start in 0u64..90 * SECONDS_PER_DAY,
        len in 0u64..2 * SECONDS_PER_DAY,
    ) {
        let s = Timestamp::from_secs(start);
        let e = Timestamp::from_secs(start + len);
        let bins: Vec<BinIndex> = BinIndex::covering(s, e).collect();
        // Overlaps sum exactly to the interval length.
        let total: u64 = bins.iter().map(|b| b.overlap_secs(s, e)).sum();
        prop_assert_eq!(total, len);
        // Bins are consecutive and each genuinely overlaps.
        for w in bins.windows(2) {
            prop_assert_eq!(w[1].0, w[0].0 + 1);
        }
        for b in &bins {
            prop_assert!(b.overlap_secs(s, e) > 0);
            prop_assert!(b.start() < e && b.end() > s);
        }
    }

    #[test]
    fn bin_containment_consistency(t in 0u64..90 * SECONDS_PER_DAY) {
        let ts = Timestamp::from_secs(t);
        let b = BinIndex::containing(ts);
        prop_assert!(b.start() <= ts);
        prop_assert!(ts < b.end());
        prop_assert_eq!(b.end().as_secs() - b.start().as_secs(), BIN_SECONDS);
        prop_assert_eq!(b.day(), ts.day());
    }

    #[test]
    fn week_bin_round_trips_weekday(
        day in 0u64..90,
        day_bin in 0u64..BINS_PER_DAY as u64,
        start_idx in 0usize..7,
    ) {
        let start = DayOfWeek::from_index(start_idx);
        let b = BinIndex(day * BINS_PER_DAY as u64 + day_bin);
        let wb = b.week_bin(start);
        prop_assert_eq!(wb.day(), start.plus(day as usize));
        prop_assert_eq!(wb.day_bin().index() as u64, day_bin);
    }

    #[test]
    fn timestamp_day_hms_decomposition(
        day in 0u64..365,
        h in 0u64..24,
        m in 0u64..60,
        sec in 0u64..60,
    ) {
        let t = Timestamp::from_day_hms(day, h, m, sec);
        prop_assert_eq!(t.day(), day);
        prop_assert_eq!(t.hour_of_day() as u64, h);
        prop_assert_eq!(t.secs_of_day(), h * 3_600 + m * 60 + sec);
    }

    #[test]
    fn duration_addition_laws(a in 0u64..1_000_000, b in 0u64..1_000_000) {
        let da = Duration::from_secs(a);
        let db = Duration::from_secs(b);
        prop_assert_eq!((da + db).as_secs(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_secs(), a.saturating_sub(b));
        prop_assert_eq!(da.max(db).as_secs(), a.max(b));
        prop_assert_eq!(da.min(db).as_secs(), a.min(b));
    }

    #[test]
    fn timezone_shift_is_exact(
        t in 5 * 86_400u64..90 * 86_400,
        offset in -14i8..=14,
    ) {
        let tz = TimeZone::from_offset_hours(offset).expect("valid offset");
        let local = tz.to_local(Timestamp::from_secs(t));
        // Away from the clamp region, local = utc + offset exactly.
        prop_assert_eq!(local.as_secs() as i64, t as i64 + offset as i64 * 3_600);
    }

    #[test]
    fn day_of_week_plus_is_modular(start in 0usize..7, n in 0usize..1_000) {
        let d = DayOfWeek::from_index(start);
        prop_assert_eq!(d.plus(n).index(), (start + n) % 7);
        prop_assert_eq!(d.plus(7), d);
    }

    #[test]
    fn time_of_day_wrapping(secs in 0u64..10 * SECONDS_PER_DAY) {
        let t = TimeOfDay::from_secs_wrapping(secs);
        prop_assert_eq!(t.as_secs() as u64, secs % SECONDS_PER_DAY);
        prop_assert!(t.hour() < 24);
    }

    #[test]
    fn day_bin_at_covers_clock(h in 0u8..24, m in 0u8..60) {
        let b = DayBin::at(h, m);
        prop_assert!(b.index() < BINS_PER_DAY);
        prop_assert_eq!(b.hour(), h);
        prop_assert_eq!(b.minute(), (m / 15) * 15);
    }

    #[test]
    fn study_period_clip_is_sound(
        days in 1u32..120,
        a in 0u64..200 * SECONDS_PER_DAY,
        len in 0u64..10 * SECONDS_PER_DAY,
    ) {
        let p = StudyPeriod::new(DayOfWeek::Monday, days).expect("nonzero");
        let s = Timestamp::from_secs(a);
        let e = Timestamp::from_secs(a + len);
        match p.clip(s, e) {
            Some((cs, ce)) => {
                prop_assert!(cs < ce);
                prop_assert!(cs >= s && cs >= p.start());
                prop_assert!(ce <= e && ce <= p.end());
            }
            None => {
                // Disjoint or empty.
                prop_assert!(e <= p.start() || s >= p.end() || s == e);
            }
        }
    }

    #[test]
    fn seed_domains_never_collide_with_siblings(
        root in any::<u64>(),
        i in 0u64..5_000,
        j in 0u64..5_000,
    ) {
        prop_assume!(i != j);
        let s = SeedSplitter::new(root);
        prop_assert_ne!(s.domain_indexed("x", i), s.domain_indexed("x", j));
    }
}

//! Record mode: run the pipeline once, capture everything a replay
//! needs, and fingerprint everything the run produced.

use crate::b64;
use crate::golden::{hex64, store_digest, GoldenRun, GOLDEN_SCHEMA, NOT_APPLICABLE};
use crate::trace::{RunTrace, StreamedTrace};
use conncar::build_streamed_with_clock;
use conncar::study::StudyConfig;
use conncar::telemetry::{run_instrumented_captured, trace_id};
use conncar_cdr::{
    crc32, salvage_logged, CdrDataset, CdrRecord, CdrWriter, Cleaner, FaultReport, RealizedFaults,
    SalvageLog,
};
use conncar_obs::NullClock;
use conncar_types::{
    fnv1a64_hex, BaseStationId, CarId, Carrier, CellId, Error, Result, Timestamp,
};
use std::sync::Arc;

/// One recorded run: the replayable trace plus the golden digests of
/// everything it produced. Write both files side by side and any future
/// build can replay the run and diff it stage by stage.
#[derive(Debug, Clone)]
pub struct Recording {
    /// The trace (`trace.json`).
    pub trace: RunTrace,
    /// The digests (`golden.json`).
    pub golden: GoldenRun,
}

/// Record a full study run under a null clock: execute the captured
/// pipeline, then package the capture as a `"study"`-kind trace and
/// fingerprint every artifact.
pub fn record_study(name: &str, cfg: &StudyConfig, shards: usize) -> Result<Recording> {
    let (study, store, analyses, telemetry, capture) =
        run_instrumented_captured(cfg, Arc::new(NullClock), Some(shards))?;
    let id = telemetry
        .trace
        .clone()
        .expect("a captured run always carries its trace id");
    let golden = GoldenRun::from_artifacts(
        name,
        &id,
        &study,
        &store,
        &analyses,
        &telemetry,
        capture.truth_digest,
    )?;
    let trace = RunTrace {
        kind: "study".into(),
        name: name.into(),
        config: cfg.clone(),
        shards,
        records_collected: capture.records_collected,
        fault_report: study.fault_report.clone(),
        realized: capture.realized,
        salvage_log: capture.salvage_log,
        stream_b64: b64::encode(&capture.damaged_stream),
        stream_crc32: format!("{:08x}", crc32(&capture.damaged_stream)),
        expected_error: None,
        streamed: None,
    };
    Ok(Recording { trace, golden })
}

/// Record an out-of-core streamed build (`"streamed"`-kind trace).
///
/// A streamed run is a pure function of config and shard count: there
/// is no wire leg (wire faults are rejected up front), so the trace
/// carries an empty byte stream and instead pins the chunking geometry
/// — the resolved build parameters and every [`conncar::ChunkSpan`].
/// The golden pins the truth/dirty/clean stream digests, the packed
/// store layout and the run ledger; the report and observability stages
/// never run out-of-core and stay [`NOT_APPLICABLE`].
pub fn record_streamed(name: &str, cfg: &StudyConfig, shards: usize) -> Result<Recording> {
    let b = build_streamed_with_clock(cfg, shards, Arc::new(NullClock))?;
    // No wire leg: the identity hashes an empty stream, exactly as
    // replay will recompute it from the trace's own (empty) stream.
    let stream: Vec<u8> = Vec::new();
    let id = trace_id(cfg.seed, shards, &stream);
    let run_report_json = serde_json::to_string(&b.run_report).expect("run report serializes");
    let golden = GoldenRun {
        schema: GOLDEN_SCHEMA.into(),
        name: name.into(),
        trace_id: id,
        world: hex64(b.truth_digest),
        ingest: hex64(b.dirty_digest),
        clean: hex64(b.clean_digest),
        store: hex64(store_digest(&b.store)),
        run_report: fnv1a64_hex(run_report_json.as_bytes()),
        run_obs: NOT_APPLICABLE.into(),
        report: NOT_APPLICABLE.into(),
        figures: Vec::new(),
    };
    let trace = RunTrace {
        kind: "streamed".into(),
        name: name.into(),
        config: cfg.clone(),
        shards,
        records_collected: b.run_report.records_collected,
        fault_report: b.fault_report.clone(),
        realized: RealizedFaults::default(),
        salvage_log: SalvageLog::default(),
        stream_b64: b64::encode(&stream),
        stream_crc32: format!("{:08x}", crc32(&stream)),
        expected_error: None,
        streamed: Some(StreamedTrace {
            chunk_cars: b.build.chunk_cars,
            segment_hours: b.build.segment_hours,
            chunks: b.chunks,
        }),
    };
    Ok(Recording { trace, golden })
}

/// Record a total-loss fixture: a stream whose every chunk is corrupt,
/// so salvage yields nothing and the clean pipeline must fail with its
/// "no records salvageable" diagnostics — run identity included. The
/// fixture pins that error message exactly.
///
/// The stream is built deterministically (synthetic records, one byte
/// flipped in every chunk body) — no RNG, so the recipe alone
/// regenerates it byte for byte.
pub fn record_total_loss(name: &str, cfg: &StudyConfig, shards: usize) -> Result<Recording> {
    let records = synthetic_records(64);
    let mut w = CdrWriter::new(Vec::new()).with_chunk_records(16);
    w.write_all(&records)?;
    let (mut stream, _) = w.finish()?;
    corrupt_every_chunk(&mut stream);

    let (delivered, ingest, salvage_log) = salvage_logged(&stream);
    if !delivered.is_empty() || ingest.records_accounted() != records.len() as u64 {
        return Err(Error::InvalidConfig {
            what: "total_loss fixture",
            why: format!(
                "corruption pass left {} records salvageable of {}",
                delivered.len(),
                records.len()
            ),
        });
    }
    let ingest_digest = CdrDataset::new(cfg.period, delivered).content_digest();

    let id = trace_id(cfg.seed, shards, &stream);
    let err = match Cleaner::new(cfg.clean.clone())
        .for_run(id.clone())
        .clean_stream(&stream, cfg.period)
    {
        Err(e) => e.to_string(),
        Ok(_) => {
            return Err(Error::InvalidConfig {
                what: "total_loss fixture",
                why: "the stream cleaned successfully; a total-loss fixture must fail".into(),
            })
        }
    };

    let golden = GoldenRun {
        schema: GOLDEN_SCHEMA.into(),
        name: name.into(),
        trace_id: id,
        world: NOT_APPLICABLE.into(),
        ingest: hex64(ingest_digest),
        clean: fnv1a64_hex(err.as_bytes()),
        store: NOT_APPLICABLE.into(),
        run_report: NOT_APPLICABLE.into(),
        run_obs: NOT_APPLICABLE.into(),
        report: NOT_APPLICABLE.into(),
        figures: Vec::new(),
    };
    let trace = RunTrace {
        kind: "stream".into(),
        name: name.into(),
        config: cfg.clone(),
        shards,
        records_collected: records.len(),
        fault_report: FaultReport::default(),
        realized: RealizedFaults::default(),
        salvage_log,
        stream_b64: b64::encode(&stream),
        stream_crc32: format!("{:08x}", crc32(&stream)),
        expected_error: Some(err),
        streamed: None,
    };
    Ok(Recording { trace, golden })
}

/// Deterministic synthetic records for stream-kind fixtures.
fn synthetic_records(n: u32) -> Vec<CdrRecord> {
    (0..n)
        .map(|i| CdrRecord {
            car: CarId(i / 4),
            cell: CellId::new(BaseStationId(i % 7), (i % 3) as u8, Carrier::C3),
            start: Timestamp::from_secs(u64::from(i) * 120),
            end: Timestamp::from_secs(u64::from(i) * 120 + 60),
        })
        .collect()
}

/// Flip one body byte in every v2 chunk, walking the frame headers.
fn corrupt_every_chunk(stream: &mut [u8]) {
    // header := "CDRS" u8 version; chunk := "CHNK" u32 count u32 crc | body.
    let mut pos = 5;
    while pos + 12 <= stream.len() {
        let count = u32::from_le_bytes([
            stream[pos + 4],
            stream[pos + 5],
            stream[pos + 6],
            stream[pos + 7],
        ]) as usize;
        let body = pos + 12;
        if body < stream.len() {
            stream[body] ^= 0xFF;
        }
        pos = body + count * 26;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{replay_run, StageStatus};

    #[test]
    fn total_loss_fixture_records_and_replays() {
        let cfg = StudyConfig::tiny();
        let rec = record_total_loss("total_loss_probe", &cfg, 1).unwrap();
        assert_eq!(rec.trace.kind, "stream");
        let err = rec.trace.expected_error.as_deref().unwrap();
        assert!(err.contains("no records salvageable"), "{err}");
        assert!(err.contains(&format!("[run {}]", rec.golden.trace_id)), "{err}");
        assert!(!rec.trace.salvage_log.chunks.is_empty());
        assert!(rec
            .trace
            .salvage_log
            .chunks
            .iter()
            .all(|c| c.verdict != "ok"));

        // The recording replays clean through the serialized round trip.
        let trace = RunTrace::from_envelope_json(&rec.trace.to_envelope_json()).unwrap();
        let golden = GoldenRun::from_json(&rec.golden.to_json()).unwrap();
        let report = replay_run(&trace, &golden);
        assert!(report.is_clean(), "{}", report.render());
        assert!(report
            .checks
            .iter()
            .any(|c| c.stage == "clean" && c.status == StageStatus::Ok));
    }

    #[test]
    fn streamed_fixture_records_and_replays() {
        let mut cfg = StudyConfig::tiny();
        cfg.fleet.cars = 80;
        cfg.build = Some(conncar::BuildConfig {
            chunk_cars: 32,
            segment_hours: 6,
        });
        let rec = record_streamed("streamed_probe", &cfg, 2).unwrap();
        assert_eq!(rec.trace.kind, "streamed");
        let streamed = rec.trace.streamed.as_ref().expect("streamed section");
        assert_eq!(streamed.chunks.len(), 3, "80 cars / 32 -> 3 chunks");
        assert_eq!(rec.golden.run_obs, NOT_APPLICABLE);

        // Replays clean through the serialized round trip.
        let trace = RunTrace::from_envelope_json(&rec.trace.to_envelope_json()).unwrap();
        let golden = GoldenRun::from_json(&rec.golden.to_json()).unwrap();
        let report = crate::replay::replay_run(&trace, &golden);
        assert!(report.is_clean(), "{}", report.render());

        // A tampered chunk span is named at the ingest gate, and the
        // later stages are skipped, not silently dropped.
        let mut tampered = rec.trace.clone();
        tampered.streamed.as_mut().unwrap().chunks[1].clean_rows += 1;
        let report = crate::replay::replay_run(&tampered, &rec.golden);
        let first = report.first_divergence().expect("must diverge");
        assert_eq!(first.stage, "ingest", "{}", report.render());
        assert!(first.detail.contains("chunk 1"), "{}", first.detail);

        // A tampered store digest names the store stage.
        let mut golden = rec.golden.clone();
        golden.store = hex64(0xdead_beef);
        let report = crate::replay::replay_run(&rec.trace, &golden);
        assert_eq!(
            report.first_divergence().expect("must diverge").stage,
            "store"
        );
    }

    #[test]
    fn tampered_expected_error_diverges_at_clean() {
        let cfg = StudyConfig::tiny();
        let rec = record_total_loss("total_loss_probe", &cfg, 1).unwrap();
        let mut golden = rec.golden.clone();
        golden.clean = crate::golden::hex64(0xdead_beef);
        let report = replay_run(&rec.trace, &golden);
        let first = report.first_divergence().expect("must diverge");
        assert_eq!(first.stage, "clean");
    }
}

//! Replay mode: reconstruct a recorded run from its trace alone and
//! diff it against the golden digests at stage granularity.
//!
//! Checks run in this order:
//!
//! 1. **trace** — envelope schema and CRC (at parse time), stream CRC,
//!    and the trace identity against the golden file.
//! 2. **ingest** — the recorded stream is salvaged *standalone* and
//!    checked chunk-for-chunk against the recorded [`SalvageLog`]
//!    before the full pipeline runs. This check gates the rest: final
//!    study assembly asserts its ledger reconciles, and feeding it a
//!    stream that no longer salvages as recorded would panic rather
//!    than produce a diffable report.
//! 3. **world … figures** — the full replayed pipeline, one digest per
//!    stage, in pipeline order.
//!
//! [`ReplayReport::first_divergence`] names the first stage whose
//! output moved; everything downstream of a gate failure is marked
//! skipped, never silently dropped.

use crate::golden::{hex64, store_digest, GoldenRun};
use crate::trace::RunTrace;
use conncar::build_streamed_with_clock;
use conncar::telemetry::run_instrumented_replayed;
use conncar_cdr::{salvage_logged, CdrDataset, Cleaner};
use conncar_obs::NullClock;
use conncar_types::fnv1a64_hex;
use std::sync::Arc;

/// Outcome of one stage comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Replay matched the recording.
    Ok,
    /// Replay produced something else; `detail` says what.
    Diverged,
    /// Not checked (gated out by an earlier divergence, or not
    /// applicable to this trace kind).
    Skipped,
}

/// One stage's verdict.
#[derive(Debug, Clone)]
pub struct StageCheck {
    /// Pipeline stage name.
    pub stage: &'static str,
    /// What happened.
    pub status: StageStatus,
    /// Human-readable evidence: matching digest, expected-vs-found, or
    /// why the stage was skipped.
    pub detail: String,
}

/// The full stage-by-stage replay verdict.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Fixture name.
    pub name: String,
    /// Stage checks in pipeline order.
    pub checks: Vec<StageCheck>,
}

impl ReplayReport {
    /// The first stage whose replay diverged, if any.
    pub fn first_divergence(&self) -> Option<&StageCheck> {
        self.checks
            .iter()
            .find(|c| c.status == StageStatus::Diverged)
    }

    /// Whether every checked stage matched.
    pub fn is_clean(&self) -> bool {
        self.first_divergence().is_none()
    }

    /// Render the stage-level report (what the `conncar replay` command
    /// prints and CI archives on failure).
    pub fn render(&self) -> String {
        let mut out = match self.first_divergence() {
            Some(c) => format!("replay {}: DIVERGED at stage `{}`\n", self.name, c.stage),
            None => {
                let checked = self
                    .checks
                    .iter()
                    .filter(|c| c.status == StageStatus::Ok)
                    .count();
                format!("replay {}: ok ({checked} stages match)\n", self.name)
            }
        };
        let width = self
            .checks
            .iter()
            .map(|c| c.stage.len())
            .max()
            .unwrap_or(0);
        for c in &self.checks {
            let tag = match c.status {
                StageStatus::Ok => "ok      ",
                StageStatus::Diverged => "DIVERGED",
                StageStatus::Skipped => "skipped ",
            };
            out.push_str(&format!("  [{tag}] {:<width$}  {}\n", c.stage, c.detail));
        }
        out
    }
}

/// Stages checked after the ingest gate, in pipeline order.
const GATED_STAGES: [&str; 7] = [
    "world",
    "clean",
    "store",
    "run_report",
    "run_obs",
    "report",
    "figures",
];

/// Parse both files and replay; any parse or integrity failure becomes
/// a `trace`-stage divergence instead of an error, so callers always
/// get a stage-level report.
pub fn verify_and_replay(name: &str, trace_json: &str, golden_json: &str) -> ReplayReport {
    let trace = match RunTrace::from_envelope_json(trace_json) {
        Ok(t) => t,
        Err(e) => return trace_failure(name, e.to_string()),
    };
    let golden = match GoldenRun::from_json(golden_json) {
        Ok(g) => g,
        Err(e) => return trace_failure(name, e.to_string()),
    };
    replay_run(&trace, &golden)
}

fn trace_failure(name: &str, detail: String) -> ReplayReport {
    ReplayReport {
        name: name.to_string(),
        checks: vec![StageCheck {
            stage: "trace",
            status: StageStatus::Diverged,
            detail,
        }],
    }
}

/// Replay a parsed trace against its golden digests.
pub fn replay_run(trace: &RunTrace, golden: &GoldenRun) -> ReplayReport {
    let mut checks = Vec::new();

    // Stage: trace — stream integrity and identity.
    let stream = match trace.stream() {
        Ok(s) => s,
        Err(e) => {
            checks.push(StageCheck {
                stage: "trace",
                status: StageStatus::Diverged,
                detail: e.to_string(),
            });
            skip(&mut checks, "ingest", "trace integrity failed");
            skip_gated(&mut checks, "trace integrity failed");
            return ReplayReport {
                name: trace.name.clone(),
                checks,
            };
        }
    };
    let id = conncar::telemetry::trace_id(trace.config.seed, trace.shards, &stream);
    if id != golden.trace_id {
        checks.push(StageCheck {
            stage: "trace",
            status: StageStatus::Diverged,
            detail: format!(
                "trace identity mismatch: golden pins {}, trace computes {id}",
                golden.trace_id
            ),
        });
        skip(&mut checks, "ingest", "trace identity failed");
        skip_gated(&mut checks, "trace identity failed");
        return ReplayReport {
            name: trace.name.clone(),
            checks,
        };
    }
    checks.push(StageCheck {
        stage: "trace",
        status: StageStatus::Ok,
        detail: format!("envelope, stream crc and trace id {id} verified"),
    });

    match trace.kind.as_str() {
        "study" => replay_study(trace, golden, &stream, &mut checks),
        "stream" => replay_stream(trace, golden, &stream, &id, &mut checks),
        "streamed" => replay_streamed(trace, golden, &mut checks),
        other => {
            checks.push(StageCheck {
                stage: "ingest",
                status: StageStatus::Diverged,
                detail: format!("unknown trace kind `{other}`"),
            });
            skip_gated(&mut checks, "unknown trace kind");
        }
    }

    ReplayReport {
        name: trace.name.clone(),
        checks,
    }
}

/// The `"study"` path: standalone ingest gate, then the full pipeline.
fn replay_study(
    trace: &RunTrace,
    golden: &GoldenRun,
    stream: &[u8],
    checks: &mut Vec<StageCheck>,
) {
    let (delivered, ingest_report, log) = salvage_logged(stream);
    let ingest_digest = hex64(CdrDataset::new(trace.config.period, delivered).content_digest());
    let mut problems = Vec::new();
    if log != trace.salvage_log {
        problems.push(first_frame_difference(&log, &trace.salvage_log));
    }
    if ingest_report.records_accounted() != trace.records_collected as u64 {
        problems.push(format!(
            "salvage accounted {} records, trace recorded {} collected",
            ingest_report.records_accounted(),
            trace.records_collected
        ));
    }
    if ingest_digest != golden.ingest {
        problems.push(format!(
            "delivered dataset digest expected {}, found {ingest_digest}",
            golden.ingest
        ));
    }
    if !problems.is_empty() {
        checks.push(StageCheck {
            stage: "ingest",
            status: StageStatus::Diverged,
            detail: problems.join("; "),
        });
        skip_gated(
            checks,
            "replay halted: the recorded stream no longer salvages as recorded",
        );
        return;
    }
    checks.push(StageCheck {
        stage: "ingest",
        status: StageStatus::Ok,
        detail: format!(
            "{} chunks salvaged as recorded, digest {ingest_digest}",
            log.chunks.len()
        ),
    });

    let replayed = run_instrumented_replayed(
        &trace.config,
        Arc::new(NullClock),
        trace.shards,
        stream,
        trace.fault_report.clone(),
        trace.records_collected,
    );
    let (study, store, analyses, telemetry, truth_digest) = match replayed {
        Ok(v) => v,
        Err(e) => {
            checks.push(StageCheck {
                stage: "world",
                status: StageStatus::Diverged,
                detail: format!("replayed pipeline failed to run: {e}"),
            });
            for &stage in &GATED_STAGES[1..] {
                skip(checks, stage, "replayed pipeline failed to run");
            }
            return;
        }
    };
    let found = match GoldenRun::from_artifacts(
        &trace.name,
        &golden.trace_id,
        &study,
        &store,
        &analyses,
        &telemetry,
        truth_digest,
    ) {
        Ok(g) => g,
        Err(e) => {
            checks.push(StageCheck {
                stage: "figures",
                status: StageStatus::Diverged,
                detail: format!("replayed experiments failed to run: {e}"),
            });
            return;
        }
    };

    compare(checks, "world", &golden.world, &found.world);
    compare(checks, "clean", &golden.clean, &found.clean);
    compare(checks, "store", &golden.store, &found.store);
    compare(checks, "run_report", &golden.run_report, &found.run_report);
    compare(checks, "run_obs", &golden.run_obs, &found.run_obs);
    compare(checks, "report", &golden.report, &found.report);
    compare_figures(checks, &golden.figures, &found.figures);
}

/// The `"stream"` path: salvage verdicts, then the pinned clean error.
fn replay_stream(
    trace: &RunTrace,
    golden: &GoldenRun,
    stream: &[u8],
    id: &str,
    checks: &mut Vec<StageCheck>,
) {
    let (delivered, ingest_report, log) = salvage_logged(stream);
    let ingest_digest = hex64(CdrDataset::new(trace.config.period, delivered).content_digest());
    let mut problems = Vec::new();
    if log != trace.salvage_log {
        problems.push(first_frame_difference(&log, &trace.salvage_log));
    }
    if ingest_report.records_accounted() != trace.records_collected as u64 {
        problems.push(format!(
            "salvage accounted {} records, trace recorded {} collected",
            ingest_report.records_accounted(),
            trace.records_collected
        ));
    }
    if ingest_digest != golden.ingest {
        problems.push(format!(
            "delivered dataset digest expected {}, found {ingest_digest}",
            golden.ingest
        ));
    }
    if problems.is_empty() {
        checks.push(StageCheck {
            stage: "ingest",
            status: StageStatus::Ok,
            detail: format!("{} chunks salvaged as recorded", log.chunks.len()),
        });
    } else {
        checks.push(StageCheck {
            stage: "ingest",
            status: StageStatus::Diverged,
            detail: problems.join("; "),
        });
    }

    // The clean stage must reproduce the pinned failure exactly.
    let outcome = Cleaner::new(trace.config.clean.clone())
        .for_run(id.to_string())
        .clean_stream(stream, trace.config.period);
    let found_err = match outcome {
        Err(e) => e.to_string(),
        Ok(_) => "(cleaned successfully)".to_string(),
    };
    let expected_err = trace.expected_error.as_deref().unwrap_or("");
    let found_digest = fnv1a64_hex(found_err.as_bytes());
    if found_err == expected_err && found_digest == golden.clean {
        checks.push(StageCheck {
            stage: "clean",
            status: StageStatus::Ok,
            detail: format!("pipeline failed with the pinned error, digest {found_digest}"),
        });
    } else {
        checks.push(StageCheck {
            stage: "clean",
            status: StageStatus::Diverged,
            detail: format!(
                "expected error digest {} (`{expected_err}`), found {found_digest} (`{found_err}`)",
                golden.clean
            ),
        });
    }

    for stage in ["store", "run_report", "run_obs", "report", "figures"] {
        skip(checks, stage, "not applicable to a stream-kind trace");
    }
}

/// The `"streamed"` path: rebuild out-of-core from the config alone
/// (no wire leg to replay), gate on the recorded chunk geometry, then
/// diff the truth/dirty/clean stream digests, the packed store layout
/// and the run ledger.
fn replay_streamed(trace: &RunTrace, golden: &GoldenRun, checks: &mut Vec<StageCheck>) {
    let recorded = match &trace.streamed {
        Some(s) => s,
        None => {
            checks.push(StageCheck {
                stage: "ingest",
                status: StageStatus::Diverged,
                detail: "streamed-kind trace carries no streamed section".into(),
            });
            skip_gated(checks, "trace carries no streamed section");
            return;
        }
    };
    let b = match build_streamed_with_clock(&trace.config, trace.shards, Arc::new(NullClock)) {
        Ok(b) => b,
        Err(e) => {
            checks.push(StageCheck {
                stage: "ingest",
                status: StageStatus::Diverged,
                detail: format!("streamed build failed to run: {e}"),
            });
            skip_gated(checks, "streamed build failed to run");
            return;
        }
    };

    // Stage: ingest — the chunk geometry (the streamed analogue of the
    // salvage log) plus the dirty-stream digest. This gates the rest:
    // a build that chunks differently invalidates every later digest.
    let mut problems = Vec::new();
    if (b.build.chunk_cars, b.build.segment_hours) != (recorded.chunk_cars, recorded.segment_hours)
    {
        problems.push(format!(
            "build resolved chunk_cars={} segment_hours={}, trace recorded {} and {}",
            b.build.chunk_cars, b.build.segment_hours, recorded.chunk_cars, recorded.segment_hours
        ));
    }
    if b.chunks != recorded.chunks {
        problems.push(first_chunk_difference(&b.chunks, &recorded.chunks));
    }
    let dirty = hex64(b.dirty_digest);
    if dirty != golden.ingest {
        problems.push(format!(
            "dirty stream digest expected {}, found {dirty}",
            golden.ingest
        ));
    }
    if !problems.is_empty() {
        checks.push(StageCheck {
            stage: "ingest",
            status: StageStatus::Diverged,
            detail: problems.join("; "),
        });
        skip_gated(checks, "replay halted: the build no longer chunks as recorded");
        return;
    }
    checks.push(StageCheck {
        stage: "ingest",
        status: StageStatus::Ok,
        detail: format!(
            "{} chunks rebuilt as recorded, dirty digest {dirty}",
            b.chunks.len()
        ),
    });

    let run_report_json = serde_json::to_string(&b.run_report).expect("run report serializes");
    compare(checks, "world", &golden.world, &hex64(b.truth_digest));
    compare(checks, "clean", &golden.clean, &hex64(b.clean_digest));
    compare(checks, "store", &golden.store, &hex64(store_digest(&b.store)));
    compare(
        checks,
        "run_report",
        &golden.run_report,
        &fnv1a64_hex(run_report_json.as_bytes()),
    );
    for stage in ["run_obs", "report", "figures"] {
        skip(checks, stage, "not applicable to a streamed-kind trace");
    }
}

fn first_chunk_difference(
    found: &[conncar::ChunkSpan],
    recorded: &[conncar::ChunkSpan],
) -> String {
    found
        .iter()
        .zip(recorded.iter())
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| {
            format!(
                "chunk {i} built cars [{}, {}) with {} truth / {} clean rows, trace recorded \
                 cars [{}, {}) with {} truth / {} clean",
                a.car_lo,
                a.car_hi,
                a.truth_rows,
                a.clean_rows,
                b.car_lo,
                b.car_hi,
                b.truth_rows,
                b.clean_rows
            )
        })
        .unwrap_or_else(|| {
            format!(
                "build produced {} chunks, trace recorded {}",
                found.len(),
                recorded.len()
            )
        })
}

fn compare(checks: &mut Vec<StageCheck>, stage: &'static str, expected: &str, found: &str) {
    if expected == found {
        checks.push(StageCheck {
            stage,
            status: StageStatus::Ok,
            detail: format!("digest {found}"),
        });
    } else {
        checks.push(StageCheck {
            stage,
            status: StageStatus::Diverged,
            detail: format!("expected {expected}, found {found}"),
        });
    }
}

fn compare_figures(
    checks: &mut Vec<StageCheck>,
    expected: &[crate::golden::FigureDigest],
    found: &[crate::golden::FigureDigest],
) {
    if expected == found {
        checks.push(StageCheck {
            stage: "figures",
            status: StageStatus::Ok,
            detail: format!("{} artifacts match", found.len()),
        });
        return;
    }
    let detail = expected
        .iter()
        .zip(found.iter())
        .find(|(e, f)| e != f)
        .map(|(e, f)| {
            format!(
                "first differing artifact `{}`: expected {}, found {} (as `{}`)",
                e.id, e.digest, f.digest, f.id
            )
        })
        .unwrap_or_else(|| {
            format!(
                "artifact count changed: expected {}, found {}",
                expected.len(),
                found.len()
            )
        });
    checks.push(StageCheck {
        stage: "figures",
        status: StageStatus::Diverged,
        detail,
    });
}

fn first_frame_difference(
    found: &conncar_cdr::SalvageLog,
    recorded: &conncar_cdr::SalvageLog,
) -> String {
    found
        .chunks
        .iter()
        .zip(recorded.chunks.iter())
        .enumerate()
        .find(|(_, (a, b))| a != b)
        .map(|(i, (a, b))| {
            format!(
                "chunk {i} at offset {} salvaged `{}` ({} records), trace recorded `{}` \
                 ({} records at offset {})",
                a.offset, a.verdict, a.records, b.verdict, b.records, b.offset
            )
        })
        .unwrap_or_else(|| {
            format!(
                "salvage framed {} chunks, trace recorded {}",
                found.chunks.len(),
                recorded.chunks.len()
            )
        })
}

fn skip(checks: &mut Vec<StageCheck>, stage: &'static str, why: &str) {
    checks.push(StageCheck {
        stage,
        status: StageStatus::Skipped,
        detail: why.to_string(),
    });
}

fn skip_gated(checks: &mut Vec<StageCheck>, why: &str) {
    for stage in GATED_STAGES {
        skip(checks, stage, why);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unparseable_trace_is_a_trace_stage_divergence() {
        let report = verify_and_replay("broken", "{not json", "{}");
        let first = report.first_divergence().expect("must diverge");
        assert_eq!(first.stage, "trace");
        assert!(first.detail.contains("does not parse"), "{}", first.detail);
        assert!(report.render().contains("DIVERGED at stage `trace`"));
    }

    #[test]
    fn render_lists_every_stage_with_its_status() {
        let report = ReplayReport {
            name: "sample".into(),
            checks: vec![
                StageCheck {
                    stage: "trace",
                    status: StageStatus::Ok,
                    detail: "verified".into(),
                },
                StageCheck {
                    stage: "ingest",
                    status: StageStatus::Diverged,
                    detail: "expected a, found b".into(),
                },
                StageCheck {
                    stage: "world",
                    status: StageStatus::Skipped,
                    detail: "gated".into(),
                },
            ],
        };
        assert!(!report.is_clean());
        assert_eq!(report.first_divergence().unwrap().stage, "ingest");
        let text = report.render();
        assert!(text.contains("DIVERGED at stage `ingest`"), "{text}");
        assert!(text.contains("[ok      ] trace"), "{text}");
        assert!(text.contains("[DIVERGED] ingest"), "{text}");
        assert!(text.contains("[skipped ] world"), "{text}");
    }
}

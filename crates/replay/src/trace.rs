//! The trace format: everything a run needs to be replayed, versioned
//! and checksummed.
//!
//! A trace file is a JSON envelope:
//!
//! ```json
//! {
//!   "schema": "conncar.trace.v1",
//!   "crc32": "9ae0daaf",
//!   "body": { ... the RunTrace ... }
//! }
//! ```
//!
//! The `crc32` is CRC-32/IEEE over the *canonical* serialization of the
//! body — the bytes `serde_json::to_string` produces for the parsed
//! [`RunTrace`], with its fixed field order. Verifying against the
//! canonical form (rather than the raw file substring) means harmless
//! whitespace reformatting keeps validating while any change to a
//! recorded *value* is caught, whether it came from disk corruption or
//! a hand edit. The recorded byte stream carries its own second CRC
//! ([`RunTrace::stream_crc32`]) so stream damage is distinguishable
//! from envelope damage.
//!
//! ## What a trace captures — and what it doesn't
//!
//! Captured: the resolved [`StudyConfig`] (including the root seed —
//! the only RNG seed in the system; every stage derives from it), the
//! pinned shard count, the damaged byte stream exactly as salvage read
//! it, the fault schedule as applied ([`RealizedFaults`]), the
//! per-chunk salvage verdicts ([`SalvageLog`]), and the collected
//! record count the run ledger was assembled with.
//!
//! Not captured: the world (region, fleet, ground truth) — it is a pure
//! function of the config and is regenerated at replay, which is
//! exactly what makes generator drift *detectable* as a `world` stage
//! divergence; wall-clock readings (replay runs under a null clock);
//! and anything derived (datasets, reports, figures), which the golden
//! digests fingerprint instead.

use crate::b64;
use conncar::study::StudyConfig;
use conncar_cdr::{crc32, FaultReport, RealizedFaults, SalvageLog};
use conncar_types::{Error, Result};
use serde::{Deserialize, Serialize};

/// Schema tag every trace envelope must carry.
pub const TRACE_SCHEMA: &str = "conncar.trace.v1";

/// One recorded run, ready to be replayed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunTrace {
    /// `"study"` (full pipeline), `"stream"` (a raw byte stream fed
    /// straight to the stream cleaner, e.g. a total-loss fixture), or
    /// `"streamed"` (an out-of-core chunked build — see
    /// [`conncar::build_streamed`]).
    pub kind: String,
    /// Fixture name (matches the golden file and the corpus recipe).
    pub name: String,
    /// The resolved configuration, seed included.
    pub config: StudyConfig,
    /// Pinned store shard count.
    pub shards: usize,
    /// Records entering the wire leg (the run ledger's collected count).
    pub records_collected: usize,
    /// The injector's tally, exactly as recorded.
    pub fault_report: FaultReport,
    /// The fault schedule as applied, record by record, frame by frame.
    pub realized: RealizedFaults,
    /// Per-chunk salvage verdicts over the damaged stream.
    pub salvage_log: SalvageLog,
    /// The damaged byte stream, base64-encoded.
    pub stream_b64: String,
    /// CRC-32/IEEE of the decoded stream, 8 lowercase hex digits.
    pub stream_crc32: String,
    /// For `"stream"`-kind traces: the exact error the clean pipeline
    /// must reproduce.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub expected_error: Option<String>,
    /// For `"streamed"`-kind traces: the chunking geometry of the
    /// out-of-core build, so a replay re-chunks identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub streamed: Option<StreamedTrace>,
}

/// The chunk geometry a `"streamed"`-kind run was recorded with: the
/// resolved build parameters plus every chunk's span and row counts.
/// Replay rebuilds out-of-core from the config alone and diffs against
/// these, so a drifted chunk boundary is named chunk-by-chunk instead
/// of surfacing later as an opaque digest mismatch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamedTrace {
    /// Cars per chunk, as resolved at record time (config's
    /// `build.chunk_cars`, or the default).
    pub chunk_cars: u32,
    /// Store segment length in hours, as resolved at record time.
    pub segment_hours: u32,
    /// Per-chunk spans in build order.
    pub chunks: Vec<conncar::ChunkSpan>,
}

#[derive(Serialize, Deserialize)]
struct Envelope {
    schema: String,
    crc32: String,
    body: RunTrace,
}

impl RunTrace {
    /// Decode and integrity-check the recorded byte stream.
    pub fn stream(&self) -> Result<Vec<u8>> {
        let stream = b64::decode(&self.stream_b64)?;
        let crc = format!("{:08x}", crc32(&stream));
        if crc != self.stream_crc32 {
            return Err(Error::Decode {
                offset: None,
                why: format!(
                    "trace stream checksum mismatch: recorded {}, computed {crc}",
                    self.stream_crc32
                ),
            });
        }
        Ok(stream)
    }

    /// The run's trace identity, recomputed from the trace's own
    /// contents (seed, shard count, stream bytes).
    pub fn trace_id(&self) -> Result<String> {
        let stream = self.stream()?;
        Ok(conncar::telemetry::trace_id(
            self.config.seed,
            self.shards,
            &stream,
        ))
    }

    /// Serialize into the checksummed envelope (the `trace.json` bytes).
    pub fn to_envelope_json(&self) -> String {
        let body = serde_json::to_string(self).expect("trace body serializes");
        let crc = format!("{:08x}", crc32(body.as_bytes()));
        format!("{{\"schema\":\"{TRACE_SCHEMA}\",\"crc32\":\"{crc}\",\"body\":{body}}}\n")
    }

    /// Parse and verify a trace envelope: schema tag, then the body
    /// CRC against the canonical re-serialization.
    pub fn from_envelope_json(json: &str) -> Result<RunTrace> {
        let env: Envelope = serde_json::from_str(json).map_err(|e| Error::Decode {
            offset: None,
            why: format!("trace envelope does not parse: {e}"),
        })?;
        if env.schema != TRACE_SCHEMA {
            return Err(Error::Decode {
                offset: None,
                why: format!(
                    "unsupported trace schema `{}` (this build reads `{TRACE_SCHEMA}`)",
                    env.schema
                ),
            });
        }
        let canonical = serde_json::to_string(&env.body).expect("trace body serializes");
        let crc = format!("{:08x}", crc32(canonical.as_bytes()));
        if crc != env.crc32 {
            return Err(Error::Decode {
                offset: None,
                why: format!(
                    "trace body checksum mismatch: envelope says {}, body hashes to {crc} \
                     — the trace was edited or corrupted",
                    env.crc32
                ),
            });
        }
        Ok(env.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunTrace {
        let stream = vec![7u8, 13, 42, 99, 0, 255];
        RunTrace {
            kind: "study".into(),
            name: "fixture_alpha".into(),
            config: StudyConfig::tiny(),
            shards: 2,
            records_collected: 17,
            fault_report: FaultReport::default(),
            realized: RealizedFaults::default(),
            salvage_log: SalvageLog::default(),
            stream_b64: b64::encode(&stream),
            stream_crc32: format!("{:08x}", crc32(&stream)),
            expected_error: None,
            streamed: None,
        }
    }

    #[test]
    fn absent_streamed_section_stays_off_the_wire() {
        // The 9 pre-streaming fixtures must keep parsing and hashing
        // byte-for-byte: a `None` streamed section may not serialize.
        let json = sample().to_envelope_json();
        assert!(!json.contains("streamed"), "{json}");
        let t = RunTrace::from_envelope_json(&json).unwrap();
        assert!(t.streamed.is_none());
    }

    #[test]
    fn streamed_section_round_trips() {
        let mut t = sample();
        t.kind = "streamed".into();
        t.streamed = Some(StreamedTrace {
            chunk_cars: 32,
            segment_hours: 6,
            chunks: vec![conncar::ChunkSpan {
                car_lo: 0,
                car_hi: 32,
                truth_rows: 100,
                clean_rows: 97,
            }],
        });
        let back = RunTrace::from_envelope_json(&t.to_envelope_json()).unwrap();
        assert_eq!(back.streamed, t.streamed);
    }

    #[test]
    fn envelope_round_trips() {
        let t = sample();
        let json = t.to_envelope_json();
        assert!(json.starts_with("{\"schema\":\"conncar.trace.v1\",\"crc32\":\""));
        let back = RunTrace::from_envelope_json(&json).unwrap();
        // StudyConfig carries floats and no PartialEq; canonical
        // serialization equality is the round-trip check.
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&t).unwrap()
        );
        assert_eq!(back.stream().unwrap(), vec![7u8, 13, 42, 99, 0, 255]);
        assert_eq!(back.trace_id().unwrap().len(), 16);
    }

    #[test]
    fn edited_body_fails_the_envelope_checksum() {
        let json = sample().to_envelope_json();
        let tampered = json.replace("fixture_alpha", "fixture_omega");
        assert_ne!(tampered, json, "tamper target must exist");
        let err = RunTrace::from_envelope_json(&tampered).unwrap_err();
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = sample()
            .to_envelope_json()
            .replace("conncar.trace.v1", "conncar.trace.v9");
        let err = RunTrace::from_envelope_json(&json).unwrap_err();
        assert!(err.to_string().contains("unsupported trace schema"), "{err}");
    }

    #[test]
    fn damaged_stream_is_distinguished_from_envelope_damage() {
        let mut t = sample();
        // Re-encode a stream that no longer matches its recorded CRC.
        t.stream_b64 = b64::encode(&[7u8, 13, 42, 99, 0, 254]);
        // The envelope itself is written fresh, so it validates…
        let back = RunTrace::from_envelope_json(&t.to_envelope_json()).unwrap();
        // …but the stream check names the stream.
        let err = back.stream().unwrap_err();
        assert!(err.to_string().contains("stream checksum mismatch"), "{err}");
    }
}

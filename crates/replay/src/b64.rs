//! Hand-rolled standard base64 (RFC 4648 alphabet, `=` padding).
//!
//! A trace embeds the recorded byte stream inside JSON, which cannot
//! carry raw bytes. The workspace deliberately has no encoding
//! dependency, and base64 is forty lines, so it lives here — specified
//! behavior, round-trip tested against the RFC's own vectors.

use conncar_types::{Error, Result};

const ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard padded base64.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity((data.len() + 2) / 3 * 4);
    for chunk in data.chunks(3) {
        let b0 = u32::from(chunk[0]);
        let b1 = u32::from(chunk.get(1).copied().unwrap_or(0));
        let b2 = u32::from(chunk.get(2).copied().unwrap_or(0));
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 63] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard padded base64. Rejects bad lengths, bytes outside
/// the alphabet, and padding anywhere but the tail.
pub fn decode(s: &str) -> Result<Vec<u8>> {
    let bytes = s.as_bytes();
    if bytes.len() % 4 != 0 {
        return Err(Error::Decode {
            offset: None,
            why: format!("base64 length {} is not a multiple of 4", bytes.len()),
        });
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    let mut acc: u32 = 0;
    let mut groups = 0u8;
    let mut pad = 0u8;
    for (i, &c) in bytes.iter().enumerate() {
        if c == b'=' {
            pad += 1;
            continue;
        }
        if pad > 0 {
            return Err(Error::Decode {
                offset: Some(i as u64),
                why: "base64 data after padding".into(),
            });
        }
        let v = sextet(c).ok_or_else(|| Error::Decode {
            offset: Some(i as u64),
            why: format!("byte {c:#04x} is not base64"),
        })?;
        acc = (acc << 6) | u32::from(v);
        groups += 1;
        if groups == 4 {
            out.push((acc >> 16) as u8);
            out.push((acc >> 8) as u8);
            out.push(acc as u8);
            acc = 0;
            groups = 0;
        }
    }
    match (groups, pad) {
        (0, 0) => {}
        (3, 1) => {
            acc <<= 6;
            out.push((acc >> 16) as u8);
            out.push((acc >> 8) as u8);
        }
        (2, 2) => {
            acc <<= 12;
            out.push((acc >> 16) as u8);
        }
        _ => {
            return Err(Error::Decode {
                offset: None,
                why: format!("invalid base64 padding ({pad} `=` after {groups} sextets)"),
            });
        }
    }
    Ok(out)
}

fn sextet(c: u8) -> Option<u8> {
    match c {
        b'A'..=b'Z' => Some(c - b'A'),
        b'a'..=b'z' => Some(c - b'a' + 26),
        b'0'..=b'9' => Some(c - b'0' + 52),
        b'+' => Some(62),
        b'/' => Some(63),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        // RFC 4648 §10 test vectors, both directions.
        for (plain, enc) in [
            (&b""[..], ""),
            (&b"f"[..], "Zg=="),
            (&b"fo"[..], "Zm8="),
            (&b"foo"[..], "Zm9v"),
            (&b"foob"[..], "Zm9vYg=="),
            (&b"fooba"[..], "Zm9vYmE="),
            (&b"foobar"[..], "Zm9vYmFy"),
        ] {
            assert_eq!(encode(plain), enc);
            assert_eq!(decode(enc).unwrap(), plain);
        }
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        // And every tail length mod 3.
        for cut in [254, 255, 256] {
            assert_eq!(decode(&encode(&data[..cut])).unwrap(), &data[..cut]);
        }
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(decode("Zg=").is_err(), "bad length");
        assert!(decode("Z!==").is_err(), "byte outside the alphabet");
        assert!(decode("Zg==Zg==").is_err(), "data after padding");
        assert!(decode("Z===").is_err(), "over-padded group");
    }
}

//! The golden-trace corpus: deterministic recipes, one per fixture.
//!
//! Each recipe pins a name, a fully-resolved config, and a shard count.
//! Because every recipe is a pure function (no ambient state, no
//! machine dependence), the corpus is *self-describing*: the
//! `regen_golden` example materializes `tests/golden/<name>/` from the
//! recipes, CI regenerates and replays them, and a checked-in fixture
//! that no longer matches its recipe is itself a divergence.
//!
//! Coverage: every class in the fault taxonomy — duplicates, nested
//! overlaps, modem clock skew, chunk reorder, chunk corruption, tail
//! truncation, loss days, and total-loss salvage failure — across
//! shard counts 1, 2 and 7 (the same counts the store-equivalence
//! tests pin), plus one kitchen-sink run with everything enabled and
//! one out-of-core streamed build whose trace pins its chunk
//! boundaries.

use crate::record::{record_streamed, record_study, record_total_loss, Recording};
use conncar::study::{BuildConfig, StudyConfig};
use conncar_types::Result;

/// How a recipe's run is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecipeKind {
    /// Full pipeline (`"study"`-kind trace).
    Study,
    /// Deterministic fully-corrupt stream (`"stream"`-kind trace).
    TotalLoss,
    /// Out-of-core chunked build (`"streamed"`-kind trace).
    Streamed,
}

/// One corpus fixture: a name and the deterministic run behind it.
#[derive(Debug, Clone, Copy)]
pub struct Recipe {
    /// Fixture name; also the `tests/golden/<name>/` directory.
    pub name: &'static str,
    /// Pinned store shard count.
    pub shards: usize,
    /// Study or stream fixture.
    pub kind: RecipeKind,
}

impl Recipe {
    /// The recipe's fully-resolved configuration.
    pub fn config(&self) -> StudyConfig {
        let mut cfg = base(seed_for(self.name));
        match self.name {
            "duplicates_s1" => cfg.faults.duplicate_p = 0.05,
            "overlaps_s2" => cfg.faults.overlap_p = 0.03,
            "clock_skew_s7" => {
                cfg.faults.skew_car_p = 0.2;
                cfg.faults.skew_record_p = 0.5;
            }
            "reorder_s2" => {
                cfg.faults.reorder_chunk_p = 0.3;
                cfg.faults.chunk_records = 64;
            }
            "corruption_s1" => {
                cfg.faults.corrupt_chunk_p = 0.2;
                cfg.faults.chunk_records = 64;
            }
            "truncation_s7" => {
                cfg.faults.truncate_tail_p = 1.0;
                cfg.faults.chunk_records = 64;
            }
            "loss_days_s2" => {
                cfg.faults.loss_days = vec![2, 5];
                cfg.faults.loss_fraction = 0.5;
            }
            "kitchen_sink_s7" => {
                cfg.faults.duplicate_p = 0.02;
                cfg.faults.overlap_p = 0.01;
                cfg.faults.skew_car_p = 0.1;
                cfg.faults.skew_record_p = 0.3;
                cfg.faults.reorder_chunk_p = 0.2;
                cfg.faults.corrupt_chunk_p = 0.15;
                cfg.faults.truncate_tail_p = 1.0;
                cfg.faults.chunk_records = 64;
                cfg.clean.resolve_overlaps = true;
            }
            "total_loss_s1" => {}
            "streamed_s2" => {
                // Record-level faults only: wire classes are rejected by
                // the streamed path. 80 cars / 32 per chunk = 3 uneven
                // chunks, so the trace pins a nontrivial geometry.
                cfg.faults.skew_car_p = 0.2;
                cfg.faults.skew_record_p = 0.5;
                cfg.faults.loss_days = vec![3];
                cfg.faults.loss_fraction = 0.4;
                cfg.build = Some(BuildConfig {
                    chunk_cars: 32,
                    segment_hours: 6,
                });
            }
            other => unreachable!("recipe `{other}` has no config arm"),
        }
        cfg
    }

    /// Record this recipe's run.
    pub fn record(&self) -> Result<Recording> {
        match self.kind {
            RecipeKind::Study => record_study(self.name, &self.config(), self.shards),
            RecipeKind::TotalLoss => record_total_loss(self.name, &self.config(), self.shards),
            RecipeKind::Streamed => record_streamed(self.name, &self.config(), self.shards),
        }
    }
}

/// The whole corpus, in fixture order.
pub fn corpus() -> Vec<Recipe> {
    vec![
        study("duplicates_s1", 1),
        study("overlaps_s2", 2),
        study("clock_skew_s7", 7),
        study("reorder_s2", 2),
        study("corruption_s1", 1),
        study("truncation_s7", 7),
        study("loss_days_s2", 2),
        study("kitchen_sink_s7", 7),
        Recipe {
            name: "total_loss_s1",
            shards: 1,
            kind: RecipeKind::TotalLoss,
        },
        Recipe {
            name: "streamed_s2",
            shards: 2,
            kind: RecipeKind::Streamed,
        },
    ]
}

fn study(name: &'static str, shards: usize) -> Recipe {
    Recipe {
        name,
        shards,
        kind: RecipeKind::Study,
    }
}

/// Corpus-scale base config: the tiny study shrunk to 80 cars so ten
/// fixtures record in seconds, with a per-fixture seed derived from the
/// name (stable across reorderings of the corpus list).
fn base(seed: u64) -> StudyConfig {
    let mut cfg = StudyConfig::tiny();
    cfg.seed = seed;
    cfg.fleet.cars = 80;
    cfg
}

fn seed_for(name: &str) -> u64 {
    conncar_types::fnv1a64(name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_the_taxonomy_and_shard_counts() {
        let recipes = corpus();
        assert_eq!(recipes.len(), 10);
        assert!(recipes.iter().any(|r| r.kind == RecipeKind::Streamed));
        // Names unique, configs valid, every pinned shard count present.
        let mut names: Vec<&str> = recipes.iter().map(|r| r.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), recipes.len());
        for shards in [1, 2, 7] {
            assert!(recipes.iter().any(|r| r.shards == shards), "{shards}");
        }
        for r in &recipes {
            r.config().validate().expect(r.name);
        }
        // Seeds differ per fixture.
        assert_ne!(
            recipes[0].config().seed,
            recipes[1].config().seed
        );
    }
}

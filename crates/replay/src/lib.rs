//! # conncar-replay
//!
//! Deterministic record/replay for the `conncar` pipeline.
//!
//! Every instrumented run can be **recorded**: its resolved config,
//! root seed, pinned shard count, the damaged byte stream exactly as
//! salvage read it, the fault schedule as applied, and the per-chunk
//! salvage verdicts all land in a versioned, checksummed trace
//! ([`RunTrace`], `trace.json`). Alongside it, a golden file
//! ([`GoldenRun`], `golden.json`) fingerprints everything the run
//! produced, one FNV-1a 64 digest per pipeline stage.
//!
//! **Replay** ([`replay_run`]) reconstructs the run from the trace
//! alone — the world regenerates from the config (a pure function of
//! the seed), the recorded stream replaces the fault/encode leg — and
//! diffs each stage's digest against the golden file. A divergence
//! names the first pipeline stage whose output moved: `world` for
//! generator drift, `ingest` for salvage changes, `clean` for cleaning
//! changes, and so on through `store`, `run_report`, `run_obs`,
//! `report` and `figures`.
//!
//! The golden-trace corpus under `tests/golden/` is generated from the
//! deterministic recipes in [`corpus`] (see the `regen_golden`
//! example); the `conncar` binary's `record`/`replay` subcommands and
//! the CI replay gate are thin wrappers over this crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod b64;
pub mod corpus;
pub mod golden;
pub mod record;
pub mod replay;
pub mod trace;

pub use corpus::{corpus, Recipe, RecipeKind};
pub use golden::{store_digest, FigureDigest, GoldenRun, GOLDEN_SCHEMA, NOT_APPLICABLE};
pub use record::{record_streamed, record_study, record_total_loss, Recording};
pub use replay::{replay_run, verify_and_replay, ReplayReport, StageCheck, StageStatus};
pub use trace::{RunTrace, StreamedTrace, TRACE_SCHEMA};

//! Golden digests: the fingerprint of everything a recorded run
//! produced, one digest per pipeline stage.
//!
//! A golden file is small (digests, not artifacts) but pins the run
//! completely: ground truth, salvaged dataset, cleaned dataset, store
//! layout, run ledger, `RUN_OBS.json` bytes, the rendered report, and
//! every figure. Replay recomputes the same digests and diffs field by
//! field, so a divergence names the first pipeline stage whose output
//! moved. Digests are FNV-1a 64 ([`conncar_types::digest`]) — specified
//! and toolchain-stable, so a fixture written today still validates
//! under any future compiler.

use conncar::analyses::StudyAnalyses;
use conncar::experiments;
use conncar::report::render_full_report;
use conncar::study::StudyData;
use conncar_obs::RunTelemetry;
use conncar_store::CdrStore;
use conncar_types::{fnv1a64_hex, Error, Fnv64, Result};
use serde::{Deserialize, Serialize};

/// Schema tag every golden file must carry.
pub const GOLDEN_SCHEMA: &str = "conncar.golden.v1";

/// Digest placeholder for stages a fixture kind never runs (e.g. the
/// store stage of a total-loss stream fixture).
pub const NOT_APPLICABLE: &str = "-";

/// Per-stage digests of one recorded run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GoldenRun {
    /// Must equal [`GOLDEN_SCHEMA`].
    pub schema: String,
    /// Fixture name (matches the trace).
    pub name: String,
    /// The run's trace identity; must match what the trace recomputes.
    pub trace_id: String,
    /// Content digest of the regenerated ground truth.
    pub world: String,
    /// Content digest of the salvaged (delivered) dataset.
    pub ingest: String,
    /// Content digest of the cleaned dataset — or, for a
    /// `"stream"`-kind fixture, the digest of the exact error message
    /// the clean pipeline must produce.
    pub clean: String,
    /// Digest of the store layout: shard count, per-shard row counts,
    /// and every stored record in shard order.
    pub store: String,
    /// Digest of the run ledger's JSON serialization.
    pub run_report: String,
    /// Digest of the `RUN_OBS.json` bytes (null clock).
    pub run_obs: String,
    /// Digest of the full rendered text report.
    pub report: String,
    /// One digest per experiment artifact (figures and tables).
    pub figures: Vec<FigureDigest>,
}

/// Digest of one experiment's rendered text.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FigureDigest {
    /// Experiment id (`fig1` … `tab3`).
    pub id: String,
    /// FNV-1a 64 of the rendered text, 16 hex digits.
    pub digest: String,
}

impl GoldenRun {
    /// Fingerprint a completed study run's artifacts.
    pub fn from_artifacts(
        name: &str,
        trace_id: &str,
        study: &StudyData,
        store: &CdrStore,
        analyses: &StudyAnalyses,
        telemetry: &RunTelemetry,
        truth_digest: u64,
    ) -> Result<GoldenRun> {
        let run_report_json =
            serde_json::to_string(&study.run_report).expect("run report serializes");
        let figures = experiments::run_all(study, analyses)?
            .iter()
            .map(|o| FigureDigest {
                id: o.experiment.id().to_string(),
                digest: fnv1a64_hex(o.text.as_bytes()),
            })
            .collect();
        Ok(GoldenRun {
            schema: GOLDEN_SCHEMA.into(),
            name: name.into(),
            trace_id: trace_id.into(),
            world: hex64(truth_digest),
            ingest: hex64(study.dirty.content_digest()),
            clean: hex64(study.clean.content_digest()),
            store: hex64(store_digest(store)),
            run_report: fnv1a64_hex(run_report_json.as_bytes()),
            run_obs: fnv1a64_hex(telemetry.to_json().as_bytes()),
            report: fnv1a64_hex(render_full_report(analyses).as_bytes()),
            figures,
        })
    }

    /// Serialize (the `golden.json` bytes).
    pub fn to_json(&self) -> String {
        let mut out = serde_json::to_string_pretty(self).expect("golden serializes");
        out.push('\n');
        out
    }

    /// Parse and schema-check a golden file.
    pub fn from_json(json: &str) -> Result<GoldenRun> {
        let g: GoldenRun = serde_json::from_str(json).map_err(|e| Error::Decode {
            offset: None,
            why: format!("golden file does not parse: {e}"),
        })?;
        if g.schema != GOLDEN_SCHEMA {
            return Err(Error::Decode {
                offset: None,
                why: format!(
                    "unsupported golden schema `{}` (this build reads `{GOLDEN_SCHEMA}`)",
                    g.schema
                ),
            });
        }
        Ok(g)
    }
}

/// A `u64` digest rendered the way golden files store it.
pub fn hex64(v: u64) -> String {
    format!("{v:016x}")
}

/// Digest the store's physical layout: shard count, per-shard row
/// counts, and every stored record field in shard order. Shard count is
/// part of the digest on purpose — a recorded run pins it, and a replay
/// onto a different layout must read as a `store` divergence.
pub fn store_digest(store: &CdrStore) -> u64 {
    let mut h = Fnv64::new();
    h.update_u64(store.shard_count() as u64);
    for shard in store.shards() {
        h.update_u64(shard.len() as u64);
        for row in 0..shard.len() {
            let r = shard.record(row);
            h.update_u64(u64::from(r.car.0));
            h.update_u64(u64::from(r.cell.station.0));
            h.update_u64(u64::from(r.cell.sector));
            h.update_u64(r.cell.carrier.index() as u64);
            h.update_u64(r.start.as_secs());
            h.update_u64(r.end.as_secs());
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> GoldenRun {
        GoldenRun {
            schema: GOLDEN_SCHEMA.into(),
            name: "fixture_alpha".into(),
            trace_id: "00c0ffee00c0ffee".into(),
            world: hex64(1),
            ingest: hex64(2),
            clean: hex64(3),
            store: hex64(4),
            run_report: hex64(5),
            run_obs: hex64(6),
            report: hex64(7),
            figures: vec![FigureDigest {
                id: "fig1".into(),
                digest: hex64(8),
            }],
        }
    }

    #[test]
    fn golden_round_trips() {
        let g = sample();
        let back = GoldenRun::from_json(&g.to_json()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let json = sample().to_json().replace(GOLDEN_SCHEMA, "conncar.golden.v9");
        let err = GoldenRun::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("unsupported golden schema"), "{err}");
    }

    #[test]
    fn store_digest_tracks_layout() {
        use conncar_cdr::CdrDataset;
        use conncar_types::{DayOfWeek, StudyPeriod};
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
        let ds = CdrDataset::new(period, Vec::new());
        let one = CdrStore::build(&ds, 1);
        let two = CdrStore::build(&ds, 2);
        // Same (empty) content, different layout: the digest must see it.
        assert_ne!(store_digest(&one), store_digest(&two));
        assert_eq!(store_digest(&one), store_digest(&CdrStore::build(&ds, 1)));
    }
}

//! Property tests for the live-metrics substrate: histogram bucket
//! placement, merge algebra, quantile monotonicity, and the
//! `sum_prefix` range-scan fast path agreeing with the linear filter.

use conncar_obs::live::{bucket_index, bucket_upper_bound, HISTOGRAM_BUCKETS};
use conncar_obs::{CounterRegistry, HistogramSnapshot, LiveHistogram};
use proptest::prelude::*;

/// Build a snapshot by recording every value through the atomic path,
/// so the properties cover `LiveHistogram::record` too, not just the
/// snapshot arithmetic.
fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = LiveHistogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every value lands in the bucket whose half-open range holds it:
    /// bucket 0 is exactly {0}, bucket i (i >= 1) is [2^(i-1), 2^i).
    #[test]
    fn bucket_placement_brackets_the_value(value in any::<u64>()) {
        let i = bucket_index(value);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        if value == 0 {
            prop_assert_eq!(i, 0);
        } else {
            let lower = 1u64 << (i - 1);
            prop_assert!(value >= lower, "{value} below bucket {i} lower bound {lower}");
            prop_assert!(
                value <= bucket_upper_bound(i),
                "{value} above bucket {i} upper bound"
            );
            if i + 1 < HISTOGRAM_BUCKETS {
                prop_assert!(value <= bucket_upper_bound(i), "must not spill upward");
                prop_assert!(value > bucket_upper_bound(i - 1), "must not fit lower");
            }
        }
    }

    /// Bucket upper bounds strictly increase, so quantile extraction
    /// walking buckets left to right reads off a non-decreasing value.
    #[test]
    fn bucket_bounds_are_strictly_increasing(i in 0usize..HISTOGRAM_BUCKETS - 1) {
        prop_assert!(bucket_upper_bound(i) < bucket_upper_bound(i + 1));
    }

    /// Merging is commutative and associative, and the empty snapshot
    /// is its identity — the contract that lets per-shard histograms
    /// fold in any order.
    #[test]
    fn merge_is_commutative_associative_with_identity(
        a in proptest::collection::vec(any::<u64>(), 0..24),
        b in proptest::collection::vec(any::<u64>(), 0..24),
        c in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));

        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba, "merge must commute");

        let mut ab_c = ab;
        ab_c.merge(&sc);
        let mut bc = sb;
        bc.merge(&sc);
        let mut a_bc = sa;
        a_bc.merge(&bc);
        prop_assert_eq!(ab_c, a_bc, "merge must associate");

        let mut with_id = sa;
        with_id.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(with_id, sa, "empty must be the merge identity");
    }

    /// The merged snapshot sees exactly the concatenated recordings.
    #[test]
    fn merge_equals_recording_the_concatenation(
        a in proptest::collection::vec(0u64..(1u64 << 40), 0..24),
        b in proptest::collection::vec(0u64..(1u64 << 40), 0..24),
    ) {
        // Bounded values so `sum` cannot saturate and hide a miscount.
        let mut merged = snap_of(&a);
        merged.merge(&snap_of(&b));
        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged, snap_of(&concat));
    }

    /// Quantiles are monotone in the quantile, bounded by the recorded
    /// max, and never undershoot the true quantile of the recordings
    /// (each bucket reports its inclusive upper bound).
    #[test]
    fn quantiles_are_monotone_and_bracket_the_data(
        values in proptest::collection::vec(any::<u64>(), 1..48),
        q_lo in 0u32..=1000,
        q_hi in 0u32..=1000,
    ) {
        let (q_lo, q_hi) = (q_lo.min(q_hi), q_lo.max(q_hi));
        let snap = snap_of(&values);
        let lo = snap.quantile_permille(q_lo);
        let hi = snap.quantile_permille(q_hi);
        prop_assert!(lo <= hi, "quantile must be monotone: q{q_lo}={lo} q{q_hi}={hi}");
        let max = values.iter().copied().max().unwrap_or(0);
        prop_assert!(hi <= max, "quantile is clamped to the recorded max");
        prop_assert_eq!(snap.quantile_permille(1000), max, "q1000 is the max");

        // Upper-bound property: the estimate at q covers at least
        // ceil(count*q/1000) of the recorded values.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as u64 * u64::from(q_hi) + 999) / 1000)
            .clamp(1, sorted.len() as u64);
        let true_q = sorted[rank as usize - 1];
        prop_assert!(
            hi >= true_q,
            "estimate {hi} undershoots true q{q_hi} {true_q}"
        );
    }

    /// The sorted-range `sum_prefix` fast path agrees with the naive
    /// linear filter for every registry and prefix — including prefixes
    /// that are themselves keys, share partial keys, or match nothing.
    #[test]
    fn sum_prefix_equals_linear_filter(
        entries in proptest::collection::vec(
            (proptest::collection::vec(0u8..4, 1..5), 0u64..1000),
            0..32,
        ),
        prefix_raw in proptest::collection::vec(0u8..4, 0..4),
    ) {
        // Small alphabet ("a".."d" segments) forces prefix collisions.
        let seg = |digits: &[u8]| {
            digits
                .iter()
                .map(|d| char::from(b'a' + d))
                .collect::<String>()
        };
        let mut reg = CounterRegistry::new();
        for (digits, n) in &entries {
            reg.add(&format!("ns.{}", seg(digits)), *n);
        }
        let prefix = format!("ns.{}", seg(&prefix_raw));
        let naive: u64 = reg
            .iter()
            .filter(|(k, _)| k.starts_with(prefix.as_str()))
            .map(|(_, v)| v)
            .sum();
        prop_assert_eq!(reg.sum_prefix(&prefix), naive);
        // The empty prefix sums everything.
        let all: u64 = reg.iter().map(|(_, v)| v).sum();
        prop_assert_eq!(reg.sum_prefix(""), all);
    }
}

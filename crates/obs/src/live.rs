//! Live (lock-free) metrics for long-running services.
//!
//! The [`telemetry`](crate::telemetry) artifact is strictly post-hoc: a
//! `RUN_OBS.json` appears after a run ends. A serving process needs the
//! opposite — observables that can be read *while* the hot path is
//! running, without stopping the world and without taking any lock the
//! request path also takes. This module provides the three primitives
//! the serve plane threads through itself:
//!
//! * [`LiveCounter`] / [`LiveGauge`] — single `AtomicU64`s with relaxed
//!   ordering; an increment is one uncontended RMW.
//! * [`LiveHistogram`] — log-bucketed latency histogram: 65
//!   power-of-two buckets (bucket 0 holds the value 0, bucket *i* holds
//!   `[2^(i-1), 2^i)`), plus count / sum / max. Recording is four
//!   relaxed atomic ops; snapshots are mergeable and support
//!   p50/p95/p99/max extraction.
//! * [`FlightRecorder`] — a bounded ring of recent events guarded by a
//!   per-slot stamp (seqlock-style, built entirely from `AtomicU64`s so
//!   the crate-wide `forbid(unsafe_code)` holds). Writers never block;
//!   readers skip slots caught mid-write.
//!
//! [`LiveMetrics`] ties them together: a registry constructed once from
//! a static spec (sorted, so snapshots iterate deterministically — lint
//! rule L1) and shared via `Arc` handles. A disabled registry still
//! resolves handles but marks itself `enabled() == false`, letting
//! callers skip clock reads and recording entirely — that switch is
//! what the paired instrumented-vs-stripped overhead measurement in
//! `serve_load` flips.
//!
//! Determinism contract: none of these types read time themselves —
//! every timestamp is handed in by the caller from an injected
//! [`Clock`](crate::clock::Clock). Under `NullClock` all recorded
//! values are zero and double-run snapshots are byte-identical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of histogram buckets: one for zero plus one per power of two
/// up to `2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Slot stamp marking a flight-recorder slot as mid-write.
const WRITING: u64 = u64::MAX;

/// Bucket index for a recorded value: `0` for `0`, otherwise
/// `64 - leading_zeros(v)`, i.e. one plus the floor log2.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of a bucket: `0` for bucket 0, `2^i - 1` for
/// bucket `i` in `1..64`, and `u64::MAX` for the last bucket.
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        1..=63 => (1u64 << index).saturating_sub(1),
        _ => u64::MAX,
    }
}

/// A lock-free monotonic counter.
#[derive(Debug, Default)]
pub struct LiveCounter(AtomicU64);

impl LiveCounter {
    /// A counter at zero.
    pub fn new() -> LiveCounter {
        LiveCounter::default()
    }

    /// Add one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free last-write-wins gauge.
#[derive(Debug, Default)]
pub struct LiveGauge(AtomicU64);

impl LiveGauge {
    /// A gauge at zero.
    pub fn new() -> LiveGauge {
        LiveGauge::default()
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free log-bucketed histogram.
///
/// Recording touches four atomics with relaxed ordering (bucket, count,
/// sum, max); concurrent snapshots may observe a record partially
/// applied (e.g. count without sum), which is acceptable for live
/// monitoring and exact once writers quiesce.
#[derive(Debug)]
pub struct LiveHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LiveHistogram {
    fn default() -> LiveHistogram {
        LiveHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LiveHistogram {
    /// An empty histogram.
    pub fn new() -> LiveHistogram {
        LiveHistogram::default()
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        if let Some(bucket) = self.buckets.get(bucket_index(value)) {
            bucket.fetch_add(1, Ordering::Relaxed);
        }
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Copy the current state into an owned snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// An owned, mergeable copy of a [`LiveHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded values.
    pub count: u64,
    /// Saturating sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-bucket counts (see [`bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot::default()
    }

    /// Fold `other` into this snapshot. Elementwise saturating adds
    /// plus max-of-max, so merging is associative and commutative.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a = a.saturating_add(*b);
        }
    }

    /// Upper-bound estimate of the `q`-permille quantile (`q` in
    /// `0..=1000`): the inclusive upper bound of the first bucket whose
    /// cumulative count reaches rank `ceil(count * q / 1000)`, clamped
    /// to the recorded max. Zero when empty. Monotone in `q`.
    pub fn quantile_permille(&self, q: u32) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = u64::from(q.min(1000));
        let rank = self
            .count
            .saturating_mul(q)
            .saturating_add(999)
            .checked_div(1000)
            .unwrap_or(0)
            .clamp(1, self.count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*b);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile_permille(500)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> u64 {
        self.quantile_permille(950)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile_permille(990)
    }
}

/// One event recovered from the flight-recorder ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Global sequence number (0-based, monotonically increasing).
    pub seq: u64,
    /// Caller-supplied timestamp (injected-clock nanoseconds).
    pub at_ns: u64,
    /// Caller-defined event code (the serve plane maps these to an
    /// event-kind enum).
    pub code: u8,
    /// First caller-defined payload word.
    pub a: u64,
    /// Second caller-defined payload word.
    pub b: u64,
}

/// One ring slot: a stamp plus the event words, each its own atomic so
/// the whole recorder stays inside `forbid(unsafe_code)`.
#[derive(Debug)]
struct Slot {
    /// `0` = never written, [`WRITING`] = mid-write, otherwise
    /// `seq + 1` of the event the slot holds.
    stamp: AtomicU64,
    at_ns: AtomicU64,
    code: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            stamp: AtomicU64::new(0),
            at_ns: AtomicU64::new(0),
            code: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// A bounded, lock-free ring of recent events.
///
/// Writers claim a slot with one `fetch_add` and publish with a
/// seqlock-style stamp protocol (stamp set to [`WRITING`] while the
/// words are stored, then to `seq + 1`). Readers snapshot without
/// stopping writers: a slot whose stamp changed mid-read (or reads as
/// [`WRITING`]) is skipped as torn. Under a wrap race two writers can
/// interleave on one slot; the stamp re-check makes accepting a mixed
/// event require both writers to carry the same sequence number, which
/// cannot happen within one ring generation — the recorder is
/// best-effort by design, never a source of corruption for the hot
/// path.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    mask: u64,
}

impl FlightRecorder {
    /// A ring holding the last `capacity` events (rounded up to a power
    /// of two, minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.next_power_of_two().max(1);
        FlightRecorder {
            slots: (0..cap).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            mask: (cap as u64).saturating_sub(1),
        }
    }

    /// Ring capacity (power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total number of events ever posted (posted minus capacity have
    /// been overwritten).
    pub fn posted(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Post one event. Never blocks; overwrites the oldest slot when
    /// the ring is full.
    pub fn post(&self, at_ns: u64, code: u8, a: u64, b: u64) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let Some(slot) = self.slots.get((seq & self.mask) as usize) else {
            return;
        };
        slot.stamp.store(WRITING, Ordering::Release);
        slot.at_ns.store(at_ns, Ordering::Relaxed);
        slot.code.store(u64::from(code), Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.stamp.store(seq.saturating_add(1), Ordering::Release);
    }

    /// Collect the readable events, oldest first. Slots caught
    /// mid-write are skipped, so a snapshot taken under write load may
    /// hold fewer than `capacity()` events.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        let mut out = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.stamp.load(Ordering::Acquire);
            if s1 == 0 || s1 == WRITING {
                continue;
            }
            let at_ns = slot.at_ns.load(Ordering::Relaxed);
            let code = slot.code.load(Ordering::Relaxed);
            let a = slot.a.load(Ordering::Relaxed);
            let b = slot.b.load(Ordering::Relaxed);
            if slot.stamp.load(Ordering::Acquire) != s1 {
                continue;
            }
            out.push(FlightEvent {
                seq: s1.saturating_sub(1),
                at_ns,
                code: u8::try_from(code & 0xFF).unwrap_or(0),
                a,
                b,
            });
        }
        out.sort_by_key(|e| e.seq);
        out
    }
}

/// The class of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic counter.
    Counter,
    /// Last-write-wins gauge.
    Gauge,
    /// Log-bucketed histogram.
    Histogram,
}

/// A fixed registry of live metrics, constructed once from a static
/// spec and shared via `Arc` handles.
///
/// Keys are dotted lowercase paths sorted at construction, so
/// [`LiveMetrics::snapshot`] iterates — and every serialization
/// downstream emits — in deterministic order. Resolving a key that was
/// never registered returns a shared *sink* handle that accepts writes
/// but never appears in snapshots; lint rule L8 exists to catch such
/// orphaned keys statically, so the sink only matters for code the
/// gate does not cover.
#[derive(Debug)]
pub struct LiveMetrics {
    counters: Vec<(&'static str, Arc<LiveCounter>)>,
    gauges: Vec<(&'static str, Arc<LiveGauge>)>,
    histograms: Vec<(&'static str, Arc<LiveHistogram>)>,
    sink_counter: Arc<LiveCounter>,
    sink_gauge: Arc<LiveGauge>,
    sink_histogram: Arc<LiveHistogram>,
    enabled: bool,
}

impl LiveMetrics {
    /// Build a registry from `(key, kind)` pairs. `enabled == false`
    /// builds the same registry but advertises that recording should be
    /// skipped — the switch behind stripped-overhead comparisons.
    pub fn new(spec: &[(&'static str, MetricKind)], enabled: bool) -> LiveMetrics {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, kind) in spec {
            match kind {
                MetricKind::Counter => counters.push((*key, Arc::new(LiveCounter::new()))),
                MetricKind::Gauge => gauges.push((*key, Arc::new(LiveGauge::new()))),
                MetricKind::Histogram => histograms.push((*key, Arc::new(LiveHistogram::new()))),
            }
        }
        counters.sort_by_key(|(k, _)| *k);
        gauges.sort_by_key(|(k, _)| *k);
        histograms.sort_by_key(|(k, _)| *k);
        LiveMetrics {
            counters,
            gauges,
            histograms,
            sink_counter: Arc::new(LiveCounter::new()),
            sink_gauge: Arc::new(LiveGauge::new()),
            sink_histogram: Arc::new(LiveHistogram::new()),
            enabled,
        }
    }

    /// Whether hot paths should record into this registry.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Resolve a counter handle (the sink when `key` is unregistered).
    pub fn counter(&self, key: &str) -> Arc<LiveCounter> {
        match self.counters.binary_search_by_key(&key, |(k, _)| k) {
            Ok(i) => self
                .counters
                .get(i)
                .map(|(_, c)| Arc::clone(c))
                .unwrap_or_else(|| Arc::clone(&self.sink_counter)),
            Err(_) => Arc::clone(&self.sink_counter),
        }
    }

    /// Resolve a gauge handle (the sink when `key` is unregistered).
    pub fn gauge(&self, key: &str) -> Arc<LiveGauge> {
        match self.gauges.binary_search_by_key(&key, |(k, _)| k) {
            Ok(i) => self
                .gauges
                .get(i)
                .map(|(_, g)| Arc::clone(g))
                .unwrap_or_else(|| Arc::clone(&self.sink_gauge)),
            Err(_) => Arc::clone(&self.sink_gauge),
        }
    }

    /// Resolve a histogram handle (the sink when `key` is
    /// unregistered).
    pub fn histogram(&self, key: &str) -> Arc<LiveHistogram> {
        match self.histograms.binary_search_by_key(&key, |(k, _)| k) {
            Ok(i) => self
                .histograms
                .get(i)
                .map(|(_, h)| Arc::clone(h))
                .unwrap_or_else(|| Arc::clone(&self.sink_histogram)),
            Err(_) => Arc::clone(&self.sink_histogram),
        }
    }

    /// Copy every registered metric, in ascending key order per class.
    pub fn snapshot(&self) -> LiveSnapshot {
        LiveSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, c)| ((*k).to_string(), c.get()))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(k, g)| ((*k).to_string(), g.get()))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| ((*k).to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// An owned, deterministic-order copy of a [`LiveMetrics`] registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LiveSnapshot {
    /// Counters in ascending key order.
    pub counters: Vec<(String, u64)>,
    /// Gauges in ascending key order.
    pub gauges: Vec<(String, u64)>,
    /// Histograms in ascending key order.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index((1 << 20) - 1), 20);
        assert_eq!(bucket_index(1 << 20), 21);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = LiveHistogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 2106);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        // p50 lands in the bucket of 3 (rank 4), p99 in the max bucket.
        assert_eq!(s.p50(), 3);
        assert_eq!(s.quantile_permille(1000), 1000);
        assert_eq!(s.p99(), 1000);
        // Monotone in q.
        let mut last = 0;
        for q in (0..=1000).step_by(50) {
            let v = s.quantile_permille(q);
            assert!(v >= last, "quantile must be monotone: q={q} v={v} last={last}");
            last = v;
        }
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let a = LiveHistogram::new();
        let b = LiveHistogram::new();
        let both = LiveHistogram::new();
        for v in [5u64, 9, 17] {
            a.record(v);
            both.record(v);
        }
        for v in [0u64, 255, 256] {
            b.record(v);
            both.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn flight_ring_keeps_the_tail() {
        let ring = FlightRecorder::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..10u64 {
            ring.post(i, 1, i, 0);
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 4);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        assert_eq!(ring.posted(), 10);
    }

    #[test]
    fn flight_ring_survives_concurrent_posting() {
        let ring = Arc::new(FlightRecorder::new(64));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let r = Arc::clone(&ring);
            handles.push(thread::spawn(move || {
                for i in 0..1000u64 {
                    r.post(i, 2, t, i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = ring.snapshot();
        assert!(events.len() <= 64);
        assert_eq!(ring.posted(), 4000);
        // Sorted by seq, and every surviving event is from the tail.
        for w in events.windows(2) {
            assert!(w[0].seq < w[1].seq);
        }
    }

    #[test]
    fn registry_resolves_and_snapshots_in_key_order() {
        let m = LiveMetrics::new(
            &[
                ("z.count", MetricKind::Counter),
                ("a.count", MetricKind::Counter),
                ("q.depth", MetricKind::Gauge),
                ("lat.ns", MetricKind::Histogram),
            ],
            true,
        );
        assert!(m.enabled());
        m.counter("z.count").add(2);
        m.counter("a.count").incr();
        m.gauge("q.depth").set(7);
        m.histogram("lat.ns").record(100);
        let s = m.snapshot();
        assert_eq!(
            s.counters,
            vec![("a.count".to_string(), 1), ("z.count".to_string(), 2)]
        );
        assert_eq!(s.gauges, vec![("q.depth".to_string(), 7)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.histograms[0].1.count, 1);
        // Unregistered keys hit the sink, not the snapshot.
        m.counter("no.such").add(99);
        assert_eq!(m.snapshot().counters, s.counters);
    }
}

//! Named monotonic counters.
//!
//! Every stage of the pipeline counts things — records emitted, frames
//! CRC-failed, records quarantined per fault class, shard rows scanned,
//! index hits vs full scans. Before this crate each stage kept its own
//! ad-hoc struct and the cross-stage invariants ("delivered = yielded")
//! were re-derived independently in several places, which is exactly how
//! ledgers silently disagree. The [`CounterRegistry`] is the one
//! accounting path: stages add to named counters, reports are *views*
//! over them, and consistency checks compare registry entries.
//!
//! Keys are dotted lowercase paths (`"store.rows_scanned"`,
//! `"quarantine.glitch"`). Storage is a `BTreeMap`, so iteration — and
//! therefore every serialization — is deterministically ordered (lint
//! rule L1).

use std::collections::BTreeMap;

/// A registry of named `u64` counters. Absent keys read as zero.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
}

impl CounterRegistry {
    /// An empty registry.
    pub fn new() -> CounterRegistry {
        CounterRegistry::default()
    }

    /// Add `n` to `key`, creating it at zero first if absent.
    pub fn add(&mut self, key: &str, n: u64) {
        if n == 0 && !self.counters.contains_key(key) {
            // Register the key even at zero: a stage that ran but
            // counted nothing is visible, not absent.
            self.counters.insert(key.to_string(), 0);
            return;
        }
        *self.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Add one to `key`.
    pub fn incr(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Current value of `key` (zero when never touched).
    pub fn get(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Whether `key` has ever been touched (even at zero).
    pub fn contains(&self, key: &str) -> bool {
        self.counters.contains_key(key)
    }

    /// Fold every counter of `other` into this registry.
    pub fn absorb(&mut self, other: &CounterRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Sum of every counter whose key starts with `prefix`.
    ///
    /// Keys sharing a prefix are contiguous in the map's sorted order,
    /// so this is a range scan from `prefix` that stops at the first
    /// non-matching key — O(log n + matches) instead of a full-registry
    /// linear filter (the `obs_metrics` bench pins the win).
    pub fn sum_prefix(&self, prefix: &str) -> u64 {
        self.counters
            .range::<str, _>((std::ops::Bound::Included(prefix), std::ops::Bound::Unbounded))
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// All counters in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Number of distinct registered keys.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter was ever registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_incr() {
        let mut reg = CounterRegistry::new();
        assert_eq!(reg.get("a.b"), 0);
        reg.add("a.b", 3);
        reg.incr("a.b");
        assert_eq!(reg.get("a.b"), 4);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn zero_add_registers_the_key() {
        let mut reg = CounterRegistry::new();
        reg.add("stage.ran", 0);
        assert!(reg.contains("stage.ran"));
        assert_eq!(reg.get("stage.ran"), 0);
        assert!(!reg.contains("stage.never"));
    }

    #[test]
    fn absorb_folds_and_keeps_order() {
        let mut a = CounterRegistry::new();
        a.add("z.last", 1);
        a.add("a.first", 2);
        let mut b = CounterRegistry::new();
        b.add("m.mid", 5);
        b.add("a.first", 8);
        a.absorb(&b);
        let got: Vec<(String, u64)> = a.iter().map(|(k, v)| (k.to_string(), v)).collect();
        assert_eq!(
            got,
            vec![
                ("a.first".to_string(), 10),
                ("m.mid".to_string(), 5),
                ("z.last".to_string(), 1),
            ]
        );
    }

    #[test]
    fn sum_prefix_groups_a_namespace() {
        let mut reg = CounterRegistry::new();
        reg.add("quarantine.glitch", 3);
        reg.add("quarantine.overlap", 2);
        reg.add("store.rows_scanned", 100);
        assert_eq!(reg.sum_prefix("quarantine."), 5);
        assert_eq!(reg.sum_prefix("nothing."), 0);
    }
}

//! Process-level resource readings for build instrumentation.
//!
//! The out-of-core streaming build claims bounded memory; this module
//! is how the claim is measured rather than asserted. Readings come
//! from `/proc/self/status` (Linux); on platforms without procfs every
//! reader returns 0, which downstream consumers must treat as
//! "unmeasured", never as "zero bytes".

/// Peak resident set size of this process in bytes (`VmHWM`), or 0
/// when the platform offers no procfs.
pub fn peak_rss_bytes() -> u64 {
    read_status_kib("VmHWM:") * 1024
}

/// Current resident set size of this process in bytes (`VmRSS`), or 0
/// when the platform offers no procfs.
pub fn current_rss_bytes() -> u64 {
    read_status_kib("VmRSS:") * 1024
}

/// Parse one `kB` line out of `/proc/self/status`; 0 on any failure.
fn read_status_kib(key: &str) -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    parse_status_kib(&status, key)
}

fn parse_status_kib(status: &str, key: &str) -> u64 {
    status
        .lines()
        .find_map(|line| line.strip_prefix(key))
        .and_then(|rest| rest.trim().strip_suffix("kB"))
        .and_then(|n| n.trim().parse::<u64>().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_status_lines() {
        let status = "Name:\tconncar\nVmRSS:\t  12345 kB\nVmHWM:\t  23456 kB\n";
        assert_eq!(parse_status_kib(status, "VmRSS:"), 12_345);
        assert_eq!(parse_status_kib(status, "VmHWM:"), 23_456);
        assert_eq!(parse_status_kib(status, "VmSwap:"), 0);
        assert_eq!(parse_status_kib("garbage", "VmHWM:"), 0);
        assert_eq!(parse_status_kib("VmHWM: not-a-number kB", "VmHWM:"), 0);
    }

    #[test]
    fn live_readings_are_sane_on_linux() {
        // On Linux both readings are nonzero and peak >= current; on
        // other platforms both are 0 by contract.
        let peak = peak_rss_bytes();
        let now = current_rss_bytes();
        if peak != 0 {
            assert!(peak >= now);
        } else {
            assert_eq!(now, 0);
        }
    }
}

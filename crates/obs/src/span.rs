//! Hierarchical stage spans.
//!
//! A [`Span`] is an open measurement: it holds a borrowed [`Clock`],
//! the entry timestamp, an item count, and the finished records of its
//! children. Closing it ([`Span::finish`]) yields an immutable
//! [`SpanRecord`] — the serializable tree node carrying wall
//! nanoseconds, items processed, and the derived items/s.
//!
//! Nesting is scoped: [`Span::child`] runs a closure inside a child
//! span and attaches the child's record on the way out, so the tree
//! shape always mirrors the call structure. Stages timed elsewhere
//! (e.g. per-shard store builds measured inside a parallel loop) are
//! attached pre-timed with [`Span::attach`].

use crate::clock::Clock;

/// One finished stage: a node of the run's span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Stage name (`"generate"`, `"salvage"`, `"analysis/presence"`, …).
    pub name: String,
    /// Wall nanoseconds between enter and finish (zero under the
    /// deterministic [`NullClock`](crate::clock::NullClock)).
    pub wall_ns: u64,
    /// Items this stage processed (records, rows, cells — the stage's
    /// natural unit). Zero means the stage did no work, which the CI
    /// telemetry gate treats as a regression.
    pub items: u64,
    /// Child stages, in execution order.
    pub children: Vec<SpanRecord>,
}

impl SpanRecord {
    /// A pre-timed leaf (for stages measured outside the span API,
    /// e.g. inside a parallel loop).
    pub fn leaf(name: &str, wall_ns: u64, items: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            wall_ns,
            items,
            children: Vec::new(),
        }
    }

    /// Derived throughput in items per second (zero when untimed).
    pub fn items_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.items as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Depth-first search for the first span named `name`.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Visit every span in the tree, depth-first, parents before
    /// children.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a SpanRecord, usize)) {
        self.walk_at(0, f);
    }

    fn walk_at<'a>(&'a self, depth: usize, f: &mut impl FnMut(&'a SpanRecord, usize)) {
        f(self, depth);
        for c in &self.children {
            c.walk_at(depth + 1, f);
        }
    }

    /// Total number of spans in the tree (self included).
    pub fn span_count(&self) -> usize {
        1 + self.children.iter().map(SpanRecord::span_count).sum::<usize>()
    }
}

/// An open span, timing a stage against an injected clock.
pub struct Span<'c> {
    clock: &'c dyn Clock,
    entered_ns: u64,
    rec: SpanRecord,
}

impl<'c> Span<'c> {
    /// Open a root span now.
    pub fn enter(clock: &'c dyn Clock, name: &str) -> Span<'c> {
        Span {
            clock,
            entered_ns: clock.now_nanos(),
            rec: SpanRecord::leaf(name, 0, 0),
        }
    }

    /// The clock this span (and its children) time against.
    pub fn clock(&self) -> &'c dyn Clock {
        self.clock
    }

    /// Run `f` inside a child span; the child's record is attached when
    /// `f` returns, whatever it returns (including `Err`).
    pub fn child<T>(&mut self, name: &str, f: impl FnOnce(&mut Span<'c>) -> T) -> T {
        let mut child = Span::enter(self.clock, name);
        let out = f(&mut child);
        self.rec.children.push(child.finish());
        out
    }

    /// Set this stage's item count.
    pub fn set_items(&mut self, items: u64) {
        self.rec.items = items;
    }

    /// Add to this stage's item count.
    pub fn add_items(&mut self, items: u64) {
        self.rec.items += items;
    }

    /// Attach an already-finished child record (stages timed inside
    /// parallel loops, where a borrowing child span cannot reach).
    pub fn attach(&mut self, rec: SpanRecord) {
        self.rec.children.push(rec);
    }

    /// Close the span, stamping its wall time.
    pub fn finish(mut self) -> SpanRecord {
        self.rec.wall_ns = self.clock.now_nanos().saturating_sub(self.entered_ns);
        self.rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{MonotonicClock, NullClock};

    #[test]
    fn nested_children_mirror_call_structure() {
        let clock = NullClock;
        let mut root = Span::enter(&clock, "run");
        root.set_items(10);
        let n = root.child("stage_a", |a| {
            a.set_items(4);
            a.child("inner", |i| {
                i.set_items(2);
                2
            })
        });
        assert_eq!(n, 2);
        root.child("stage_b", |b| b.set_items(6));
        let rec = root.finish();
        assert_eq!(rec.name, "run");
        assert_eq!(rec.items, 10);
        assert_eq!(rec.children.len(), 2);
        assert_eq!(rec.children[0].children[0].name, "inner");
        assert_eq!(rec.span_count(), 4);
        assert_eq!(rec.find("inner").unwrap().items, 2);
        assert!(rec.find("missing").is_none());
    }

    #[test]
    fn null_clock_spans_report_zero_wall_time() {
        let clock = NullClock;
        let mut root = Span::enter(&clock, "run");
        root.child("work", |s| s.set_items(1_000));
        let rec = root.finish();
        assert_eq!(rec.wall_ns, 0);
        assert_eq!(rec.children[0].wall_ns, 0);
        assert_eq!(rec.children[0].items_per_sec(), 0.0);
    }

    #[test]
    fn monotonic_spans_accumulate_time() {
        let clock = MonotonicClock::new();
        let mut root = Span::enter(&clock, "run");
        root.child("spin", |s| {
            // Enough work for a nonzero reading on any clock resolution.
            let mut x = 0u64;
            for i in 0..100_000u64 {
                x = x.wrapping_add(i * i);
            }
            std::hint::black_box(x);
            s.set_items(100_000);
        });
        let rec = root.finish();
        assert!(rec.wall_ns >= rec.children[0].wall_ns);
        assert!(rec.children[0].wall_ns > 0);
        assert!(rec.children[0].items_per_sec() > 0.0);
    }

    #[test]
    fn attach_adopts_pretimed_records() {
        let clock = NullClock;
        let mut root = Span::enter(&clock, "store_build");
        root.attach(SpanRecord::leaf("shard-0", 1_500, 100));
        root.attach(SpanRecord::leaf("shard-1", 2_500, 200));
        let rec = root.finish();
        assert_eq!(rec.children.len(), 2);
        assert_eq!(rec.children[1].wall_ns, 2_500);
        let rate = rec.children[1].items_per_sec();
        assert!((rate - 200.0 * 1e9 / 2_500.0).abs() < 1e-6);
    }

    #[test]
    fn err_returning_child_still_attaches() {
        let clock = NullClock;
        let mut root = Span::enter(&clock, "run");
        let r: Result<(), ()> = root.child("failing", |s| {
            s.set_items(3);
            Err(())
        });
        assert!(r.is_err());
        let rec = root.finish();
        assert_eq!(rec.children[0].name, "failing");
        assert_eq!(rec.children[0].items, 3);
    }
}

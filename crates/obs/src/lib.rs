//! # conncar-obs
//!
//! The observability substrate of the workspace: one place to answer
//! *"what did this run do and where did the time go?"*
//!
//! The pipeline is a long chain — fleet synthesis → CDR emission and
//! faulting → salvage → staged cleaning → columnar store layout → the
//! §4 analysis suite — and before this crate its only visibility was a
//! handful of disjoint ad-hoc report structs with no timings and no
//! single artifact describing a run. This crate provides:
//!
//! * [`clock`] — the **injected clock**. Ambient wall-clock reads are
//!   banned workspace-wide (lint rule L2): any code that wants a
//!   timestamp receives a [`Clock`] instead. [`MonotonicClock`] is the
//!   one sanctioned `std::time::Instant` consumer in the workspace
//!   (allowlisted in `lint.toml`); [`NullClock`] always reads zero, so
//!   instrumented double runs stay byte-identical.
//! * [`span`] — hierarchical **spans** recording a stage tree: each
//!   [`SpanRecord`] carries wall nanoseconds, an item count, and the
//!   derived items/s, and nests children (generate → fault → salvage →
//!   clean stages → store build per shard → each analysis by name).
//! * [`counters`] — a [`CounterRegistry`] of named monotonic counters
//!   (records emitted, frames CRC-failed, quarantined per fault class,
//!   shard rows scanned, index hits vs full scans). Stage reports
//!   elsewhere in the workspace are *views* over these counters, so
//!   there is exactly one accounting path.
//! * [`telemetry`] — the [`RunTelemetry`] artifact: span tree plus
//!   counters, serialized to a deterministic `RUN_OBS.json` and
//!   rendered as a text tree.
//! * [`live`] — the **live metrics plane** for long-running services:
//!   lock-free atomic counters/gauges, log-bucketed mergeable
//!   histograms with quantile extraction, and a bounded flight-recorder
//!   event ring snapshotable without stopping the world. Everything is
//!   clock-injected, so serve-plane snapshots under [`NullClock`] stay
//!   byte-identical across double runs.
//! * [`procstat`] — process-level resource readings (peak/current RSS
//!   out of procfs) backing the streaming build's bounded-memory gates.
//!
//! The crate is dependency-free (only `conncar-types` for the shared
//! error type): telemetry must never drag a serialization framework
//! into the leaf crates that emit it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod counters;
pub mod live;
pub mod procstat;
pub mod span;
pub mod telemetry;

pub use clock::{Clock, MonotonicClock, NullClock, SharedClock};
pub use counters::CounterRegistry;
pub use live::{
    FlightEvent, FlightRecorder, HistogramSnapshot, LiveCounter, LiveGauge, LiveHistogram,
    LiveMetrics, LiveSnapshot, MetricKind,
};
pub use procstat::{current_rss_bytes, peak_rss_bytes};
pub use span::{Span, SpanRecord};
pub use telemetry::RunTelemetry;

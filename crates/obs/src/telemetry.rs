//! The run telemetry artifact: `RUN_OBS.json` and the rendered tree.
//!
//! [`RunTelemetry`] bundles one run's span tree and counter registry
//! with the kind of clock that timed it. Serialization is hand-rolled
//! JSON: the byte layout is part of the artifact's contract (two runs
//! of the same seed under the `NullClock` must produce byte-identical
//! files), so no serialization framework gets to decide key order or
//! float formatting.
//!
//! ## `RUN_OBS.json` schema (v1)
//!
//! ```json
//! {
//!   "schema": "conncar.run_obs.v1",
//!   "clock": "null",
//!   "spans": {
//!     "name": "run", "wall_ns": 0, "items": 41285,
//!     "items_per_sec": 0.0,
//!     "children": [ ... same shape, recursively ... ]
//!   },
//!   "counters": { "clean.dropped_glitches": 161, ... }
//! }
//! ```
//!
//! Counters appear in ascending key order (the registry is a B-tree);
//! spans appear in execution order. `items_per_sec` is derived
//! (`items * 1e9 / wall_ns`, zero when untimed) and formatted with
//! three decimals, so identical inputs always produce identical bytes.

use crate::counters::CounterRegistry;
use crate::span::SpanRecord;

/// Everything one instrumented run reports.
#[derive(Debug, Clone, PartialEq)]
pub struct RunTelemetry {
    /// Which clock timed the run (`"monotonic"` or `"null"`).
    pub clock: String,
    /// Identity of the trace this run was recorded into (or replayed
    /// from), when the run was traced at all. Serialized as a `"trace"`
    /// line when present; a record and its replay carry the same id, so
    /// the artifact stays byte-identical across the round trip.
    pub trace: Option<String>,
    /// The root of the stage tree.
    pub root: SpanRecord,
    /// Every named counter the run touched.
    pub counters: CounterRegistry,
}

impl RunTelemetry {
    /// Serialize to the deterministic `RUN_OBS.json` byte layout.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"conncar.run_obs.v1\",\n");
        out.push_str(&format!("  \"clock\": \"{}\",\n", escape(&self.clock)));
        if let Some(trace) = &self.trace {
            out.push_str(&format!("  \"trace\": \"{}\",\n", escape(trace)));
        }
        out.push_str("  \"spans\": ");
        span_json(&self.root, 1, &mut out);
        out.push_str(",\n  \"counters\": {");
        let mut first = true;
        for (k, v) in self.counters.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    \"{}\": {}", escape(k), v));
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Write `RUN_OBS.json` to `path`.
    pub fn write_json(&self, path: &std::path::Path) -> conncar_types::Result<()> {
        std::fs::write(path, self.to_json())?;
        Ok(())
    }

    /// Render the span tree as an aligned text view (the `obs_report`
    /// example's output).
    pub fn render_tree(&self) -> String {
        let mut lines: Vec<(String, u64, u64, f64)> = Vec::new();
        self.root.walk(&mut |s, depth| {
            let label = format!("{}{}", "  ".repeat(depth), s.name);
            lines.push((label, s.wall_ns, s.items, s.items_per_sec()));
        });
        let width = lines.iter().map(|(l, ..)| l.len()).max().unwrap_or(0).max(5);
        let mut out = format!(
            "run telemetry (clock: {})\n{:<width$}  {:>12}  {:>12}  {:>14}\n",
            self.clock, "stage", "wall", "items", "items/s"
        );
        for (label, wall_ns, items, rate) in lines {
            out.push_str(&format!(
                "{label:<width$}  {:>12}  {items:>12}  {:>14}\n",
                fmt_ns(wall_ns),
                fmt_rate(rate),
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("\ncounters\n");
            let kw = self
                .counters
                .iter()
                .map(|(k, _)| k.len())
                .max()
                .unwrap_or(0);
            for (k, v) in self.counters.iter() {
                out.push_str(&format!("  {k:<kw$}  {v:>12}\n"));
            }
        }
        out
    }

    /// Names of every span that reports zero items processed — the CI
    /// telemetry gate fails the run when this is non-empty, because a
    /// registered stage that consumed nothing means the pipeline wired
    /// it up wrong (or the fixture degenerated).
    pub fn zero_item_stages(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.root.walk(&mut |s, _| {
            if s.items == 0 {
                out.push(s.name.clone());
            }
        });
        out
    }
}

/// Append one span (and its subtree) as JSON at `indent` levels.
fn span_json(s: &SpanRecord, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    out.push_str(&format!(
        "{{\n{pad}  \"name\": \"{}\", \"wall_ns\": {}, \"items\": {}, \"items_per_sec\": {:.3},\n{pad}  \"children\": [",
        escape(&s.name),
        s.wall_ns,
        s.items,
        s.items_per_sec(),
    ));
    for (i, c) in s.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n{pad}    "));
        span_json(c, indent + 2, out);
    }
    if !s.children.is_empty() {
        out.push_str(&format!("\n{pad}  "));
    }
    out.push_str(&format!("]\n{pad}}}"));
}

/// Escape a string for a JSON double-quoted literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Humanize nanoseconds for the text view.
fn fmt_ns(ns: u64) -> String {
    if ns == 0 {
        "0".to_string()
    } else if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Humanize an items/s rate for the text view.
fn fmt_rate(rate: f64) -> String {
    if rate == 0.0 {
        "-".to_string()
    } else if rate >= 1e6 {
        format!("{:.2} M/s", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1} k/s", rate / 1e3)
    } else {
        format!("{rate:.1} /s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunTelemetry {
        let mut counters = CounterRegistry::new();
        counters.add("clean.dropped_glitches", 7);
        counters.add("store.rows_scanned", 1_234);
        let root = SpanRecord {
            name: "run".into(),
            wall_ns: 0,
            items: 100,
            children: vec![
                SpanRecord::leaf("generate", 0, 100),
                SpanRecord {
                    name: "analysis".into(),
                    wall_ns: 0,
                    items: 100,
                    children: vec![SpanRecord::leaf("analysis/presence", 0, 100)],
                },
            ],
        };
        RunTelemetry {
            clock: "null".into(),
            trace: None,
            root,
            counters,
        }
    }

    #[test]
    fn json_layout_is_stable_and_ordered() {
        let t = sample();
        let a = t.to_json();
        let b = t.to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\n  \"schema\": \"conncar.run_obs.v1\",\n"));
        // Counters render in key order.
        let glitch = a.find("clean.dropped_glitches").unwrap();
        let rows = a.find("store.rows_scanned").unwrap();
        assert!(glitch < rows);
        // NullClock spans serialize zero wall and zero rate.
        assert!(a.contains("\"wall_ns\": 0"));
        assert!(a.contains("\"items_per_sec\": 0.000"));
        // Nested child present.
        assert!(a.contains("analysis/presence"));
    }

    #[test]
    fn empty_counters_serialize_as_empty_object() {
        let t = RunTelemetry {
            clock: "null".into(),
            trace: None,
            root: SpanRecord::leaf("run", 0, 1),
            counters: CounterRegistry::new(),
        };
        let json = t.to_json();
        assert!(json.contains("\"counters\": {}"), "{json}");
    }

    #[test]
    fn trace_line_appears_only_when_recorded() {
        let mut t = sample();
        let without = t.to_json();
        assert!(!without.contains("\"trace\""), "{without}");
        t.trace = Some("f00dfacecafe0042".into());
        let with = t.to_json();
        assert!(
            with.contains("  \"clock\": \"null\",\n  \"trace\": \"f00dfacecafe0042\",\n"),
            "{with}"
        );
        // The trace line is the only difference between the layouts.
        assert_eq!(
            with.replace("  \"trace\": \"f00dfacecafe0042\",\n", ""),
            without
        );
    }

    #[test]
    fn tree_rendering_lists_every_stage() {
        let t = sample();
        let tree = t.render_tree();
        for name in ["run", "generate", "analysis", "analysis/presence"] {
            assert!(tree.contains(name), "missing {name} in:\n{tree}");
        }
        assert!(tree.contains("clean.dropped_glitches"));
    }

    #[test]
    fn zero_item_stages_are_reported() {
        let mut t = sample();
        assert!(t.zero_item_stages().is_empty());
        t.root.children.push(SpanRecord::leaf("dead-stage", 10, 0));
        assert_eq!(t.zero_item_stages(), vec!["dead-stage".to_string()]);
    }

    #[test]
    fn json_escapes_special_characters() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn humanized_units_pick_sane_ranges() {
        assert_eq!(fmt_ns(0), "0");
        assert_eq!(fmt_ns(500), "500 ns");
        assert_eq!(fmt_ns(1_500), "1.5 µs");
        assert_eq!(fmt_ns(2_500_000), "2.5 ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21 s");
        assert_eq!(fmt_rate(0.0), "-");
        assert_eq!(fmt_rate(1_500.0), "1.5 k/s");
        assert_eq!(fmt_rate(2_000_000.0), "2.00 M/s");
    }

    #[test]
    fn write_json_round_trips_bytes() {
        let t = sample();
        let dir = std::env::temp_dir().join(format!("conncar-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("RUN_OBS.json");
        t.write_json(&path).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), t.to_json());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

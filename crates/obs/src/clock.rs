//! Injected time sources.
//!
//! Lint rule L2 bans ambient wall-clock reads everywhere outside the
//! bench harness: a stray `Instant::now()` in an analysis is how
//! "deterministic" pipelines grow timing-dependent output. Timing is
//! still wanted — the whole point of this crate — so the clock is
//! *injected*: code that measures receives a `&dyn Clock`, production
//! entry points hand it a [`MonotonicClock`], and determinism tests
//! hand it a [`NullClock`] so two runs of the same seed produce
//! byte-identical telemetry.
//!
//! This module is the single sanctioned home of `std::time::Instant` in
//! the workspace; the `lint.toml` allowlist entry for it is pinned by a
//! fixture test in `crates/lint/tests/fixtures.rs`.

/// A monotonic nanosecond source.
///
/// `Send + Sync` so one clock can serve parallel shard scans; `Debug`
/// so the structs that embed a `SharedClock` can keep deriving.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Nanoseconds elapsed since some fixed, arbitrary origin. Only
    /// differences are meaningful; successive reads never decrease.
    fn now_nanos(&self) -> u64;

    /// Short tag naming the implementation in telemetry artifacts.
    fn kind(&self) -> &'static str;
}

/// A shareable clock handle, cheap to clone into parallel scans.
pub type SharedClock = std::sync::Arc<dyn Clock>;

/// The real monotonic clock: nanoseconds since the instant the clock
/// was constructed.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: std::time::Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        MonotonicClock::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        // u128 → u64 saturation: 2^64 ns ≈ 584 years of process uptime.
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn kind(&self) -> &'static str {
        "monotonic"
    }
}

/// The deterministic clock: every read is zero.
///
/// Spans timed against it report `wall_ns = 0` and a derived rate of
/// zero, which keeps double-run telemetry byte-identical — item counts
/// and tree shape still carry all the seed-determined information.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullClock;

impl Clock for NullClock {
    fn now_nanos(&self) -> u64 {
        0
    }

    fn kind(&self) -> &'static str {
        "null"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_decreases() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
        assert_eq!(clock.kind(), "monotonic");
    }

    #[test]
    fn null_clock_is_frozen_at_zero() {
        let clock = NullClock;
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.now_nanos(), 0);
        assert_eq!(clock.kind(), "null");
    }

    #[test]
    fn clocks_are_object_safe_and_shareable() {
        let shared: SharedClock = std::sync::Arc::new(NullClock);
        let cloned = shared.clone();
        assert_eq!(cloned.now_nanos(), 0);
        let real: SharedClock = std::sync::Arc::new(MonotonicClock::new());
        assert_eq!(real.kind(), "monotonic");
    }
}

//! Macro-level temporal behaviour: Figure 2, Table 1 and Figure 3.

use crate::stats::{Ecdf, LinearFit, StreamingStats};
use conncar_cdr::{truncate_records, CdrDataset};
use conncar_store::{kernels, CarView, CdrStore, Filter, FolderHandle, FusedOutputs, FusedPass, QueryStats};
use conncar_types::{CarId, CellId, DayOfWeek, Duration, StudyPeriod};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One day's presence numbers (Figure 2's two series).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyPresence {
    /// Study day index.
    pub day: u64,
    /// Weekday.
    pub weekday: DayOfWeek,
    /// Distinct cars seen on the network this day.
    pub cars: usize,
    /// Distinct cells that saw at least one car this day.
    pub cells: usize,
}

/// Figure 2: per-day presence percentages with OLS trend lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DailyPresenceResult {
    /// One entry per study day.
    pub days: Vec<DailyPresence>,
    /// Total cars in the population (denominator for `% cars`).
    pub total_cars: usize,
    /// Total cells that ever saw a car (the paper's denominator: "out of
    /// all the cells that had cars connect to them in our data set").
    pub total_cells: usize,
    /// Trend over `% cars` by day.
    pub cars_trend: Option<LinearFit>,
    /// Trend over `% cells` by day.
    pub cells_trend: Option<LinearFit>,
}

impl DailyPresenceResult {
    /// `% cars` series (0–1 fractions).
    pub fn car_fractions(&self) -> Vec<f64> {
        self.days
            .iter()
            .map(|d| d.cars as f64 / self.total_cars.max(1) as f64)
            .collect()
    }

    /// `% cells` series (0–1 fractions).
    pub fn cell_fractions(&self) -> Vec<f64> {
        self.days
            .iter()
            .map(|d| d.cells as f64 / self.total_cells.max(1) as f64)
            .collect()
    }
}

/// Per-day distinct-car/cell sets: the shared accumulator of the legacy
/// scan and the store fold.
struct PresenceSets {
    cars_per_day: Vec<BTreeSet<CarId>>,
    cells_per_day: Vec<BTreeSet<CellId>>,
    all_cells: BTreeSet<CellId>,
}

impl PresenceSets {
    fn new(days_n: usize) -> PresenceSets {
        PresenceSets {
            cars_per_day: vec![BTreeSet::new(); days_n],
            cells_per_day: vec![BTreeSet::new(); days_n],
            all_cells: BTreeSet::new(),
        }
    }

    /// Credit one record to every day it touches (records can straddle
    /// midnight).
    fn add(&mut self, r: &conncar_cdr::CdrRecord) {
        self.all_cells.insert(r.cell);
        let days_n = self.cars_per_day.len();
        let last_day = (r.end.as_secs().saturating_sub(1)) / 86_400;
        for day in r.start.day()..=last_day {
            if (day as usize) < days_n {
                self.cars_per_day[day as usize].insert(r.car);
                self.cells_per_day[day as usize].insert(r.cell);
            }
        }
    }

}

/// Per-day distinct counts built without any per-row set inserts: the
/// column-kernel accumulator behind [`daily_presence_store`] and the
/// fused pass.
///
/// Distinct cars per day come from a per-car day bitmap (each car is
/// visited exactly once per pass, so setting a day bit the first time
/// increments that day's count by one car). Distinct cells are pushed
/// raw — duplicates and all — and deduplicated once at the end with a
/// sort, which is far cheaper than a `BTreeSet` insert per row.
struct PresenceCounts {
    day_cars: Vec<u64>,
    day_cells: Vec<Vec<CellId>>,
    all_cells: Vec<CellId>,
    /// Scratch day bitmap for the car being folded; always zero between
    /// cars.
    mask: Vec<u64>,
}

impl PresenceCounts {
    fn new(days_n: usize) -> PresenceCounts {
        PresenceCounts {
            day_cars: vec![0; days_n],
            day_cells: vec![Vec::new(); days_n],
            all_cells: Vec::new(),
            mask: vec![0; (days_n + 63) / 64],
        }
    }

    /// Credit one car's selected rows to every day they touch (records
    /// can straddle midnight), exactly as [`PresenceSets::add`] does.
    fn fold_view(&mut self, v: &CarView<'_>) {
        let days_n = self.day_cars.len();
        let mut touched = false;
        v.for_each_selected(|i| {
            let cell = v.cells[i];
            self.all_cells.push(cell);
            let first_day = v.starts[i] / 86_400;
            let last_day = v.ends[i].saturating_sub(1) / 86_400;
            for day in first_day..=last_day {
                let d = day as usize;
                if d < days_n {
                    self.day_cells[d].push(cell);
                    if (self.mask[d >> 6] >> (d & 63)) & 1 == 0 {
                        self.mask[d >> 6] |= 1 << (d & 63);
                        touched = true;
                    }
                }
            }
        });
        if touched {
            for (w, word) in self.mask.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    self.day_cars[(w << 6) + bits.trailing_zeros() as usize] += 1;
                    bits &= bits - 1;
                }
                *word = 0;
            }
        }
    }

    /// Merge is exact: car counts add (cars are shard-disjoint), cell
    /// pushes concatenate (deduplication happens in [`finish`]).
    fn merge(mut a: PresenceCounts, mut b: PresenceCounts) -> PresenceCounts {
        for (x, y) in a.day_cars.iter_mut().zip(&b.day_cars) {
            *x += *y;
        }
        for (x, y) in a.day_cells.iter_mut().zip(b.day_cells.iter_mut()) {
            x.append(y);
        }
        a.all_cells.append(&mut b.all_cells);
        a
    }

    /// Deduplicate and assemble — shared with the legacy set path via
    /// [`assemble_presence_counts`].
    fn finish(mut self, period: StudyPeriod, total_cars: usize) -> DailyPresenceResult {
        let cars_per_day: Vec<usize> = self.day_cars.iter().map(|&n| n as usize).collect();
        let cells_per_day: Vec<usize> = self
            .day_cells
            .iter_mut()
            .map(|cells| {
                cells.sort_unstable();
                cells.dedup();
                cells.len()
            })
            .collect();
        self.all_cells.sort_unstable();
        self.all_cells.dedup();
        assemble_presence_counts(
            period,
            &cars_per_day,
            &cells_per_day,
            self.all_cells.len(),
            total_cars,
        )
    }
}

/// Compute Figure 2 from a cleaned dataset.
///
/// `total_cars` is the fleet size (cars that never connected still count
/// in the denominator, as in the paper's random 1M sample).
pub fn daily_presence(ds: &CdrDataset, total_cars: usize) -> DailyPresenceResult {
    let mut sets = PresenceSets::new(ds.period().days() as usize);
    for r in ds.records() {
        sets.add(r);
    }
    assemble_presence(ds.period(), sets, total_cars)
}

/// Figure 2 through the store: the same per-day distinct counts built
/// by the zero-materialization column kernel. Cars are shard-disjoint
/// and cell sets merge by union, so the assembled result equals
/// [`daily_presence`] exactly.
pub fn daily_presence_store(
    store: &CdrStore,
    total_cars: usize,
) -> (DailyPresenceResult, QueryStats) {
    let days_n = store.period().days() as usize;
    let (counts, stats) = kernels::fold_views(
        store,
        &Filter::all(),
        move || PresenceCounts::new(days_n),
        |acc: &mut PresenceCounts, v| acc.fold_view(v),
        PresenceCounts::merge,
    );
    (counts.finish(store.period(), total_cars), stats)
}

/// Figure 2 as a folder in a [`FusedPass`]; claim the result with
/// [`FusedPresence::finish`] after the pass runs.
pub fn fuse_daily_presence(pass: &mut FusedPass<'_>, total_cars: usize) -> FusedPresence {
    let period = pass.store().period();
    let days_n = period.days() as usize;
    let handle = pass.add_per_car(
        "presence",
        move || PresenceCounts::new(days_n),
        |acc: &mut PresenceCounts, v| acc.fold_view(v),
        PresenceCounts::merge,
    );
    FusedPresence {
        handle,
        period,
        total_cars,
    }
}

/// Claim ticket for a fused Figure 2 folder.
pub struct FusedPresence {
    handle: FolderHandle<PresenceCounts>,
    period: StudyPeriod,
    total_cars: usize,
}

impl FusedPresence {
    /// Assemble the presence result from the fused pass's outputs.
    pub fn finish(self, out: &mut FusedOutputs) -> DailyPresenceResult {
        out.take(self.handle).finish(self.period, self.total_cars)
    }
}

/// Shared tail of both presence paths: counts, trends, assembly.
fn assemble_presence(
    period: StudyPeriod,
    sets: PresenceSets,
    total_cars: usize,
) -> DailyPresenceResult {
    let PresenceSets {
        cars_per_day,
        cells_per_day,
        all_cells,
    } = sets;
    let car_counts: Vec<usize> = cars_per_day.iter().map(BTreeSet::len).collect();
    let cell_counts: Vec<usize> = cells_per_day.iter().map(BTreeSet::len).collect();
    assemble_presence_counts(period, &car_counts, &cell_counts, all_cells.len(), total_cars)
}

/// The one assembly: per-day distinct counts (however they were
/// produced) to result struct with trends. Shared with the combined
/// presence+concurrency folder in [`crate::fusion`].
pub(crate) fn assemble_presence_counts(
    period: StudyPeriod,
    cars_per_day: &[usize],
    cells_per_day: &[usize],
    total_cells: usize,
    total_cars: usize,
) -> DailyPresenceResult {
    let days: Vec<DailyPresence> = period
        .iter_days()
        .map(|(d, weekday)| DailyPresence {
            day: d,
            weekday,
            cars: cars_per_day[d as usize],
            cells: cells_per_day[d as usize],
        })
        .collect();
    let car_pts: Vec<(f64, f64)> = days
        .iter()
        .map(|d| (d.day as f64, d.cars as f64 / total_cars.max(1) as f64))
        .collect();
    let cell_pts: Vec<(f64, f64)> = days
        .iter()
        .map(|d| (d.day as f64, d.cells as f64 / total_cells.max(1) as f64))
        .collect();
    DailyPresenceResult {
        cars_trend: LinearFit::fit(&car_pts),
        cells_trend: LinearFit::fit(&cell_pts),
        days,
        total_cars,
        total_cells,
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeekdayRow {
    /// The weekday (`None` = the "Overall" row).
    pub weekday: Option<DayOfWeek>,
    /// Mean of `% cells with cars`.
    pub cells_mean: f64,
    /// Sample st. dev. of `% cells with cars`.
    pub cells_stdev: f64,
    /// Mean of `% cars on network`.
    pub cars_mean: f64,
    /// Sample st. dev. of `% cars on network`.
    pub cars_stdev: f64,
}

/// Table 1: per-weekday means and standard deviations of the Figure 2
/// series. Eight rows: Monday..Sunday then Overall.
pub fn weekday_table(presence: &DailyPresenceResult) -> Vec<WeekdayRow> {
    let mut rows = Vec::with_capacity(8);
    let mut overall_cells = StreamingStats::new();
    let mut overall_cars = StreamingStats::new();
    for target in DayOfWeek::ALL {
        let mut cells = StreamingStats::new();
        let mut cars = StreamingStats::new();
        for d in presence.days.iter().filter(|d| d.weekday == target) {
            let cell_frac = d.cells as f64 / presence.total_cells.max(1) as f64;
            let car_frac = d.cars as f64 / presence.total_cars.max(1) as f64;
            cells.push(cell_frac);
            cars.push(car_frac);
            overall_cells.push(cell_frac);
            overall_cars.push(car_frac);
        }
        rows.push(WeekdayRow {
            weekday: Some(target),
            cells_mean: cells.mean(),
            cells_stdev: cells.sample_stdev(),
            cars_mean: cars.mean(),
            cars_stdev: cars.sample_stdev(),
        });
    }
    rows.push(WeekdayRow {
        weekday: None,
        cells_mean: overall_cells.mean(),
        cells_stdev: overall_cells.sample_stdev(),
        cars_mean: overall_cars.mean(),
        cars_stdev: overall_cars.sample_stdev(),
    });
    rows
}

/// Figure 3: distribution of per-car total connected time as a fraction
/// of the study period, full and truncated views.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectedTimeResult {
    /// ECDF over per-car connected fraction, durations as reported.
    pub full: Ecdf,
    /// Same with every record truncated at the cap.
    pub truncated: Ecdf,
    /// The truncation cap used.
    pub cap: Duration,
}

impl ConnectedTimeResult {
    /// Means of the two distributions `(full, truncated)`.
    pub fn means(&self) -> (f64, f64) {
        (self.full.mean(), self.truncated.mean())
    }

    /// 99.5th percentiles `(full, truncated)`.
    pub fn p995(&self) -> (Option<f64>, Option<f64>) {
        (self.full.quantile(0.995), self.truncated.quantile(0.995))
    }
}

/// Compute Figure 3. Cars with zero connections contribute 0 when
/// `total_cars` exceeds the connected population, matching a CDF over
/// the whole fleet.
pub fn connected_time_cdf(
    ds: &CdrDataset,
    total_cars: usize,
    cap: Duration,
) -> conncar_types::Result<ConnectedTimeResult> {
    let study_secs = ds.period().duration().as_secs() as f64;
    let mut full: Vec<f64> = Vec::new();
    let mut truncated: Vec<f64> = Vec::new();
    for (_car, records) in ds.by_car() {
        let f: u64 = records.iter().map(|r| r.duration().as_secs()).sum();
        let t: u64 = truncate_records(records, cap)
            .iter()
            .map(|r| r.duration().as_secs())
            .sum();
        full.push(f as f64 / study_secs);
        truncated.push(t as f64 / study_secs);
    }
    // Never-connected remainder of the fleet.
    for _ in full.len()..total_cars {
        full.push(0.0);
        truncated.push(0.0);
    }
    Ok(ConnectedTimeResult {
        full: Ecdf::new(full)?,
        truncated: Ecdf::new(truncated)?,
        cap,
    })
}

/// One car's `(full, truncated)` connected seconds straight from the
/// columns: truncating a record's duration at the cap is `min`, so no
/// truncated record vector is ever allocated.
#[inline]
fn connected_sums(v: &CarView<'_>, cap_secs: u64) -> (u64, u64) {
    let mut full = 0u64;
    let mut truncated = 0u64;
    v.for_each_selected(|i| {
        let dur = v.ends[i].saturating_sub(v.starts[i]);
        full += dur;
        truncated += dur.min(cap_secs);
    });
    (full, truncated)
}

/// Shared tail of the store and fused Figure 3 paths: fractions,
/// never-connected padding, ECDFs (which sort, so the order the sums
/// arrived in cannot matter).
fn assemble_connected_time(
    sums: &[(u64, u64)],
    period: StudyPeriod,
    total_cars: usize,
    cap: Duration,
) -> conncar_types::Result<ConnectedTimeResult> {
    let study_secs = period.duration().as_secs() as f64;
    let n = total_cars.max(sums.len());
    let mut full: Vec<f64> = Vec::with_capacity(n);
    let mut truncated: Vec<f64> = Vec::with_capacity(n);
    for &(f, t) in sums {
        full.push(f as f64 / study_secs);
        truncated.push(t as f64 / study_secs);
    }
    for _ in sums.len()..total_cars {
        full.push(0.0);
        truncated.push(0.0);
    }
    Ok(ConnectedTimeResult {
        full: Ecdf::new(full)?,
        truncated: Ecdf::new(truncated)?,
        cap,
    })
}

/// Figure 3 through the store: the zero-materialization per-car walk
/// computes each car's full and truncated sums from the column slices.
pub fn connected_time_cdf_store(
    store: &CdrStore,
    total_cars: usize,
    cap: Duration,
) -> conncar_types::Result<(ConnectedTimeResult, QueryStats)> {
    let cap_secs = cap.as_secs();
    let (sums, stats) = kernels::fold_views(
        store,
        &Filter::all(),
        Vec::new,
        move |acc: &mut Vec<(u64, u64)>, v| acc.push(connected_sums(v, cap_secs)),
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    );
    Ok((
        assemble_connected_time(&sums, store.period(), total_cars, cap)?,
        stats,
    ))
}

/// Figure 3 as a folder in a [`FusedPass`]; claim the result with
/// [`FusedConnectedTime::finish`] after the pass runs.
pub fn fuse_connected_time(
    pass: &mut FusedPass<'_>,
    total_cars: usize,
    cap: Duration,
) -> FusedConnectedTime {
    let period = pass.store().period();
    let cap_secs = cap.as_secs();
    let handle = pass.add_per_car(
        "connected_time",
        Vec::new,
        move |acc: &mut Vec<(u64, u64)>, v| acc.push(connected_sums(v, cap_secs)),
        |mut a: Vec<(u64, u64)>, mut b| {
            a.append(&mut b);
            a
        },
    );
    FusedConnectedTime {
        handle,
        period,
        total_cars,
        cap,
    }
}

/// Claim ticket for a fused Figure 3 folder.
pub struct FusedConnectedTime {
    handle: FolderHandle<Vec<(u64, u64)>>,
    period: StudyPeriod,
    total_cars: usize,
    cap: Duration,
}

impl FusedConnectedTime {
    /// Assemble the connected-time result from the fused pass's outputs.
    pub fn finish(self, out: &mut FusedOutputs) -> conncar_types::Result<ConnectedTimeResult> {
        let sums = out.take(self.handle);
        assemble_connected_time(&sums, self.period, self.total_cars, self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_types::{BaseStationId, Carrier, StudyPeriod, Timestamp};

    fn rec(car: u32, station: u32, day: u64, hour: u64, dur: u64) -> CdrRecord {
        let start = Timestamp::from_day_hms(day, hour, 0, 0);
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(station), 0, Carrier::C3),
            start,
            end: start + Duration::from_secs(dur),
        }
    }

    fn week_ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn presence_counts_distinct_cars_and_cells() {
        let ds = week_ds(vec![
            rec(1, 1, 0, 8, 100),
            rec(1, 1, 0, 9, 100), // same car+cell, same day: no double count
            rec(2, 2, 0, 8, 100),
            rec(1, 3, 3, 8, 100),
        ]);
        let p = daily_presence(&ds, 10);
        assert_eq!(p.days[0].cars, 2);
        assert_eq!(p.days[0].cells, 2);
        assert_eq!(p.days[3].cars, 1);
        assert_eq!(p.days[1].cars, 0);
        assert_eq!(p.total_cells, 3);
        assert_eq!(p.car_fractions()[0], 0.2);
    }

    #[test]
    fn presence_credits_midnight_straddlers() {
        let start = Timestamp::from_day_hms(0, 23, 59, 0);
        let ds = week_ds(vec![CdrRecord {
            car: CarId(1),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C1),
            start,
            end: start + Duration::from_mins(2),
        }]);
        let p = daily_presence(&ds, 1);
        assert_eq!(p.days[0].cars, 1);
        assert_eq!(p.days[1].cars, 1);
    }

    #[test]
    fn presence_trend_detects_growth() {
        // Cars grow linearly over 7 days: 1, 2, ... 7 cars.
        let mut records = Vec::new();
        for day in 0..7u64 {
            for car in 0..=day {
                records.push(rec(car as u32, 1, day, 10, 60));
            }
        }
        let p = daily_presence(&week_ds(records), 10);
        let t = p.cars_trend.unwrap();
        assert!(t.slope > 0.0);
        assert!(t.r2 > 0.95);
    }

    #[test]
    fn weekday_table_has_eight_rows_and_sane_values() {
        let ds = week_ds(vec![
            rec(1, 1, 0, 8, 100), // Monday
            rec(2, 1, 0, 9, 100),
            rec(1, 1, 5, 8, 100), // Saturday
        ]);
        let p = daily_presence(&ds, 4);
        let rows = weekday_table(&p);
        assert_eq!(rows.len(), 8);
        assert_eq!(rows[0].weekday, Some(DayOfWeek::Monday));
        assert_eq!(rows[7].weekday, None);
        assert!((rows[0].cars_mean - 0.5).abs() < 1e-12); // 2 of 4 cars
        assert!((rows[5].cars_mean - 0.25).abs() < 1e-12); // 1 of 4
        assert_eq!(rows[1].cars_mean, 0.0); // Tuesday: nobody
                                            // Overall mean over 7 days: (0.5 + 0.25) / 7.
        assert!((rows[7].cars_mean - 0.75 / 7.0).abs() < 1e-12);
        // Single observation per weekday in a 1-week study: stdev 0.
        assert_eq!(rows[0].cars_stdev, 0.0);
    }

    #[test]
    fn connected_time_full_vs_truncated() {
        let ds = week_ds(vec![
            rec(1, 1, 0, 8, 1_200), // truncates to 600
            rec(2, 1, 0, 8, 300),
        ]);
        let r = connected_time_cdf(&ds, 3, Duration::from_secs(600)).unwrap();
        let study = 7.0 * 86_400.0;
        let (mf, mt) = r.means();
        assert!((mf - (1_200.0 + 300.0 + 0.0) / 3.0 / study).abs() < 1e-12);
        assert!((mt - (600.0 + 300.0 + 0.0) / 3.0 / study).abs() < 1e-12);
        assert!(mt <= mf);
        assert_eq!(r.full.len(), 3); // includes the never-connected car
    }

    #[test]
    fn store_paths_match_legacy_exactly() {
        let records: Vec<CdrRecord> = (0..160)
            .map(|i| rec(i % 19, i % 7, (i % 7) as u64, (i % 24) as u64, 40 + (i as u64 * 13) % 2_000))
            .collect();
        let ds = week_ds(records);
        let legacy = daily_presence(&ds, 25);
        let legacy_ct = connected_time_cdf(&ds, 25, Duration::from_secs(600)).unwrap();
        for shards in [1, 3, 16] {
            let store = CdrStore::build(&ds, shards);
            let (got, stats) = daily_presence_store(&store, 25);
            assert_eq!(got, legacy, "shards={shards}");
            assert_eq!(stats.rows_scanned as usize, ds.len());
            let (got_ct, _) = connected_time_cdf_store(&store, 25, Duration::from_secs(600)).unwrap();
            assert_eq!(got_ct, legacy_ct, "shards={shards}");
        }
    }

    #[test]
    fn fused_presence_and_connected_time_match_store() {
        let records: Vec<CdrRecord> = (0..160)
            .map(|i| rec(i % 19, i % 7, (i % 7) as u64, (i % 24) as u64, 40 + (i as u64 * 13) % 2_000))
            .collect();
        let ds = week_ds(records);
        let cap = Duration::from_secs(600);
        for shards in [1, 5, 16] {
            let store = CdrStore::build(&ds, shards);
            let (want_p, _) = daily_presence_store(&store, 25);
            let (want_ct, _) = connected_time_cdf_store(&store, 25, cap).unwrap();
            let mut pass = FusedPass::new(&store, Filter::all());
            let p = fuse_daily_presence(&mut pass, 25);
            let ct = fuse_connected_time(&mut pass, 25, cap);
            let mut out = pass.run();
            assert_eq!(p.finish(&mut out), want_p, "shards={shards}");
            assert_eq!(ct.finish(&mut out).unwrap(), want_ct, "shards={shards}");
        }
    }

    #[test]
    fn connected_time_never_exceeds_study() {
        let ds = week_ds((0..50).map(|i| rec(1, 1, i as u64 % 7, 2, 3_000)).collect());
        let r = connected_time_cdf(&ds, 1, Duration::from_secs(600)).unwrap();
        for &v in r.full.values() {
            assert!((0.0..=1.0).contains(&v));
        }
    }
}

//! Shared statistics kit.
//!
//! Everything here is textbook; the value is having one audited
//! implementation used by all analyses so that "median", "decile" and
//! "R²" mean the same thing in every table.

use serde::{Deserialize, Serialize};

/// Welford streaming mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingStats {
    /// Fresh accumulator.
    pub fn new() -> StreamingStats {
        StreamingStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for < 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample (n−1) standard deviation, matching what spreadsheet STDEV
    /// and the paper's Table 1 report.
    pub fn sample_stdev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Population standard deviation.
    pub fn stdev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &StreamingStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Empirical cumulative distribution over a sorted sample.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from any sample; non-finite values are rejected.
    pub fn new(mut values: Vec<f64>) -> conncar_types::Result<Ecdf> {
        if values.iter().any(|v| !v.is_finite()) {
            return Err(conncar_types::Error::InvalidConfig {
                what: "ecdf",
                why: "non-finite sample value".into(),
            });
        }
        values.sort_by(f64::total_cmp);
        Ok(Ecdf { sorted: values })
    }

    /// Build from an already-sorted sample — the caller sorted in some
    /// cheaper domain (integer seconds, say) and mapped monotonically
    /// to `f64`. The invariant is verified in one pass, so the result
    /// is exactly what [`Ecdf::new`] would have produced: non-finite
    /// or descending values are rejected.
    pub fn from_sorted(values: Vec<f64>) -> conncar_types::Result<Ecdf> {
        let sorted_finite = values.iter().all(|v| v.is_finite())
            && values.windows(2).all(|w| w[0] <= w[1]);
        if !sorted_finite {
            return Err(conncar_types::Error::InvalidConfig {
                what: "ecdf",
                why: "unsorted or non-finite sample".into(),
            });
        }
        Ok(Ecdf { sorted: values })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)`: fraction of the sample ≤ `x`.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation (the common "type 7" estimator).
    /// `q` is clamped to `[0, 1]`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let h = q * (self.sorted.len() - 1) as f64;
        let lo = h.floor() as usize;
        let hi = h.ceil() as usize;
        let frac = h - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// The deciles `q10..=q90` plus min and max: 11 values.
    pub fn deciles(&self) -> Option<[f64; 11]> {
        if self.sorted.is_empty() {
            return None;
        }
        let mut out = [0.0; 11];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.quantile(i as f64 / 10.0).expect("non-empty");
        }
        Some(out)
    }

    /// Evenly spaced `(x, F(x))` points for plotting, including both
    /// extremes. `points >= 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || points < 2 {
            return Vec::new();
        }
        (0..points)
            .map(|i| {
                let q = i as f64 / (points - 1) as f64;
                let x = self.quantile(q).expect("non-empty");
                (x, q)
            })
            .collect()
    }

    /// The underlying sorted sample.
    pub fn values(&self) -> &[f64] {
        &self.sorted
    }
}

/// Fixed-width histogram.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
    /// Observations below `lo`.
    underflow: u64,
    /// Observations at or above the top edge.
    overflow: u64,
}

impl Histogram {
    /// `bins` equal-width bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> conncar_types::Result<Histogram> {
        if hi <= lo || bins == 0 {
            return Err(conncar_types::Error::InvalidConfig {
                what: "histogram",
                why: format!("bad range [{lo}, {hi}) with {bins} bins"),
            });
        }
        Ok(Histogram {
            lo,
            width: (hi - lo) / bins as f64,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        })
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.counts.len() {
            self.overflow += 1;
        } else {
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Center of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width
    }

    /// `(underflow, overflow)` counts.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Total observations including out-of-range.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

/// Ordinary-least-squares line fit `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl LinearFit {
    /// Fit over `(x, y)` pairs. `None` for fewer than 2 points or
    /// degenerate x.
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        let n = points.len() as f64;
        if points.len() < 2 {
            return None;
        }
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let mx = sx / n;
        let my = sy / n;
        let sxx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        let ss_tot: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
        let ss_res: f64 = points
            .iter()
            .map(|p| (p.1 - (intercept + slope * p.0)).powi(2))
            .sum();
        let r2 = if ss_tot == 0.0 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        Some(LinearFit {
            slope,
            intercept,
            r2,
        })
    }

    /// Predicted y at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streaming_matches_direct_computation() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = StreamingStats::new();
        for x in xs {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stdev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        // Sample stdev uses n−1.
        assert!((s.sample_stdev() - (32.0_f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn streaming_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = StreamingStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = StreamingStats::new();
        let mut b = StreamingStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        // Merging with empty is identity.
        let mut c = whole;
        c.merge(&StreamingStats::new());
        assert_eq!(c, whole);
        let mut e = StreamingStats::new();
        e.merge(&whole);
        assert_eq!(e.count(), whole.count());
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = StreamingStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn ecdf_basics() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(2.0), 0.5);
        assert_eq!(e.fraction_le(99.0), 1.0);
        assert_eq!(e.median(), Some(2.5));
        assert_eq!(e.quantile(0.0), Some(1.0));
        assert_eq!(e.quantile(1.0), Some(4.0));
        assert!((e.mean() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn ecdf_rejects_nan() {
        assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
        assert!(Ecdf::new(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn ecdf_from_sorted_matches_new_and_verifies() {
        let xs = vec![3.0, 1.0, 2.0, 2.0, 4.0];
        let via_new = Ecdf::new(xs.clone()).unwrap();
        let mut sorted = xs;
        sorted.sort_by(f64::total_cmp);
        assert_eq!(Ecdf::from_sorted(sorted).unwrap(), via_new);
        assert_eq!(Ecdf::from_sorted(vec![]).unwrap(), Ecdf::new(vec![]).unwrap());
        assert!(Ecdf::from_sorted(vec![2.0, 1.0]).is_err());
        assert!(Ecdf::from_sorted(vec![1.0, f64::NAN]).is_err());
        assert!(Ecdf::from_sorted(vec![f64::INFINITY]).is_err());
    }

    #[test]
    fn ecdf_quantile_interpolates() {
        let e = Ecdf::new(vec![0.0, 10.0]).unwrap();
        assert_eq!(e.quantile(0.25), Some(2.5));
        assert_eq!(e.quantile(0.73), Some(7.3));
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(vec![]).unwrap();
        assert!(e.is_empty());
        assert_eq!(e.quantile(0.5), None);
        assert_eq!(e.deciles(), None);
        assert!(e.curve(10).is_empty());
        assert_eq!(e.fraction_le(0.0), 0.0);
    }

    #[test]
    fn ecdf_deciles_monotone() {
        let e = Ecdf::new((0..1_000).map(|i| (i as f64).sqrt()).collect()).unwrap();
        let d = e.deciles().unwrap();
        for w in d.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(d[0], e.quantile(0.0).unwrap());
        assert_eq!(d[10], e.quantile(1.0).unwrap());
    }

    #[test]
    fn ecdf_curve_endpoints() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]).unwrap();
        let c = e.curve(5);
        assert_eq!(c.len(), 5);
        assert_eq!(c[0], (1.0, 0.0));
        assert_eq!(c[4], (3.0, 1.0));
        for w in c.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5).unwrap();
        for x in [0.0, 1.9, 2.0, 9.99, 10.0, -0.1, 55.0] {
            h.push(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 7);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        assert!((h.bin_center(4) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_rejects_bad_config() {
        assert!(Histogram::new(1.0, 1.0, 5).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
        assert!(Histogram::new(2.0, 1.0, 5).is_err());
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 43.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_noisy_flatline_has_low_r2() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64, if i % 2 == 0 { 1.0 } else { -1.0 }))
            .collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!(f.r2 < 0.1, "r2 {}", f.r2);
        assert!(f.slope.abs() < 0.05);
    }

    #[test]
    fn linear_fit_degenerate_inputs() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
        // Constant y: perfect fit by convention.
        let f = LinearFit::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r2, 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn ecdf_quantile_within_sample_bounds(
            mut xs in proptest::collection::vec(-1e6f64..1e6, 1..200),
            q in 0.0f64..=1.0,
        ) {
            let e = Ecdf::new(xs.clone()).unwrap();
            let v = e.quantile(q).unwrap();
            xs.sort_by(f64::total_cmp);
            prop_assert!(v >= xs[0] - 1e-9);
            prop_assert!(v <= xs[xs.len() - 1] + 1e-9);
        }

        #[test]
        fn ecdf_fraction_is_monotone(
            xs in proptest::collection::vec(-1e3f64..1e3, 1..100),
            a in -2e3f64..2e3,
            b in -2e3f64..2e3,
        ) {
            let e = Ecdf::new(xs).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(e.fraction_le(lo) <= e.fraction_le(hi));
        }

        #[test]
        fn streaming_merge_associative(
            xs in proptest::collection::vec(-1e3f64..1e3, 0..60),
            ys in proptest::collection::vec(-1e3f64..1e3, 0..60),
        ) {
            let mut a = StreamingStats::new();
            for &x in &xs { a.push(x); }
            let mut b = StreamingStats::new();
            for &y in &ys { b.push(y); }
            let mut merged = a;
            merged.merge(&b);
            let mut seq = StreamingStats::new();
            for &x in xs.iter().chain(&ys) { seq.push(x); }
            prop_assert_eq!(merged.count(), seq.count());
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - seq.variance()).abs() < 1e-5);
        }

        #[test]
        fn histogram_conserves_count(
            xs in proptest::collection::vec(-10.0f64..20.0, 0..300),
        ) {
            let mut h = Histogram::new(0.0, 10.0, 7).unwrap();
            for &x in &xs { h.push(x); }
            prop_assert_eq!(h.total(), xs.len() as u64);
        }
    }
}

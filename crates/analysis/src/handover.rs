//! Handover analysis: §4.5 (spatial behaviour).
//!
//! The radio logs cannot see every cell a car traverses — idle cars
//! don't connect — so the paper bounds handovers from below using
//! *mobility sessions*: runs of connections with gaps ≤ 10 minutes. The
//! cell-sequence transitions inside those sessions are classified by the
//! hierarchy taxonomy (inter-base-station / inter-sector / inter-carrier
//! / inter-RAT) and summarized as percentiles.

use crate::stats::Ecdf;
use conncar_cdr::{CdrDataset, SessionConfig, Sessionizer};
use conncar_types::id::HandoverKind;
use serde::{Deserialize, Serialize};

/// §4.5's summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HandoverResult {
    /// Distribution of handovers per mobility session.
    pub per_session: Ecdf,
    /// Counts by handover kind, indexed like [`HandoverKind::ALL`].
    pub by_kind: [u64; 4],
    /// Number of mobility sessions analyzed.
    pub sessions: usize,
}

impl HandoverResult {
    /// Median handovers per session.
    pub fn median(&self) -> Option<f64> {
        self.per_session.median()
    }

    /// The 70th and 90th percentiles the paper quotes.
    pub fn p70_p90(&self) -> (Option<f64>, Option<f64>) {
        (
            self.per_session.quantile(0.70),
            self.per_session.quantile(0.90),
        )
    }

    /// Fraction of handovers of a kind (0 when none at all).
    pub fn kind_fraction(&self, kind: HandoverKind) -> f64 {
        let total: u64 = self.by_kind.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let idx = HandoverKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        self.by_kind[idx] as f64 / total as f64
    }
}

/// Run the §4.5 analysis with a configurable session gap (paper: 10
/// minutes).
pub fn handover_analysis(
    ds: &CdrDataset,
    gap: SessionConfig,
) -> conncar_types::Result<HandoverResult> {
    let sessions = Sessionizer::new(gap).sessions(ds);
    let mut per_session: Vec<f64> = Vec::with_capacity(sessions.len());
    let mut by_kind = [0u64; 4];
    for s in &sessions {
        per_session.push(s.handover_count() as f64);
        for w in s.cells.windows(2) {
            if let Some(kind) = w[0].handover_kind(w[1]) {
                let idx = HandoverKind::ALL
                    .iter()
                    .position(|k| *k == kind)
                    .expect("kind in ALL");
                by_kind[idx] += 1;
            }
        }
    }
    Ok(HandoverResult {
        per_session: Ecdf::new(per_session)?,
        by_kind,
        sessions: sessions.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_types::{
        BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp,
    };

    fn rec(car: u32, cell: CellId, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell,
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    fn cell(st: u32, sector: u8, carrier: Carrier) -> CellId {
        CellId::new(BaseStationId(st), sector, carrier)
    }

    fn ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn drive_chain_counts_inter_bs_handovers() {
        // Car hands across 4 stations with small gaps.
        let records = (0..4u32)
            .map(|i| {
                rec(
                    1,
                    cell(i, 0, Carrier::C3),
                    i as u64 * 200,
                    i as u64 * 200 + 150,
                )
            })
            .collect();
        let r = handover_analysis(&ds(records), SessionConfig::MOBILITY).unwrap();
        assert_eq!(r.sessions, 1);
        assert_eq!(r.median(), Some(3.0));
        assert_eq!(r.by_kind[0], 3); // all inter-base-station
        assert_eq!(r.kind_fraction(HandoverKind::InterBaseStation), 1.0);
        assert_eq!(r.kind_fraction(HandoverKind::InterSector), 0.0);
    }

    #[test]
    fn taxonomy_is_classified() {
        let records = vec![
            rec(1, cell(1, 0, Carrier::C3), 0, 100),
            rec(1, cell(1, 1, Carrier::C3), 100, 200), // inter-sector
            rec(1, cell(1, 1, Carrier::C4), 200, 300), // inter-carrier
            rec(1, cell(1, 1, Carrier::C2), 300, 400), // inter-RAT
            rec(1, cell(2, 0, Carrier::C2), 400, 500), // inter-BS
        ];
        let r = handover_analysis(&ds(records), SessionConfig::MOBILITY).unwrap();
        assert_eq!(r.by_kind, [1, 1, 1, 1]);
    }

    #[test]
    fn long_gaps_split_sessions_and_reset_counts() {
        let records = vec![
            rec(1, cell(1, 0, Carrier::C3), 0, 100),
            rec(1, cell(2, 0, Carrier::C3), 100, 200),
            // > 10 minutes of silence.
            rec(1, cell(3, 0, Carrier::C3), 2_000, 2_100),
        ];
        let r = handover_analysis(&ds(records), SessionConfig::MOBILITY).unwrap();
        assert_eq!(r.sessions, 2);
        // Sessions have 1 and 0 handovers; the 2→3 jump is not counted.
        assert_eq!(r.by_kind.iter().sum::<u64>(), 1);
        assert_eq!(r.per_session.quantile(1.0), Some(1.0));
    }

    #[test]
    fn stationary_car_has_zero_handovers() {
        let records = (0..5u64)
            .map(|i| rec(1, cell(1, 0, Carrier::C3), i * 700, i * 700 + 100))
            .collect();
        let r = handover_analysis(&ds(records), SessionConfig::MOBILITY).unwrap();
        assert_eq!(r.sessions, 1);
        assert_eq!(r.median(), Some(0.0));
        assert_eq!(r.by_kind, [0; 4]);
    }

    #[test]
    fn empty_dataset() {
        let r = handover_analysis(&ds(vec![]), SessionConfig::MOBILITY).unwrap();
        assert_eq!(r.sessions, 0);
        assert_eq!(r.median(), None);
        assert_eq!(r.kind_fraction(HandoverKind::InterBaseStation), 0.0);
    }
}

//! 24×7 weekly usage matrices: Figures 4 and 5.
//!
//! §4.2 encodes "important periods during the week in 24×7 matrices,
//! where each hour of the day for 7 days is represented by a shaded
//! box", and renders each car's connection frequency the same way, in
//! the car's local time. Aggregating a car's whole study onto one weekly
//! matrix is what surfaces its habitual pattern through day-to-day
//! noise.

use conncar_cdr::CdrRecord;
use conncar_types::{DayOfWeek, StudyPeriod, TimeZone, SECONDS_PER_HOUR};
use serde::{Deserialize, Serialize};

/// A 7×24 matrix of per-hour-of-week values. Row = weekday (Monday
/// first), column = local hour.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeeklyMatrix {
    /// Row-major values: `values[day][hour]`.
    pub values: [[f64; 24]; 7],
}

impl WeeklyMatrix {
    /// All-zero matrix.
    pub fn zero() -> WeeklyMatrix {
        WeeklyMatrix {
            values: [[0.0; 24]; 7],
        }
    }

    /// Value at (weekday, hour).
    pub fn get(&self, day: DayOfWeek, hour: u8) -> f64 {
        self.values[day.index()][hour as usize]
    }

    /// Mutable cell access.
    pub fn get_mut(&mut self, day: DayOfWeek, hour: u8) -> &mut f64 {
        &mut self.values[day.index()][hour as usize]
    }

    /// Largest value (0 for an all-zero matrix).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(0.0f64, f64::max)
    }

    /// Sum of all cells.
    pub fn total(&self) -> f64 {
        self.values.iter().flatten().sum()
    }

    /// Scale so the maximum becomes 1 (no-op for an all-zero matrix).
    pub fn normalized(&self) -> WeeklyMatrix {
        let m = self.max();
        if m == 0.0 {
            return self.clone();
        }
        let mut out = self.clone();
        for row in &mut out.values {
            for v in row.iter_mut() {
                *v /= m;
            }
        }
        out
    }

    /// Fraction of total mass that falls inside a reference mask (used
    /// to score how "commute-like" or "busy-hour" a car is).
    pub fn mass_within(&self, mask: &WeeklyMatrix) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        let mut inside = 0.0;
        for d in 0..7 {
            for h in 0..24 {
                if mask.values[d][h] > 0.0 {
                    inside += self.values[d][h];
                }
            }
        }
        inside / total
    }

    /// Regularity score in `[0, 1]`: concentration of mass in few cells
    /// (normalized inverse entropy). A car that always connects in the
    /// same hours scores high; diffuse usage scores low.
    pub fn regularity(&self) -> f64 {
        let total = self.total();
        if total == 0.0 {
            return 0.0;
        }
        let mut entropy = 0.0;
        for v in self.values.iter().flatten() {
            if *v > 0.0 {
                let p = v / total;
                entropy -= p * p.ln();
            }
        }
        let max_entropy = (168.0f64).ln();
        1.0 - entropy / max_entropy
    }
}

/// Build one car's 24×7 connection-frequency matrix (Figure 5).
///
/// Each record increments every local hour-of-week cell it overlaps,
/// once per record per hour — the paper counts *connections*, not
/// seconds, so a long session shades each hour it touches.
pub fn car_matrix(
    records: &[CdrRecord],
    period: StudyPeriod,
    tz: TimeZone,
) -> WeeklyMatrix {
    let mut m = WeeklyMatrix::zero();
    for r in records {
        let start_local = tz.to_local(r.start);
        let end_local = tz.to_local(r.end);
        let first_hour = start_local.as_secs() / SECONDS_PER_HOUR;
        // Exclusive end: a record ending exactly on the hour does not
        // touch the next hour.
        let last_hour = (end_local.as_secs().saturating_sub(1)) / SECONDS_PER_HOUR;
        for hour_abs in first_hour..=last_hour {
            let day = hour_abs / 24;
            let weekday = period.start_day().plus(day as usize);
            let hour = conncar_types::hour_of_day_from_hours(hour_abs);
            *m.get_mut(weekday, hour) += 1.0;
        }
    }
    m
}

/// The three reference masks of Figure 4.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReferenceMatrices {
    /// Weekday commute peaks (7–9 and 16–19 local, Mon–Fri).
    pub commute_peaks: WeeklyMatrix,
    /// Network busy hours (14–24 local, Mon–Fri; 12–23 weekends).
    pub network_peaks: WeeklyMatrix,
    /// The weekend (all hours, Sat–Sun).
    pub weekend: WeeklyMatrix,
}

/// Build Figure 4's reference matrices.
pub fn reference_matrices() -> ReferenceMatrices {
    let mut commute = WeeklyMatrix::zero();
    let mut network = WeeklyMatrix::zero();
    let mut weekend = WeeklyMatrix::zero();
    for day in DayOfWeek::ALL {
        for hour in 0u8..24 {
            if day.is_weekday() {
                if (7..9).contains(&hour) || (16..19).contains(&hour) {
                    *commute.get_mut(day, hour) = 1.0;
                }
                if hour >= 14 {
                    *network.get_mut(day, hour) = 1.0;
                }
            } else {
                *weekend.get_mut(day, hour) = 1.0;
                if (12..23).contains(&hour) {
                    *network.get_mut(day, hour) = 1.0;
                }
            }
        }
    }
    ReferenceMatrices {
        commute_peaks: commute,
        network_peaks: network,
        weekend,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_types::{
        BaseStationId, CarId, Carrier, CellId, Duration, Timestamp,
    };

    fn rec(day: u64, hour: u64, min: u64, dur_secs: u64) -> CdrRecord {
        let start = Timestamp::from_day_hms(day, hour, min, 0);
        CdrRecord {
            car: CarId(1),
            cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
            start,
            end: start + Duration::from_secs(dur_secs),
        }
    }

    fn period() -> StudyPeriod {
        StudyPeriod::new(DayOfWeek::Monday, 14).unwrap()
    }

    #[test]
    fn single_record_shades_its_hour() {
        let m = car_matrix(&[rec(0, 8, 10, 600)], period(), TimeZone::UTC);
        assert_eq!(m.get(DayOfWeek::Monday, 8), 1.0);
        assert_eq!(m.total(), 1.0);
    }

    #[test]
    fn long_record_shades_every_hour_it_touches() {
        // 7:30 → 10:30 on a Tuesday: hours 7, 8, 9, 10.
        let m = car_matrix(&[rec(1, 7, 30, 3 * 3_600)], period(), TimeZone::UTC);
        for h in 7..=10 {
            assert_eq!(m.get(DayOfWeek::Tuesday, h), 1.0, "hour {h}");
        }
        assert_eq!(m.total(), 4.0);
    }

    #[test]
    fn record_ending_on_the_hour_excludes_next_hour() {
        let m = car_matrix(&[rec(0, 8, 0, 3_600)], period(), TimeZone::UTC);
        assert_eq!(m.get(DayOfWeek::Monday, 8), 1.0);
        assert_eq!(m.get(DayOfWeek::Monday, 9), 0.0);
    }

    #[test]
    fn timezone_shifts_cells() {
        // 13:00 UTC on Monday = 08:00 US Eastern Monday.
        let m = car_matrix(&[rec(0, 13, 0, 600)], period(), TimeZone::US_EASTERN);
        assert_eq!(m.get(DayOfWeek::Monday, 8), 1.0);
        // 02:00 UTC on Tuesday = 21:00 Eastern Monday.
        let m = car_matrix(&[rec(1, 2, 0, 600)], period(), TimeZone::US_EASTERN);
        assert_eq!(m.get(DayOfWeek::Monday, 21), 1.0);
    }

    #[test]
    fn weeks_aggregate_onto_one_matrix() {
        // Same Monday hour in weeks 1 and 2.
        let m = car_matrix(
            &[rec(0, 8, 0, 600), rec(7, 8, 0, 600)],
            period(),
            TimeZone::UTC,
        );
        assert_eq!(m.get(DayOfWeek::Monday, 8), 2.0);
    }

    #[test]
    fn normalization_and_max() {
        let m = car_matrix(
            &[rec(0, 8, 0, 600), rec(7, 8, 0, 600), rec(2, 20, 0, 600)],
            period(),
            TimeZone::UTC,
        );
        assert_eq!(m.max(), 2.0);
        let n = m.normalized();
        assert_eq!(n.get(DayOfWeek::Monday, 8), 1.0);
        assert_eq!(n.get(DayOfWeek::Wednesday, 20), 0.5);
        // Zero matrix normalizes to itself.
        assert_eq!(WeeklyMatrix::zero().normalized(), WeeklyMatrix::zero());
    }

    #[test]
    fn reference_masks_have_expected_shape() {
        let refs = reference_matrices();
        assert_eq!(refs.commute_peaks.get(DayOfWeek::Monday, 8), 1.0);
        assert_eq!(refs.commute_peaks.get(DayOfWeek::Monday, 12), 0.0);
        assert_eq!(refs.commute_peaks.get(DayOfWeek::Saturday, 8), 0.0);
        assert_eq!(refs.network_peaks.get(DayOfWeek::Friday, 20), 1.0);
        assert_eq!(refs.network_peaks.get(DayOfWeek::Friday, 10), 0.0);
        assert_eq!(refs.weekend.get(DayOfWeek::Sunday, 3), 1.0);
        assert_eq!(refs.weekend.get(DayOfWeek::Thursday, 3), 0.0);
        // Commute mask: 5 days × 5 hours.
        assert_eq!(refs.commute_peaks.total(), 25.0);
    }

    #[test]
    fn mass_within_mask() {
        let refs = reference_matrices();
        // A pure commuter: all mass in commute hours.
        let m = car_matrix(
            &[rec(0, 7, 30, 1_800), rec(0, 17, 0, 1_800)],
            period(),
            TimeZone::UTC,
        );
        assert!(m.mass_within(&refs.commute_peaks) > 0.99);
        // A 3 a.m. driver: none.
        let night = car_matrix(&[rec(0, 3, 0, 600)], period(), TimeZone::UTC);
        assert_eq!(night.mass_within(&refs.commute_peaks), 0.0);
        assert_eq!(WeeklyMatrix::zero().mass_within(&refs.weekend), 0.0);
    }

    #[test]
    fn regularity_orders_habitual_vs_diffuse() {
        // Habitual: 20 connections all in one hour cell.
        let habitual = car_matrix(
            &(0..20).map(|w| rec(w % 14, 8, 0, 600)).collect::<Vec<_>>(),
            period(),
            TimeZone::UTC,
        );
        // Diffuse: 21 connections spread across all week.
        let diffuse = car_matrix(
            &(0..21u64)
                .map(|i| rec(i % 7, (i * 5) % 24, 0, 600))
                .collect::<Vec<_>>(),
            period(),
            TimeZone::UTC,
        );
        assert!(habitual.regularity() > diffuse.regularity());
        assert_eq!(WeeklyMatrix::zero().regularity(), 0.0);
        assert!(habitual.regularity() <= 1.0);
    }
}

//! Car segmentation: Figure 6 (days on network), Table 2 (rare/common ×
//! busy/non-busy/both) and Figure 7 (time spent in busy cells).
//!
//! §4.3's recipe combines three ingredients: per-car usage, per-bin
//! busy-cell classification, and per-car day counts. The
//! [`CarBusyProfile`] computed here is that joined view; the table and
//! both figures are projections of it.

use crate::busy::NetworkLoadModel;
use crate::stats::Ecdf;
use conncar_cdr::CdrDataset;
use conncar_store::{
    kernels, CarView, CdrStore, Filter, FolderHandle, FusedOutputs, FusedPass, QueryStats,
};
use conncar_types::{CarId, Timestamp};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Per-car summary joining usage and network conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarBusyProfile {
    /// The car.
    pub car: CarId,
    /// Number of distinct study days with at least one connection.
    pub days_active: u32,
    /// Connected seconds spent in bins where the serving cell was busy.
    pub busy_secs: u64,
    /// Total connected seconds.
    pub total_secs: u64,
}

impl CarBusyProfile {
    /// Fraction of connected time in busy cells (0 for a silent car).
    pub fn busy_fraction(&self) -> f64 {
        if self.total_secs == 0 {
            0.0
        } else {
            self.busy_secs as f64 / self.total_secs as f64
        }
    }
}

/// Compute every connected car's profile.
pub fn car_profiles(ds: &CdrDataset, model: &NetworkLoadModel<'_>) -> Vec<CarBusyProfile> {
    ds.by_car()
        .map(|(car, records)| profile_one(car, records, model))
        .collect()
}

/// Car profiles through the store: the zero-materialization per-car
/// view kernel applies the same per-record accounting straight off the
/// columns; cars come back in ascending order, which is exactly
/// `by_car`'s order, so the vector equals [`car_profiles`].
pub fn car_profiles_store(
    store: &CdrStore,
    model: &NetworkLoadModel<'_>,
) -> (Vec<CarBusyProfile>, QueryStats) {
    let (per_car, stats) =
        kernels::fold_per_car_views(store, &Filter::all(), |v| profile_one_view(v, model));
    (per_car.into_iter().map(|(_, p)| p).collect(), stats)
}

/// §4.3 as a folder in a [`FusedPass`]; claim the profiles with
/// [`FusedProfiles::finish`] after the pass runs.
pub fn fuse_car_profiles<'p>(
    pass: &mut FusedPass<'p>,
    model: &'p NetworkLoadModel<'p>,
) -> FusedProfiles {
    let handle = pass.add_per_car(
        "profiles",
        Vec::new,
        move |acc: &mut Vec<CarBusyProfile>, v| acc.push(profile_one_view(v, model)),
        |mut a: Vec<CarBusyProfile>, mut b| {
            a.append(&mut b);
            a
        },
    );
    FusedProfiles { handle }
}

/// Claim ticket for a fused car-profile folder.
pub struct FusedProfiles {
    handle: FolderHandle<Vec<CarBusyProfile>>,
}

impl FusedProfiles {
    /// Claim the profiles, sorted by car — [`car_profiles`]' order.
    pub fn finish(self, out: &mut FusedOutputs) -> Vec<CarBusyProfile> {
        let mut profiles = out.take(self.handle);
        profiles.sort_by_key(|p| p.car);
        profiles
    }
}

/// One car's joined profile straight from its column view.
///
/// Days-active exploits the canonical row order: starts are ascending
/// within a car, so each record's day interval begins at or after the
/// previous one's, and a single left-to-right sweep counts the union of
/// the `[first_day, last_day]` intervals without a set.
fn profile_one_view(v: &CarView<'_>, model: &NetworkLoadModel<'_>) -> CarBusyProfile {
    let mut days = 0u64;
    let mut last_day: Option<u64> = None;
    let mut busy = 0u64;
    let mut total = 0u64;
    v.for_each_selected(|i| {
        let d0 = v.starts[i] / 86_400;
        let dl = v.ends[i].saturating_sub(1) / 86_400;
        if dl >= d0 {
            let lo = match last_day {
                Some(l) if d0 <= l => l + 1,
                _ => d0,
            };
            if dl >= lo {
                days += dl - lo + 1;
                last_day = Some(dl);
            }
        }
        let (b, t) = model.busy_split_span(
            v.cells[i],
            Timestamp::from_secs(v.starts[i]),
            Timestamp::from_secs(v.ends[i]),
        );
        busy += b;
        total += t;
    });
    CarBusyProfile {
        car: v.car,
        days_active: conncar_types::saturating_u32(days),
        busy_secs: busy,
        total_secs: total,
    }
}

/// One car's joined profile from its (canonically ordered) records.
fn profile_one(
    car: CarId,
    records: &[conncar_cdr::CdrRecord],
    model: &NetworkLoadModel<'_>,
) -> CarBusyProfile {
    let mut days: BTreeSet<u64> = BTreeSet::new();
    let mut busy = 0u64;
    let mut total = 0u64;
    for r in records {
        let last_day = (r.end.as_secs().saturating_sub(1)) / 86_400;
        for d in r.start.day()..=last_day {
            days.insert(d);
        }
        let (b, t) = model.busy_split_secs(r);
        busy += b;
        total += t;
    }
    CarBusyProfile {
        car,
        days_active: conncar_types::saturating_u32(days.len() as u64),
        busy_secs: busy,
        total_secs: total,
    }
}

/// Figure 6: histogram of days-on-network. `counts[d]` = number of cars
/// active on exactly `d` days; index 0 counts cars with records on zero
/// days (possible only when profiles are synthesized externally).
pub fn days_histogram(profiles: &[CarBusyProfile], study_days: u32) -> Vec<u64> {
    let mut counts = vec![0u64; study_days as usize + 1];
    for p in profiles {
        let d = (p.days_active as usize).min(study_days as usize);
        counts[d] += 1;
    }
    counts
}

/// Busy-hour affinity classes of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BusyAffinity {
    /// ≥ 65% of connected time in busy cells.
    Busy,
    /// ≤ 35% of connected time in busy cells.
    NonBusy,
    /// In between: balanced across both.
    Both,
}

/// Classify one car per §4.3's 65%/35% rule.
pub fn busy_affinity(profile: &CarBusyProfile, hi: f64, lo: f64) -> BusyAffinity {
    let f = profile.busy_fraction();
    if f >= hi {
        BusyAffinity::Busy
    } else if f <= lo {
        BusyAffinity::NonBusy
    } else {
        BusyAffinity::Both
    }
}

/// One Table 2 row pair (for one rarity cutoff): fractions of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentRow {
    /// The rarity cutoff in days (≤ cutoff ⇒ rare).
    pub cutoff_days: u32,
    /// Rare × (busy, non-busy, both) fleet fractions.
    pub rare: [f64; 3],
    /// Common × (busy, non-busy, both) fleet fractions.
    pub common: [f64; 3],
}

impl SegmentRow {
    /// Total rare fraction.
    pub fn rare_total(&self) -> f64 {
        self.rare.iter().sum()
    }

    /// Total common fraction.
    pub fn common_total(&self) -> f64 {
        self.common.iter().sum()
    }
}

/// Table 2: segment the fleet at a rarity cutoff with the 65%/35% rule.
///
/// Fractions are over the *connected* car population (cars present in
/// the data set, as in the paper).
pub fn segment(profiles: &[CarBusyProfile], cutoff_days: u32, hi: f64, lo: f64) -> SegmentRow {
    let n = profiles.len().max(1) as f64;
    let mut rare = [0usize; 3];
    let mut common = [0usize; 3];
    for p in profiles {
        let idx = match busy_affinity(p, hi, lo) {
            BusyAffinity::Busy => 0,
            BusyAffinity::NonBusy => 1,
            BusyAffinity::Both => 2,
        };
        if p.days_active <= cutoff_days {
            rare[idx] += 1;
        } else {
            common[idx] += 1;
        }
    }
    SegmentRow {
        cutoff_days,
        rare: rare.map(|c| c as f64 / n),
        common: common.map(|c| c as f64 / n),
    }
}

/// Figure 7: the distribution of per-car busy-time fraction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusyTimeResult {
    /// ECDF over per-car busy fraction.
    pub ecdf: Ecdf,
    /// Fraction of cars with > 50% of time in busy cells.
    pub over_half: f64,
    /// Fraction of cars with ≥ 99% of time in busy cells ("all their
    /// time on busy radios").
    pub always_busy: f64,
}

/// Compute Figure 7 from the profiles.
pub fn busy_time_distribution(
    profiles: &[CarBusyProfile],
) -> conncar_types::Result<BusyTimeResult> {
    let fracs: Vec<f64> = profiles.iter().map(|p| p.busy_fraction()).collect();
    let n = fracs.len().max(1) as f64;
    let over_half = fracs.iter().filter(|&&f| f > 0.5).count() as f64 / n;
    let always_busy = fracs.iter().filter(|&&f| f >= 0.99).count() as f64 / n;
    Ok(BusyTimeResult {
        ecdf: Ecdf::new(fracs)?,
        over_half,
        always_busy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(car: u32, days: u32, busy: u64, total: u64) -> CarBusyProfile {
        CarBusyProfile {
            car: CarId(car),
            days_active: days,
            busy_secs: busy,
            total_secs: total,
        }
    }

    #[test]
    fn busy_fraction_handles_silence() {
        assert_eq!(profile(1, 0, 0, 0).busy_fraction(), 0.0);
        assert_eq!(profile(1, 1, 50, 100).busy_fraction(), 0.5);
    }

    #[test]
    fn affinity_rule_thresholds() {
        assert_eq!(
            busy_affinity(&profile(1, 1, 65, 100), 0.65, 0.35),
            BusyAffinity::Busy
        );
        assert_eq!(
            busy_affinity(&profile(1, 1, 35, 100), 0.65, 0.35),
            BusyAffinity::NonBusy
        );
        assert_eq!(
            busy_affinity(&profile(1, 1, 50, 100), 0.65, 0.35),
            BusyAffinity::Both
        );
    }

    #[test]
    fn histogram_counts_days() {
        let profiles = vec![
            profile(1, 5, 0, 10),
            profile(2, 5, 0, 10),
            profile(3, 90, 0, 10),
            profile(4, 200, 0, 10), // clamps to study length
        ];
        let h = days_histogram(&profiles, 90);
        assert_eq!(h.len(), 91);
        assert_eq!(h[5], 2);
        assert_eq!(h[90], 2);
        assert_eq!(h.iter().sum::<u64>(), 4);
    }

    #[test]
    fn segmentation_partitions_fleet() {
        let profiles = vec![
            profile(1, 5, 90, 100),   // rare, busy
            profile(2, 8, 0, 100),    // rare, non-busy
            profile(3, 50, 50, 100),  // common, both
            profile(4, 80, 10, 100),  // common, non-busy
        ];
        let row = segment(&profiles, 10, 0.65, 0.35);
        assert_eq!(row.cutoff_days, 10);
        assert!((row.rare_total() - 0.5).abs() < 1e-12);
        assert!((row.common_total() - 0.5).abs() < 1e-12);
        assert!((row.rare[0] - 0.25).abs() < 1e-12);
        assert!((row.rare[1] - 0.25).abs() < 1e-12);
        assert_eq!(row.rare[2], 0.0);
        assert!((row.common[2] - 0.25).abs() < 1e-12);
        // Fractions always sum to 1.
        assert!((row.rare_total() + row.common_total() - 1.0).abs() < 1e-12);
        // Raising the cutoff moves cars from common to rare.
        let row30 = segment(&profiles, 60, 0.65, 0.35);
        assert!(row30.rare_total() > row.rare_total());
    }

    #[test]
    fn busy_time_distribution_tail_counts() {
        let mut profiles: Vec<CarBusyProfile> =
            (0..96).map(|i| profile(i, 10, 10, 100)).collect(); // 10% busy
        profiles.push(profile(96, 10, 60, 100)); // 60%
        profiles.push(profile(97, 10, 70, 100)); // 70%
        profiles.push(profile(98, 10, 99, 100)); // 99%
        profiles.push(profile(99, 10, 100, 100)); // 100%
        let r = busy_time_distribution(&profiles).unwrap();
        assert!((r.over_half - 0.04).abs() < 1e-12);
        assert!((r.always_busy - 0.02).abs() < 1e-12);
        assert_eq!(r.ecdf.len(), 100);
    }

    #[test]
    fn profiles_integrate_with_model() {
        // End-to-end smoke: build a tiny dataset over a real region and
        // check accounting identities.
        use conncar_cdr::CdrRecord;
        use conncar_geo::{Region, RegionConfig};
        use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
        use conncar_types::{Carrier, CellId, DayOfWeek, Duration, StudyPeriod, Timestamp};

        let region = Region::generate(&RegionConfig::small(), 42);
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
        let ledger = PrbLedger::new(period);
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), period, -5);
        let model = NetworkLoadModel::new(&ledger, &bg, region.deployment());
        let cell = CellId::new(region.deployment().stations()[0].id, 0, Carrier::C3);
        let start = Timestamp::from_day_hms(1, 18, 0, 0);
        let ds = CdrDataset::new(
            period,
            vec![
                CdrRecord {
                    car: CarId(1),
                    cell,
                    start,
                    end: start + Duration::from_mins(30),
                },
                CdrRecord {
                    car: CarId(1),
                    cell,
                    start: Timestamp::from_day_hms(3, 9, 0, 0),
                    end: Timestamp::from_day_hms(3, 9, 10, 0),
                },
            ],
        );
        let profiles = car_profiles(&ds, &model);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.days_active, 2);
        assert_eq!(p.total_secs, 30 * 60 + 10 * 60);
        assert!(p.busy_secs <= p.total_secs);
        // The store path reproduces the same profiles, any shard count,
        // and so does the fused-pass folder.
        for shards in [1, 5] {
            let store = CdrStore::build(&ds, shards);
            let (got, stats) = car_profiles_store(&store, &model);
            assert_eq!(got, profiles, "shards={shards}");
            assert_eq!(stats.rows_scanned as usize, ds.len());
            let mut pass = FusedPass::new(&store, Filter::all());
            let h = fuse_car_profiles(&mut pass, &model);
            let mut out = pass.run();
            assert_eq!(h.finish(&mut out), profiles, "fused shards={shards}");
        }
    }
}

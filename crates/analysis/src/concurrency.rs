//! Concurrent cars per cell: Figures 8 and 10, and the profile vectors
//! behind Figure 11.
//!
//! §4.4: *"We declare cars concurrent if their connections straddle a
//! 15-minute time bin of the day."* The [`ConcurrencyIndex`] counts, for
//! every (cell, bin), the distinct cars with a connection overlapping
//! that bin. Storage is sparse per cell, so a quiet network costs
//! nothing.

use conncar_cdr::CdrDataset;
use conncar_store::{
    kernels, CarView, CdrStore, Filter, FolderHandle, FusedOutputs, FusedPass, QueryStats,
};
use conncar_types::{
    BaseStationId, BinIndex, CarId, CellId, DayBin, StudyPeriod, Timestamp, ALL_CARRIERS,
    BINS_PER_DAY, BINS_PER_WEEK,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Sparse per-cell concurrent-car counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConcurrencyIndex {
    period: StudyPeriod,
    /// Per cell: sorted `(bin, distinct car count)` pairs.
    map: BTreeMap<CellId, Vec<(u64, u32)>>,
}

impl ConcurrencyIndex {
    /// Build from a dataset's records.
    pub fn build(ds: &CdrDataset) -> ConcurrencyIndex {
        // (cell, bin, car) triples, deduplicated: a car straddling a bin
        // with several short records still counts once.
        let mut triples: Vec<(CellId, u64, CarId)> = Vec::new();
        for r in ds.records() {
            for bin in BinIndex::covering(r.start, r.end) {
                if bin.0 < ds.period().total_bins() {
                    triples.push((r.cell, bin.0, r.car));
                }
            }
        }
        triples.sort();
        triples.dedup();
        Self::from_triples(ds.period(), triples)
    }

    /// Build through the store. The column walk expands packed
    /// `(cell, bin, car)` keys and [`from_packed`] sorts the whole
    /// relation once, so the index equals [`ConcurrencyIndex::build`]
    /// for any shard count — the packing is order-preserving, making
    /// the integer sort interchangeable with the tuple sort.
    ///
    /// [`from_packed`]: ConcurrencyIndex::from_packed
    pub fn build_from_store(store: &CdrStore) -> (ConcurrencyIndex, QueryStats) {
        let limit = store.period().total_bins();
        let (keys, stats) = kernels::fold_views(
            store,
            &Filter::all(),
            Vec::new,
            move |acc: &mut Vec<u128>, v| push_packed(acc, v, limit),
            merge_keys,
        );
        (Self::from_packed(store.period(), keys), stats)
    }

    /// Register the concurrency key expansion in a [`FusedPass`]; claim
    /// the index with [`FusedConcurrency::finish`] after the pass runs.
    /// Equals [`ConcurrencyIndex::build_from_store`] exactly (both sort
    /// and deduplicate the same packed relation).
    pub fn fuse(pass: &mut FusedPass<'_>) -> FusedConcurrency {
        let period = pass.store().period();
        let limit = period.total_bins();
        let handle = pass.add_per_car(
            "concurrency",
            Vec::new,
            move |acc: &mut Vec<u128>, v| push_packed(acc, v, limit),
            merge_keys,
        );
        FusedConcurrency { handle, period }
    }

    /// Group sorted `(cell, bin, car)` triples into per-cell count runs.
    fn from_triples(period: StudyPeriod, triples: Vec<(CellId, u64, CarId)>) -> ConcurrencyIndex {
        let mut map: BTreeMap<CellId, Vec<(u64, u32)>> = BTreeMap::new();
        for (cell, bin, _car) in triples {
            let v = map.entry(cell).or_default();
            match v.last_mut() {
                Some((b, c)) if *b == bin => *c += 1,
                _ => v.push((bin, 1)),
            }
        }
        ConcurrencyIndex { period, map }
    }

    /// Assemble from an already-grouped per-cell run map. The combined
    /// presence+concurrency folder in [`crate::fusion`] builds the runs
    /// itself while scanning the sorted key relation for Figure 2.
    pub(crate) fn from_map(
        period: StudyPeriod,
        map: BTreeMap<CellId, Vec<(u64, u32)>>,
    ) -> ConcurrencyIndex {
        ConcurrencyIndex { period, map }
    }

    /// Sort and deduplicate packed keys globally, then run-length the
    /// `(cell, bin)` prefixes into the sparse per-cell map. Distinct
    /// keys are distinct `(cell, bin, car)` triples, so the counts
    /// equal [`ConcurrencyIndex::from_triples`] on the same relation.
    fn from_packed(period: StudyPeriod, mut keys: Vec<u128>) -> ConcurrencyIndex {
        keys.sort_unstable();
        keys.dedup();
        let mut map: BTreeMap<CellId, Vec<(u64, u32)>> = BTreeMap::new();
        let mut i = 0;
        while i < keys.len() {
            let cell_prefix = keys[i] >> 80;
            let runs = map.entry(unpack_cell(keys[i])).or_default();
            while i < keys.len() && keys[i] >> 80 == cell_prefix {
                let bin_prefix = keys[i] >> 32;
                let mut cars = 0u32;
                while i < keys.len() && keys[i] >> 32 == bin_prefix {
                    cars += 1;
                    i += 1;
                }
                runs.push(((bin_prefix & 0xFFFF_FFFF_FFFF) as u64, cars));
            }
        }
        ConcurrencyIndex { period, map }
    }

    /// The study period.
    pub fn period(&self) -> StudyPeriod {
        self.period
    }

    /// Distinct cars overlapping `bin` on `cell`.
    pub fn count(&self, cell: CellId, bin: BinIndex) -> u32 {
        self.map
            .get(&cell)
            .and_then(|v| {
                v.binary_search_by_key(&bin.0, |(b, _)| *b)
                    .ok()
                    .map(|i| v[i].1)
            })
            .unwrap_or(0)
    }

    /// Cells that ever saw a car.
    pub fn cells(&self) -> impl Iterator<Item = CellId> + '_ {
        self.map.keys().copied()
    }

    /// Number of touched cells.
    pub fn cell_count(&self) -> usize {
        self.map.len()
    }

    /// Average concurrent cars per bin-of-day over the study: the
    /// 96-element profile vector Figure 11 clusters.
    pub fn daily_profile(&self, cell: CellId) -> [f64; BINS_PER_DAY] {
        let mut sums = [0.0f64; BINS_PER_DAY];
        let days = self.period.days() as f64;
        if let Some(v) = self.map.get(&cell) {
            for (bin, count) in v {
                sums[(*bin % BINS_PER_DAY as u64) as usize] += *count as f64;
            }
        }
        for s in &mut sums {
            *s /= days;
        }
        sums
    }

    /// Average concurrent cars per bin-of-week over the whole weeks of
    /// the study (Figure 10's impulse series). Monday-00:00 first.
    pub fn weekly_profile(&self, cell: CellId) -> Vec<f64> {
        let weeks = self.period.whole_weeks() as f64;
        let mut sums = vec![0.0f64; BINS_PER_WEEK];
        if weeks == 0.0 {
            return sums;
        }
        let week_bins = BINS_PER_WEEK as u64;
        let total_whole = self.period.whole_weeks() as u64 * week_bins;
        if let Some(v) = self.map.get(&cell) {
            for (bin, count) in v {
                if *bin < total_whole {
                    let wb = BinIndex(*bin).week_bin(self.period.start_day());
                    sums[wb.index()] += *count as f64;
                }
            }
        }
        for s in &mut sums {
            *s /= weeks;
        }
        sums
    }

    /// The bin with the most concurrent cars on `cell`, with the count.
    /// `None` for an untouched cell.
    pub fn peak(&self, cell: CellId) -> Option<(BinIndex, u32)> {
        self.map.get(&cell).and_then(|v| {
            v.iter()
                .max_by_key(|(bin, count)| (*count, std::cmp::Reverse(*bin)))
                .map(|&(bin, count)| (BinIndex(bin), count))
        })
    }

    /// The (cell, day) pair with the most distinct cars — Figure 8's
    /// exemplar cell. `None` on an empty index.
    pub fn busiest_cell_day(&self, ds: &CdrDataset) -> Option<(CellId, u64, usize)> {
        let mut per_cell_day: BTreeMap<(CellId, u64), Vec<CarId>> = BTreeMap::new();
        for r in ds.records() {
            let last_day = (r.end.as_secs().saturating_sub(1)) / 86_400;
            for d in r.start.day()..=last_day.min(self.period.days() as u64 - 1) {
                per_cell_day.entry((r.cell, d)).or_default().push(r.car);
            }
        }
        per_cell_day
            .into_iter()
            .map(|((cell, day), mut cars)| {
                cars.sort();
                cars.dedup();
                (cell, day, cars.len())
            })
            .max_by_key(|&(cell, day, n)| (n, std::cmp::Reverse(day), cell))
    }
}

/// One `(cell, bin, car)` triple packed into an order-preserving
/// `u128`: station in bits 96.., sector in 88.., carrier in 80.., bin
/// in 32.. (total bins stay far below 2^48), car in 0... An integer
/// sort over the packed keys therefore orders exactly like the tuple
/// sort in [`ConcurrencyIndex::build`], at a fraction of the
/// per-comparison cost.
#[inline]
pub(crate) fn pack_triple(cell: CellId, bin: u64, car: CarId) -> u128 {
    (u128::from(cell.station.0) << 96)
        | (u128::from(cell.sector) << 88)
        | (u128::from(cell.carrier as u8) << 80)
        | (u128::from(bin) << 32)
        | u128::from(car.0)
}

/// Recover the cell from a packed key's high bits.
#[inline]
pub(crate) fn unpack_cell(key: u128) -> CellId {
    CellId::new(
        BaseStationId((key >> 96) as u32),
        (key >> 88) as u8,
        ALL_CARRIERS[((key >> 80) & 0xFF) as usize],
    )
}

/// Expand one car's selected rows into packed keys. `covering` yields
/// ascending bins, so the limit check can stop the expansion early.
#[inline]
fn push_packed(acc: &mut Vec<u128>, v: &CarView<'_>, bin_limit: u64) {
    acc.reserve(v.len());
    let car = v.car;
    v.for_each_selected(|i| {
        for bin in BinIndex::covering(
            Timestamp::from_secs(v.starts[i]),
            Timestamp::from_secs(v.ends[i]),
        ) {
            if bin.0 >= bin_limit {
                break;
            }
            acc.push(pack_triple(v.cells[i], bin.0, car));
        }
    });
}

fn merge_keys(mut a: Vec<u128>, mut b: Vec<u128>) -> Vec<u128> {
    a.append(&mut b);
    a
}

/// Claim ticket for a fused concurrency folder.
pub struct FusedConcurrency {
    handle: FolderHandle<Vec<u128>>,
    period: StudyPeriod,
}

impl FusedConcurrency {
    /// Assemble the concurrency index from the fused pass's outputs.
    pub fn finish(self, out: &mut FusedOutputs) -> ConcurrencyIndex {
        ConcurrencyIndex::from_packed(self.period, out.take(self.handle))
    }
}

/// Figure 8's view of one cell over one day.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CellDayGantt {
    /// The cell.
    pub cell: CellId,
    /// The study day.
    pub day: u64,
    /// Per-car connection spans clipped to the day, sorted by start:
    /// `(car, start_sec_of_day, end_sec_of_day)`.
    pub spans: Vec<(CarId, u32, u32)>,
    /// Number of distinct cars.
    pub distinct_cars: usize,
    /// The 15-minute bin of the day with the most concurrent cars, and
    /// that count.
    pub peak: (DayBin, u32),
}

/// Build Figure 8 for a chosen cell and day.
pub fn cell_day_gantt(ds: &CdrDataset, cell: CellId, day: u64) -> CellDayGantt {
    let day_start = Timestamp::from_day_and_secs(day, 0);
    let day_end = day_start.plus_days(1);
    let mut spans: Vec<(CarId, u32, u32)> = Vec::new();
    let mut per_bin: [Vec<CarId>; BINS_PER_DAY] = std::array::from_fn(|_| Vec::new());
    for r in ds.records() {
        if r.cell != cell || r.end <= day_start || r.start >= day_end {
            continue;
        }
        let s = r.start.max(day_start);
        let e = r.end.min(day_end);
        spans.push((
            r.car,
            conncar_types::saturating_u32((s - day_start).as_secs()),
            conncar_types::saturating_u32((e - day_start).as_secs()),
        ));
        for bin in BinIndex::covering(s, e) {
            per_bin[bin.day_bin().index()].push(r.car);
        }
    }
    spans.sort_by_key(|&(car, s, _)| (s, car));
    let mut distinct: Vec<CarId> = spans.iter().map(|&(c, _, _)| c).collect();
    distinct.sort();
    distinct.dedup();
    let peak = per_bin
        .iter_mut()
        .enumerate()
        .map(|(i, cars)| {
            cars.sort();
            cars.dedup();
            (DayBin::new(i as u16), cars.len() as u32)
        })
        .max_by_key(|&(b, n)| (n, std::cmp::Reverse(b.index())))
        .unwrap_or((DayBin::new(0), 0));
    CellDayGantt {
        cell,
        day,
        distinct_cars: distinct.len(),
        spans,
        peak,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_types::{BaseStationId, Carrier, DayOfWeek};

    fn cell(i: u32) -> CellId {
        CellId::new(BaseStationId(i), 0, Carrier::C3)
    }

    fn rec(car: u32, cell_i: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: cell(cell_i),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    fn ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 14).unwrap(), records)
    }

    #[test]
    fn counts_distinct_cars_per_bin() {
        let d = ds(vec![
            rec(1, 1, 0, 100),
            rec(1, 1, 200, 300), // same car, same bin: counts once
            rec(2, 1, 850, 950), // straddles bins 0 and 1
            rec(3, 2, 0, 100),   // different cell
        ]);
        let idx = ConcurrencyIndex::build(&d);
        assert_eq!(idx.count(cell(1), BinIndex(0)), 2);
        assert_eq!(idx.count(cell(1), BinIndex(1)), 1);
        assert_eq!(idx.count(cell(2), BinIndex(0)), 1);
        assert_eq!(idx.count(cell(2), BinIndex(1)), 0);
        assert_eq!(idx.count(cell(9), BinIndex(0)), 0);
        assert_eq!(idx.cell_count(), 2);
    }

    #[test]
    fn store_build_equals_legacy_build() {
        let records: Vec<CdrRecord> = (0..250)
            .map(|i| {
                let s = (i as u64 * 731) % (13 * 86_400);
                rec(i % 31, i % 9, s, s + 30 + (i as u64 * 11) % 3_000)
            })
            .collect();
        let d = ds(records);
        let legacy = ConcurrencyIndex::build(&d);
        for shards in [1, 2, 7, 64] {
            let store = CdrStore::build(&d, shards);
            let (got, stats) = ConcurrencyIndex::build_from_store(&store);
            assert_eq!(got, legacy, "shards={shards}");
            assert_eq!(stats.rows_scanned as usize, d.len());
        }
    }

    #[test]
    fn fused_build_equals_store_build() {
        let records: Vec<CdrRecord> = (0..250)
            .map(|i| {
                let s = (i as u64 * 731) % (13 * 86_400);
                rec(i % 31, i % 9, s, s + 30 + (i as u64 * 11) % 3_000)
            })
            .collect();
        let d = ds(records);
        for shards in [1, 7] {
            let store = CdrStore::build(&d, shards);
            let (want, _) = ConcurrencyIndex::build_from_store(&store);
            let mut pass = FusedPass::new(&store, Filter::all());
            let h = ConcurrencyIndex::fuse(&mut pass);
            let mut out = pass.run();
            assert_eq!(h.finish(&mut out), want, "shards={shards}");
        }
    }

    #[test]
    fn daily_profile_averages_over_days() {
        // One car in bin 4 of every one of the 14 days.
        let records = (0..14u64)
            .map(|d| rec(1, 1, d * 86_400 + 4 * 900 + 10, d * 86_400 + 4 * 900 + 100))
            .collect();
        let idx = ConcurrencyIndex::build(&ds(records));
        let prof = idx.daily_profile(cell(1));
        assert!((prof[4] - 1.0).abs() < 1e-12);
        assert_eq!(prof[5], 0.0);
    }

    #[test]
    fn weekly_profile_respects_weekday() {
        // Study starts Monday; a car appears Tuesday 00:07 both weeks.
        let records = vec![
            rec(1, 1, 86_400 + 420, 86_400 + 500),
            rec(1, 1, 8 * 86_400 + 420, 8 * 86_400 + 500),
        ];
        let idx = ConcurrencyIndex::build(&ds(records));
        let prof = idx.weekly_profile(cell(1));
        assert_eq!(prof.len(), BINS_PER_WEEK);
        // Tuesday 00:00 bin = index 96.
        assert!((prof[96] - 1.0).abs() < 1e-12);
        assert_eq!(prof.iter().filter(|&&v| v > 0.0).count(), 1);
    }

    #[test]
    fn busiest_cell_day_finds_the_hotspot() {
        let mut records = vec![rec(9, 2, 86_400 * 3 + 100, 86_400 * 3 + 200)];
        for car in 0..5 {
            records.push(rec(car, 1, 86_400 * 2 + 100 * car as u64, 86_400 * 2 + 100 * car as u64 + 50));
        }
        let d = ds(records);
        let idx = ConcurrencyIndex::build(&d);
        let (c, day, n) = idx.busiest_cell_day(&d).unwrap();
        assert_eq!(c, cell(1));
        assert_eq!(day, 2);
        assert_eq!(n, 5);
    }

    #[test]
    fn gantt_clips_and_peaks() {
        let d = ds(vec![
            rec(1, 1, 86_400 - 100, 86_400 + 200), // straddles midnight into day 1
            rec(2, 1, 86_400 + 100, 86_400 + 300),
            rec(3, 1, 86_400 + 50_000, 86_400 + 50_100),
            rec(4, 2, 86_400 + 100, 86_400 + 200), // other cell
        ]);
        let g = cell_day_gantt(&d, cell(1), 1);
        assert_eq!(g.distinct_cars, 3);
        assert_eq!(g.spans.len(), 3);
        // First span clipped to day start.
        assert_eq!(g.spans[0].1, 0);
        assert_eq!(g.spans[0].2, 200);
        // Peak bin is 00:00 with cars 1 and 2.
        assert_eq!(g.peak.0.index(), 0);
        assert_eq!(g.peak.1, 2);
    }

    #[test]
    fn gantt_empty_cell() {
        let d = ds(vec![rec(1, 1, 0, 100)]);
        let g = cell_day_gantt(&d, cell(5), 0);
        assert_eq!(g.distinct_cars, 0);
        assert_eq!(g.peak.1, 0);
    }

    #[test]
    fn empty_dataset_busiest_is_none() {
        let d = ds(vec![]);
        let idx = ConcurrencyIndex::build(&d);
        assert!(idx.busiest_cell_day(&d).is_none());
    }
}

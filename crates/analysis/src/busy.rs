//! Busy-cell classification: the `U_PRB > 80%` machinery of §4.3.
//!
//! [`NetworkLoadModel`] bundles the three things needed to answer "was
//! this cell busy at that moment": the background-load model, the
//! car-generated load ledger, and each cell's land-use class. Everything
//! downstream (Table 2's segmentation, Figure 7's deciles, Figure 10's
//! load curves, Figure 11's cell selection) goes through it.

use conncar_cdr::CdrRecord;
use conncar_geo::Deployment;
use conncar_radio::{BackgroundLoad, CellClass, PrbLedger, UtilizationSeries};
use conncar_types::{BaseStationId, BinIndex, CellId, StudyPeriod};
use std::collections::BTreeMap;

/// Default busy threshold: the paper's `U_PRB > 80%`.
pub const BUSY_THRESHOLD: f64 = 0.80;

/// Combined network-load view over the study.
#[derive(Debug, Clone)]
pub struct NetworkLoadModel<'a> {
    ledger: &'a PrbLedger,
    background: &'a BackgroundLoad,
    classes: BTreeMap<BaseStationId, CellClass>,
    threshold: f64,
}

impl<'a> NetworkLoadModel<'a> {
    /// Build from the simulation outputs plus the deployment (for cell
    /// classes).
    pub fn new(
        ledger: &'a PrbLedger,
        background: &'a BackgroundLoad,
        deployment: &Deployment,
    ) -> NetworkLoadModel<'a> {
        let classes = deployment
            .stations()
            .iter()
            .map(|s| (s.id, CellClass::of_station(s)))
            .collect();
        NetworkLoadModel {
            ledger,
            background,
            classes,
            threshold: BUSY_THRESHOLD,
        }
    }

    /// Override the busy threshold (ablations).
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// The busy threshold in use.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The study period.
    pub fn period(&self) -> StudyPeriod {
        self.ledger.period()
    }

    /// The land-use class of a cell (rural default for foreign ids,
    /// which keeps the model total).
    pub fn class_of(&self, cell: CellId) -> CellClass {
        self.classes
            .get(&cell.station)
            .copied()
            .unwrap_or(CellClass::Rural)
    }

    /// `U_PRB` of a cell in a bin.
    pub fn utilization(&self, cell: CellId, bin: BinIndex) -> f64 {
        self.ledger
            .utilization(cell, self.class_of(cell), bin, self.background)
    }

    /// Whether the cell exceeds the busy threshold in the bin.
    pub fn is_busy(&self, cell: CellId, bin: BinIndex) -> bool {
        self.utilization(cell, bin) > self.threshold
    }

    /// Dense utilization series for a cell.
    pub fn series(&self, cell: CellId) -> UtilizationSeries {
        self.ledger
            .series(cell, self.class_of(cell), self.background)
    }

    /// Seconds of a record spent in busy bins vs its total duration.
    ///
    /// §4.3 attributes a car's connected time to busy/non-busy according
    /// to the 15-minute bins its connections overlap.
    pub fn busy_split_secs(&self, record: &CdrRecord) -> (u64, u64) {
        self.busy_split_span(record.cell, record.start, record.end)
    }

    /// [`busy_split_secs`](Self::busy_split_secs) over a raw
    /// `(cell, start, end)` span — the form columnar scans have at hand
    /// without materializing a record.
    pub fn busy_split_span(
        &self,
        cell: CellId,
        start: conncar_types::Timestamp,
        end: conncar_types::Timestamp,
    ) -> (u64, u64) {
        let mut busy = 0u64;
        let mut total = 0u64;
        for bin in BinIndex::covering(start, end) {
            let overlap = bin.overlap_secs(start, end);
            total += overlap;
            if self.is_busy(cell, bin) {
                busy += overlap;
            }
        }
        (busy, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_geo::{Region, RegionConfig};
    use conncar_radio::BackgroundLoadConfig;
    use conncar_types::{CarId, Carrier, Duration, Timestamp};

    struct Fixture {
        region: Region,
        ledger: PrbLedger,
        background: BackgroundLoad,
    }

    fn fixture() -> Fixture {
        let region = Region::generate(&RegionConfig::small(), 42);
        let period = StudyPeriod::PAPER;
        Fixture {
            region,
            ledger: PrbLedger::new(period),
            background: BackgroundLoad::new(BackgroundLoadConfig::default(), period, -5),
        }
    }

    #[test]
    fn class_lookup_matches_deployment() {
        let f = fixture();
        let model = NetworkLoadModel::new(&f.ledger, &f.background, f.region.deployment());
        for s in f.region.deployment().stations().iter().take(20) {
            let cell = CellId::new(s.id, 0, Carrier::C1);
            assert_eq!(model.class_of(cell), CellClass::of_station(s));
        }
        // Foreign station falls back to rural.
        let foreign = CellId::new(BaseStationId(9_999_999), 0, Carrier::C1);
        assert_eq!(model.class_of(foreign), CellClass::Rural);
    }

    #[test]
    fn car_load_raises_utilization() {
        let f = fixture();
        let cell = CellId::new(f.region.deployment().stations()[0].id, 0, Carrier::C3);
        let bin = BinIndex(40);
        let mut loaded = f.ledger.clone();
        loaded.add_load_fraction(cell, bin.start(), bin.end(), 0.4);
        let base_model = NetworkLoadModel::new(&f.ledger, &f.background, f.region.deployment());
        let loaded_model = NetworkLoadModel::new(&loaded, &f.background, f.region.deployment());
        let before = base_model.utilization(cell, bin);
        let after = loaded_model.utilization(cell, bin);
        assert!((after - (before + 0.4).min(1.0)).abs() < 1e-6);
    }

    #[test]
    fn busy_split_accounts_every_second() {
        let f = fixture();
        let model = NetworkLoadModel::new(&f.ledger, &f.background, f.region.deployment());
        let cell = CellId::new(f.region.deployment().stations()[0].id, 1, Carrier::C3);
        let rec = CdrRecord {
            car: CarId(1),
            cell,
            start: Timestamp::from_day_hms(2, 17, 50, 0),
            end: Timestamp::from_day_hms(2, 18, 20, 0),
        };
        let (busy, total) = model.busy_split_secs(&rec);
        assert_eq!(total, rec.duration().as_secs());
        assert!(busy <= total);
    }

    #[test]
    fn threshold_override_is_monotone() {
        let f = fixture();
        let cell = CellId::new(f.region.deployment().stations()[0].id, 0, Carrier::C3);
        let mut loaded = f.ledger.clone();
        // Saturate an afternoon hour.
        let start = Timestamp::from_day_hms(1, 17, 0, 0);
        loaded.add_load_fraction(cell, start, start + Duration::from_hours(1), 1.0);
        let strict = NetworkLoadModel::new(&loaded, &f.background, f.region.deployment());
        let lax = NetworkLoadModel::new(&loaded, &f.background, f.region.deployment())
            .with_threshold(0.5);
        let bin = BinIndex::containing(start);
        assert!(strict.is_busy(cell, bin));
        assert!(lax.is_busy(cell, bin));
        // A quiet overnight bin: busy under neither threshold.
        let night = BinIndex::containing(Timestamp::from_day_hms(1, 3, 0, 0));
        assert!(!strict.is_busy(cell, night));
    }
}

//! Cross-analysis fusion: one folder serving several §4 analyses from
//! a shared accumulator.
//!
//! Run as separate folders, Figure 2 and the concurrency index each
//! walk every record's time span (one per day, one per 15-minute bin)
//! and each sort a large relation at finish. But the concurrency
//! relation already contains Figure 2's cell facts: a record covers a
//! study day exactly when it covers one of that day's bins — both are
//! the range `start/86400 ..= (end-1)/86400`, and the period's bin
//! limit is a whole number of days, so clipping agrees too. The
//! combined folder therefore expands bins **once**, sorts the packed
//! `(cell, bin, car)` keys **once**, and reads the per-day
//! distinct-cell counts and the distinct-cell total straight off the
//! sorted runs (`day = bin / 96`; bins ascend within a cell's run, so
//! one day cursor per cell deduplicates). Only Figure 2's distinct
//! cars per day need row-level state — the same per-car day bitmap the
//! standalone presence folder uses, which is cheap.
//!
//! Rows that push no key at all — zero/negative duration, or starting
//! past the period end — still count toward Figure 2 exactly as the
//! standalone path counts them: their cells and in-period cell-days
//! travel in small side vectors and merge in at finish, so the
//! combined results equal [`daily_presence_store`] and
//! [`ConcurrencyIndex::build_from_store`] on *any* input, not just
//! clean ones (enforced by the tests below).
//!
//! [`daily_presence_store`]: crate::temporal::daily_presence_store

use crate::concurrency::{pack_triple, unpack_cell, ConcurrencyIndex};
use crate::temporal::{assemble_presence_counts, DailyPresenceResult};
use conncar_store::{CarView, FolderHandle, FusedOutputs, FusedPass};
use conncar_types::{BinIndex, CellId, StudyPeriod, Timestamp, BINS_PER_DAY};
use std::collections::BTreeMap;

/// Shared accumulator of the combined presence+concurrency folder.
pub struct PresenceConcurrencyAcc {
    /// Packed `(cell, bin, car)` keys — the concurrency relation, from
    /// which Figure 2's cell counts are also derived.
    keys: Vec<u128>,
    /// Distinct cars per day (each car folds exactly once per pass).
    day_cars: Vec<u64>,
    /// Scratch day bitmap for the car being folded; zero between cars.
    mask: Vec<u64>,
    /// Cells of rows that pushed no key; they still count toward
    /// Figure 2's total-cells denominator.
    keyless_cells: Vec<CellId>,
    /// In-period `(day, cell)` facts of rows that pushed no key.
    keyless_cell_days: Vec<(u64, CellId)>,
}

impl PresenceConcurrencyAcc {
    fn new(days_n: usize) -> PresenceConcurrencyAcc {
        PresenceConcurrencyAcc {
            keys: Vec::new(),
            day_cars: vec![0; days_n],
            mask: vec![0; (days_n + 63) / 64],
            keyless_cells: Vec::new(),
            keyless_cell_days: Vec::new(),
        }
    }

    /// Fold one car's selected rows: mark its day bitmap (Figure 2's
    /// distinct cars) and expand the shared key relation. A row whose
    /// expansion is empty records its Figure 2 facts on the side.
    fn fold_view(&mut self, v: &CarView<'_>, bin_limit: u64) {
        self.keys.reserve(v.len());
        let days_n = self.day_cars.len();
        let car = v.car;
        let mut touched = false;
        v.for_each_selected(|i| {
            let cell = v.cells[i];
            let first_day = v.starts[i] / 86_400;
            let last_day = v.ends[i].saturating_sub(1) / 86_400;
            for day in first_day..=last_day {
                let d = day as usize;
                if d < days_n && (self.mask[d >> 6] >> (d & 63)) & 1 == 0 {
                    self.mask[d >> 6] |= 1 << (d & 63);
                    touched = true;
                }
            }
            let before = self.keys.len();
            for bin in BinIndex::covering(
                Timestamp::from_secs(v.starts[i]),
                Timestamp::from_secs(v.ends[i]),
            ) {
                if bin.0 >= bin_limit {
                    break;
                }
                self.keys.push(pack_triple(cell, bin.0, car));
            }
            if self.keys.len() == before {
                self.keyless_cells.push(cell);
                for day in first_day..=last_day {
                    if day < days_n as u64 {
                        self.keyless_cell_days.push((day, cell));
                    }
                }
            }
        });
        if touched {
            for (w, word) in self.mask.iter_mut().enumerate() {
                let mut bits = *word;
                while bits != 0 {
                    self.day_cars[(w << 6) + bits.trailing_zeros() as usize] += 1;
                    bits &= bits - 1;
                }
                *word = 0;
            }
        }
    }

    /// Merge is exact: car counts add (cars are shard-disjoint), key
    /// and side vectors concatenate (deduplication is global, at
    /// finish).
    fn merge(mut a: PresenceConcurrencyAcc, mut b: PresenceConcurrencyAcc) -> PresenceConcurrencyAcc {
        for (x, y) in a.day_cars.iter_mut().zip(&b.day_cars) {
            *x += *y;
        }
        a.keys.append(&mut b.keys);
        a.keyless_cells.append(&mut b.keyless_cells);
        a.keyless_cell_days.append(&mut b.keyless_cell_days);
        a
    }

    /// One sort, one scan: group the key relation into the per-cell
    /// concurrency runs while counting distinct cells per day and
    /// overall, then fold in the keyless side facts and assemble both
    /// results.
    fn finish(
        mut self,
        period: StudyPeriod,
        total_cars: usize,
    ) -> (DailyPresenceResult, ConcurrencyIndex) {
        self.keys.sort_unstable();
        self.keys.dedup();
        let keys = &self.keys;
        let days_n = period.days() as usize;
        let mut day_cells = vec![0usize; days_n];
        let mut map: BTreeMap<CellId, Vec<(u64, u32)>> = BTreeMap::new();
        let mut i = 0;
        while i < keys.len() {
            let cell_prefix = keys[i] >> 80;
            let runs = map.entry(unpack_cell(keys[i])).or_default();
            let mut day_cursor = u64::MAX;
            while i < keys.len() && keys[i] >> 80 == cell_prefix {
                let bin_prefix = keys[i] >> 32;
                let bin = (bin_prefix & 0xFFFF_FFFF_FFFF) as u64;
                let day = bin / BINS_PER_DAY as u64;
                if day != day_cursor {
                    day_cursor = day;
                    if (day as usize) < days_n {
                        day_cells[day as usize] += 1;
                    }
                }
                let mut cars = 0u32;
                while i < keys.len() && keys[i] >> 32 == bin_prefix {
                    cars += 1;
                    i += 1;
                }
                runs.push((bin, cars));
            }
        }
        // Keyless rows are rare (usually absent): dedup their facts and
        // count only those the key relation did not already cover.
        self.keyless_cells.sort_unstable();
        self.keyless_cells.dedup();
        let total_cells = map.len()
            + self
                .keyless_cells
                .iter()
                .filter(|c| !map.contains_key(c))
                .count();
        self.keyless_cell_days.sort_unstable();
        self.keyless_cell_days.dedup();
        for &(day, cell) in &self.keyless_cell_days {
            if !cell_day_in_keys(keys, cell, day) {
                day_cells[day as usize] += 1;
            }
        }
        let day_cars: Vec<usize> = self.day_cars.iter().map(|&n| n as usize).collect();
        let presence =
            assemble_presence_counts(period, &day_cars, &day_cells, total_cells, total_cars);
        (presence, ConcurrencyIndex::from_map(period, map))
    }
}

/// Does the sorted, deduplicated key relation contain any bin of
/// `(cell, day)`? Binary search to the first key at or after the day's
/// first bin, then check it still belongs to the same cell and day.
fn cell_day_in_keys(keys: &[u128], cell: CellId, day: u64) -> bool {
    let lo = pack_triple(cell, day * BINS_PER_DAY as u64, conncar_types::CarId(0));
    let idx = keys.partition_point(|&k| k < lo);
    idx < keys.len() && {
        let k = keys[idx];
        k >> 80 == lo >> 80 && ((k >> 32) & 0xFFFF_FFFF_FFFF) as u64 / BINS_PER_DAY as u64 == day
    }
}

/// Register the combined Figure 2 + concurrency folder in a
/// [`FusedPass`]; claim both results with
/// [`FusedPresenceConcurrency::finish`] after the pass runs. Equals
/// running [`crate::temporal::fuse_daily_presence`] and
/// [`ConcurrencyIndex::fuse`] as separate folders, at roughly the cost
/// of the concurrency folder alone.
pub fn fuse_presence_concurrency(
    pass: &mut FusedPass<'_>,
    total_cars: usize,
) -> FusedPresenceConcurrency {
    let period = pass.store().period();
    let days_n = period.days() as usize;
    let limit = period.total_bins();
    let handle = pass.add_per_car(
        "presence+concurrency",
        move || PresenceConcurrencyAcc::new(days_n),
        move |acc: &mut PresenceConcurrencyAcc, v| acc.fold_view(v, limit),
        PresenceConcurrencyAcc::merge,
    );
    FusedPresenceConcurrency {
        handle,
        period,
        total_cars,
    }
}

/// Claim ticket for the combined presence+concurrency folder.
pub struct FusedPresenceConcurrency {
    handle: FolderHandle<PresenceConcurrencyAcc>,
    period: StudyPeriod,
    total_cars: usize,
}

impl FusedPresenceConcurrency {
    /// Assemble Figure 2 and the concurrency index from the fused
    /// pass's outputs.
    pub fn finish(self, out: &mut FusedOutputs) -> (DailyPresenceResult, ConcurrencyIndex) {
        out.take(self.handle).finish(self.period, self.total_cars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal::{daily_presence, daily_presence_store};
    use conncar_cdr::{CdrDataset, CdrRecord};
    use conncar_store::{CdrStore, Filter};
    use conncar_types::{BaseStationId, CarId, Carrier, DayOfWeek, StudyPeriod};

    fn rec(car: u32, cell_i: u32, start: u64, end: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(cell_i), (cell_i % 3) as u8, Carrier::C2),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    /// A 14-day dataset that exercises every path: ordinary rows,
    /// midnight straddlers, zero-duration rows, rows entirely past the
    /// period end, and a row straddling the period end.
    fn messy_ds() -> CdrDataset {
        let mut records: Vec<CdrRecord> = (0..300)
            .map(|i| {
                let s = (i as u64 * 6_151) % (13 * 86_400);
                rec(i % 37, i % 11, s, s + 25 + (i as u64 * 17) % 4_000)
            })
            .collect();
        // Midnight straddler.
        records.push(rec(40, 20, 86_400 - 50, 86_400 + 50));
        // Zero-duration rows: mid-day (credits its day but no bin) and
        // exactly at a midnight boundary (credits nothing).
        records.push(rec(41, 21, 5 * 86_400 + 123, 5 * 86_400 + 123));
        records.push(rec(42, 22, 3 * 86_400, 3 * 86_400));
        // Entirely past the 14-day period: counts toward total_cells
        // only; cell 23 appears nowhere else.
        records.push(rec(43, 23, 15 * 86_400 + 10, 15 * 86_400 + 500));
        // Straddles the period end: in-period days/bins only.
        records.push(rec(44, 24, 13 * 86_400 + 86_000, 14 * 86_400 + 900));
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 14).unwrap(), records)
    }

    #[test]
    fn combined_folder_matches_standalone_paths() {
        let d = messy_ds();
        let legacy = daily_presence(&d, 60);
        let legacy_c = ConcurrencyIndex::build(&d);
        for shards in [1, 2, 7, 64] {
            let store = CdrStore::build(&d, shards);
            let (want_p, _) = daily_presence_store(&store, 60);
            let (want_c, _) = ConcurrencyIndex::build_from_store(&store);
            assert_eq!(want_p, legacy);
            assert_eq!(want_c, legacy_c);
            let mut pass = FusedPass::new(&store, Filter::all());
            let h = fuse_presence_concurrency(&mut pass, 60);
            let mut out = pass.run();
            let (p, c) = h.finish(&mut out);
            assert_eq!(p, want_p, "presence, shards={shards}");
            assert_eq!(c, want_c, "concurrency, shards={shards}");
        }
    }

    #[test]
    fn keyless_rows_reach_figure2_but_not_concurrency() {
        let d = messy_ds();
        let store = CdrStore::build(&d, 4);
        let mut pass = FusedPass::new(&store, Filter::all());
        let h = fuse_presence_concurrency(&mut pass, 60);
        let mut out = pass.run();
        let (p, c) = h.finish(&mut out);
        // Cells 21 (zero-duration), 22 (boundary zero-duration) and 23
        // (past the period) produce no concurrency key, yet all count
        // in Figure 2's denominator.
        assert_eq!(p.total_cells, c.cell_count() + 3);
        // The mid-day zero-duration row still credits its day's cell
        // and car counts (day 5, cell 21, car 41).
        assert!(p.days[5].cells > 0);
    }

    #[test]
    fn empty_dataset() {
        let d = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), vec![]);
        let store = CdrStore::build(&d, 3);
        let mut pass = FusedPass::new(&store, Filter::all());
        let h = fuse_presence_concurrency(&mut pass, 5);
        let mut out = pass.run();
        let (p, c) = h.finish(&mut out);
        assert_eq!(p.total_cells, 0);
        assert!(p.days.iter().all(|d| d.cars == 0 && d.cells == 0));
        assert_eq!(c.cell_count(), 0);
    }
}

//! Per-cell connection durations: Figure 9.
//!
//! §4.4 reports the distribution of "cars' connections per radio cell":
//! median 105 s, 73rd percentile at 600 s, means of 625 s (as reported)
//! and 238 s (truncated at 600 s). The truncated view removes the
//! sticky-modem tail; both are computed here from the same records.

use crate::stats::Ecdf;
use conncar_cdr::{truncate_records, CdrDataset};
use conncar_store::{kernels, CarView, CdrStore, Filter, FolderHandle, FusedOutputs, FusedPass, QueryStats};
use conncar_types::Duration;
use serde::{Deserialize, Serialize};

/// Figure 9's duration distributions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionDurationResult {
    /// ECDF over record durations in seconds, as reported.
    pub full: Ecdf,
    /// Same with durations capped.
    pub truncated: Ecdf,
    /// The cap used.
    pub cap: Duration,
}

impl ConnectionDurationResult {
    /// Median of the full distribution.
    pub fn median_secs(&self) -> Option<f64> {
        self.full.median()
    }

    /// The percentile (0–1) at which the full distribution crosses the
    /// cap — the paper's "73rd percentile at 600 seconds".
    pub fn percentile_at_cap(&self) -> f64 {
        self.full.fraction_le(self.cap.as_secs() as f64)
    }

    /// Means `(full, truncated)`.
    pub fn means(&self) -> (f64, f64) {
        (self.full.mean(), self.truncated.mean())
    }
}

/// Compute Figure 9 over every record of the dataset.
pub fn connection_durations(
    ds: &CdrDataset,
    cap: Duration,
) -> conncar_types::Result<ConnectionDurationResult> {
    let full: Vec<f64> = ds
        .records()
        .iter()
        .map(|r| r.duration().as_secs() as f64)
        .collect();
    let truncated: Vec<f64> = truncate_records(ds.records(), cap)
        .iter()
        .map(|r| r.duration().as_secs() as f64)
        .collect();
    Ok(ConnectionDurationResult {
        full: Ecdf::new(full)?,
        truncated: Ecdf::new(truncated)?,
        cap,
    })
}

/// One car's selected durations in integer seconds, straight from the
/// columns — both views derive from this single vector at assembly.
#[inline]
fn push_durations(acc: &mut Vec<u64>, v: &CarView<'_>) {
    acc.reserve(v.len());
    v.for_each_selected(|i| acc.push(v.ends[i].saturating_sub(v.starts[i])));
}

fn merge_duration_acc(mut a: Vec<u64>, mut b: Vec<u64>) -> Vec<u64> {
    a.append(&mut b);
    a
}

/// One integer sort serves both ECDFs: `u64 → f64` and `min(·, cap)`
/// are monotone, so mapping the sorted seconds yields each view
/// already in [`Ecdf::new`]'s order — and the capped map makes the
/// truncated view without ever materializing truncated records.
fn assemble_durations(
    mut secs: Vec<u64>,
    cap: Duration,
) -> conncar_types::Result<ConnectionDurationResult> {
    secs.sort_unstable();
    let cap_secs = cap.as_secs();
    let full: Vec<f64> = secs.iter().map(|&d| d as f64).collect();
    let truncated: Vec<f64> = secs.iter().map(|&d| d.min(cap_secs) as f64).collect();
    Ok(ConnectionDurationResult {
        full: Ecdf::from_sorted(full)?,
        truncated: Ecdf::from_sorted(truncated)?,
        cap,
    })
}

/// Figure 9 through the store: the zero-materialization column walk
/// collects the duration seconds, and the views are sorted multisets
/// of the same records' durations, so the result equals
/// [`connection_durations`] exactly.
pub fn connection_durations_store(
    store: &CdrStore,
    cap: Duration,
) -> conncar_types::Result<(ConnectionDurationResult, QueryStats)> {
    let (acc, stats) = kernels::fold_views(
        store,
        &Filter::all(),
        Vec::new,
        |acc: &mut Vec<u64>, v| push_durations(acc, v),
        merge_duration_acc,
    );
    Ok((assemble_durations(acc, cap)?, stats))
}

/// Figure 9 as a folder in a [`FusedPass`]; claim the result with
/// [`FusedDurations::finish`] after the pass runs.
pub fn fuse_connection_durations(pass: &mut FusedPass<'_>, cap: Duration) -> FusedDurations {
    let handle = pass.add_per_car(
        "durations",
        Vec::new,
        |acc: &mut Vec<u64>, v| push_durations(acc, v),
        merge_duration_acc,
    );
    FusedDurations { handle, cap }
}

/// Claim ticket for a fused Figure 9 folder.
pub struct FusedDurations {
    handle: FolderHandle<Vec<u64>>,
    cap: Duration,
}

impl FusedDurations {
    /// Assemble the duration result from the fused pass's outputs.
    pub fn finish(self, out: &mut FusedOutputs) -> conncar_types::Result<ConnectionDurationResult> {
        assemble_durations(out.take(self.handle), self.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_types::{
        BaseStationId, CarId, Carrier, CellId, DayOfWeek, StudyPeriod, Timestamp,
    };

    fn ds(durations: &[u64]) -> CdrDataset {
        let records = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| {
                let start = Timestamp::from_secs(i as u64 * 10_000);
                CdrRecord {
                    car: CarId(1),
                    cell: CellId::new(BaseStationId(1), 0, Carrier::C3),
                    start,
                    end: start + Duration::from_secs(d),
                }
            })
            .collect();
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 90).unwrap(), records)
    }

    #[test]
    fn basic_statistics() {
        let r = connection_durations(&ds(&[100, 200, 300, 5_000]), Duration::from_secs(600))
            .unwrap();
        assert_eq!(r.median_secs(), Some(250.0));
        let (mf, mt) = r.means();
        assert_eq!(mf, (100.0 + 200.0 + 300.0 + 5_000.0) / 4.0);
        assert_eq!(mt, (100.0 + 200.0 + 300.0 + 600.0) / 4.0);
        // 3 of 4 records are ≤ 600 s.
        assert_eq!(r.percentile_at_cap(), 0.75);
    }

    #[test]
    fn truncated_never_exceeds_cap() {
        let r = connection_durations(&ds(&[50, 700, 900, 10_000]), Duration::from_secs(600))
            .unwrap();
        for &v in r.truncated.values() {
            assert!(v <= 600.0);
        }
        // Full view keeps the tail.
        assert!(r.full.values().iter().any(|&v| v > 600.0));
    }

    #[test]
    fn all_short_records_equal_views() {
        let r = connection_durations(&ds(&[10, 20, 30]), Duration::from_secs(600)).unwrap();
        assert_eq!(r.full.values(), r.truncated.values());
        assert_eq!(r.percentile_at_cap(), 1.0);
    }

    #[test]
    fn store_path_matches_legacy_exactly() {
        let durations: Vec<u64> = (0..300).map(|i| 5 + (i * 37) % 4_000).collect();
        let d = ds(&durations);
        let legacy = connection_durations(&d, Duration::from_secs(600)).unwrap();
        for shards in [1, 4, 64] {
            let store = CdrStore::build(&d, shards);
            let (got, stats) =
                connection_durations_store(&store, Duration::from_secs(600)).unwrap();
            assert_eq!(got, legacy, "shards={shards}");
            assert_eq!(stats.rows_scanned as usize, d.len());
        }
    }

    #[test]
    fn fused_path_matches_store_path() {
        let durations: Vec<u64> = (0..300).map(|i| 5 + (i * 37) % 4_000).collect();
        let d = ds(&durations);
        for shards in [1, 7] {
            let store = CdrStore::build(&d, shards);
            let (want, _) = connection_durations_store(&store, Duration::from_secs(600)).unwrap();
            let mut pass = FusedPass::new(&store, Filter::all());
            let h = fuse_connection_durations(&mut pass, Duration::from_secs(600));
            let mut out = pass.run();
            assert_eq!(h.finish(&mut out).unwrap(), want, "shards={shards}");
        }
    }

    #[test]
    fn empty_dataset() {
        let r = connection_durations(&ds(&[]), Duration::from_secs(600)).unwrap();
        assert!(r.full.is_empty());
        assert_eq!(r.median_secs(), None);
    }
}

//! Frequency-band usage: Table 3 (§4.6).
//!
//! Two views per carrier: the fraction of cars that connected to it *at
//! least once* over the study (hardware + deployment reach), and the
//! fraction of total connected time it carried (actual utilization of
//! the band by the fleet).

use conncar_cdr::CdrDataset;
use conncar_types::{Carrier, ALL_CARRIERS};
use serde::{Deserialize, Serialize};

/// Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarrierUsage {
    /// Fraction of connected cars that ever used each carrier (C1..C5).
    pub cars_frac: [f64; 5],
    /// Fraction of total connected seconds on each carrier (C1..C5).
    pub time_frac: [f64; 5],
    /// Number of cars in the denominator.
    pub cars: usize,
    /// Total connected seconds in the denominator.
    pub total_secs: u64,
}

impl CarrierUsage {
    /// Accessors by carrier for readability in reports.
    pub fn cars_pct(&self, c: Carrier) -> f64 {
        self.cars_frac[c.index()] * 100.0
    }

    /// Time share of a carrier in percent.
    pub fn time_pct(&self, c: Carrier) -> f64 {
        self.time_frac[c.index()] * 100.0
    }
}

/// Compute Table 3 over a dataset.
pub fn carrier_usage(ds: &CdrDataset) -> CarrierUsage {
    let mut cars_with = [0usize; 5];
    let mut secs = [0u64; 5];
    let mut cars = 0usize;
    for (_car, records) in ds.by_car() {
        cars += 1;
        let mut seen = [false; 5];
        for r in records {
            let i = r.cell.carrier.index();
            seen[i] = true;
            secs[i] += r.duration().as_secs();
        }
        for (c, s) in cars_with.iter_mut().zip(seen) {
            if s {
                *c += 1;
            }
        }
    }
    let total_secs: u64 = secs.iter().sum();
    let mut cars_frac = [0.0; 5];
    let mut time_frac = [0.0; 5];
    for c in ALL_CARRIERS {
        let i = c.index();
        cars_frac[i] = if cars == 0 {
            0.0
        } else {
            cars_with[i] as f64 / cars as f64
        };
        time_frac[i] = if total_secs == 0 {
            0.0
        } else {
            secs[i] as f64 / total_secs as f64
        };
    }
    CarrierUsage {
        cars_frac,
        time_frac,
        cars,
        total_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_types::{
        BaseStationId, CarId, CellId, DayOfWeek, Duration, StudyPeriod, Timestamp,
    };

    fn rec(car: u32, carrier: Carrier, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: CellId::new(BaseStationId(1), 0, carrier),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start) + Duration::from_secs(dur),
        }
    }

    fn ds(records: Vec<CdrRecord>) -> CdrDataset {
        CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records)
    }

    #[test]
    fn shares_add_up() {
        let d = ds(vec![
            rec(1, Carrier::C3, 0, 300),
            rec(1, Carrier::C1, 1_000, 100),
            rec(2, Carrier::C3, 0, 600),
        ]);
        let u = carrier_usage(&d);
        assert_eq!(u.cars, 2);
        assert_eq!(u.total_secs, 1_000);
        assert!((u.time_frac.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(u.cars_frac[Carrier::C3.index()], 1.0);
        assert_eq!(u.cars_frac[Carrier::C1.index()], 0.5);
        assert_eq!(u.cars_frac[Carrier::C5.index()], 0.0);
        assert!((u.time_pct(Carrier::C3) - 90.0).abs() < 1e-9);
        assert!((u.cars_pct(Carrier::C1) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn repeat_use_counts_once_for_reach() {
        let d = ds(vec![
            rec(1, Carrier::C2, 0, 100),
            rec(1, Carrier::C2, 1_000, 100),
        ]);
        let u = carrier_usage(&d);
        assert_eq!(u.cars_frac[Carrier::C2.index()], 1.0);
        assert_eq!(u.time_frac[Carrier::C2.index()], 1.0);
    }

    #[test]
    fn empty_dataset_is_all_zero() {
        let u = carrier_usage(&ds(vec![]));
        assert_eq!(u.cars, 0);
        assert_eq!(u.total_secs, 0);
        assert_eq!(u.cars_frac, [0.0; 5]);
        assert_eq!(u.time_frac, [0.0; 5]);
    }
}

//! Clustering cars by behaviour — the paper's concluding claim made
//! executable.
//!
//! §5: *"Most importantly, we find that it is possible to classify cars
//! by how often they appear on the network and whether their network
//! presence would occur during busy or non-busy hours."* And §4.7 calls
//! for treating groups of cars differently (FOTA vs infotainment vs
//! user traffic).
//!
//! This module builds a per-car **behaviour vector** from observable
//! trace features only (no ground-truth persona access):
//!
//! 1. fraction of study days active;
//! 2. fraction of connected time in busy cells;
//! 3. weekly-matrix regularity (habit strength);
//! 4. share of connection mass in commute-peak hours;
//! 5. share of connection mass on weekends;
//! 6. mean connected hours per active day.
//!
//! and k-means-clusters the fleet over it. On synthetic data the
//! recovered clusters align with the hidden archetypes — quantified by
//! the purity score, which doubles as a validation of the whole
//! generative model.

use crate::cluster::{choose_k, kmeans, KmeansResult};
use crate::matrix::{car_matrix, reference_matrices};
use crate::segmentation::CarBusyProfile;
use conncar_cdr::CdrDataset;
use conncar_types::{CarId, Error, Result, StudyPeriod, TimeZone};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One car's observable behaviour features.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BehaviorVector {
    /// The car.
    pub car: CarId,
    /// Active days ÷ study days.
    pub days_active_frac: f64,
    /// Connected time in busy cells ÷ total connected time.
    pub busy_frac: f64,
    /// Weekly-matrix regularity, `[0, 1]`.
    pub regularity: f64,
    /// Connection mass inside weekday commute peaks.
    pub commute_share: f64,
    /// Connection mass on weekends.
    pub weekend_share: f64,
    /// Mean connected hours per active day.
    pub hours_per_active_day: f64,
}

impl BehaviorVector {
    /// The feature array, normalized so every axis is O(1).
    pub fn features(&self) -> [f64; 6] {
        [
            self.days_active_frac,
            self.busy_frac,
            self.regularity,
            self.commute_share,
            self.weekend_share,
            // Hours/day rarely exceed ~6; squash to keep axes balanced.
            (self.hours_per_active_day / 6.0).min(1.5),
        ]
    }
}

/// Compute behaviour vectors for every connected car.
pub fn behavior_vectors(
    ds: &CdrDataset,
    profiles: &[CarBusyProfile],
    period: StudyPeriod,
    tz: TimeZone,
) -> Vec<BehaviorVector> {
    let refs = reference_matrices();
    let by_car: BTreeMap<CarId, &CarBusyProfile> =
        profiles.iter().map(|p| (p.car, p)).collect();
    let mut out = Vec::new();
    for (car, records) in ds.by_car() {
        let Some(profile) = by_car.get(&car) else {
            continue;
        };
        let m = car_matrix(records, period, tz);
        let days = period.days().max(1) as f64;
        let active = profile.days_active.max(1) as f64;
        out.push(BehaviorVector {
            car,
            days_active_frac: profile.days_active as f64 / days,
            busy_frac: profile.busy_fraction(),
            regularity: m.regularity(),
            commute_share: m.mass_within(&refs.commute_peaks),
            weekend_share: m.mass_within(&refs.weekend),
            hours_per_active_day: profile.total_secs as f64 / 3_600.0 / active,
        });
    }
    out
}

/// The fleet clustered by behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CarClustering {
    /// Cluster id per vector (same order as the input vectors).
    pub assignments: Vec<usize>,
    /// Number of clusters.
    pub k: usize,
    /// Mean behaviour vector per cluster (feature space).
    pub centroids: Vec<Vec<f64>>,
    /// Cluster sizes.
    pub sizes: Vec<usize>,
}

/// Cluster the fleet into `k` behaviour groups (k-means over the
/// feature vectors). `k = 0` selects k automatically by silhouette
/// over `2..=6`.
pub fn cluster_cars(vectors: &[BehaviorVector], k: usize, seed: u64) -> Result<CarClustering> {
    if vectors.is_empty() {
        return Err(Error::EmptyInput {
            analysis: "cluster_cars",
        });
    }
    let points: Vec<Vec<f64>> = vectors.iter().map(|v| v.features().to_vec()).collect();
    let (k, result): (usize, KmeansResult) = if k == 0 {
        choose_k(&points, 6, 100, seed)?
    } else {
        (k, kmeans(&points, k, 100, seed)?)
    };
    let sizes = result.sizes();
    Ok(CarClustering {
        assignments: result.assignments,
        k,
        centroids: result.centroids,
        sizes,
    })
}

/// Purity of a clustering against ground-truth labels: the fraction of
/// cars whose cluster's majority label matches their own. 1.0 = the
/// clustering perfectly recovers the labels.
pub fn purity<L: Ord + Copy>(
    assignments: &[usize],
    labels: &[L],
    k: usize,
) -> f64 {
    assert_eq!(assignments.len(), labels.len());
    if assignments.is_empty() {
        return 0.0;
    }
    let mut counts: Vec<BTreeMap<L, usize>> = vec![BTreeMap::new(); k];
    for (&a, &l) in assignments.iter().zip(labels) {
        *counts[a].entry(l).or_default() += 1;
    }
    let majority_sum: usize = counts
        .iter()
        .map(|m| m.values().copied().max().unwrap_or(0))
        .sum();
    majority_sum as f64 / assignments.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vector(
        car: u32,
        days: f64,
        busy: f64,
        reg: f64,
        commute: f64,
        weekend: f64,
        hours: f64,
    ) -> BehaviorVector {
        BehaviorVector {
            car: CarId(car),
            days_active_frac: days,
            busy_frac: busy,
            regularity: reg,
            commute_share: commute,
            weekend_share: weekend,
            hours_per_active_day: hours,
        }
    }

    /// Two synthetic populations: commuters and weekenders.
    fn two_populations() -> (Vec<BehaviorVector>, Vec<u8>) {
        let mut vecs = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let j = (i % 5) as f64 * 0.01;
            vecs.push(vector(i, 0.9 + j, 0.1, 0.6 + j, 0.7, 0.05, 1.5));
            labels.push(0u8);
            vecs.push(vector(100 + i, 0.3 + j, 0.05, 0.2 + j, 0.05, 0.8, 1.0));
            labels.push(1u8);
        }
        (vecs, labels)
    }

    #[test]
    fn clusters_separate_known_populations() {
        let (vecs, labels) = two_populations();
        let c = cluster_cars(&vecs, 2, 7).unwrap();
        assert_eq!(c.k, 2);
        assert_eq!(c.sizes.iter().sum::<usize>(), vecs.len());
        let p = purity(&c.assignments, &labels, c.k);
        assert!(p > 0.95, "purity {p}");
    }

    #[test]
    fn auto_k_finds_two() {
        let (vecs, _) = two_populations();
        let c = cluster_cars(&vecs, 0, 7).unwrap();
        assert_eq!(c.k, 2);
    }

    #[test]
    fn empty_input_errors() {
        assert!(cluster_cars(&[], 2, 7).is_err());
    }

    #[test]
    fn purity_bounds() {
        assert_eq!(purity::<u8>(&[], &[], 2), 0.0);
        // All in one cluster with mixed labels: purity = majority share.
        let p = purity(&[0, 0, 0, 0], &[1u8, 1, 2, 3], 1);
        assert!((p - 0.5).abs() < 1e-12);
        // Perfect split.
        let p = purity(&[0, 0, 1, 1], &[5u8, 5, 9, 9], 2);
        assert_eq!(p, 1.0);
    }

    #[test]
    fn features_are_bounded() {
        let v = vector(1, 1.0, 1.0, 1.0, 1.0, 1.0, 100.0);
        for f in v.features() {
            assert!((0.0..=1.5).contains(&f), "feature {f}");
        }
    }

    #[test]
    fn end_to_end_on_synthetic_study_recovers_archetypes() {
        // The integration-level claim: clustering *observable* behaviour
        // recovers the hidden archetypes far better than chance.
        use conncar_cdr::CdrRecord;
        use conncar_types::{BaseStationId, Carrier, CellId, DayOfWeek, Duration, Timestamp};

        let period = StudyPeriod::new(DayOfWeek::Monday, 28).unwrap();
        let mut records = Vec::new();
        let mut labels = Vec::new();
        // 20 strict commuters, 20 weekend drivers.
        for car in 0..20u32 {
            labels.push(0u8);
            for (day, weekday) in period.iter_days() {
                if weekday.is_weekday() {
                    for hour in [8u64, 17] {
                        let start = Timestamp::from_day_hms(day, hour, 5, 0);
                        records.push(CdrRecord {
                            car: CarId(car),
                            cell: CellId::new(BaseStationId(car % 7), 0, Carrier::C3),
                            start,
                            end: start + Duration::from_mins(25),
                        });
                    }
                }
            }
        }
        for car in 100..120u32 {
            labels.push(1u8);
            for (day, weekday) in period.iter_days() {
                if weekday.is_weekend() {
                    let start = Timestamp::from_day_hms(day, 13, 0, 0);
                    records.push(CdrRecord {
                        car: CarId(car),
                        cell: CellId::new(BaseStationId(car % 7), 0, Carrier::C3),
                        start,
                        end: start + Duration::from_hours(2),
                    });
                }
            }
        }
        let ds = CdrDataset::new(period, records);
        // Profiles with zero busy time (no load model needed here).
        let profiles: Vec<CarBusyProfile> = ds
            .by_car()
            .map(|(car, rs)| {
                let days: std::collections::HashSet<u64> =
                    rs.iter().map(|r| r.start.day()).collect();
                CarBusyProfile {
                    car,
                    days_active: days.len() as u32,
                    busy_secs: 0,
                    total_secs: rs.iter().map(|r| r.duration().as_secs()).sum(),
                }
            })
            .collect();
        let vectors = behavior_vectors(&ds, &profiles, period, TimeZone::UTC);
        assert_eq!(vectors.len(), 40);
        let c = cluster_cars(&vectors, 2, 11).unwrap();
        let p = purity(&c.assignments, &labels, 2);
        assert!(p > 0.9, "archetype recovery purity {p}");
    }
}

//! Spatial concentration of cars: §4.4's warning quantified.
//!
//! *"Even with relatively short time spent in each cell, it is still
//! possible to encounter high concentration of cars in the same cell …
//! in highway traffic during commute times, at shopping malls, or event
//! parking lots."* This module measures how unevenly the fleet piles
//! onto cells: the distribution of peak concurrent cars per cell, the
//! share of car-time carried by the top cells, and a Gini coefficient
//! over per-cell load — the inputs a capacity planner needs to know
//! *where* FOTA traffic would stack.

use crate::concurrency::ConcurrencyIndex;
use crate::stats::Ecdf;
use conncar_cdr::CdrDataset;
use conncar_types::{BinIndex, CellId, Result};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Concentration summary over the study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConcentrationResult {
    /// Distribution of each cell's *peak* concurrent-car count.
    pub peak_concurrency: Ecdf,
    /// Fraction of total connected car-seconds carried by the top 1% /
    /// 5% / 10% of cells.
    pub top_cell_share: [f64; 3],
    /// Gini coefficient of per-cell connected-seconds (0 = uniform,
    /// → 1 = all load on one cell).
    pub gini: f64,
    /// Number of cells that ever saw a car.
    pub cells: usize,
    /// The single most concentrated (cell, bin, concurrent cars).
    pub hotspot: Option<(CellId, BinIndex, u32)>,
}

/// Compute the concentration summary.
pub fn concentration(ds: &CdrDataset, idx: &ConcurrencyIndex) -> Result<ConcentrationResult> {
    // Per-cell total connected seconds.
    let mut secs: BTreeMap<CellId, u64> = BTreeMap::new();
    for r in ds.records() {
        *secs.entry(r.cell).or_default() += r.duration().as_secs();
    }
    let mut loads: Vec<f64> = secs.values().map(|&s| s as f64).collect();
    loads.sort_by(f64::total_cmp);
    let total: f64 = loads.iter().sum();

    // Top-cell shares.
    let share_of_top = |frac: f64| -> f64 {
        if loads.is_empty() || total == 0.0 {
            return 0.0;
        }
        let k = ((loads.len() as f64 * frac).ceil() as usize).clamp(1, loads.len());
        loads[loads.len() - k..].iter().sum::<f64>() / total
    };
    let top_cell_share = [share_of_top(0.01), share_of_top(0.05), share_of_top(0.10)];

    // Gini over sorted loads: G = (2·Σ i·x_i)/(n·Σ x) − (n+1)/n.
    let gini = if loads.len() < 2 || total == 0.0 {
        0.0
    } else {
        let n = loads.len() as f64;
        let weighted: f64 = loads
            .iter()
            .enumerate()
            .map(|(i, x)| (i as f64 + 1.0) * x)
            .sum();
        (2.0 * weighted / (n * total) - (n + 1.0) / n).max(0.0)
    };

    // Peak concurrency per cell, plus the global hotspot.
    let mut peaks: Vec<f64> = Vec::new();
    let mut hotspot: Option<(CellId, BinIndex, u32)> = None;
    let mut cells_sorted: Vec<CellId> = idx.cells().collect();
    cells_sorted.sort();
    for cell in cells_sorted {
        if let Some((bin, count)) = idx.peak(cell) {
            peaks.push(count as f64);
            match hotspot {
                Some((_, _, best)) if best >= count => {}
                _ => hotspot = Some((cell, bin, count)),
            }
        }
    }

    Ok(ConcentrationResult {
        peak_concurrency: Ecdf::new(peaks)?,
        top_cell_share,
        gini,
        cells: secs.len(),
        hotspot,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use conncar_cdr::CdrRecord;
    use conncar_types::{
        BaseStationId, CarId, Carrier, DayOfWeek, StudyPeriod, Timestamp,
    };

    fn cell(i: u32) -> CellId {
        CellId::new(BaseStationId(i), 0, Carrier::C3)
    }

    fn rec(car: u32, cell_i: u32, start: u64, dur: u64) -> CdrRecord {
        CdrRecord {
            car: CarId(car),
            cell: cell(cell_i),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(start + dur),
        }
    }

    fn run(records: Vec<CdrRecord>) -> ConcentrationResult {
        let ds = CdrDataset::new(StudyPeriod::new(DayOfWeek::Monday, 7).unwrap(), records);
        let idx = ConcurrencyIndex::build(&ds);
        concentration(&ds, &idx).unwrap()
    }

    #[test]
    fn uniform_load_has_low_gini() {
        // 10 cells, one identical record each.
        let records = (0..10).map(|i| rec(i, i, 0, 100)).collect();
        let r = run(records);
        assert!(r.gini < 1e-9, "gini {}", r.gini);
        assert_eq!(r.cells, 10);
        // Top 10% of cells (1 cell) carries exactly 10%.
        assert!((r.top_cell_share[2] - 0.1).abs() < 1e-9);
    }

    #[test]
    fn concentrated_load_has_high_gini_and_hotspot() {
        // One mega-cell with 20 concurrent cars, nine quiet cells.
        let mut records: Vec<CdrRecord> = (0..20).map(|c| rec(c, 0, 0, 800)).collect();
        for i in 1..10 {
            records.push(rec(100 + i, i, 0, 10));
        }
        let r = run(records);
        assert!(r.gini > 0.7, "gini {}", r.gini);
        let (hot_cell, _, peak) = r.hotspot.unwrap();
        assert_eq!(hot_cell, cell(0));
        assert_eq!(peak, 20);
        // Top 10% of cells (1 of 10) carries nearly everything.
        assert!(r.top_cell_share[2] > 0.9);
        // Peak-concurrency distribution: median cell peaks at 1.
        assert_eq!(r.peak_concurrency.median(), Some(1.0));
    }

    #[test]
    fn empty_dataset() {
        let r = run(Vec::new());
        assert_eq!(r.cells, 0);
        assert_eq!(r.gini, 0.0);
        assert!(r.hotspot.is_none());
        assert!(r.peak_concurrency.is_empty());
        assert_eq!(r.top_cell_share, [0.0; 3]);
    }

    #[test]
    fn shares_are_monotone() {
        let records = (0..50)
            .map(|i| rec(i, i % 7, (i as u64) * 50, 60 + (i as u64 % 13) * 40))
            .collect();
        let r = run(records);
        assert!(r.top_cell_share[0] <= r.top_cell_share[1]);
        assert!(r.top_cell_share[1] <= r.top_cell_share[2]);
        assert!(r.top_cell_share[2] <= 1.0 + 1e-12);
        assert!((0.0..=1.0).contains(&r.gini));
    }
}

//! k-means clustering, from scratch: Figure 11.
//!
//! §4.4 clusters the very busy cells (average weekly `U_PRB ≥ 70%`) by
//! their 96-element daily concurrent-car profiles with "the classic
//! k-means algorithm", finding two clusters whose shapes match but whose
//! magnitudes differ five-fold. We implement Lloyd's algorithm with
//! k-means++ seeding, plus silhouette scoring so the choice k = 2 is
//! *derived* rather than assumed.

use crate::busy::NetworkLoadModel;
use crate::concurrency::ConcurrencyIndex;
use conncar_types::{CellId, Error, Result};
use serde::{Deserialize, Serialize};

/// Result of one k-means run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KmeansResult {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations until convergence.
    pub iterations: usize,
}

impl KmeansResult {
    /// Number of points in each cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

#[inline]
fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Deterministic xorshift-ish stream for seeding (keeps the crate free
/// of a rand dependency).
struct MiniRng(u64);

impl MiniRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Lloyd's k-means with k-means++ initialization.
///
/// Errors on empty input, `k == 0`, `k` exceeding the point count, or
/// ragged dimensions.
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> Result<KmeansResult> {
    if points.is_empty() {
        return Err(Error::EmptyInput { analysis: "kmeans" });
    }
    let dim = points[0].len();
    if points.iter().any(|p| p.len() != dim) {
        return Err(Error::InvalidConfig {
            what: "kmeans",
            why: "ragged point dimensions".into(),
        });
    }
    if k == 0 || k > points.len() {
        return Err(Error::InvalidConfig {
            what: "kmeans",
            why: format!("k = {k} for {} points", points.len()),
        });
    }
    let mut rng = MiniRng(seed | 1);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = (rng.next_u64() as usize) % points.len();
    centroids.push(points[first].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| dist_sq(p, &centroids[0])).collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with existing centroids; pick any.
            (rng.next_u64() as usize) % points.len()
        } else {
            let mut target = rng.next_f64() * total;
            let mut idx = 0;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    idx = i;
                    break;
                }
                idx = i;
            }
            idx
        };
        centroids.push(points[chosen].clone());
        for (i, p) in points.iter().enumerate() {
            d2[i] = d2[i].min(dist_sq(p, centroids.last().expect("non-empty")));
        }
    }

    // Lloyd iterations.
    let mut assignments = vec![0usize; points.len()];
    let mut iterations = 0;
    for iter in 0..max_iter.max(1) {
        iterations = iter + 1;
        // Assignment step.
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = dist_sq(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in points.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, v) in sums[a].iter_mut().zip(p) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at the farthest point.
                let far = points
                    .iter()
                    .enumerate()
                    .max_by(|(_, a), (_, b)| {
                        dist_sq(a, &centroids[assignments[0]])
                            .total_cmp(&dist_sq(b, &centroids[assignments[0]]))
                    })
                    .map(|(i, _)| i)
                    .expect("non-empty points");
                centroids[c] = points[far].clone();
            } else {
                for (cv, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cv = s / counts[c] as f64;
                }
            }
        }
        if !changed && iter > 0 {
            break;
        }
    }
    let inertia = points
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| dist_sq(p, &centroids[a]))
        .sum();
    Ok(KmeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Mean silhouette coefficient of a clustering, in `[-1, 1]`.
/// Higher = better-separated clusters. `None` when any cluster is a
/// singleton-free requirement fails (k < 2 or a cluster is empty).
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize], k: usize) -> Option<f64> {
    if k < 2 || points.len() != assignments.len() || points.len() < k {
        return None;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for (i, p) in points.iter().enumerate() {
        let own = assignments[i];
        let mut intra = 0.0;
        let mut intra_n = 0usize;
        let mut inter = vec![(0.0f64, 0usize); k];
        for (j, q) in points.iter().enumerate() {
            if i == j {
                continue;
            }
            let d = dist_sq(p, q).sqrt();
            if assignments[j] == own {
                intra += d;
                intra_n += 1;
            } else {
                let e = &mut inter[assignments[j]];
                e.0 += d;
                e.1 += 1;
            }
        }
        if intra_n == 0 {
            continue; // singleton cluster: conventionally skipped
        }
        let a = intra / intra_n as f64;
        let b = inter
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(s, n)| s / *n as f64)
            .fold(f64::INFINITY, f64::min);
        if !b.is_finite() {
            return None;
        }
        total += (b - a) / a.max(b);
        counted += 1;
    }
    (counted > 0).then(|| total / counted as f64)
}

/// Pick k in `2..=k_max` by maximum silhouette. Returns `(k, result)`.
pub fn choose_k(
    points: &[Vec<f64>],
    k_max: usize,
    max_iter: usize,
    seed: u64,
) -> Result<(usize, KmeansResult)> {
    let mut best: Option<(f64, usize, KmeansResult)> = None;
    for k in 2..=k_max.min(points.len().saturating_sub(1)).max(2) {
        let r = kmeans(points, k, max_iter, seed ^ (k as u64) << 32)?;
        if let Some(s) = silhouette(points, &r.assignments, k) {
            if best.as_ref().map(|(bs, _, _)| s > *bs).unwrap_or(true) {
                best = Some((s, k, r));
            }
        }
    }
    best.map(|(_, k, r)| (k, r)).ok_or(Error::EmptyInput {
        analysis: "choose_k",
    })
}

/// One Figure 11 cluster: member cells and the mean profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusyCellCluster {
    /// Member cells.
    pub cells: Vec<CellId>,
    /// Mean daily concurrent-car profile (96 bins).
    pub mean_profile: Vec<f64>,
    /// Peak of the mean profile.
    pub peak_cars: f64,
}

/// Figure 11's complete result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BusyCellClustering {
    /// Clusters sorted by ascending peak concurrency (paper's Cluster 1
    /// = low, Cluster 2 = high).
    pub clusters: Vec<BusyCellCluster>,
    /// How many cells qualified as "very busy".
    pub qualifying_cells: usize,
    /// The average-PRB threshold used to qualify cells.
    pub min_mean_prb: f64,
}

/// Run Figure 11: select cells with mean `U_PRB ≥ min_mean_prb` over the
/// first whole week, build their 96-bin concurrency profiles, k-means
/// them into `k` clusters.
pub fn cluster_busy_cells(
    idx: &ConcurrencyIndex,
    model: &NetworkLoadModel<'_>,
    min_mean_prb: f64,
    k: usize,
    seed: u64,
) -> Result<BusyCellClustering> {
    // Qualify in sorted cell order: the index hands cells out in hash
    // order, and k-means++ seeding depends on point order, so iterating
    // the raw map would make the clustering differ run to run.
    let mut qualifying: Vec<CellId> = idx
        .cells()
        .filter(|&cell| {
            let series = model.series(cell);
            let mean = series.week_mean(0).unwrap_or_else(|| series.mean());
            mean >= min_mean_prb
        })
        .collect();
    qualifying.sort_unstable();
    let cells = qualifying;
    let points: Vec<Vec<f64>> = cells
        .iter()
        .map(|&cell| idx.daily_profile(cell).to_vec())
        .collect();
    if points.is_empty() {
        return Err(Error::EmptyInput {
            analysis: "cluster_busy_cells",
        });
    }
    let k = k.min(points.len());
    let result = kmeans(&points, k, 100, seed)?;
    let mut clusters: Vec<BusyCellCluster> = (0..k)
        .map(|c| {
            let members: Vec<usize> = result
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == c)
                .map(|(i, _)| i)
                .collect();
            let mut mean_profile = vec![0.0f64; points[0].len()];
            for &m in &members {
                for (s, v) in mean_profile.iter_mut().zip(&points[m]) {
                    *s += v;
                }
            }
            if !members.is_empty() {
                for s in &mut mean_profile {
                    *s /= members.len() as f64;
                }
            }
            let peak_cars = mean_profile.iter().copied().fold(0.0f64, f64::max);
            BusyCellCluster {
                cells: members.iter().map(|&m| cells[m]).collect(),
                mean_profile,
                peak_cars,
            }
        })
        .collect();
    clusters.sort_by(|a, b| a.peak_cars.total_cmp(&b.peak_cars));
    Ok(BusyCellClustering {
        clusters,
        qualifying_cells: cells.len(),
        min_mean_prb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs in 2-D.
    fn blobs() -> (Vec<Vec<f64>>, usize) {
        let mut pts = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            pts.push(vec![0.0 + j, 0.0 - j]);
            pts.push(vec![10.0 + j, 10.0 - j]);
        }
        (pts, 40)
    }

    #[test]
    fn kmeans_separates_blobs() {
        let (pts, n) = blobs();
        let r = kmeans(&pts, 2, 50, 7).unwrap();
        assert_eq!(r.assignments.len(), n);
        let sizes = r.sizes();
        assert_eq!(sizes, vec![20, 20]);
        // Centroids near (0.2, -0.2) and (10.2, 9.8) in some order.
        let mut cs = r.centroids.clone();
        cs.sort_by(|a, b| a[0].total_cmp(&b[0]));
        assert!(cs[0][0] < 1.0 && cs[1][0] > 9.0);
        assert!(r.inertia < 2.0);
    }

    #[test]
    fn kmeans_is_deterministic_in_seed() {
        let (pts, _) = blobs();
        let a = kmeans(&pts, 2, 50, 9).unwrap();
        let b = kmeans(&pts, 2, 50, 9).unwrap();
        assert_eq!(a.assignments, b.assignments);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn kmeans_error_cases() {
        assert!(kmeans(&[], 2, 10, 1).is_err());
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(kmeans(&pts, 0, 10, 1).is_err());
        assert!(kmeans(&pts, 3, 10, 1).is_err());
        let ragged = vec![vec![0.0], vec![1.0, 2.0]];
        assert!(kmeans(&ragged, 1, 10, 1).is_err());
    }

    #[test]
    fn kmeans_k_equals_n() {
        let pts = vec![vec![0.0], vec![5.0], vec![9.0]];
        let r = kmeans(&pts, 3, 10, 1).unwrap();
        assert_eq!(r.sizes(), vec![1, 1, 1]);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn kmeans_identical_points() {
        let pts = vec![vec![2.0, 2.0]; 10];
        let r = kmeans(&pts, 2, 10, 3).unwrap();
        assert_eq!(r.assignments.len(), 10);
        assert!(r.inertia < 1e-12);
    }

    #[test]
    fn silhouette_prefers_true_k() {
        let (pts, _) = blobs();
        let r2 = kmeans(&pts, 2, 50, 7).unwrap();
        let r4 = kmeans(&pts, 4, 50, 7).unwrap();
        let s2 = silhouette(&pts, &r2.assignments, 2).unwrap();
        let s4 = silhouette(&pts, &r4.assignments, 4).unwrap();
        assert!(s2 > s4, "s2 {s2} should beat s4 {s4}");
        assert!(s2 > 0.8);
    }

    #[test]
    fn choose_k_finds_two_blobs() {
        let (pts, _) = blobs();
        let (k, _r) = choose_k(&pts, 6, 50, 11).unwrap();
        assert_eq!(k, 2);
    }

    #[test]
    fn silhouette_degenerate_inputs() {
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(silhouette(&pts, &[0, 0], 1).is_none());
        assert!(silhouette(&pts, &[0], 2).is_none());
    }

    #[test]
    fn busy_cell_clustering_end_to_end() {
        use crate::concurrency::ConcurrencyIndex;
        use conncar_cdr::{CdrDataset, CdrRecord};
        use conncar_geo::{Region, RegionConfig};
        use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
        use conncar_types::{CarId, Carrier, DayOfWeek, Duration, StudyPeriod, Timestamp};

        let region = Region::generate(&RegionConfig::small(), 42);
        let period = StudyPeriod::new(DayOfWeek::Monday, 14).unwrap();
        let mut ledger = PrbLedger::new(period);
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), period, -5);

        // Eight cells kept saturated all study long so they qualify as
        // very busy; half see few concurrent cars, half see many.
        let stations = region.deployment().stations();
        let mut records = Vec::new();
        let mut car = 0u32;
        for (i, s) in stations.iter().take(8).enumerate() {
            let cell = CellId::new(s.id, 0, Carrier::C3);
            ledger.add_load_fraction(cell, period.start(), period.end(), 1.0);
            let cars_here = if i % 2 == 0 { 2 } else { 10 };
            for day in 0..14u64 {
                for c in 0..cars_here {
                    let start = Timestamp::from_day_hms(day, 17, 0, 0)
                        + Duration::from_secs(c as u64 * 30);
                    records.push(CdrRecord {
                        car: CarId(car + c),
                        cell,
                        start,
                        end: start + Duration::from_mins(10),
                    });
                }
            }
            car += cars_here;
        }
        let ds = CdrDataset::new(period, records);
        let idx = ConcurrencyIndex::build(&ds);
        let model = NetworkLoadModel::new(&ledger, &bg, region.deployment());
        let result = cluster_busy_cells(&idx, &model, 0.7, 2, 42).unwrap();
        assert_eq!(result.qualifying_cells, 8);
        assert_eq!(result.clusters.len(), 2);
        let low = &result.clusters[0];
        let high = &result.clusters[1];
        assert_eq!(low.cells.len(), 4);
        assert_eq!(high.cells.len(), 4);
        // The paper's five-fold concurrency gap.
        assert!(
            high.peak_cars > 3.0 * low.peak_cars,
            "high {} vs low {}",
            high.peak_cars,
            low.peak_cars
        );
        assert_eq!(low.mean_profile.len(), 96);
    }

    #[test]
    fn busy_cell_clustering_empty_input_errors() {
        use crate::concurrency::ConcurrencyIndex;
        use conncar_cdr::CdrDataset;
        use conncar_geo::{Region, RegionConfig};
        use conncar_radio::{BackgroundLoad, BackgroundLoadConfig, PrbLedger};
        use conncar_types::{DayOfWeek, StudyPeriod};

        let region = Region::generate(&RegionConfig::small(), 42);
        let period = StudyPeriod::new(DayOfWeek::Monday, 7).unwrap();
        let ledger = PrbLedger::new(period);
        let bg = BackgroundLoad::new(BackgroundLoadConfig::default(), period, -5);
        let ds = CdrDataset::new(period, Vec::new());
        let idx = ConcurrencyIndex::build(&ds);
        let model = NetworkLoadModel::new(&ledger, &bg, region.deployment());
        assert!(cluster_busy_cells(&idx, &model, 0.7, 2, 1).is_err());
    }
}

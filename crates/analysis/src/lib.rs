//! # conncar-analysis
//!
//! The paper's analysis pipeline, one module per section of §4:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`stats`] | shared statistics kit (CDFs, histograms, OLS, percentiles) |
//! | [`busy`] | `U_PRB > 80%` busy-bin classification used everywhere |
//! | [`temporal`] | Figure 2, Table 1, Figure 3 (macro temporal behaviour) |
//! | [`matrix`] | Figures 4–5 (24×7 weekly usage matrices) |
//! | [`segmentation`] | Figure 6, Table 2, Figure 7 (rare/common × busy) |
//! | [`duration`] | Figure 9 (per-cell connection durations) |
//! | [`concurrency`] | Figures 8, 10 and the vectors behind Figure 11 |
//! | [`fusion`] | cross-analysis fused folders sharing one relation |
//! | [`concentration`] | §4.4's car-concentration claims (Gini, hotspots) |
//! | [`cluster`] | Figure 11 (k-means over busy-cell daily profiles) |
//! | [`handover`] | §4.5 (handover counts and taxonomy) |
//! | [`carrier`] | Table 3 (frequency-band usage) |
//! | [`predict`] | §4.7's "per-car prediction models" extension |
//! | [`carclusters`] | §5's "classify cars" claim: behaviour clustering |
//!
//! Every analysis consumes the cleaned [`conncar_cdr::CdrDataset`] (plus
//! the network-load model where busy-hours matter) and produces a plain
//! result struct that the `conncar` core crate renders into the paper's
//! tables and figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod busy;
pub mod carclusters;
pub mod carrier;
pub mod cluster;
pub mod concentration;
pub mod concurrency;
pub mod duration;
pub mod fusion;
pub mod handover;
pub mod matrix;
pub mod predict;
pub mod segmentation;
pub mod stats;
pub mod temporal;

pub use busy::NetworkLoadModel;
pub use stats::{Ecdf, Histogram, LinearFit, StreamingStats};
